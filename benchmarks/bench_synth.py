"""Synthesis throughput benchmark: exhaustive enumeration, two ways.

Measures the ``repro.synth`` pipeline on the 2-thread, <=3-event,
2-address space (every rf/co candidate of every program judged under
every axiomatic model: SC, 370, x86 and WMM):

* **serial** — one in-process :func:`repro.synth.search` pass
  (programs/sec, distinguishers found, canonical-dedupe ratio);
* **service** — the same space scattered as chunked ``synth`` jobs over
  the real HTTP API and merged back, byte-identical to the serial
  result (serial-vs-serve speedup, cold and warm);
* **enlarged** — a serial pass over the extended-vocabulary space
  (locked RMWs + acquire/release/lwfence, the ``2x2x2ra`` token), so
  the recorded programs/sec tracks the richer event kinds too.

Run standalone (CI smoke) to record ``BENCH_synth.json``:

    PYTHONPATH=src python benchmarks/bench_synth.py

or under pytest for the assertion-only version:

    PYTHONPATH=src python -m pytest benchmarks/bench_synth.py
"""

import asyncio
import json
import pathlib
import tempfile
import threading
import time

from repro.serve.api import HttpApi, ServeService
from repro.serve.client import ServeClient
from repro.synth import SynthResult, merge_results, search
from repro.synth.space import SynthBounds, count_programs

BOUNDS = SynthBounds(threads=2, max_ops=3, addresses=2)
ENLARGED = SynthBounds(threads=2, max_ops=2, addresses=2,
                       rmws=True, acqrel=True)
CHUNKS = 4
SHARDS = 2
SHARD_WORKERS = 2

RESULT_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_synth.json"


class _Server:
    """The benchmark's in-process server (HTTP on a daemon thread)."""

    def __init__(self, cache_dir):
        self.cache_dir = cache_dir
        self.service = None
        self.api = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.service = ServeService(shards=SHARDS,
                                    shard_workers=SHARD_WORKERS,
                                    cache_dir=self.cache_dir)
        self.api = HttpApi(self.service, port=0)
        self._loop = asyncio.get_running_loop()
        await self.api.start()
        self._ready.set()
        await self.api._shutdown.wait()
        await self.api.stop(drain_timeout=120)

    def __enter__(self):
        self._thread.start()
        self._ready.wait(timeout=15)
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self.api.request_shutdown)
        self._thread.join(timeout=120)

    def client(self):
        return ServeClient(f"http://127.0.0.1:{self.api.port}",
                           timeout=300)


def _requests():
    return [{"kind": "synth", "bounds": BOUNDS.to_dict(),
             "chunk": chunk, "chunks": CHUNKS}
            for chunk in range(CHUNKS)]


def _timed_scatter(client):
    t0 = time.perf_counter()
    batch = client.submit_batch(_requests())
    ids = [doc["id"] for doc in batch["jobs"]]
    docs = client.wait_all(ids, deadline=600)
    elapsed = time.perf_counter() - t0
    states = [docs[i]["state"] for i in ids]
    parts = [SynthResult.from_dict(docs[i]["result"]) for i in ids]
    hits = sum(docs[i].get("cache_hit", False) for i in ids)
    return elapsed, states, merge_results(parts), hits


def measure():
    """Serial vs scattered synthesis over the same space."""
    t0 = time.perf_counter()
    serial = search(BOUNDS)
    serial_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as cache_dir, \
            _Server(cache_dir) as server:
        client = server.client()
        cold_s, cold_states, merged, _ = _timed_scatter(client)
        warm_s, warm_states, rewarmed, warm_hits = _timed_scatter(client)

    identical = (merged.to_dict() == serial.to_dict()
                 == rewarmed.to_dict())

    t0 = time.perf_counter()
    enlarged = search(ENLARGED)
    enlarged_s = time.perf_counter() - t0

    return {
        "space": BOUNDS.describe(),
        "programs": count_programs(BOUNDS),
        "chunks": CHUNKS,
        "shards": SHARDS,
        "shard_workers": SHARD_WORKERS,
        "all_done": (cold_states.count("done") == CHUNKS
                     and warm_states.count("done") == CHUNKS),
        "merged_equals_serial": identical,
        "enumerated": serial.enumerated,
        "judged": serial.judged,
        "hits": serial.hits,
        "distinct": serial.distinct,
        "dedupe_ratio": round(serial.dedupe_ratio, 4),
        "serial_seconds": round(serial_s, 4),
        "serial_programs_per_sec": round(serial.enumerated / serial_s,
                                         1),
        "serve_cold_seconds": round(cold_s, 4),
        "serve_cold_programs_per_sec": round(serial.enumerated / cold_s,
                                             1),
        "serve_cold_speedup": round(serial_s / cold_s, 2),
        "serve_warm_seconds": round(warm_s, 4),
        "serve_warm_cache_hits": warm_hits,
        "serve_warm_speedup": round(serial_s / warm_s, 2),
        "enlarged_space": ENLARGED.describe(),
        "enlarged_programs": count_programs(ENLARGED),
        "enlarged_judged": enlarged.judged,
        "enlarged_hits": enlarged.hits,
        "enlarged_distinct": enlarged.distinct,
        "enlarged_lattice_errors": len(enlarged.lattice_errors),
        "enlarged_seconds": round(enlarged_s, 4),
        "enlarged_programs_per_sec": round(
            enlarged.enumerated / enlarged_s, 1),
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------

def test_synth_scatter_matches_serial():
    result = measure()
    assert result["all_done"], result
    assert result["merged_equals_serial"], result
    assert result["distinct"] >= 1, result
    # The warm pass answers every chunk from the store.
    assert result["serve_warm_cache_hits"] == CHUNKS, result
    # The extended-vocabulary space must stay lattice-clean and keep
    # finding witnesses (WMM pairs have plenty).
    assert result["enlarged_lattice_errors"] == 0, result
    assert result["enlarged_distinct"] >= 1, result


# ----------------------------------------------------------------------
# CI smoke: record programs/sec for trajectory tracking
# ----------------------------------------------------------------------

def main():
    result = measure()
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if not result["all_done"]:
        raise SystemExit("synth benchmark: not every chunk finished")
    if not result["merged_equals_serial"]:
        raise SystemExit(
            "synth benchmark: scattered merge diverged from the "
            "serial search")
    print(f"synth: serial {result['serial_programs_per_sec']} "
          f"programs/s, scattered {result['serve_cold_programs_per_sec']}"
          f" programs/s ({result['serve_cold_speedup']}x cold, "
          f"{result['serve_warm_speedup']}x warm) over "
          f"{result['programs']} programs, {result['distinct']} "
          f"distinct distinguishers; enlarged space "
          f"{result['enlarged_programs_per_sec']} programs/s over "
          f"{result['enlarged_programs']} programs, "
          f"{result['enlarged_distinct']} distinct")


if __name__ == "__main__":
    main()
