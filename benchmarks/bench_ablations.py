"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper, but probing its design space:

* gate reopening policy: key match (SLFSoS-key) vs SB drain (SLFSoS) vs
  SC-like SLF blocking (SLFSpec), swept over SQ/SB sizes — the key's
  advantage should grow with a deeper store buffer;
* StoreSet predictor on/off — memory-dependence squashes without it;
* L1-eviction squashing (the stricter eviction rule) — extra
  re-executions, unchanged correctness.

All grids run through the sweep runner (``repro.sweep``): each cell is
an independent job, cached on disk and fanned across workers.
"""

import dataclasses

from conftest import add_report, run_jobs

from repro.analysis.report import format_table
from repro.sim.config import SKYLAKE_LIKE
from repro.sweep import SweepJob

LENGTH = 2000
CORES = 4


def test_ablation_sb_size_sweep(once):
    """Gate-reopen policy vs SQ/SB depth (barnes, forwarding-heavy)."""
    sizes = (16, 32, 56)
    policies = ("x86", "370-SLFSpec", "370-SLFSoS", "370-SLFSoS-key")
    jobs = []
    for sb_size in sizes:
        config = dataclasses.replace(
            SKYLAKE_LIKE,
            core=dataclasses.replace(SKYLAKE_LIKE.core,
                                     sq_sb_entries=sb_size))
        jobs.extend(SweepJob(name="barnes", policy=policy, cores=CORES,
                             length=LENGTH, config=config)
                    for policy in policies)

    def sweep():
        results = run_jobs(jobs).results
        rows = []
        for i, sb_size in enumerate(sizes):
            chunk = results[i * len(policies):(i + 1) * len(policies)]
            base = chunk[0].stats
            rows.append([f"SQ/SB={sb_size}"]
                        + [round(r.stats.execution_cycles
                                 / base.execution_cycles, 3)
                           for r in chunk[1:]])
        return rows

    rows = once(sweep)
    add_report("Ablation SB size", format_table(
        ["config", "SLFSpec", "SLFSoS", "SLFSoS-key"], rows,
        title="Ablation: normalized time vs SQ/SB size (barnes)"))
    for row in rows:
        assert row[3] <= row[1] + 0.02  # key <= SC-like speculation


def test_ablation_storeset_off(once):
    """Without memory-dependence prediction (and without the warmed
    hints), colliding store->load pairs squash."""
    cold_job = SweepJob(name="502.gcc_1", policy="370-SLFSoS-key",
                        cores=1, length=4000, memdep_hints=False)
    warm_job = SweepJob(name="502.gcc_1", policy="370-SLFSoS-key",
                        cores=1, length=4000)

    cold = once(lambda: run_jobs([cold_job]).results[0].stats)
    warm_run = run_jobs([warm_job]).results[0].stats
    add_report("Ablation StoreSet", format_table(
        ["configuration", "memdep squashes", "reexec %"],
        [["cold predictor", cold.total.squashes_memdep,
          round(cold.total.reexecuted_pct, 3)],
         ["warmed predictor", warm_run.total.squashes_memdep,
          round(warm_run.total.reexecuted_pct, 3)]],
        title="Ablation: StoreSet warm-up (502.gcc_1, 1 core)"))
    assert cold.total.squashes_memdep >= warm_run.total.squashes_memdep


def test_ablation_prefetcher(once):
    """The stride L1 prefetcher (Table III) mostly helps strided
    workloads; the policy ranking must be robust to it."""
    jobs = []
    for enabled in (True, False):
        config = dataclasses.replace(
            SKYLAKE_LIKE,
            memory=dataclasses.replace(SKYLAKE_LIKE.memory,
                                       prefetcher=enabled))
        jobs.extend(SweepJob(name="503.bwaves_1", policy=policy,
                             cores=CORES, length=LENGTH, config=config)
                    for policy in ("x86", "370-SLFSoS-key"))

    def run_both():
        results = run_jobs(jobs).results
        rows = []
        for i, enabled in enumerate((True, False)):
            base, key = results[2 * i].stats, results[2 * i + 1].stats
            rows.append(["on" if enabled else "off",
                         base.execution_cycles, key.execution_cycles,
                         round(key.execution_cycles
                               / base.execution_cycles, 3)])
        return rows

    rows = once(run_both)
    add_report("Ablation prefetcher", format_table(
        ["stride prefetcher", "x86 cycles", "key cycles", "key/x86"],
        rows, title="Ablation: stride prefetcher (503.bwaves)"))
    # The key overhead stays small with or without the prefetcher.
    for row in rows:
        assert row[3] < 1.15


def test_ablation_mispredict_penalty(once):
    """Redirect-penalty sweep: absolute time grows with the penalty,
    the key configuration's relative overhead stays put."""
    penalties = (5, 14, 30)
    jobs = []
    for penalty in penalties:
        config = dataclasses.replace(
            SKYLAKE_LIKE,
            core=dataclasses.replace(SKYLAKE_LIKE.core,
                                     mispredict_penalty=penalty))
        jobs.extend(SweepJob(name="502.gcc_1", policy=policy,
                             cores=CORES, length=LENGTH, config=config)
                    for policy in ("x86", "370-SLFSoS-key"))

    def sweep():
        results = run_jobs(jobs).results
        rows = []
        for i, penalty in enumerate(penalties):
            base, key = results[2 * i].stats, results[2 * i + 1].stats
            rows.append([f"penalty={penalty}", base.execution_cycles,
                         round(key.execution_cycles
                               / base.execution_cycles, 3)])
        return rows

    rows = once(sweep)
    add_report("Ablation mispredict penalty", format_table(
        ["config", "x86 cycles", "key/x86"], rows,
        title="Ablation: mispredict penalty sweep (502.gcc_1)"))
    assert rows[-1][1] >= rows[0][1]  # bigger penalty, more cycles


def test_ablation_l1_evict_squash(once):
    """The stricter L1-castout squash rule: more re-execution, still no
    witnessed violations."""
    strict = dataclasses.replace(
        SKYLAKE_LIKE,
        core=dataclasses.replace(SKYLAKE_LIKE.core, l1_evict_squash=True))
    jobs = [SweepJob(name="505.mcf", policy="370-SLFSoS-key", cores=CORES,
                     length=LENGTH, detect_violations=True),
            SweepJob(name="505.mcf", policy="370-SLFSoS-key", cores=CORES,
                     length=LENGTH, config=strict,
                     detect_violations=True)]

    def run_both():
        results = run_jobs(jobs).results
        return results[0].stats, results[1].stats

    default, l1 = once(run_both)
    add_report("Ablation eviction squash level", format_table(
        ["rule", "evict squashes", "reexec %", "violations"],
        [["hierarchy (L2) evictions", default.total.squashes_evict,
          round(default.total.reexecuted_pct, 3),
          default.total.store_atomicity_violations],
         ["+ L1 castouts", l1.total.squashes_evict,
          round(l1.total.reexecuted_pct, 3),
          l1.total.store_atomicity_violations]],
        title="Ablation: eviction-squash level (505.mcf)"))
    assert l1.total.squashes_evict >= default.total.squashes_evict
    assert l1.total.store_atomicity_violations == 0
