"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper, but probing its design space:

* gate reopening policy: key match (SLFSoS-key) vs SB drain (SLFSoS) vs
  SC-like SLF blocking (SLFSpec), swept over SQ/SB sizes — the key's
  advantage should grow with a deeper store buffer;
* StoreSet predictor on/off — memory-dependence squashes without it;
* L1-eviction squashing (the stricter eviction rule) — extra
  re-executions, unchanged correctness.
"""

import dataclasses

import pytest
from conftest import add_report

from repro.analysis.report import format_table
from repro.sim.config import SKYLAKE_LIKE
from repro.sim.system import simulate
from repro.workloads import generate_warmup, generate_workload, get_profile

LENGTH = 2000
CORES = 4


def _traces(name, seed=0):
    profile = get_profile(name)
    return (generate_workload(profile, CORES, LENGTH, seed),
            generate_warmup(profile, CORES, LENGTH, seed))


def test_ablation_sb_size_sweep(once):
    """Gate-reopen policy vs SQ/SB depth (barnes, forwarding-heavy)."""
    traces, warm = _traces("barnes")

    def sweep():
        rows = []
        for sb_size in (16, 32, 56):
            config = dataclasses.replace(
                SKYLAKE_LIKE,
                core=dataclasses.replace(SKYLAKE_LIKE.core,
                                         sq_sb_entries=sb_size))
            base = simulate(traces, "x86", config, warm_caches=warm)
            row = [f"SQ/SB={sb_size}"]
            for policy in ("370-SLFSpec", "370-SLFSoS", "370-SLFSoS-key"):
                stats = simulate(traces, policy, config, warm_caches=warm)
                row.append(round(stats.execution_cycles
                                 / base.execution_cycles, 3))
            rows.append(row)
        return rows

    rows = once(sweep)
    add_report("Ablation SB size", format_table(
        ["config", "SLFSpec", "SLFSoS", "SLFSoS-key"], rows,
        title="Ablation: normalized time vs SQ/SB size (barnes)"))
    for row in rows:
        assert row[3] <= row[1] + 0.02  # key <= SC-like speculation


def test_ablation_storeset_off(once):
    """Without memory-dependence prediction (and without the warmed
    hints), colliding store->load pairs squash."""
    profile = get_profile("502.gcc_1")
    traces = generate_workload(profile, 1, 4000, 0)
    warm = generate_warmup(profile, 1, 4000, 0)
    stripped = [dataclasses.replace(t) if False else t for t in traces]

    def run_without_hints():
        saved = [list(t.memdep_hints) for t in traces]
        for t in traces:
            t.memdep_hints = []
        try:
            return simulate(traces, "370-SLFSoS-key", warm_caches=warm)
        finally:
            for t, hints in zip(traces, saved):
                t.memdep_hints = hints

    cold = once(run_without_hints)
    warm_run = simulate(traces, "370-SLFSoS-key", warm_caches=warm)
    add_report("Ablation StoreSet", format_table(
        ["configuration", "memdep squashes", "reexec %"],
        [["cold predictor", cold.total.squashes_memdep,
          round(cold.total.reexecuted_pct, 3)],
         ["warmed predictor", warm_run.total.squashes_memdep,
          round(warm_run.total.reexecuted_pct, 3)]],
        title="Ablation: StoreSet warm-up (502.gcc_1, 1 core)"))
    assert cold.total.squashes_memdep >= warm_run.total.squashes_memdep


def test_ablation_prefetcher(once):
    """The stride L1 prefetcher (Table III) mostly helps strided
    workloads; the policy ranking must be robust to it."""
    traces, warm = _traces("503.bwaves_1")  # strided loads

    def run_both():
        rows = []
        for enabled in (True, False):
            config = dataclasses.replace(
                SKYLAKE_LIKE,
                memory=dataclasses.replace(SKYLAKE_LIKE.memory,
                                           prefetcher=enabled))
            base = simulate(traces, "x86", config, warm_caches=warm)
            key = simulate(traces, "370-SLFSoS-key", config,
                           warm_caches=warm)
            rows.append(["on" if enabled else "off",
                         base.execution_cycles, key.execution_cycles,
                         round(key.execution_cycles
                               / base.execution_cycles, 3)])
        return rows

    rows = once(run_both)
    add_report("Ablation prefetcher", format_table(
        ["stride prefetcher", "x86 cycles", "key cycles", "key/x86"],
        rows, title="Ablation: stride prefetcher (503.bwaves)"))
    # The key overhead stays small with or without the prefetcher.
    for row in rows:
        assert row[3] < 1.15


def test_ablation_mispredict_penalty(once):
    """Redirect-penalty sweep: absolute time grows with the penalty,
    the key configuration's relative overhead stays put."""
    traces, warm = _traces("502.gcc_1")

    def sweep():
        rows = []
        for penalty in (5, 14, 30):
            config = dataclasses.replace(
                SKYLAKE_LIKE,
                core=dataclasses.replace(SKYLAKE_LIKE.core,
                                         mispredict_penalty=penalty))
            base = simulate(traces, "x86", config, warm_caches=warm)
            key = simulate(traces, "370-SLFSoS-key", config,
                           warm_caches=warm)
            rows.append([f"penalty={penalty}", base.execution_cycles,
                         round(key.execution_cycles
                               / base.execution_cycles, 3)])
        return rows

    rows = once(sweep)
    add_report("Ablation mispredict penalty", format_table(
        ["config", "x86 cycles", "key/x86"], rows,
        title="Ablation: mispredict penalty sweep (502.gcc_1)"))
    assert rows[-1][1] >= rows[0][1]  # bigger penalty, more cycles


def test_ablation_l1_evict_squash(once):
    """The stricter L1-castout squash rule: more re-execution, still no
    witnessed violations."""
    traces, warm = _traces("505.mcf")
    strict = dataclasses.replace(
        SKYLAKE_LIKE,
        core=dataclasses.replace(SKYLAKE_LIKE.core, l1_evict_squash=True))

    def run_both():
        default = simulate(traces, "370-SLFSoS-key", warm_caches=warm,
                           detect_violations=True)
        l1 = simulate(traces, "370-SLFSoS-key", strict, warm_caches=warm,
                      detect_violations=True)
        return default, l1

    default, l1 = once(run_both)
    add_report("Ablation eviction squash level", format_table(
        ["rule", "evict squashes", "reexec %", "violations"],
        [["hierarchy (L2) evictions", default.total.squashes_evict,
          round(default.total.reexecuted_pct, 3),
          default.total.store_atomicity_violations],
         ["+ L1 castouts", l1.total.squashes_evict,
          round(l1.total.reexecuted_pct, 3),
          l1.total.store_atomicity_violations]],
        title="Ablation: eviction-squash level (505.mcf)"))
    assert l1.total.squashes_evict >= default.total.squashes_evict
    assert l1.total.store_atomicity_violations == 0
