"""Figure 9: processor dispatch stalls by full structure (ROB/LQ/SQ-SB).

For every benchmark and all five configurations, reports the percentage
of cycles in which the core could not dispatch because the ROB, the LQ,
or the SQ/SB was full — the paper's Figure 9 series.
"""

import pytest
from conftest import add_report, get_sweep, suite_benchmarks

from repro.analysis.charts import stacked_bar_chart
from repro.analysis.report import figure9_table

_results = {"parallel": {}, "sequential": {}}


def _collect(suite, name):
    sweep = get_sweep(name)
    _results[suite][name] = sweep
    return sweep


@pytest.mark.parametrize("name", suite_benchmarks("parallel"))
def test_fig9_parallel(name, once):
    sweep = once(_collect, "parallel", name)
    for policy, result in sweep.items():
        for pct in result.stats.total.stall_pct.values():
            assert 0.0 <= pct <= 100.0, (name, policy)


@pytest.mark.parametrize("name", suite_benchmarks("sequential"))
def test_fig9_sequential(name, once):
    sweep = once(_collect, "sequential", name)
    for policy, result in sweep.items():
        for pct in result.stats.total.stall_pct.values():
            assert 0.0 <= pct <= 100.0, (name, policy)


def test_fig9_report(once):
    once(lambda: None)
    for suite, results in _results.items():
        if not results:
            continue
        add_report(f"Figure 9 {suite}", figure9_table(results, suite))
        # Stacked chart for the paper's proposed configuration.
        labels, rob, lq, sq = [], [], [], []
        for name, sweep in results.items():
            pct = sweep["370-SLFSoS-key"].stats.total.stall_pct
            labels.append(name)
            rob.append(pct["ROB"])
            lq.append(pct["LQ"])
            sq.append(pct["SQ/SB"])
        add_report(
            f"Figure 9 {suite} chart",
            stacked_bar_chart(labels, {"ROB": rob, "LQ": lq, "SQ/SB": sq},
                              title=f"Figure 9 ({suite}): dispatch-stall "
                                    "shares under 370-SLFSoS-key"))
