"""Service throughput benchmark: ``repro.serve`` over real HTTP.

Boots the asyncio HTTP API in-process (loopback, ephemeral port), then
measures three things a service operator cares about:

* **cold throughput** — a mixed batch of bench cells and litmus
  enumerations submitted over HTTP and executed by the sharded pool
  (jobs/sec end to end, including queueing and the HTTP round trips);
* **warm throughput** — the identical batch resubmitted, every job
  answered from the persistent result store (the acceptance target is
  a >= 5x wall-clock speedup);
* **latency distribution** — the service's own ``job_latency_ms`` /
  ``queue_wait_ms`` histograms, as a client would read them from
  ``GET /v1/metrics``.

Run standalone (CI smoke) to record ``BENCH_serve.json``:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py

or under pytest for the assertion-only version:

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py
"""

import asyncio
import json
import pathlib
import tempfile
import threading
import time

from repro.core.policies import POLICY_ORDER
from repro.serve.api import HttpApi, ServeService
from repro.serve.client import ServeClient

#: The measured batch: 4 profiles x 5 policies + 8 litmus enumerations.
BENCH_NAMES = ("radix", "fft", "barnes", "cholesky")
LITMUS_NAMES = ("mp", "sb", "lb", "iriw", "wrc", "rwc", "2+2w", "coRR")
CORES = 2
LENGTH = 800
SHARDS = 2
SHARD_WORKERS = 2

RESULT_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_serve.json"


def _requests():
    jobs = [{"kind": "bench", "name": name, "policy": policy,
             "cores": CORES, "length": LENGTH}
            for name in BENCH_NAMES for policy in POLICY_ORDER]
    jobs += [{"kind": "litmus", "name": name} for name in LITMUS_NAMES]
    return jobs


class _Server:
    """The benchmark's in-process server (HTTP on a daemon thread)."""

    def __init__(self, cache_dir):
        self.cache_dir = cache_dir
        self.service = None
        self.api = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.service = ServeService(shards=SHARDS,
                                    shard_workers=SHARD_WORKERS,
                                    cache_dir=self.cache_dir)
        self.api = HttpApi(self.service, port=0)
        self._loop = asyncio.get_running_loop()
        await self.api.start()
        self._ready.set()
        await self.api._shutdown.wait()
        await self.api.stop(drain_timeout=60)

    def __enter__(self):
        self._thread.start()
        self._ready.wait(timeout=15)
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self.api.request_shutdown)
        self._thread.join(timeout=60)

    def client(self):
        return ServeClient(f"http://127.0.0.1:{self.api.port}",
                           timeout=60)


def _timed_batch(client, requests):
    t0 = time.perf_counter()
    batch = client.submit_batch(requests)
    ids = [doc["id"] for doc in batch["jobs"]]
    docs = client.wait_all(ids, deadline=300)
    elapsed = time.perf_counter() - t0
    states = [docs[i]["state"] for i in ids]
    hits = sum(docs[i].get("cache_hit", False) for i in ids)
    return elapsed, states, hits


def measure():
    """Cold + warm batch over HTTP; returns the comparison dict."""
    requests = _requests()
    with tempfile.TemporaryDirectory() as cache_dir, \
            _Server(cache_dir) as server:
        client = server.client()
        cold_s, cold_states, cold_hits = _timed_batch(client, requests)
        warm_s, warm_states, warm_hits = _timed_batch(client, requests)
        metrics = client.metrics()
    latency = metrics["histograms"].get("job_latency_ms", {})
    queue_wait = metrics["histograms"].get("queue_wait_ms", {})
    return {
        "jobs": len(requests),
        "shards": SHARDS,
        "shard_workers": SHARD_WORKERS,
        "all_done": (cold_states.count("done") == len(requests)
                     and warm_states.count("done") == len(requests)),
        "cold_seconds": round(cold_s, 4),
        "cold_jobs_per_sec": round(len(requests) / cold_s, 2),
        "cold_cache_hits": cold_hits,
        "warm_seconds": round(warm_s, 4),
        "warm_jobs_per_sec": round(len(requests) / warm_s, 2),
        "warm_cache_hits": warm_hits,
        "warm_speedup": round(cold_s / warm_s, 2),
        "job_latency_ms": {k: latency.get(k)
                           for k in ("count", "mean", "p50", "p90",
                                     "p99", "max")},
        "queue_wait_ms": {k: queue_wait.get(k)
                          for k in ("count", "mean", "p50", "p90",
                                    "p99", "max")},
        "jobs_executed": metrics["counters"].get("jobs_executed"),
        "store_hit_rate": metrics["store"]["hit_rate"],
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------

def test_serve_warm_speedup():
    result = measure()
    assert result["all_done"], result
    assert result["warm_cache_hits"] == result["jobs"], result
    # Acceptance target is 5x; the cold batch simulates, the warm one
    # only reads the store.
    assert result["warm_speedup"] >= 5.0, result


# ----------------------------------------------------------------------
# CI smoke: record jobs/sec for trajectory tracking
# ----------------------------------------------------------------------

def main():
    result = measure()
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if not result["all_done"]:
        raise SystemExit("serve benchmark: not every job finished")
    if result["warm_speedup"] < 5.0:
        raise SystemExit(
            f"serve benchmark: warm speedup {result['warm_speedup']}x "
            f"is below the 5x acceptance target")
    print(f"serve: cold {result['cold_jobs_per_sec']} jobs/s, warm "
          f"{result['warm_jobs_per_sec']} jobs/s "
          f"({result['warm_speedup']}x) over {result['jobs']} jobs")


if __name__ == "__main__":
    main()
