"""Shared infrastructure for the reproduction benchmarks.

* ``get_sweep(name)`` runs one benchmark under all five configurations
  through the parallel, disk-cached sweep runner (``repro.sweep``), so
  Table IV / Figure 9 / Figure 10 benches share work — across processes
  within a run, and across runs via ``benchmarks/.sweep_cache/``.
* ``add_report(title, text)`` collects the regenerated tables; they are
  printed in the terminal summary and written to benchmarks/results/.
* ``REPRO_SUITE=sample`` (default) uses a representative subset of the
  61 benchmarks; ``REPRO_SUITE=full`` runs everything the paper ran.
  ``REPRO_SCALE`` scales instruction counts (1.0 default).
  ``REPRO_WORKERS`` sets the sweep pool size (default: CPU count).
"""

import os
import pathlib

import pytest

from repro.core.policies import POLICY_ORDER
from repro.sweep import SweepJob, run_sweep
from repro.workloads.profiles import PARALLEL_PROFILES, SEQUENTIAL_PROFILES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SWEEP_CACHE_DIR = pathlib.Path(__file__).parent / ".sweep_cache"

_SAMPLE_PARALLEL = ["barnes", "blackscholes", "dedup", "fft", "radix",
                    "raytrace", "water_spatial", "x264"]
_SAMPLE_SEQUENTIAL = ["500.perlbench_2", "502.gcc_1", "503.bwaves_1",
                      "505.mcf", "511.povray", "519.lbm", "527.cam4",
                      "557.xz_1"]

_REPORTS = []
_SWEEPS = {}


def suite_benchmarks(suite):
    """Benchmark names for one suite under the active REPRO_SUITE mode."""
    mode = os.environ.get("REPRO_SUITE", "sample")
    if mode == "full":
        return list(PARALLEL_PROFILES if suite == "parallel"
                    else SEQUENTIAL_PROFILES)
    return list(_SAMPLE_PARALLEL if suite == "parallel"
                else _SAMPLE_SEQUENTIAL)


def run_jobs(jobs):
    """Run sweep jobs through the shared benchmark result cache."""
    return run_sweep(jobs, cache_dir=SWEEP_CACHE_DIR)


def get_sweep(name):
    """All-policy results for one benchmark (cached per session in
    memory, across sessions on disk)."""
    if name not in _SWEEPS:
        jobs = [SweepJob(name=name, policy=policy)
                for policy in POLICY_ORDER]
        outcome = run_jobs(jobs)
        _SWEEPS[name] = dict(zip(POLICY_ORDER, outcome.results))
    return _SWEEPS[name]


def add_report(title, text):
    _REPORTS.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        terminalreporter.write_line(text)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are long and
    deterministic; pytest-benchmark's default repetition is wasteful)."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
