"""Shared infrastructure for the reproduction benchmarks.

* ``get_sweep(name)`` runs (and caches) one benchmark under all five
  configurations, so Table IV / Figure 9 / Figure 10 benches share work.
* ``add_report(title, text)`` collects the regenerated tables; they are
  printed in the terminal summary and written to benchmarks/results/.
* ``REPRO_SUITE=sample`` (default) uses a representative subset of the
  61 benchmarks; ``REPRO_SUITE=full`` runs everything the paper ran.
  ``REPRO_SCALE`` scales instruction counts (1.0 default).
"""

import os
import pathlib

import pytest

from repro.workloads.profiles import PARALLEL_PROFILES, SEQUENTIAL_PROFILES
from repro.workloads.runner import run_policy_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SAMPLE_PARALLEL = ["barnes", "blackscholes", "dedup", "fft", "radix",
                    "raytrace", "water_spatial", "x264"]
_SAMPLE_SEQUENTIAL = ["500.perlbench_2", "502.gcc_1", "503.bwaves_1",
                      "505.mcf", "511.povray", "519.lbm", "527.cam4",
                      "557.xz_1"]

_REPORTS = []
_SWEEPS = {}


def suite_benchmarks(suite):
    """Benchmark names for one suite under the active REPRO_SUITE mode."""
    mode = os.environ.get("REPRO_SUITE", "sample")
    if mode == "full":
        return list(PARALLEL_PROFILES if suite == "parallel"
                    else SEQUENTIAL_PROFILES)
    return list(_SAMPLE_PARALLEL if suite == "parallel"
                else _SAMPLE_SEQUENTIAL)


def get_sweep(name):
    """All-policy results for one benchmark (cached per session)."""
    if name not in _SWEEPS:
        _SWEEPS[name] = run_policy_sweep(name)
    return _SWEEPS[name]


def add_report(title, text):
    _REPORTS.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        terminalreporter.write_line(text)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are long and
    deterministic; pytest-benchmark's default repetition is wasteful)."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
