"""Figures 1-4 and Table I: litmus-test verdicts per memory model.

Regenerates the allowed/forbidden verdicts of the paper's Figures 1
(mp), 2 (n6), 3 (iriw), the Figure 4 observer enumeration, and the
Table I atomicity taxonomy, using exhaustive operational enumeration.
"""

from conftest import add_report

from repro.analysis.report import format_table
from repro.litmus.operational import (M370, SC, X86, allows,
                                      enumerate_outcomes)
from repro.litmus.program import Ld, St, make_program
from repro.litmus.tests import IRIW, MP, N6, PAPER_CASES


def _verdict_table():
    rows = []
    for case in PAPER_CASES:
        row = [case.program.name]
        for model in (SC, M370, X86):
            seen = allows(case.program, model, **case.witness_dict())
            expected = case.expected_dict()[model]
            assert seen == expected, (case.program.name, model)
            row.append("allowed" if seen else "forbidden")
        rows.append(row)
    return format_table(
        ["litmus", "SC", "370", "x86"], rows,
        title="Figures 1-3 & 5: witness verdict per memory model")


def test_fig1_mp(once):
    assert not once(allows, MP, X86, r0_rx=1, r0_ry=0)


def test_fig2_n6(once):
    assert once(allows, N6, X86, r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
    assert not allows(N6, M370, r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)


def test_fig3_iriw(once):
    assert not once(allows, IRIW, X86,
                    r0_rx=1, r0_ry=0, r1_ry=1, r1_rx=0)


def test_fig4_observer_outcomes(once):
    """Figure 4: a core observing two independent stores can see all
    four old/new combinations; only (new, old) certifies an order."""
    program = make_program("fig4", [
        [Ld("y", "ry"), Ld("x", "rx")],      # Core2 of the figure
        [St("x", 1)],
        [St("y", 1)],
    ])
    outcomes = once(enumerate_outcomes, program, M370)
    observed = {(o.reg(0, "ry"), o.reg(0, "rx")) for o in outcomes}
    assert observed == {(0, 0), (0, 1), (1, 0), (1, 1)}
    rows = [[f"ld y={y}, ld x={x}",
             "st y before st x" if (y, x) == (1, 0) else "unknown"]
            for (y, x) in sorted(observed)]
    add_report("Figure 4 observer outcomes", format_table(
        ["observed values", "derivable store order"], rows,
        title="Figure 4: all four outcomes occur; only {1,0} orders "
              "the stores"))


def test_table1_taxonomy(once):
    """Table I: 370 is store-atomic (MCA), x86 is write-atomic (rMCA) —
    distinguished precisely by the read-own-write-early behaviour of n6."""
    own_early = dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
    rows = [
        ["370", "no (store-atomic / MCA)",
         "forbidden" if not allows(N6, M370, **own_early) else "ALLOWED?"],
        ["x86", "yes (write-atomic / rMCA)",
         "allowed" if once(allows, N6, X86, **own_early) else "FORBIDDEN?"],
    ]
    add_report("Table I atomicity taxonomy", format_table(
        ["model", "read own write early", "n6 witness"], rows,
        title="Table I: atomicity of store operations"))
    add_report("Litmus verdicts", _verdict_table())
