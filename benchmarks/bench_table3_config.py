"""Table III: the simulated system configuration.

Regenerates the configuration table from the live default config (so
the report always reflects what the benchmarks actually ran), and
benches system construction + warm-up as the 'setup cost' unit.
"""

from conftest import add_report

from repro.analysis.report import format_table
from repro.sim.config import SKYLAKE_LIKE
from repro.sim.system import System
from repro.workloads import generate_workload, get_profile


def test_table3_configuration(once):
    cfg = SKYLAKE_LIKE

    def build():
        traces = generate_workload(get_profile("barnes"), cores=8,
                                   length_per_core=500)
        return System(traces, "370-SLFSoS-key", cfg)

    system = once(build)
    assert len(system.cores) == 8

    rows = [
        ["Issue / Retire width",
         f"{cfg.core.issue_width} instructions"],
        ["Reorder buffer", f"{cfg.core.rob_entries} entries"],
        ["Load queue", f"{cfg.core.lq_entries} entries"],
        ["Store queue + store buffer", f"{cfg.core.sq_sb_entries} entries"],
        ["Memory dep. predictor",
         f"StoreSet ({cfg.core.storeset_size} SSIT / "
         f"{cfg.core.storeset_lfst} LFST)"],
        ["Private L1 I&D caches",
         f"{cfg.memory.l1.size_bytes // 1024}KB, {cfg.memory.l1.ways} "
         f"ways, {cfg.memory.l1.hit_latency} hit cycles, stride prefetcher"],
        ["Private L2 cache",
         f"{cfg.memory.l2.size_bytes // 1024}KB, {cfg.memory.l2.ways} "
         f"ways, {cfg.memory.l2.hit_latency} hit cycles"],
        ["Shared L3 cache",
         f"{cfg.memory.l3_banks} banks x "
         f"{cfg.memory.l3_bank.size_bytes // 1024 // 1024}MB, "
         f"{cfg.memory.l3_bank.ways} ways, "
         f"{cfg.memory.l3_bank.hit_latency} hit cycles"],
        ["Memory access time", f"{cfg.memory.memory_latency} cycles"],
        ["Topology", "fully connected"],
        ["Data / Control msg size",
         f"{cfg.network.data_flits} / {cfg.network.control_flits} flits"],
        ["Switch-to-switch time", f"{cfg.network.switch_latency} cycles"],
        ["Cores", f"{cfg.cores} Skylake-like out-of-order"],
    ]
    add_report("Table III system configuration", format_table(
        ["parameter", "value"], rows,
        title="Table III: simulated system configuration"))
