"""Section VI's energy claim: the proposal adds no extra snoops.

"We do not significantly alter dynamic energy consumption in the
structures involved in our techniques (SQ/SB, LQ, ROB) as we do not
require extra snoops in our mechanism" — the key's copy rides on the
snoop every load already performs on the SQ/SB, and the retire gate is
one register.

Proxy check: interconnect message counts under 370-SLFSoS-key stay
within a few percent of x86's for the same traces (the residual
difference comes only from re-execution, not from the mechanism)."""

import pytest
from conftest import add_report, get_sweep, suite_benchmarks

from repro.analysis.report import format_table

_rows = []


def _measure(name):
    sweep = get_sweep(name)
    x86 = sweep["x86"].stats
    key = sweep["370-SLFSoS-key"].stats
    ratio = key.network_total / max(1, x86.network_total)
    _rows.append([name, x86.network_total, key.network_total,
                  round(ratio, 3)])
    return ratio


@pytest.mark.parametrize("name", suite_benchmarks("parallel")[:4]
                         + suite_benchmarks("sequential")[:4])
def test_traffic_parity(name, once):
    ratio = once(_measure, name)
    # The mechanism itself generates no messages; only squash-driven
    # refetches move the needle.
    assert 0.8 <= ratio <= 1.3, name


def test_traffic_report(once):
    once(lambda: None)
    if _rows:
        add_report("Energy traffic parity", format_table(
            ["benchmark", "x86 msgs", "key msgs", "ratio"], _rows,
            title="Section VI energy proxy: interconnect messages, "
                  "370-SLFSoS-key vs x86"))
