"""Table II: all possible outcomes for the Figure 5 code.

Exhaustively enumerates the fig5 litmus test (two cores, each forwarding
its own store, loads in opposite orders) under the store-atomic 370
model and under x86, reproducing the paper's Table II: exactly three
outcomes under 370, plus the case-1 'disagreement' outcome under x86.
"""

from conftest import add_report

from repro.analysis.report import format_table
from repro.litmus.operational import M370, X86, enumerate_outcomes
from repro.litmus.tests import FIG5

_CASE_COMMENTS = {
    (1, 0, 0, 1): "Disagreement in order (case 1 - x86 only)",
    (1, 0, 1, 1): "Core2 cannot see order (case 2)",
    (1, 1, 1, 0): "Core1 cannot see order (case 3)",
    (1, 1, 1, 1): "None can see any order (case 4)",
}


def _signature(outcome):
    return (outcome.reg(0, "rx"), outcome.reg(0, "ry"),
            outcome.reg(1, "rx"), outcome.reg(1, "ry"))


def test_table2_370_outcomes(once):
    outcomes = once(enumerate_outcomes, FIG5, M370)
    assert len(outcomes) == 3
    signatures = {_signature(o) for o in outcomes}
    assert (1, 0, 0, 1) not in signatures  # the disagreement is forbidden


def test_table2_x86_adds_disagreement(once):
    x86 = once(enumerate_outcomes, FIG5, X86)
    m370 = enumerate_outcomes(FIG5, M370)
    extra = {_signature(o) for o in (x86 - m370)}
    assert extra == {(1, 0, 0, 1)}

    rows = []
    for sig in sorted({_signature(o) for o in x86}, reverse=True):
        rx1, ry1, rx2, ry2 = sig
        comment = _CASE_COMMENTS.get(
            (rx1, ry1, rx2, ry2), "(not in Table II)")
        in_370 = "yes" if sig not in extra else "NO (x86 only)"
        rows.append([f"{rx1},{ry1} ({'new' if rx1 else 'old'},"
                     f"{'new' if ry1 else 'old'})",
                     f"{rx2},{ry2}", in_370, comment])
    add_report("Table II fig5 outcomes", format_table(
        ["Core1 [x],[y]", "Core2 [x],[y]", "store-atomic?", "comment"],
        rows, title="Table II: all outcomes for the Figure 5 code"))
