"""Cross-policy Spectre leakage comparison (the leakage instrument's
acceptance bench).

Runs every gadget in :data:`repro.leakage.GADGETS` under all five
policies with taint tracking attached and records per-policy leakage:
confirmed transient leaks, leaked-line counts, exposure, and the merged
leak/spec/SLF window histograms.  Three contracts are asserted before
anything is reported:

* **tracking off is free**: a run without the leakage bus produces
  byte-identical ``SystemStats`` to one with it (minus the ``leakage``
  key) — attaching the instrument must not perturb timing;
* **the paper's ordering**: 370-SLFSoS-key leaks strictly fewer lines
  than x86 across the battery (the SLF gadget's window only exists on
  x86), while the bounds-check-bypass gadget leaks under *every* policy
  (store atomicity does not close pure load-load speculation);
* **serve agreement**: executing the same battery as ``leak`` jobs
  through the service worker path (:func:`repro.serve.jobs
  .execute_request`) yields the identical per-policy reports.

Results land in ``BENCH_leakage.json``.  Run standalone (CI smoke):

    PYTHONPATH=src python benchmarks/bench_leakage.py

or under pytest for the assertion-only version:

    PYTHONPATH=src python -m pytest benchmarks/bench_leakage.py
"""

import json
import pathlib

from repro.core.policies import POLICY_ORDER
from repro.leakage import GADGET_CONFIG, GADGETS, leak_run
from repro.obs.samplers import LogHistogram
from repro.serve.jobs import LeakSpec, execute_request
from repro.sim.system import System

RESULT_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_leakage.json"

_HIST_NAMES = ("leak_window", "spec_window", "slf_window")


def _bare_run(gadget, policy):
    system = System(list(gadget.traces), policy, GADGET_CONFIG,
                    warm_caches=list(gadget.warm),
                    initial_memory=dict(gadget.initial_memory))
    return system.run(5_000_000)


def measure():
    """The full battery: gadgets × policies, with the identity checks."""
    per_gadget = {}
    per_policy = {policy: {"leaks": 0, "leaked_lines": 0, "exposed": 0,
                           "speculative_performs": 0, "tainted_fills": 0}
                  for policy in POLICY_ORDER}
    merged = {policy: {name: LogHistogram() for name in _HIST_NAMES}
              for policy in POLICY_ORDER}
    tracking_off_identical = True

    for name, gadget in GADGETS.items():
        rows = {}
        for policy in POLICY_ORDER:
            stats, report, _system = leak_run(gadget, policy)
            baseline = _bare_run(gadget, policy).to_json()
            observed = stats.to_dict()
            observed.pop("leakage")
            if json.dumps(observed, sort_keys=True) != baseline \
                    or baseline != _bare_run(gadget, policy).to_json():
                tracking_off_identical = False
            rows[policy] = stats.leakage
            agg = per_policy[policy]
            agg["leaks"] += len(report.confirmed)
            agg["leaked_lines"] += len(report.leaked_lines)
            agg["exposed"] += len(report.exposed)
            agg["speculative_performs"] += report.speculative_performs
            agg["tainted_fills"] += report.tainted_fills
            for hist_name in _HIST_NAMES:
                merged[policy][hist_name].merge(
                    report.histograms[hist_name])
        per_gadget[name] = rows

    for policy in POLICY_ORDER:
        per_policy[policy]["histograms"] = {
            name: hist.to_dict() for name, hist in merged[policy].items()}

    return {
        "gadgets": per_gadget,
        "policies": per_policy,
        "tracking_off_identical": tracking_off_identical,
        "leaked_lines_by_policy": {
            policy: per_policy[policy]["leaked_lines"]
            for policy in POLICY_ORDER},
        "sos_key_lt_x86": (per_policy["370-SLFSoS-key"]["leaked_lines"]
                           < per_policy["x86"]["leaked_lines"]),
        "all_policies_leak": all(per_policy[p]["leaks"] >= 1
                                 for p in POLICY_ORDER),
    }


def measure_serve(report):
    """The same battery through the service's worker entry point; the
    per-policy reports must agree with the direct runs exactly."""
    identical = True
    for name in GADGETS:
        payload = execute_request(LeakSpec(name, tuple(POLICY_ORDER)),
                                  timeout=300)
        if payload["policies"] != report["gadgets"][name]:
            identical = False
    return {"jobs": len(GADGETS), "identical_reports": identical}


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_leakage_battery():
    report = measure()
    assert report["tracking_off_identical"], \
        "leakage tracking perturbed simulation stats"
    assert report["sos_key_lt_x86"], report["leaked_lines_by_policy"]
    assert report["all_policies_leak"], report["leaked_lines_by_policy"]
    for policy in POLICY_ORDER:
        hists = report["policies"][policy]["histograms"]
        assert hists["spec_window"]["count"] >= 1, policy


def test_leakage_serve_agreement():
    report = measure()
    serve = measure_serve(report)
    assert serve["identical_reports"], \
        "serve leak jobs disagree with direct leak_run"


# ----------------------------------------------------------------------
# CI smoke: record the battery into BENCH_leakage.json
# ----------------------------------------------------------------------

def main():
    report = measure()
    report["serve"] = measure_serve(report)
    RESULT_FILE.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    print(json.dumps(report["leaked_lines_by_policy"], indent=2))
    if not report["tracking_off_identical"]:
        raise SystemExit("leakage tracking perturbed simulation stats")
    if not report["sos_key_lt_x86"]:
        raise SystemExit("370-SLFSoS-key did not leak strictly fewer "
                         "lines than x86")
    if not report["all_policies_leak"]:
        raise SystemExit("a policy showed zero leaks — the bcb gadget "
                         "should leak everywhere")
    if not report["serve"]["identical_reports"]:
        raise SystemExit("serve leak jobs disagree with direct runs")
    print(f"wrote {RESULT_FILE.name}: "
          f"x86 leaks {report['leaked_lines_by_policy']['x86']} line(s), "
          f"370-SLFSoS-key "
          f"{report['leaked_lines_by_policy']['370-SLFSoS-key']}; "
          f"serve agreement over {report['serve']['jobs']} job(s)")


if __name__ == "__main__":
    main()
