"""Fleet benchmark: multi-node throughput scaling and failover cost.

Drives the same mixed batch through three coordinator topologies, all
with real ``repro fleet worker`` subprocesses (private caches, so
replication — not a shared filesystem — carries results):

* **1 worker** — the single-node baseline;
* **3 workers** — cold throughput scaling across the ring;
* **3 workers, one SIGKILLed mid-batch** — the requeue-recovery path;
  the overhead over the undisturbed 3-worker run is the price of the
  failover.

Every run must produce byte-identical results (``identical_results``),
matching the fleet's core invariant: faults and topology move *where*
a job runs, never *what it returns*.

Run standalone (CI smoke) to merge a ``fleet`` section into
``BENCH_serve.json`` (run ``bench_serve_throughput.py`` first — it
rewrites the file wholesale):

    PYTHONPATH=src python benchmarks/bench_fleet.py

or under pytest for the assertion-only version:

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py
"""

import asyncio
import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.fleet import CoordinatorApi, FleetService
from repro.resilience.fleet import _repro_env, _spawn_worker, kill_worker
from repro.serve.jobs import DONE

BENCH_NAMES = ("radix", "fft", "barnes", "cholesky")
LITMUS_NAMES = ("mp", "sb", "lb", "iriw", "wrc", "rwc", "2+2w", "coRR")
CORES = 2
LENGTH = 6000
SEEDS = range(2)

RESULT_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_serve.json"


def _requests():
    jobs = [{"kind": "bench", "name": name, "policy": "x86",
             "cores": CORES, "length": LENGTH, "seed": seed}
            for name in BENCH_NAMES for seed in SEEDS]
    jobs += [{"kind": "bench", "name": name, "policy": "370-SLFSoS-key",
              "cores": CORES, "length": LENGTH, "seed": seed}
             for name in BENCH_NAMES for seed in SEEDS]
    jobs += [{"kind": "litmus", "name": name} for name in LITMUS_NAMES]
    return jobs


async def _fleet_batch(requests, workers, kill_after_s=None):
    """One batch through a fresh fleet; returns timing + results."""
    service = FleetService(heartbeat_timeout=1.5)
    api = CoordinatorApi(service, host="127.0.0.1", port=0)
    await api.start()
    url = f"http://127.0.0.1:{api.port}"
    env = _repro_env()
    tmp = tempfile.mkdtemp(prefix="bench-fleet-")
    procs = []
    try:
        for i in range(workers):
            proc, _port = await _spawn_worker(
                url, f"bench-w{i}", os.path.join(tmp, f"w{i}"),
                0.25, env)
            procs.append(proc)
        t_end = time.monotonic() + 30.0
        while len(service.ring) < workers and time.monotonic() < t_end:
            await asyncio.sleep(0.05)
        if len(service.ring) < workers:
            raise RuntimeError(
                f"only {len(service.ring)}/{workers} workers registered")

        async def killer():
            await asyncio.sleep(kill_after_s)
            live = [p for p in procs if p.returncode is None]
            if live:
                kill_worker(live[len(live) // 2])

        kill_task = None
        if kill_after_s is not None:
            kill_task = asyncio.get_running_loop().create_task(killer())

        t0 = time.perf_counter()
        records = [await service.submit_one(request)
                   for request in requests]
        for job in records:
            await service.wait_for(job, 300.0)
        elapsed = time.perf_counter() - t0
        if kill_task is not None:
            kill_task.cancel()

        done = sum(job.state == DONE for job in records)
        return {
            "elapsed_s": round(elapsed, 4),
            "jobs_per_sec": round(len(records) / elapsed, 2),
            "done": done,
            "requeues": service.metrics.counter("fleet_requeues"),
            "replication_puts": service.metrics.counter(
                "replication_puts"),
            "results": {job.key: job.result for job in records
                        if job.state == DONE},
        }
    finally:
        for proc in procs:
            if proc.returncode is None:
                kill_worker(proc)
        await asyncio.gather(*(p.wait() for p in procs),
                             return_exceptions=True)
        await api.stop(drain_timeout=5.0)
        shutil.rmtree(tmp, ignore_errors=True)


def _canon(results):
    return json.dumps(results, sort_keys=True)


def measure():
    """Three topologies over the same batch; returns the fleet dict."""
    requests = _requests()
    single = asyncio.run(_fleet_batch(requests, workers=1))
    triple = asyncio.run(_fleet_batch(requests, workers=3))
    # Kill roughly mid-batch, once dispatch is surely in flight.
    kill_at = max(triple["elapsed_s"] * 0.4, 0.5)
    killed = asyncio.run(_fleet_batch(requests, workers=3,
                                      kill_after_s=kill_at))
    jobs = len(requests)
    identical = (_canon(single["results"]) == _canon(triple["results"])
                 == _canon(killed["results"]))
    return {
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,   # scaling is meaningless on 1
        "all_done": (single["done"] == triple["done"]
                     == killed["done"] == jobs),
        "identical_results": identical,
        "single_node": {k: single[k] for k in
                        ("elapsed_s", "jobs_per_sec",
                         "replication_puts")},
        "three_node": {k: triple[k] for k in
                       ("elapsed_s", "jobs_per_sec",
                        "replication_puts")},
        "cold_scaling": round(triple["jobs_per_sec"]
                              / single["jobs_per_sec"], 2),
        "killed_worker": {
            "kill_after_s": round(kill_at, 2),
            "elapsed_s": killed["elapsed_s"],
            "jobs_per_sec": killed["jobs_per_sec"],
            "requeues": killed["requeues"],
            "recovery_overhead_s": round(
                killed["elapsed_s"] - triple["elapsed_s"], 4),
        },
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------

def test_fleet_scaling_and_failover():
    result = measure()
    assert result["all_done"], result
    assert result["identical_results"], result
    assert result["killed_worker"]["requeues"] >= 1, result
    # Scaling is a hardware property: three workers can only outrun
    # one when there are cores for them to spread across.
    if (os.cpu_count() or 1) >= 4:
        assert result["cold_scaling"] > 1.2, result


# ----------------------------------------------------------------------
# CI smoke: merge the fleet section into BENCH_serve.json
# ----------------------------------------------------------------------

def main():
    result = measure()
    merged = {}
    if RESULT_FILE.exists():
        try:
            merged = json.loads(RESULT_FILE.read_text())
        except ValueError:
            merged = {}
    merged["fleet"] = result
    RESULT_FILE.write_text(json.dumps(merged, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if not result["all_done"]:
        raise SystemExit("fleet benchmark: not every job finished")
    if not result["identical_results"]:
        raise SystemExit("fleet benchmark: topologies disagreed on "
                         "results — the core invariant is broken")
    print(f"fleet: 1-node {result['single_node']['jobs_per_sec']} "
          f"jobs/s, 3-node {result['three_node']['jobs_per_sec']} "
          f"jobs/s ({result['cold_scaling']}x), kill-recovery "
          f"overhead {result['killed_worker']['recovery_overhead_s']}s "
          f"with {result['killed_worker']['requeues']} requeue(s)")


if __name__ == "__main__":
    main()
