"""Figure 10: execution time of the four 370 configurations vs x86.

The paper's headline figure: per-benchmark execution time normalized to
x86, with suite geomeans.  The shape to reproduce: blanket enforcement
(370-NoSpec) is expensive (paper: 1.27x parallel / 1.23x sequential);
SC-like speculation recovers most of it; the paper's SLFSoS-key comes
closest to x86 (1.025x / 1.027x).
"""

import pytest
from conftest import add_report, get_sweep, suite_benchmarks

from repro.analysis.charts import bar_chart
from repro.analysis.report import figure10_table, summarize_suite
from repro.core.policies import POLICY_ORDER
from repro.workloads.runner import normalized_times

_results = {"parallel": {}, "sequential": {}}


def _collect(suite, name):
    sweep = get_sweep(name)
    _results[suite][name] = sweep
    return sweep


@pytest.mark.parametrize("name", suite_benchmarks("parallel"))
def test_fig10_parallel(name, once):
    sweep = once(_collect, "parallel", name)
    norm = normalized_times(sweep)
    # Shape: every speculative variant beats blanket enforcement
    # whenever blanket enforcement actually hurts.
    if norm["370-NoSpec"] > 1.10:
        for policy in ("370-SLFSpec", "370-SLFSoS", "370-SLFSoS-key"):
            assert norm[policy] < norm["370-NoSpec"], (name, policy)


@pytest.mark.parametrize("name", suite_benchmarks("sequential"))
def test_fig10_sequential(name, once):
    sweep = once(_collect, "sequential", name)
    norm = normalized_times(sweep)
    if norm["370-NoSpec"] > 1.10:
        for policy in ("370-SLFSpec", "370-SLFSoS", "370-SLFSoS-key"):
            assert norm[policy] < norm["370-NoSpec"], (name, policy)


def test_fig10_report_and_geomeans(once):
    once(lambda: None)
    for suite, results in _results.items():
        if not results:
            continue
        add_report(f"Figure 10 {suite}", figure10_table(results, suite))
        summary = summarize_suite(results, suite)
        add_report(
            f"Figure 10 {suite} chart",
            bar_chart([p for p in POLICY_ORDER[1:]],
                      [summary[p] for p in POLICY_ORDER[1:]],
                      title=f"Figure 10 ({suite}): geomean normalized "
                            "time (| marks x86 = 1.0)",
                      unit="x", baseline=1.0))
        # The headline shape (who wins, roughly by what factor).
        assert summary["370-NoSpec"] > 1.10, suite
        assert summary["370-SLFSoS-key"] < 1.06, suite
        assert summary["370-SLFSoS-key"] <= summary["370-NoSpec"], suite
