"""Pipeline-vs-model conformance sweep (end-to-end mechanism check).

Runs the paper's litmus tests *on the cycle-level pipeline* under all
five configurations with randomized timing, and reports (a) that every
observed architectural outcome is legal under the configuration's
abstract memory model, and (b) witness reachability: the x86 pipeline
exhibits the n6 / fig5 store-atomicity violations, the 370 pipelines
never do — the paper's claim, demonstrated on the implementation.
"""

import pytest
from conftest import add_report

from repro.analysis.report import format_table
from repro.core.policies import POLICY_ORDER
from repro.litmus.operational import _matches
from repro.litmus.pipeline_runner import check_conformance
from repro.litmus.tests import FIG5, MP, N6, SB

_WITNESSES = {
    "n6": (N6, dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)),
    "fig5-sb-fwd": (FIG5, dict(r0_rx=1, r0_ry=0, r1_ry=1, r1_rx=0)),
}

_rows = []


def _probe(name, policy, seeds):
    program, witness = _WITNESSES[name]
    conforms, observed, allowed = check_conformance(
        program, policy, seeds=range(seeds))
    assert conforms, (name, policy)
    witnessed = any(_matches(o, witness) for o in observed)
    return witnessed, len(observed), len(allowed)


@pytest.mark.parametrize("name", list(_WITNESSES))
def test_conformance_and_witness_reachability(name, once):
    def sweep():
        results = {}
        for policy in POLICY_ORDER:
            seeds = 300 if policy == "x86" else 120
            results[policy] = _probe(name, policy, seeds)
        return results

    results = once(sweep)
    # x86 must reach the violation; every 370 config must not.
    assert results["x86"][0] is True, "x86 pipeline never hit the window"
    for policy in POLICY_ORDER[1:]:
        assert results[policy][0] is False, policy
    for policy, (witnessed, n_obs, n_allowed) in results.items():
        _rows.append([name, policy,
                      "WITNESSED" if witnessed else "never",
                      f"{n_obs}/{n_allowed}"])


def test_basic_tests_conform(once):
    def sweep():
        for program in (SB, MP):
            for policy in POLICY_ORDER:
                ok, obs, allowed = check_conformance(program, policy,
                                                     seeds=range(30))
                assert ok, (program.name, policy,
                            sorted(map(str, obs - allowed)))
        return True

    assert once(sweep)


def test_conformance_report(once):
    once(lambda: None)
    if _rows:
        add_report("Pipeline conformance", format_table(
            ["litmus", "pipeline config", "violation witness",
             "outcomes obs/allowed"], _rows,
            title="Litmus on the pipeline: store-atomicity violation "
                  "reachability per configuration"))
