"""Kernel microbenchmark: optimized event kernel vs the pre-PR seed.

Measures events/sec of the discrete-event kernel fast path (bucketed
engine + hot-loop pipeline optimizations) against a faithful
reconstruction of the seed implementation: the original heap-only
``Engine`` with per-event ``until()`` polling, the generator-based
``StoreBuffer`` iteration, the unconditional drain-ahead RFO scan, the
full-LQ memory-dependence scan, and the unbound dispatch loop.

The two kernels must produce *cycle-for-cycle identical* ``SystemStats``
— the optimization contract — which this bench asserts before it
reports any number.

Run standalone (CI smoke) to record events/sec into ``BENCH_kernel.json``:

    PYTHONPATH=src python benchmarks/bench_kernel_speed.py

or under pytest for the assertion-only version:

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_speed.py
"""

import contextlib
import dataclasses
import heapq
import json
import os
import pathlib
import time

from repro.coherence import cache as cache_mod
from repro.cpu import isa
from repro.cpu import pipeline as pipeline_mod
from repro.cpu import store_buffer as sb_mod
from repro.cpu.isa import LOAD, STORE
from repro.cpu.load_queue import ISSUED, PERFORMED
from repro.sim.system import System
from repro.sweep import SweepJob, run_sweep
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_warmup, generate_workload

#: The seed Fig. 10 workload used for the measurement.
BENCHMARK = "barnes"
POLICY = "370-SLFSoS-key"
CORES = 8
LENGTH = 3000
ROUNDS = 3

RESULT_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_kernel.json"


# ----------------------------------------------------------------------
# Seed (pre-PR) kernel, reconstructed verbatim
# ----------------------------------------------------------------------

class LegacyEngine:
    """The seed discrete-event engine: one heap, ``until()`` polled per
    event, ``step()`` called per dispatch."""

    supports_stop = False

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def at(self, time_, fn, *args):
        self.schedule(time_ - self.now, fn, *args)

    @property
    def pending(self):
        return len(self._queue)

    def step(self):
        if not self._queue:
            return False
        time_, _, fn, args = heapq.heappop(self._queue)
        if time_ < self.now:
            raise RuntimeError("event scheduled in the past")
        self.now = time_
        fn(*args)
        return True

    def run(self, until=None, max_cycles=None):
        deadline = None if max_cycles is None else self.now + max_cycles
        while self._queue:
            if until is not None and until():
                break
            if deadline is not None and self._queue[0][0] > deadline:
                self.now = deadline
                break
            self.step()
        return self.now


def _legacy_sb_iter(self):
    idx = self._head
    for _ in range(self._count):
        entry = self._slots[idx]
        assert entry is not None
        yield entry
        idx = (idx + 1) % self.capacity


def _legacy_unresolved_older(self, load_seq):
    return [e for e in self if e.seq < load_seq and not e.resolved]


def _legacy_drain_sb(self):
    scanned = 0
    for entry in self.sb:
        if scanned >= self.RFO_AHEAD:
            break
        if entry.resolved and not entry.rfo_sent:
            entry.rfo_sent = self.controller.prefetch_exclusive(entry.addr)
        scanned += 1

    candidate = None
    for entry in self.sb:
        if not entry.retired:
            break
        if not entry.issued:
            candidate = entry
            break
    if candidate is None:
        return False
    owned = self.controller.peek_state(candidate.addr) in ("M", "E")
    if self._sb_inflight > 0 and (not owned or self._sb_miss_inflight):
        return False
    candidate.issued = True
    self._sb_inflight += 1
    hit = self.controller.store(
        candidate.addr, lambda: self._store_written(candidate))
    if not hit:
        self._sb_miss_inflight = True
    return True


def _legacy_check_memdep_violation(self, entry, store):
    violators = [
        l for l in self.lq
        if l.seq > entry.seq and l.addr == store.addr
        and l.state in (ISSUED, PERFORMED)
        and (l.store_seq is None or l.store_seq < entry.seq)]
    if not violators:
        return
    oldest = min(violators, key=lambda l: l.seq)
    self.storeset.train_violation(oldest.pc, entry.op.pc)
    self._squash(oldest.seq, "memdep")


def _legacy_dispatch(self):
    dispatched = 0
    stall = 0
    while dispatched < self.config.issue_width:
        if self.fetch_idx >= len(self.trace):
            break
        if self.barrier_seq is not None:
            break
        op = self.trace[self.fetch_idx]
        if self.rob.full:
            stall = 1
            break
        if op.kind == LOAD and self.lq.full:
            stall = 2
            break
        if op.kind == STORE and self.sb.full:
            stall = 3
            break
        self._dispatch_one(op)
        dispatched += 1
    return dispatched > 0, stall


def _legacy_tick(self):
    self._tick_scheduled = False
    if self.finished:
        return
    work = False
    work |= self._retire()
    work |= self._drain_sb()
    work |= self._issue()
    dispatched, stall = self._dispatch()
    work |= dispatched
    if stall != 0:
        self._account_stall(stall, 1)

    if (self.fetch_idx >= len(self.trace) and self.rob.empty
            and self.sb.empty):
        self._finish()
        return
    if work:
        self._schedule_tick(1)
    else:
        self._sleeping = True
        self._sleep_since = self.engine.now + 1
        self._sleep_stall = stall


def _legacy_retire(self):
    retired = 0
    while retired < self.config.retire_width:
        head = self.rob.head()
        if head is None or not head.completed:
            if (head is not None and head.op.kind == isa.RMW
                    and not head.issued and head.deps_left == 0
                    and self.sb.empty):
                head.issued = True
                if self.tracer is not None:
                    self.tracer.on_issue(head.seq, self.engine.now)
                self._start_rmw(head)
            break
        op = head.op
        if op.kind == isa.LOAD:
            if not self._try_retire_load(head):
                break
        elif op.kind in (isa.FENCE, isa.RMW):
            if self.sb.has_unwritten_older(head.seq):
                break
            self.rob.retire_head()
            self._release_fence(head.seq)
        elif op.kind == isa.STORE:
            self.rob.retire_head()
            entry = self.store_of.pop(head.seq)
            entry.retired = True
            self.stats.retired_stores += 1
        else:
            self.rob.retire_head()
        if self.tracer is not None and op.kind != isa.LOAD:
            self.tracer.on_retire(head.seq, self.engine.now)
        self.stats.retired_instructions += 1
        retired += 1
    return retired > 0


def _legacy_issue(self):
    issued = 0
    while issued < self.config.issue_width and self.ready:
        seq, epoch, entry = heapq.heappop(self.ready)
        if entry.issue_epoch != epoch or entry.issued:
            continue
        entry.issued = True
        if self.tracer is not None:
            self.tracer.on_issue(entry.seq, self.engine.now)
        op = entry.op
        if op.kind == isa.LOAD:
            self._issue_load(entry)
        elif op.kind == isa.STORE:
            self.engine.schedule(
                1, self._complete_store, entry, entry.issue_epoch)
        elif op.kind == isa.FENCE:
            self.engine.schedule(
                1, self._complete, entry, entry.issue_epoch)
        else:
            self.engine.schedule(
                max(1, op.latency), self._complete, entry,
                entry.issue_epoch)
        issued += 1
    return issued > 0


def _legacy_dispatch_one(self, op):
    seq = self.fetch_idx
    self.fetch_idx += 1
    entry = self.rob.allocate(seq, op)
    if self.tracer is not None:
        self.tracer.on_dispatch(seq, op.kind, self.engine.now)
    if op.kind == isa.LOAD:
        lentry = self.lq.allocate(seq, op.pc)
        lentry.memdep_wait = self.storeset.predicted_store(op.pc)
        self.load_of[seq] = lentry
    elif op.kind == isa.STORE:
        store = self.sb.allocate(seq, op.pc, op.value)
        self.store_of[seq] = store
        self.storeset.store_dispatched(op.pc, seq)
    elif op.kind in (isa.FENCE, isa.RMW):
        self.pending_fences.append(seq)
    elif op.kind == isa.BRANCH:
        mispredicted = op.mispredict
        if not mispredicted and self.branch_predictor is not None:
            mispredicted = (self.branch_predictor.predict(op.pc)
                            != op.taken)
        if mispredicted:
            self.barrier_seq = seq

    deps_left = 0
    for dep in op.deps:
        if not self.done[dep]:
            self.consumers.setdefault(dep, []).append(
                (entry, entry.issue_epoch))
            deps_left += 1
    entry.deps_left = deps_left
    if deps_left == 0 and op.kind != isa.RMW:
        self._push_ready(entry)


def _legacy_line_of(self, addr):
    return addr - (addr % self.line_bytes)


def _legacy_set_of(self, line):
    return self._sets[(line // self.line_bytes) % self.num_sets]


#: (owner class, attribute, seed implementation).  Some seed hot-path
#: code cannot be restored at runtime — ``__slots__`` added to ``Op``
#: and the MESI transaction record are class-definition changes — so the
#: reconstructed baseline is slightly *faster* than the true seed and
#: the measured speedup is a lower bound.
_LEGACY = [
    (sb_mod.StoreBuffer, "__iter__", _legacy_sb_iter),
    (sb_mod.StoreBuffer, "unresolved_older", _legacy_unresolved_older),
    (pipeline_mod.Core, "_drain_sb", _legacy_drain_sb),
    (pipeline_mod.Core, "_check_memdep_violation",
     _legacy_check_memdep_violation),
    (pipeline_mod.Core, "_dispatch", _legacy_dispatch),
    (pipeline_mod.Core, "_dispatch_one", _legacy_dispatch_one),
    (pipeline_mod.Core, "_tick", _legacy_tick),
    (pipeline_mod.Core, "_retire", _legacy_retire),
    (pipeline_mod.Core, "_issue", _legacy_issue),
    (cache_mod.CacheArray, "line_of", _legacy_line_of),
    (cache_mod.CacheArray, "_set_of", _legacy_set_of),
]


@contextlib.contextmanager
def legacy_kernel():
    """Swap the hot-loop methods back to their seed implementations."""
    saved = [(owner, name, getattr(owner, name))
             for owner, name, _ in _LEGACY]
    for owner, name, fn in _LEGACY:
        setattr(owner, name, fn)
    try:
        yield
    finally:
        for owner, name, fn in saved:
            setattr(owner, name, fn)


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def _workload():
    profile = get_profile(BENCHMARK)
    traces = generate_workload(profile, CORES, LENGTH, 0)
    warm = generate_warmup(profile, CORES, LENGTH, 0)
    return traces, warm


def _fingerprint(stats):
    return {
        "execution_cycles": stats.execution_cycles,
        "invalidations": stats.invalidations_sent,
        "evictions": stats.evictions,
        "network": dict(stats.network_messages),
        "cores": {cid: dataclasses.asdict(cs)
                  for cid, cs in stats.per_core.items()},
    }


def measure(rounds=ROUNDS):
    """Run the seed and optimized kernels; return the comparison dict."""
    traces, warm = _workload()

    stats_new, events, t_new = None, None, float("inf")
    for _ in range(rounds):
        system = System(traces, POLICY, warm_caches=warm)
        t0 = time.perf_counter()
        stats_new = system.run()
        t_new = min(t_new, time.perf_counter() - t0)
        events = system.engine.events_dispatched

    stats_old, t_old = None, float("inf")
    with legacy_kernel():
        for _ in range(rounds):
            system = System(traces, POLICY, warm_caches=warm,
                            engine=LegacyEngine())
            t0 = time.perf_counter()
            stats_old = system.run()
            t_old = min(t_old, time.perf_counter() - t0)

    identical = _fingerprint(stats_new) == _fingerprint(stats_old)
    return {
        "benchmark": BENCHMARK,
        "policy": POLICY,
        "cores": CORES,
        "length": LENGTH,
        "events": events,
        "identical_stats": identical,
        "seed_seconds": round(t_old, 4),
        "optimized_seconds": round(t_new, 4),
        "seed_events_per_sec": round(events / t_old),
        "optimized_events_per_sec": round(events / t_new),
        "speedup": round(t_old / t_new, 3),
    }


#: 8-job grid for the sweep-runner throughput measurement.
SWEEP_JOBS = [SweepJob(name=name, policy=policy, cores=4, length=1000)
              for name in ("fft", "radix", "barnes", "raytrace")
              for policy in ("x86", "370-SLFSoS-key")]
SWEEP_WORKERS = 4


def measure_sweep():
    """Serial vs 4-worker wall clock for the same 8 uncached jobs.

    The speedup only materializes with free cores; the recorded
    ``cpu_count`` lets trajectory tracking interpret the number.
    """
    serial = run_sweep(SWEEP_JOBS, workers=1, cache=False)
    parallel = run_sweep(SWEEP_JOBS, workers=SWEEP_WORKERS, cache=False)
    identical = all(
        dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        for a, b in zip(serial.results, parallel.results))
    return {
        "jobs": len(SWEEP_JOBS),
        "workers": SWEEP_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "identical_stats": identical,
        "serial_seconds": round(serial.elapsed, 4),
        "parallel_seconds": round(parallel.elapsed, 4),
        "parallel_speedup": round(serial.elapsed / parallel.elapsed, 3),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_kernel_fast_path():
    result = measure(rounds=3)
    assert result["identical_stats"], \
        "optimized kernel changed simulation results"
    # Acceptance target is 1.5x; assert with margin for CI timer noise.
    assert result["speedup"] >= 1.3, result


def test_sweep_parallel_throughput():
    result = measure_sweep()
    assert result["identical_stats"], \
        "parallel sweep changed simulation results"
    if result["cpu_count"] >= SWEEP_WORKERS:
        assert result["parallel_speedup"] >= 2.0, result


# ----------------------------------------------------------------------
# CI smoke: record events/sec for trajectory tracking
# ----------------------------------------------------------------------

def main():
    kernel = measure()
    sweep = measure_sweep()
    report = {"kernel": kernel, "sweep": sweep}
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not kernel["identical_stats"]:
        raise SystemExit("optimized kernel changed simulation results")
    if not sweep["identical_stats"]:
        raise SystemExit("parallel sweep changed simulation results")
    print(f"kernel speedup: {kernel['speedup']}x "
          f"({kernel['seed_events_per_sec']} -> "
          f"{kernel['optimized_events_per_sec']} events/sec); "
          f"sweep: {sweep['parallel_speedup']}x with "
          f"{sweep['workers']} workers on {sweep['cpu_count']} CPU(s)")


if __name__ == "__main__":
    main()
