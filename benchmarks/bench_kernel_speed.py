"""Kernel microbenchmark: optimized event kernel vs the pre-PR seed.

Measures events/sec of the discrete-event kernel fast path (bucketed
engine + hot-loop pipeline optimizations) against a faithful
reconstruction of the seed implementation: the original heap-only
``Engine`` with per-event ``until()`` polling, the generator-based
``StoreBuffer`` iteration, the unconditional drain-ahead RFO scan, the
full-LQ memory-dependence scan, and the unbound dispatch loop.

The two kernels must produce *cycle-for-cycle identical* ``SystemStats``
— the optimization contract — which this bench asserts before it
reports any number.

Two more rows ride along: the **warm-fork** sweep (one warm-up,
snapshot, five policy forks — vs the seed per-cell re-warm loop) and
the **sweep runner** (fixed pool and adaptive ``workers=None``, which
must never lose to serial).  All three record into
``BENCH_kernel.json``; ``REPRO_BENCH_SCALE`` shrinks the workloads for
CI smoke.

Run standalone (CI smoke) to record events/sec into ``BENCH_kernel.json``:

    PYTHONPATH=src python benchmarks/bench_kernel_speed.py

or under pytest for the assertion-only version:

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_speed.py
"""

import contextlib
import dataclasses
import heapq
import json
import os
import pathlib
import time

from repro.coherence import cache as cache_mod
from repro.coherence import mesi as mesi_mod
from repro.core import policies as policies_mod
from repro.core.reasons import GATE, SLF_SB
from repro.cpu import branch as branch_mod
from repro.cpu import storeset as storeset_mod
from repro.cpu import isa
from repro.cpu import pipeline as pipeline_mod
from repro.cpu import store_buffer as sb_mod
from repro.cpu.isa import LOAD, STORE
from repro.cpu.load_queue import ISSUED, PERFORMED
from repro.sim.system import System
from repro.core.policies import POLICY_ORDER
from repro.sweep import SweepJob, run_sweep
from repro.workloads.profiles import get_profile
from repro.workloads.runner import run_policy_sweep_forked
from repro.workloads.synthetic import generate_warmup, generate_workload

#: The seed Fig. 10 workload used for the measurement.  CI smoke runs
#: at reduced scale via ``REPRO_BENCH_SCALE`` (the identity assertions
#: are scale-independent; only the recorded ratios get noisier).
BENCHMARK = "barnes"
POLICY = "370-SLFSoS-key"
CORES = 8
_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
LENGTH = max(200, int(3000 * _SCALE))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))

RESULT_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_kernel.json"


# ----------------------------------------------------------------------
# Seed (pre-PR) kernel, reconstructed verbatim
# ----------------------------------------------------------------------

class LegacyEngine:
    """The seed discrete-event engine: one heap, ``until()`` polled per
    event, ``step()`` called per dispatch."""

    supports_stop = False

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def at(self, time_, fn, *args):
        self.schedule(time_ - self.now, fn, *args)

    @property
    def pending(self):
        return len(self._queue)

    def step(self):
        if not self._queue:
            return False
        time_, _, fn, args = heapq.heappop(self._queue)
        if time_ < self.now:
            raise RuntimeError("event scheduled in the past")
        self.now = time_
        fn(*args)
        return True

    def run(self, until=None, max_cycles=None):
        deadline = None if max_cycles is None else self.now + max_cycles
        while self._queue:
            if until is not None and until():
                break
            if deadline is not None and self._queue[0][0] > deadline:
                self.now = deadline
                break
            self.step()
        return self.now


def _legacy_sb_iter(self):
    idx = self._head
    for _ in range(self._count):
        entry = self._slots[idx]
        assert entry is not None
        yield entry
        idx = (idx + 1) % self.capacity


def _legacy_unresolved_older(self, load_seq):
    return [e for e in self if e.seq < load_seq and not e.resolved]


def _legacy_drain_sb(self):
    scanned = 0
    for entry in self.sb:
        if scanned >= self.RFO_AHEAD:
            break
        if entry.resolved and not entry.rfo_sent:
            entry.rfo_sent = self.controller.prefetch_exclusive(entry.addr)
        scanned += 1

    candidate = None
    for entry in self.sb:
        if not entry.retired:
            break
        if not entry.issued:
            candidate = entry
            break
    if candidate is None:
        return False
    owned = self.controller.peek_state(candidate.addr) in ("M", "E")
    if self._sb_inflight > 0 and (not owned or self._sb_miss_inflight):
        return False
    candidate.issued = True
    self._sb_inflight += 1
    hit = self.controller.store(
        candidate.addr, lambda: self._store_written(candidate))
    if not hit:
        self._sb_miss_inflight = True
    return True


def _legacy_check_memdep_violation(self, entry, store):
    violators = [
        l for l in self.lq
        if l.seq > entry.seq and l.addr == store.addr
        and l.state in (ISSUED, PERFORMED)
        and (l.store_seq is None or l.store_seq < entry.seq)]
    if not violators:
        return
    oldest = min(violators, key=lambda l: l.seq)
    self.storeset.train_violation(oldest.pc, entry.op.pc)
    self._squash(oldest.seq, "memdep")


def _legacy_dispatch(self):
    dispatched = 0
    stall = 0
    while dispatched < self.config.issue_width:
        if self.fetch_idx >= len(self.trace):
            break
        if self.barrier_seq is not None:
            break
        op = self.trace[self.fetch_idx]
        if self.rob.full:
            stall = 1
            break
        if op.kind == LOAD and self.lq.full:
            stall = 2
            break
        if op.kind == STORE and self.sb.full:
            stall = 3
            break
        self._dispatch_one(op)
        dispatched += 1
    return dispatched > 0, stall


def _legacy_tick(self):
    self._tick_scheduled = False
    if self.finished:
        return
    work = False
    work |= self._retire()
    work |= self._drain_sb()
    work |= self._issue()
    dispatched, stall = self._dispatch()
    work |= dispatched
    if stall != 0:
        self._account_stall(stall, 1)

    if (self.fetch_idx >= len(self.trace) and self.rob.empty
            and self.sb.empty):
        self._finish()
        return
    if work:
        self._schedule_tick(1)
    else:
        self._sleeping = True
        self._sleep_since = self.engine.now + 1
        self._sleep_stall = stall


def _legacy_retire(self):
    retired = 0
    while retired < self.config.retire_width:
        head = self.rob.head()
        if head is None or not head.completed:
            if (head is not None and head.op.kind == isa.RMW
                    and not head.issued and head.deps_left == 0
                    and self.sb.empty):
                head.issued = True
                if self.tracer is not None:
                    self.tracer.on_issue(head.seq, self.engine.now)
                self._start_rmw(head)
            break
        op = head.op
        if op.kind == isa.LOAD:
            if not self._try_retire_load(head):
                break
        elif op.kind in (isa.FENCE, isa.RMW):
            if self.sb.has_unwritten_older(head.seq):
                break
            self.rob.retire_head()
            self._release_fence(head.seq)
        elif op.kind == isa.STORE:
            self.rob.retire_head()
            entry = self.store_of.pop(head.seq)
            entry.retired = True
            self.stats.retired_stores += 1
        else:
            self.rob.retire_head()
        if self.tracer is not None and op.kind != isa.LOAD:
            self.tracer.on_retire(head.seq, self.engine.now)
        self.stats.retired_instructions += 1
        retired += 1
    return retired > 0


def _legacy_issue(self):
    issued = 0
    while issued < self.config.issue_width and self.ready:
        seq, epoch, entry = heapq.heappop(self.ready)
        if entry.issue_epoch != epoch or entry.issued:
            continue
        entry.issued = True
        if self.tracer is not None:
            self.tracer.on_issue(entry.seq, self.engine.now)
        op = entry.op
        if op.kind == isa.LOAD:
            self._issue_load(entry)
        elif op.kind == isa.STORE:
            self.engine.schedule(
                1, self._complete_store, entry, entry.issue_epoch)
        elif op.kind == isa.FENCE:
            self.engine.schedule(
                1, self._complete, entry, entry.issue_epoch)
        else:
            self.engine.schedule(
                max(1, op.latency), self._complete, entry,
                entry.issue_epoch)
        issued += 1
    return issued > 0


def _legacy_dispatch_one(self, op):
    seq = self.fetch_idx
    self.fetch_idx += 1
    entry = self.rob.allocate(seq, op)
    if self.tracer is not None:
        self.tracer.on_dispatch(seq, op.kind, self.engine.now)
    if op.kind == isa.LOAD:
        lentry = self.lq.allocate(seq, op.pc)
        lentry.memdep_wait = self.storeset.predicted_store(op.pc)
        self.load_of[seq] = lentry
    elif op.kind == isa.STORE:
        store = self.sb.allocate(seq, op.pc, op.value)
        self.store_of[seq] = store
        self.storeset.store_dispatched(op.pc, seq)
    elif op.kind in (isa.FENCE, isa.RMW):
        self.pending_fences.append(seq)
    elif op.kind == isa.BRANCH:
        mispredicted = op.mispredict
        if not mispredicted and self.branch_predictor is not None:
            mispredicted = (self.branch_predictor.predict(op.pc)
                            != op.taken)
        if mispredicted:
            self.barrier_seq = seq

    deps_left = 0
    for dep in op.deps:
        if not self.done[dep]:
            self.consumers.setdefault(dep, []).append(
                (entry, entry.issue_epoch))
            deps_left += 1
    entry.deps_left = deps_left
    if deps_left == 0 and op.kind != isa.RMW:
        self._push_ready(entry)


def _legacy_ctrl_line_of(self, addr):
    return self.hierarchy.line_of(addr)


def _legacy_ctrl_load(self, addr, done):
    line = self.line_of(addr)
    if line in self.state:
        latency = self.hierarchy.access_latency(line)
        assert latency is not None, "state map out of sync with tags"
        self.system.engine.schedule(latency, done)
        return True
    self._miss(mesi_mod.GETS, line, done)
    return False


def _legacy_ctrl_store(self, addr, done):
    line = self.line_of(addr)
    if self.state.get(line) in (mesi_mod.M, mesi_mod.E):
        self.state[line] = mesi_mod.M
        latency = self.hierarchy.access_latency(line)
        assert latency is not None, "state map out of sync with tags"
        delay = self.system.config.store_commit_latency
        if self.fault_store_delay is not None:
            delay = self._faulted_commit_delay(delay)
        self.system.engine.schedule(delay, done)
        return True
    self._miss(mesi_mod.GETM, line, done)
    return False


def _legacy_ctrl_prefetch_exclusive(self, addr):
    line = self.line_of(addr)
    if self.state.get(line) in (mesi_mod.M, mesi_mod.E) \
            or line in self.txns:
        return True
    if len(self.txns) >= self.mshrs:
        return False  # prefetches never queue
    self._start_txn(mesi_mod.GETM, line, lambda: None)
    return True


def _legacy_ctrl_peek_state(self, addr):
    return self.state.get(self.line_of(addr))


def _legacy_line_of(self, addr):
    return addr - (addr % self.line_bytes)


def _legacy_set_of(self, line):
    return self._sets[(line // self.line_bytes) % self.num_sets]


def _legacy_forwarding_match(self, addr, load_seq):
    best = None
    for entry in self:
        if entry.seq >= load_seq:
            break
        if entry.resolved and entry.addr == addr:
            best = entry
    return best


def _legacy_pop_head(self):
    entry = self._slots[self._head]
    if entry is None:
        raise RuntimeError("store buffer empty")
    if not entry.written:
        raise RuntimeError("head store not yet written to L1")
    self._slots[self._head] = None
    self._bits[self._head] ^= 1
    self._head = (self._head + 1) % self.capacity
    self._count -= 1
    return entry


def _legacy_squash_from(self, seq):
    removed = []
    while self._count:
        tail_idx = (self._tail - 1) % self.capacity
        entry = self._slots[tail_idx]
        assert entry is not None
        if entry.seq < seq:
            break
        if entry.retired:
            raise RuntimeError(
                f"attempt to squash retired store seq={entry.seq}")
        self._slots[tail_idx] = None
        self._bits[tail_idx] ^= 1
        self._tail = tail_idx
        self._count -= 1
        removed.append(entry)
    return removed


def _legacy_issue_load(self, entry):
    op = entry.op
    lentry = self.load_of[entry.seq]
    lentry.addr = op.addr
    lentry.line = self.controller.line_of(op.addr)

    for fence_seq in self.pending_fences:
        if fence_seq < entry.seq:
            entry.issued = False
            self.deferred_on_fence.setdefault(fence_seq, []).append(
                (entry, entry.issue_epoch))
            return

    unresolved = self.sb.unresolved_older(entry.seq)
    if unresolved:
        predicted = lentry.memdep_wait
        if predicted is not None \
                and any(s.seq == predicted for s in unresolved):
            entry.issued = False
            lentry.deferred = True
            self.deferred_on_store.setdefault(predicted, []).append(
                (entry, entry.issue_epoch))
            return

    match = self.sb.forwarding_match(op.addr, entry.seq)
    if match is not None:
        if self.policy.allows_forwarding:
            self._forward(entry, lentry, match)
        else:
            self._wait_for_store_write(entry, lentry, match)
        return
    self._access_cache(entry, lentry)


def _legacy_complete_store(self, entry, epoch):
    if entry.issue_epoch != epoch:
        return
    store = self.store_of.get(entry.seq)
    if store is None:
        return
    store.addr = entry.op.addr
    store.resolved = True
    self.storeset.store_resolved(entry.op.pc, entry.seq)
    if not store.rfo_sent:
        store.rfo_sent = self.controller.prefetch_exclusive(store.addr)
        if not store.rfo_sent:
            self._rfo_pending += 1
    self._check_memdep_violation(entry, store)
    for consumer, cepoch in self.deferred_on_store.pop(entry.seq, ()):
        if consumer.issue_epoch != cepoch or consumer.issued:
            continue
        lentry = self.load_of.get(consumer.seq)
        if lentry is not None:
            lentry.deferred = False
        self._push_ready(consumer)
    self._complete(entry, epoch)


def _legacy_try_retire_load(self, head):
    lentry = self.load_of[head.seq]
    reason = self.policy.load_retire_block(lentry)
    if reason is not None:
        if lentry.gate_blocked_since is None:
            lentry.gate_blocked_since = self.engine.now
            lentry.blocked_reason = reason
            if reason == GATE:
                self.stats.gate_stall_events += 1
            elif reason == SLF_SB:
                self.stats.slf_retire_stall_events += 1
        return False
    if lentry.gate_blocked_since is not None:
        blocked = self.engine.now - lentry.gate_blocked_since
        if lentry.blocked_reason == GATE:
            self.stats.gate_stall_cycles += blocked
        elif lentry.blocked_reason == SLF_SB:
            self.stats.slf_retire_stall_cycles += blocked
        if self._p_gate_stall is not None:
            self._p_gate_stall(self.core_id, self.engine.now,
                               lentry.seq, blocked,
                               lentry.blocked_reason)
    self.rob.retire_head()
    self.lq.retire_head(head.seq)
    del self.load_of[head.seq]
    self.retired_load_values[head.seq] = lentry.value
    if self.tracer is not None:
        blocked = 0
        if lentry.gate_blocked_since is not None:
            blocked = self.engine.now - lentry.gate_blocked_since
        self.tracer.on_retire(head.seq, self.engine.now, blocked)
    self.stats.retired_loads += 1
    if lentry.slf:
        self.stats.slf_loads += 1
    self.policy.on_load_retire(lentry)
    if self.detector is not None:
        self.detector.on_load_retired(lentry)
    return True


def _legacy_complete(self, entry, epoch):
    if entry.issue_epoch != epoch:
        return
    entry.completed = True
    self.done[entry.seq] = 1
    if self.tracer is not None:
        lentry = self.load_of.get(entry.seq)
        self.tracer.on_complete(entry.seq, self.engine.now,
                                slf=bool(lentry and lentry.slf))
    for consumer, cepoch in self.consumers.pop(entry.seq, ()):
        if consumer.issue_epoch != cepoch or consumer.issued:
            continue
        consumer.deps_left -= 1
        if consumer.deps_left == 0 and consumer.op.kind != isa.RMW:
            self._push_ready(consumer)
    op = entry.op
    if op.kind == isa.BRANCH:
        if self.branch_predictor is not None:
            self.branch_predictor.update(op.pc, op.taken)
        if self.barrier_seq == entry.seq:
            self.engine.schedule(self.config.mispredict_penalty,
                                 self._release_barrier, entry.seq)
    self._wake()


def _legacy_store_written(self, entry):
    entry.written = True
    if not entry.rfo_sent:
        self._rfo_pending -= 1
    self.memory_data[entry.addr] = entry.value
    self._sb_inflight -= 1
    self._sb_miss_inflight = False
    self.sb.pop_head()
    if self._p_sb_write is not None:
        now = self.engine.now
        drain = now - entry.retired_at if entry.retired_at >= 0 else 0
        self._p_sb_write(self.core_id, now, entry.seq, entry.addr,
                         drain, entry.key)
    self.policy.on_store_written(entry)
    if self.detector is not None:
        self.detector.on_store_written(entry)
    for waiter in entry.waiters:
        waiter()
    entry.waiters.clear()
    head = self.sb.head()
    if head is None or not head.retired:
        self.policy.on_sb_drained()
    self._wake()


def _legacy_tage_lookup(self, pc):
    for table in reversed(range(len(self.tables))):
        entry = self.tables[table][self._index(pc, table)]
        if entry.tag == self._tag(pc, table):
            return table, entry.counter >= 0
    return None, self.base[self._base_index(pc)] >= 2


def _legacy_tage_index(self, pc, table):
    fold = self._fold(self.HISTORY_LENGTHS[table])
    return (pc ^ (pc >> 7) ^ fold ^ (fold << (table + 1))) \
        % self.tagged_size


def _legacy_tage_tag(self, pc, table):
    fold = self._fold(self.HISTORY_LENGTHS[table])
    return ((pc >> 3) ^ (fold * 3) ^ table) & self.tag_mask


def _legacy_tage_update(self, pc, taken):
    provider, prediction = self._lookup(pc)
    correct = prediction == taken
    if not correct:
        self.mispredictions += 1

    if provider is None:
        idx = self._base_index(pc)
        self.base[idx] = min(3, self.base[idx] + 1) if taken \
            else max(0, self.base[idx] - 1)
    else:
        tentry = self.tables[provider][self._index(pc, provider)]
        tentry.counter = min(3, tentry.counter + 1) if taken \
            else max(-4, tentry.counter - 1)
        if correct:
            tentry.useful = min(3, tentry.useful + 1)
        elif tentry.useful > 0:
            tentry.useful -= 1

    if not correct:
        start = 0 if provider is None else provider + 1
        for table in range(start, len(self.tables)):
            tentry = self.tables[table][self._index(pc, table)]
            if tentry.useful == 0:
                tentry.tag = self._tag(pc, table)
                tentry.counter = 0 if taken else -1
                break

    self.history = ((self.history << 1) | int(taken)) \
        & ((1 << 64) - 1)
    self._updates += 1
    if self._updates >= self.useful_reset_interval:
        self._updates = 0
        for table in self.tables:
            for tentry in table:
                tentry.useful >>= 1


def _legacy_cache_lookup(self, line, touch=True):
    bucket = self._set_of(line)
    if line in bucket:
        if touch:
            bucket.move_to_end(line)
        self.hits += 1
        return True
    self.misses += 1
    return False


def _legacy_cache_contains(self, line):
    return line in self._set_of(line)


def _legacy_cache_insert(self, line):
    bucket = self._set_of(line)
    if line in bucket:
        bucket.move_to_end(line)
        return None
    victim = None
    if len(bucket) >= self.ways:
        victim, _ = bucket.popitem(last=False)
        self.evictions += 1
    bucket[line] = None
    return victim


def _legacy_cache_remove(self, line):
    bucket = self._set_of(line)
    if line in bucket:
        del bucket[line]
        return True
    return False


def _legacy_ss_store_dispatched(self, pc, seq):
    self._maybe_clear()
    ssid = self._ssit.get(self._index(pc))
    if ssid is not None:
        self._lfst[ssid] = seq


def _legacy_ss_store_resolved(self, pc, seq):
    ssid = self._ssit.get(self._index(pc))
    if ssid is not None and self._lfst.get(ssid) == seq:
        del self._lfst[ssid]


def _legacy_ss_predicted_store(self, load_pc):
    self._maybe_clear()
    ssid = self._ssit.get(self._index(load_pc))
    if ssid is None:
        return None
    return self._lfst.get(ssid)


def _legacy_sos_on_forward(self, load, store):
    policies_mod.ConsistencyPolicy.on_forward(self, load, store)
    previous = self.active_forwardings.get(store.key)
    if previous is None or load.seq < previous:
        self.active_forwardings[store.key] = load.seq


def _legacy_sos_load_retire_block(self, load):
    return GATE if self.gate.closed else None


def _legacy_sos_on_sb_drained(self):
    key = self.gate.key
    if self.gate.open_unconditionally(self._now()):
        self._fire_open(key, "drain")
    self.active_forwardings.clear()


def _legacy_key_on_store_written(self, store):
    if self.gate.open_with_key(store.key, self._now()):
        self._fire_open(store.key, "key")
    self.active_forwardings.pop(store.key, None)


#: (owner class, attribute, seed implementation).  Some seed hot-path
#: code cannot be restored at runtime — ``__slots__`` added to ``Op``
#: and the MESI transaction record are class-definition changes — so the
#: reconstructed baseline is slightly *faster* than the true seed and
#: the measured speedup is a lower bound.
_LEGACY = [
    (sb_mod.StoreBuffer, "__iter__", _legacy_sb_iter),
    (sb_mod.StoreBuffer, "unresolved_older", _legacy_unresolved_older),
    (sb_mod.StoreBuffer, "forwarding_match", _legacy_forwarding_match),
    (sb_mod.StoreBuffer, "pop_head", _legacy_pop_head),
    (sb_mod.StoreBuffer, "squash_from", _legacy_squash_from),
    (pipeline_mod.Core, "_drain_sb", _legacy_drain_sb),
    (pipeline_mod.Core, "_check_memdep_violation",
     _legacy_check_memdep_violation),
    (pipeline_mod.Core, "_dispatch", _legacy_dispatch),
    (pipeline_mod.Core, "_dispatch_one", _legacy_dispatch_one),
    (pipeline_mod.Core, "_tick", _legacy_tick),
    (pipeline_mod.Core, "_retire", _legacy_retire),
    (pipeline_mod.Core, "_issue", _legacy_issue),
    (pipeline_mod.Core, "_issue_load", _legacy_issue_load),
    (pipeline_mod.Core, "_complete_store", _legacy_complete_store),
    (pipeline_mod.Core, "_try_retire_load", _legacy_try_retire_load),
    (pipeline_mod.Core, "_complete", _legacy_complete),
    (pipeline_mod.Core, "_store_written", _legacy_store_written),
    (branch_mod.TagePredictor, "_lookup", _legacy_tage_lookup),
    (branch_mod.TagePredictor, "_index", _legacy_tage_index),
    (branch_mod.TagePredictor, "_tag", _legacy_tage_tag),
    (branch_mod.TagePredictor, "update", _legacy_tage_update),
    (mesi_mod.PrivateController, "line_of", _legacy_ctrl_line_of),
    (mesi_mod.PrivateController, "load", _legacy_ctrl_load),
    (mesi_mod.PrivateController, "store", _legacy_ctrl_store),
    (mesi_mod.PrivateController, "prefetch_exclusive",
     _legacy_ctrl_prefetch_exclusive),
    (mesi_mod.PrivateController, "peek_state", _legacy_ctrl_peek_state),
    (cache_mod.CacheArray, "line_of", _legacy_line_of),
    (cache_mod.CacheArray, "_set_of", _legacy_set_of),
    (cache_mod.CacheArray, "lookup", _legacy_cache_lookup),
    (cache_mod.CacheArray, "contains", _legacy_cache_contains),
    (cache_mod.CacheArray, "insert", _legacy_cache_insert),
    (cache_mod.CacheArray, "remove", _legacy_cache_remove),
    (storeset_mod.StoreSetPredictor, "store_dispatched",
     _legacy_ss_store_dispatched),
    (storeset_mod.StoreSetPredictor, "store_resolved",
     _legacy_ss_store_resolved),
    (storeset_mod.StoreSetPredictor, "predicted_store",
     _legacy_ss_predicted_store),
    (policies_mod._SoSBase, "on_forward", _legacy_sos_on_forward),
    (policies_mod._SoSBase, "load_retire_block",
     _legacy_sos_load_retire_block),
    (policies_mod.SLFSoSPolicy, "on_sb_drained", _legacy_sos_on_sb_drained),
    (policies_mod.SLFSoSKeyPolicy, "on_store_written",
     _legacy_key_on_store_written),
]


@contextlib.contextmanager
def legacy_kernel():
    """Swap the hot-loop methods back to their seed implementations."""
    saved = [(owner, name, getattr(owner, name))
             for owner, name, _ in _LEGACY]
    for owner, name, fn in _LEGACY:
        setattr(owner, name, fn)
    try:
        yield
    finally:
        for owner, name, fn in saved:
            setattr(owner, name, fn)


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def _workload():
    profile = get_profile(BENCHMARK)
    traces = generate_workload(profile, CORES, LENGTH, 0)
    warm = generate_warmup(profile, CORES, LENGTH, 0)
    return traces, warm


def _fingerprint(stats):
    return {
        "execution_cycles": stats.execution_cycles,
        "invalidations": stats.invalidations_sent,
        "evictions": stats.evictions,
        "network": dict(stats.network_messages),
        "cores": {cid: dataclasses.asdict(cs)
                  for cid, cs in stats.per_core.items()},
    }


def measure(rounds=ROUNDS):
    """Run the seed and optimized kernels; return the comparison dict."""
    traces, warm = _workload()

    stats_new, events, t_new = None, None, float("inf")
    for _ in range(rounds):
        system = System(traces, POLICY, warm_caches=warm)
        t0 = time.perf_counter()
        stats_new = system.run()
        t_new = min(t_new, time.perf_counter() - t0)
        events = system.engine.events_dispatched

    stats_old, t_old = None, float("inf")
    with legacy_kernel():
        for _ in range(rounds):
            system = System(traces, POLICY, warm_caches=warm,
                            engine=LegacyEngine())
            t0 = time.perf_counter()
            stats_old = system.run()
            t_old = min(t_old, time.perf_counter() - t0)

    identical = _fingerprint(stats_new) == _fingerprint(stats_old)
    return {
        "benchmark": BENCHMARK,
        "policy": POLICY,
        "cores": CORES,
        "length": LENGTH,
        "events": events,
        "identical_stats": identical,
        "seed_seconds": round(t_old, 4),
        "optimized_seconds": round(t_new, 4),
        "seed_events_per_sec": round(events / t_old),
        "optimized_events_per_sec": round(events / t_new),
        "speedup": round(t_old / t_new, 3),
    }


def measure_warm_fork(rounds=ROUNDS):
    """Seed five-policy sweep vs the snapshot warm-fork sweep.

    The seed path is what ``run_policy_sweep`` (and the sweep runner's
    per-cell workers) did before this PR: every policy cell regenerates
    its traces and re-walks the warm-up workload through the cache
    hierarchy, on the seed kernel.  The optimized path builds and warms
    one system, captures it as a pristine cycle-0 snapshot, and forks
    it into all five policy cells.  Stats must match cell for cell.
    """
    profile = get_profile(BENCHMARK)

    def seed_sweep():
        out = {}
        t0 = time.perf_counter()
        with legacy_kernel():
            for policy in POLICY_ORDER:
                traces = generate_workload(profile, CORES, LENGTH, 0)
                warm = generate_warmup(profile, CORES, LENGTH, 0)
                system = System(traces, policy, warm_caches=warm,
                                engine=LegacyEngine())
                out[policy] = system.run()
        return out, time.perf_counter() - t0

    def fork_sweep():
        t0 = time.perf_counter()
        results = run_policy_sweep_forked(BENCHMARK, POLICY_ORDER,
                                          cores=CORES, length=LENGTH)
        return ({p: r.stats for p, r in results.items()},
                time.perf_counter() - t0)

    t_seed, t_fork, identical = float("inf"), float("inf"), True
    for _ in range(rounds):
        seed_stats, t_s = seed_sweep()
        fork_stats, t_f = fork_sweep()
        t_seed, t_fork = min(t_seed, t_s), min(t_fork, t_f)
        identical = identical and all(
            seed_stats[p].to_dict() == fork_stats[p].to_dict()
            for p in POLICY_ORDER)
    return {
        "benchmark": BENCHMARK,
        "cores": CORES,
        "length": LENGTH,
        "policies": list(POLICY_ORDER),
        "identical_stats": identical,
        "seed_seconds": round(t_seed, 4),
        "forked_seconds": round(t_fork, 4),
        "speedup": round(t_seed / t_fork, 3),
    }


#: 8-job grid for the sweep-runner throughput measurement.
SWEEP_JOBS = [SweepJob(name=name, policy=policy, cores=4,
                       length=max(200, int(1000 * _SCALE)))
              for name in ("fft", "radix", "barnes", "raytrace")
              for policy in ("x86", "370-SLFSoS-key")]
SWEEP_WORKERS = 4


def measure_sweep():
    """Serial vs 4-worker vs adaptive wall clock for 8 uncached jobs.

    The fixed-pool speedup only materializes with free cores; the
    recorded ``cpu_count`` lets trajectory tracking interpret the
    number.  The adaptive row (``workers=None``) is the no-regression
    guarantee: on a starved host the probe keeps the sweep in-process,
    so it must track serial within timer noise everywhere.
    """
    serial = run_sweep(SWEEP_JOBS, workers=1, cache=False)
    parallel = run_sweep(SWEEP_JOBS, workers=SWEEP_WORKERS, cache=False)
    adaptive = run_sweep(SWEEP_JOBS, cache=False)
    identical = all(
        dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        == dataclasses.asdict(c.stats)
        for a, b, c in zip(serial.results, parallel.results,
                           adaptive.results))
    ratio = serial.elapsed / adaptive.elapsed
    return {
        "jobs": len(SWEEP_JOBS),
        "workers": SWEEP_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "identical_stats": identical,
        "serial_seconds": round(serial.elapsed, 4),
        "parallel_seconds": round(parallel.elapsed, 4),
        "parallel_speedup": round(serial.elapsed / parallel.elapsed, 3),
        # workers=None: the probe decides, and the decision must never
        # lose to serial (beyond timer noise) on any host.
        "adaptive_mode": adaptive.mode,
        "adaptive_workers": adaptive.workers,
        "adaptive_seconds": round(adaptive.elapsed, 4),
        "adaptive_vs_serial": round(ratio, 3),
        "not_slower": ratio >= 0.95,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_kernel_fast_path():
    result = measure(rounds=3)
    assert result["identical_stats"], \
        "optimized kernel changed simulation results"
    # Acceptance target is 1.5x; assert with margin for CI timer noise.
    assert result["speedup"] >= 1.3, result


def test_warm_fork_sweep():
    result = measure_warm_fork(rounds=1)
    assert result["identical_stats"], \
        "warm-fork sweep changed simulation results"
    # One shared warm-up replaces five; the floor is deliberately
    # conservative against CI timer noise (full-scale runs measure
    # well above it).
    assert result["speedup"] >= 1.5, result


def test_sweep_parallel_throughput():
    result = measure_sweep()
    assert result["identical_stats"], \
        "parallel sweep changed simulation results"
    if result["cpu_count"] >= SWEEP_WORKERS:
        assert result["parallel_speedup"] >= 2.0, result
    assert result["not_slower"], result


# ----------------------------------------------------------------------
# CI smoke: record events/sec for trajectory tracking
# ----------------------------------------------------------------------

def main():
    kernel = measure()
    warm_fork = measure_warm_fork()
    sweep = measure_sweep()
    report = {"kernel": kernel, "warm_fork": warm_fork, "sweep": sweep}
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not kernel["identical_stats"]:
        raise SystemExit("optimized kernel changed simulation results")
    if not warm_fork["identical_stats"]:
        raise SystemExit("warm-fork sweep changed simulation results")
    if not sweep["identical_stats"]:
        raise SystemExit("parallel sweep changed simulation results")
    if not sweep["not_slower"]:
        raise SystemExit("adaptive sweep lost to serial")
    print(f"kernel speedup: {kernel['speedup']}x "
          f"({kernel['seed_events_per_sec']} -> "
          f"{kernel['optimized_events_per_sec']} events/sec); "
          f"warm-fork sweep: {warm_fork['speedup']}x over 5 policies; "
          f"sweep: {sweep['parallel_speedup']}x with "
          f"{sweep['workers']} workers on {sweep['cpu_count']} CPU(s), "
          f"adaptive {sweep['adaptive_mode']} "
          f"{sweep['adaptive_vs_serial']}x vs serial")


if __name__ == "__main__":
    main()
