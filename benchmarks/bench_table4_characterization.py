"""Table IV: characterization of store-atomicity speculation.

Runs every benchmark (sample or full suite; see conftest) under the
paper's proposed 370-SLFSoS-key configuration and reports, next to the
paper's measured values: retired loads %, forwarded (SLF) loads %, gate
stalls %, average stall cycles per gate stall, and re-executed
instructions %.
"""

import pytest
from conftest import add_report, get_sweep, suite_benchmarks

from repro.analysis.report import (CHARACTERIZATION_HEADERS,
                                   characterization_row, format_table)
from repro.workloads import get_profile
from repro.workloads.tableiv import PARALLEL_AVERAGE, SEQUENTIAL_AVERAGE

_rows = {"parallel": [], "sequential": []}


def _characterize(name):
    result = get_sweep(name)["370-SLFSoS-key"]
    total = result.stats.total
    profile = get_profile(name)
    _rows[profile.suite].append(
        characterization_row(name, total, profile.paper))
    return total, profile


@pytest.mark.parametrize("name", suite_benchmarks("parallel"))
def test_table4_parallel(name, once):
    total, profile = once(_characterize, name)
    # Calibration: the generation targets must be met.
    assert total.loads_pct == pytest.approx(profile.loads_pct, abs=2.0)
    assert total.forwarded_pct == pytest.approx(profile.forwarded_pct,
                                                abs=1.5)


@pytest.mark.parametrize("name", suite_benchmarks("sequential"))
def test_table4_sequential(name, once):
    total, profile = once(_characterize, name)
    assert total.loads_pct == pytest.approx(profile.loads_pct, abs=2.0)
    assert total.forwarded_pct == pytest.approx(profile.forwarded_pct,
                                                abs=1.5)


def test_table4_report(once):
    """Emit the combined table with per-suite averages (§VI-A)."""
    once(lambda: None)
    for suite, paper_avg in (("parallel", PARALLEL_AVERAGE),
                             ("sequential", SEQUENTIAL_AVERAGE)):
        rows = _rows[suite]
        if not rows:
            continue
        n = len(rows)
        avg = ["Average", sum(r[1] for r in rows) // n]
        for col in range(2, 7):
            avg.append(round(sum(r[col] for r in rows) / n, 3))
        avg += [paper_avg.loads_pct, paper_avg.forwarded_pct,
                paper_avg.gate_stalls_pct, paper_avg.avg_stall_cycles,
                paper_avg.reexecuted_pct]
        add_report(
            f"Table IV {suite}",
            format_table(CHARACTERIZATION_HEADERS, rows + [avg],
                         title=f"Table IV ({suite}): 370-SLFSoS-key "
                               "characterization — measured vs paper "
                               "(p: columns)"))
