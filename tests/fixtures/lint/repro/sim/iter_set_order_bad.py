"""Fixture: iteration over a set leaks hash order (iter-set-order)."""


def drain(pending):
    waiting = {p for p in pending if p}
    for item in waiting:
        yield item


def snapshot(a, b):
    return list(a | b)
