"""Fixture: simulated time comes from the engine, not the host clock."""


def stamp(engine):
    return engine.now


def elapsed(engine, start):
    return engine.now - start
