"""Fixture: the accepted ways a hot-loop class declares its layout."""

from dataclasses import dataclass
from enum import Enum


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


@dataclass(slots=True)
class Pair:
    a: int = 0
    b: int = 0


class DrainStalledError(Exception):
    """Exceptions are cold-path; no slots required."""


class Phase(Enum):
    FETCH = 0
    RETIRE = 1
