"""Fixture: wall-clock reads inside a hot package (det-wallclock)."""

import time
from datetime import datetime


def stamp():
    return time.time()


def tick():
    return time.perf_counter()


def today():
    return datetime.now()
