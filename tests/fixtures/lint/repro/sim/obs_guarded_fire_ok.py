"""Fixture: every probe fire sits behind a None guard."""


class Component:
    __slots__ = ("_p_tick", "_p_done")

    def __init__(self, bus):
        self._p_tick = bus.resolve("cache.fill")
        self._p_done = bus.resolve("prefetch.issue")

    def tick(self, now):
        if self._p_tick is not None:
            self._p_tick(now)

    def finish(self, now, active):
        if active and self._p_done is not None:
            self._p_done(now)
