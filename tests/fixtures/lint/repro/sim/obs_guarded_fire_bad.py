"""Fixture: probe fired without an ``is not None`` guard
(obs-guarded-fire)."""


class Component:
    __slots__ = ("_p_tick",)

    def __init__(self, bus):
        self._p_tick = bus.resolve("cache.fill")

    def tick(self, now):
        self._p_tick(now)
