"""Fixture: probes resolved once at construction / attach time."""


class Component:
    __slots__ = ("_p_tick",)

    def __init__(self, bus):
        self._p_tick = bus.resolve("cache.fill")

    def tick(self, now):
        if self._p_tick is not None:
            self._p_tick(now)


class Attachable:
    __slots__ = ("_p_event",)

    def attach(self, bus):
        self._p_event = bus.resolve("noc.msg")

    def fire(self, now):
        if self._p_event is not None:
            self._p_event(now)
