# lint: file-ignore[det-rng]
"""Fixture: a file-level marker opts the whole file out of one rule."""

import random


def pick():
    return random.random()


def roll():
    return random.randint(1, 6)
