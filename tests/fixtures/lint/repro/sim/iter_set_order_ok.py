"""Fixture: set iteration is deterministic once sorted."""


def drain(pending):
    waiting = {p for p in pending if p}
    for item in sorted(waiting):
        yield item


def snapshot(a, b):
    return sorted(a | b)


def membership(seen, item):
    # Membership tests and len() do not observe iteration order.
    return item in seen and len(seen) > 0
