"""Fixture: unseeded / OS-entropy randomness in a hot package (det-rng)."""

import os
import random
import uuid


def pick():
    return random.random()


def shuffle(items):
    rng = random.Random()
    rng.shuffle(items)
    return items


def token():
    return os.urandom(8), uuid.uuid4()
