"""Fixture: randomness is fine when the stream is explicitly seeded."""

import random


def pick(seed):
    return random.Random(seed).random()


def shuffle(items, seed):
    rng = random.Random(seed)
    rng.shuffle(items)
    return items
