"""Fixture: probe resolved on the hot path (obs-resolve-once)."""


class Component:
    __slots__ = ("bus",)

    def __init__(self, bus):
        self.bus = bus

    def tick(self, now):
        probe = self.bus.resolve("cache.fill")
        if probe is not None:
            probe(now)
