"""Fixture: a line-level suppression hides one det-wallclock hit."""

import time


def stamp():
    return time.time()  # lint: ignore[det-wallclock]
