"""Fixture: hot-loop class without ``__slots__`` (hot-slots)."""


class Counter:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1
