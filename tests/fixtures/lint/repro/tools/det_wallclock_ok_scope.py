"""Fixture: hot-scope rules do not apply outside the hot packages —
wall-clock use in a tool/reporting module is legitimate."""

import time


def wall_duration(fn):
    start = time.time()
    fn()
    return time.time() - start
