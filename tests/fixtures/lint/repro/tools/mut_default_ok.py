"""Fixture: the None-sentinel idiom for default containers."""


def collect(items=None):
    if items is None:
        items = []
    items.append(1)
    return items


def label(name="", count=0, flag=False, pair=(1, 2)):
    return name, count, flag, pair
