"""Fixture: mutable default arguments (mut-default, repo-wide scope)."""


def collect(items=[]):
    items.append(1)
    return items


def index(table={}):
    return table


def merge(seen=set()):
    return seen
