"""Positive fixture: probe names the registry has never heard of."""


class TypoWatcher:
    """Wired behind a flag, so the runtime check never sees the typos."""

    def __init__(self, bus):
        self._p_fill = bus.resolve("cache.fil")
        bus.subscribe("laod.perform", self._on_perform)
        bus.subscribe("nosuch.*", self._on_anything)

    def _on_perform(self, *args):
        pass

    def _on_anything(self, *args):
        pass
