"""Negative fixture: registered names, live wildcards, dynamic names."""


class WiredWatcher:
    def __init__(self, bus, reason, topic):
        self._p_fill = bus.resolve("cache.fill")
        bus.subscribe("squash.*", self._on_squash)
        bus.subscribe("*", self._on_any)
        # Dynamic names are the bus's problem, not the linter's.
        bus.subscribe(f"squash.{reason}", self._on_squash)
        bus.subscribe(topic, self._on_any)

    def _on_squash(self, *args):
        pass

    def _on_any(self, *args):
        pass


def unrelated_resolve(path):
    # resolve() without a string literal (pathlib-style) is not a probe.
    return path.resolve()
