"""Negative fixture for snap-coverage: every slot of a covered class
is accounted for by the snapshot schema, and a class that merely shares
a schema name outside its home package is never checked."""


class StoreBuffer:
    # Exactly the slots repro/snapshot/schema.py partitions.
    __slots__ = ("capacity", "_slots", "_bits", "_head", "_tail",
                 "_count", "_by_addr")

    def __init__(self, capacity):
        self.capacity = capacity
        self._slots = [None] * capacity
        self._bits = [0] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0
        self._by_addr = {}


class System:
    # Shares a schema class name, but its home package is repro/sim —
    # in repro/cpu it is an unrelated class and must not be flagged.
    __slots__ = ("anything_goes_here",)

    def __init__(self):
        self.anything_goes_here = 1
