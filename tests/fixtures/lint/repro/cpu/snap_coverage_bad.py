"""A snapshot-covered class grows a slot the schema does not know:
``restore()`` would silently rebuild it at its constructor default."""


class StoreBuffer:
    __slots__ = ("capacity", "_slots", "_bits", "_head", "_tail",
                 "_count", "_by_addr", "_sneaky_new_state")

    def __init__(self, capacity):
        self.capacity = capacity
        self._slots = [None] * capacity
        self._bits = [0] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0
        self._by_addr = {}
        self._sneaky_new_state = 0
