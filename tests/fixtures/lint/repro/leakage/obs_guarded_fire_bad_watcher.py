"""Positive fixture: the obs discipline reaches the leakage package.

An observer-side component that re-fires a cached probe without the
``is not None`` guard crashes on NULL_BUS exactly like a bad pipeline
fire site — the ``obs`` scope makes that a lint failure here too.
"""


class LeakForwarder:
    def __init__(self, bus):
        self._p_fill = bus.resolve("cache.fill")

    def on_event(self, core_id, cycle, line):
        self._p_fill(core_id, cycle, line)
