"""Negative fixture: a leakage-style watcher that follows the contract.

Subscribes in ``__init__`` (before the System is built), names every
probe by its registered name, and guards the one probe it re-fires.
"""


class CleanLeakWatcher:
    def __init__(self, bus):
        self._p_fill = bus.resolve("cache.fill")
        bus.subscribe("load.perform", self._on_perform)
        bus.subscribe("squash.*", self._on_squash)
        bus.subscribe("noc.msg", self._on_noc)

    def _on_perform(self, core_id, cycle, seq, addr, line, slf, spec):
        if self._p_fill is not None:
            self._p_fill(core_id, cycle, line)

    def _on_squash(self, core_id, cycle, from_seq, flushed):
        pass

    def _on_noc(self, cycle, msg_class):
        pass
