"""Integration tests for the parallel, cached sweep runner.

The load-bearing properties:

* a parallel sweep is *cycle-identical* to the serial
  ``run_policy_sweep`` loop (the engine is deterministic and jobs are
  independent, so process fan-out must not change any number);
* the on-disk cache answers repeat sweeps with zero simulations, and
  its keys distinguish everything that changes a result.
"""

import dataclasses

import pytest

from repro.sim.config import SKYLAKE_LIKE, TINY
from repro.sweep import SweepJob, job_key, run_sweep
from repro.sweep.cache import ResultCache
from repro.workloads.runner import run_policy_sweep

PROFILES = ["fft", "radix", "502.gcc_1"]
POLICIES = ["x86", "370-NoSpec", "370-SLFSpec", "370-SLFSoS",
            "370-SLFSoS-key"]
CORES = 2
LENGTH = 400


def _grid_jobs():
    return [SweepJob(name=name, policy=policy, cores=CORES, length=LENGTH)
            for name in PROFILES for policy in POLICIES]


def test_parallel_sweep_matches_serial_reference(tmp_path):
    """3 profiles x 5 policies through a 2-worker pool == the serial
    in-process loop, stat for stat."""
    outcome = run_sweep(_grid_jobs(), workers=2,
                        cache_dir=tmp_path / "cache")
    assert outcome.simulated == len(PROFILES) * len(POLICIES)
    assert outcome.cached == 0

    it = iter(outcome.results)
    for name in PROFILES:
        serial = run_policy_sweep(name, POLICIES, cores=CORES,
                                  length=LENGTH)
        for policy in POLICIES:
            parallel = next(it)
            assert parallel.name == name
            assert parallel.policy == policy
            assert (dataclasses.asdict(parallel.stats)
                    == dataclasses.asdict(serial[policy].stats))


def test_second_sweep_is_fully_cached(tmp_path):
    jobs = _grid_jobs()
    first = run_sweep(jobs, workers=2, cache_dir=tmp_path / "cache")
    second = run_sweep(jobs, workers=2, cache_dir=tmp_path / "cache")
    assert second.simulated == 0
    assert second.cached == len(jobs)
    for a, b in zip(first.results, second.results):
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)


def test_cache_disabled_simulates_again(tmp_path):
    job = SweepJob(name="fft", policy="x86", cores=CORES, length=LENGTH)
    run_sweep([job], cache_dir=tmp_path / "cache")
    again = run_sweep([job], cache=False, cache_dir=tmp_path / "cache")
    assert again.simulated == 1
    assert again.cached == 0


def test_duplicate_jobs_simulate_once(tmp_path):
    job = SweepJob(name="fft", policy="x86", cores=CORES, length=LENGTH)
    outcome = run_sweep([job, job, job], cache_dir=tmp_path / "cache")
    assert outcome.simulated == 1
    assert len(outcome.results) == 3
    assert (dataclasses.asdict(outcome.results[0].stats)
            == dataclasses.asdict(outcome.results[2].stats))


def test_job_key_distinguishes_every_input():
    base = SweepJob(name="fft", policy="x86", cores=CORES, length=LENGTH)
    variants = [
        dataclasses.replace(base, name="radix"),
        dataclasses.replace(base, policy="370-SLFSoS-key"),
        dataclasses.replace(base, cores=CORES + 1),
        dataclasses.replace(base, length=LENGTH + 1),
        dataclasses.replace(base, seed=1),
        dataclasses.replace(base, config=TINY),
        dataclasses.replace(base, config=SKYLAKE_LIKE),
        dataclasses.replace(base, detect_violations=True),
        dataclasses.replace(base, memdep_hints=False),
    ]
    keys = [job_key(job) for job in [base] + variants]
    assert len(set(keys)) == len(keys)


def test_job_key_stable_across_calls():
    job = SweepJob(name="fft", policy="x86", cores=CORES, length=LENGTH)
    assert job_key(job) == job_key(job)


def test_corrupt_cache_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", {"a": 1})
    assert cache.get("k") == {"a": 1}
    cache.path_for("k").write_text("{not json")
    assert cache.get("k") is None
    assert cache.get("missing") is None


def test_obs_job_carries_report_and_distinct_key(tmp_path):
    plain = SweepJob(name="fft", policy="370-SLFSoS-key", cores=CORES,
                     length=LENGTH)
    observed = dataclasses.replace(plain, obs=True)
    assert job_key(plain) != job_key(observed)
    # The sample interval only matters once obs is on.
    assert (job_key(dataclasses.replace(plain, obs_sample_interval=32))
            == job_key(plain))
    assert (job_key(dataclasses.replace(observed, obs_sample_interval=32))
            != job_key(observed))

    outcome = run_sweep([plain, observed], cache_dir=tmp_path / "cache")
    assert outcome.obs[0] is None
    cell = outcome.obs[1]
    assert cell is not None
    assert cell["gate"]["intervals"] == \
        outcome.results[1].stats.total.gate_closes
    assert "gate_lock" in cell["histograms"]
    # The embedded summary must not perturb the stats themselves.
    assert (dataclasses.asdict(outcome.results[0].stats)
            == dataclasses.asdict(outcome.results[1].stats))


def test_obs_report_survives_the_cache(tmp_path):
    job = SweepJob(name="fft", policy="370-SLFSoS-key", cores=CORES,
                   length=LENGTH, obs=True)
    first = run_sweep([job], cache_dir=tmp_path / "cache")
    second = run_sweep([job], cache_dir=tmp_path / "cache")
    assert second.simulated == 0 and second.cached == 1
    assert second.obs[0] == first.obs[0]


def test_progress_reports_cache_hits_distinctly(tmp_path):
    job = SweepJob(name="fft", policy="x86", cores=CORES, length=LENGTH)
    lines: list = []
    run_sweep([job], cache_dir=tmp_path / "cache",
              progress=lines.append)
    assert any("[cache]" not in line and "to simulate" in line
               for line in lines)

    lines.clear()
    run_sweep([job], cache_dir=tmp_path / "cache",
              progress=lines.append)
    assert any(line.startswith("sweep: [cache] fft/x86")
               for line in lines)
    assert any("all 1 jobs cached" in line for line in lines)
    assert not any("ETA" in line for line in lines)


def test_memdep_hint_stripping_changes_the_run(tmp_path):
    """A memdep_hints=False job really runs cold: it must squash at
    least as often as the hinted run (cf. the StoreSet ablation)."""
    kwargs = dict(name="502.gcc_1", policy="370-SLFSoS-key", cores=1,
                  length=1500)
    hinted = SweepJob(**kwargs)
    cold = SweepJob(memdep_hints=False, **kwargs)
    outcome = run_sweep([hinted, cold], cache_dir=tmp_path / "cache")
    hinted_stats, cold_stats = (r.stats for r in outcome.results)
    assert (cold_stats.total.squashes_memdep
            >= hinted_stats.total.squashes_memdep)