"""The chaos conformance gate: litmus tests under injected faults.

Faults change *timing*, never *allowed outcomes* — every outcome a
faulted pipeline produces must still be in its axiomatic model's allowed
set, and any run the faults manage to wedge must surface as a structured
error, not a hang.  The full gate runs in CI as
``repro chaos --seed 0 --trials 25``; these tests are its quick kernel.
"""

import json

import pytest

from repro.litmus.pipeline_runner import check_conformance
from repro.litmus.tests import N6_CASE, SB_CASE
from repro.resilience import DEFAULT_CHAOS, FaultPlan, FaultSpec, run_chaos

QUICK_POLICIES = ("x86", "370-SLFSoS-key")


def test_quick_chaos_gate_is_clean():
    report = run_chaos(trials=3, seed=5, cases=[N6_CASE, SB_CASE],
                       policies=QUICK_POLICIES)
    assert report.ok, report.summary()
    assert len(report.cells) == 2 * len(QUICK_POLICIES)
    # The spec really injected something, or the gate tested nothing.
    assert sum(report.injected.values()) > 0
    assert "all outcomes allowed" in report.summary()


def test_chaos_report_is_json_safe():
    report = run_chaos(trials=1, seed=2, cases=[SB_CASE],
                       policies=("x86",))
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True
    assert payload["seed"] == 2
    assert payload["spec"] == DEFAULT_CHAOS.to_dict()
    cell = payload["cells"][0]
    assert cell["case"] == "sb" and cell["policy"] == "x86"
    assert cell["trials"] == 1 and cell["violations"] == []


def test_chaos_records_errors_instead_of_dying():
    """An impossible cycle budget makes every trial fail; the gate must
    finish and report each failure as a structured payload."""
    report = run_chaos(trials=2, seed=0, cases=[SB_CASE],
                       policies=("x86",), max_cycles=50)
    assert not report.ok
    assert len(report.errors) == 2
    for err in report.errors:
        assert err["type"] == "RuntimeError"
        assert "exceeded" in err["message"]
    assert "error(s)" in report.summary()


def test_chaos_is_deterministic():
    kwargs = dict(trials=2, seed=9, cases=[N6_CASE],
                  policies=("370-SLFSoS-key",))
    assert run_chaos(**kwargs).to_dict() == run_chaos(**kwargs).to_dict()


@pytest.mark.parametrize("policy", QUICK_POLICIES)
def test_conformance_holds_under_fault_factory(policy):
    """The pipeline-conformance bridge accepts a fault factory: outcomes
    under per-seed fault plans stay within the abstract model."""
    spec = FaultSpec(noc_jitter=8, noc_jitter_prob=0.4,
                     evict_period=200, squash_period=500,
                     sb_delay=6, sb_delay_prob=0.4)
    conforms, observed, allowed = check_conformance(
        N6_CASE.program, policy, seeds=range(6),
        fault_factory=lambda seed: FaultPlan(spec, seed=seed))
    assert conforms, (observed - allowed)
