"""Checkpointed sweep jobs and adaptive worker sizing.

* ``checkpoint_every`` is a distinct deterministic mode: it joins the
  cache key, refuses observer jobs, and ``execute_job`` resumes from a
  crash blob to the exact stats of the uninterrupted run, then clears
  the blob.
* ``workers=None`` probes the first cell and records which way it
  went in ``SweepOutcome.mode`` — and never picks a pool whose spawn
  cost the remaining cells cannot repay.
"""

import dataclasses

import pytest

from repro.sweep import SweepJob, job_key, run_sweep
from repro.sweep.cache import ResultCache
from repro.sweep.runner import execute_job

NAME = "fft"
POLICY = "370-SLFSoS"
CORES = 2
LENGTH = 400


def _job(**kw):
    base = dict(name=NAME, policy=POLICY, cores=CORES, length=LENGTH)
    base.update(kw)
    return SweepJob(**base)


# ---------------------------------------------------------------------------
# checkpoint_every: validation and identity
# ---------------------------------------------------------------------------

def test_checkpoint_every_must_be_positive():
    with pytest.raises(ValueError):
        _job(checkpoint_every=0)


def test_checkpoint_every_refuses_observers():
    with pytest.raises(ValueError):
        _job(checkpoint_every=200, obs=True)
    with pytest.raises(ValueError):
        _job(checkpoint_every=200, detect_violations=True)


def test_checkpoint_every_changes_the_cache_key():
    plain = _job()
    ckpt = _job(checkpoint_every=200)
    other = _job(checkpoint_every=300)
    assert len({job_key(plain), job_key(ckpt), job_key(other)}) == 3


def test_checkpoint_every_round_trips_through_dicts():
    job = _job(checkpoint_every=200)
    assert SweepJob.from_dict(job.to_dict()) == job
    # unset stays out of the payload, so old keys are untouched
    assert "checkpoint_every" not in _job().to_dict()


# ---------------------------------------------------------------------------
# crash resume
# ---------------------------------------------------------------------------

def test_execute_job_resumes_from_crash_blob(tmp_path):
    """Simulate a crash: leave a mid-run blob in the cache, re-execute,
    and land on the uninterrupted checkpointed run's exact stats."""
    job = _job(checkpoint_every=150)
    cache_dir = tmp_path / "cache"
    store = ResultCache(cache_dir)
    key = job_key(job)

    uninterrupted = execute_job(job, cache_dir)
    # the happy path leaves no residue behind
    assert store.get_blob(key) is None
    assert store.get_progress(key) is None

    # now "crash": run just far enough to write one checkpoint blob,
    # then hand the half-done cache to a fresh execute_job
    snaps = []
    from repro.sim.system import System
    from repro.workloads.profiles import PROFILES
    from repro.workloads.synthetic import generate_warmup, generate_workload
    traces = generate_workload(PROFILES[NAME], CORES, LENGTH, job.seed)
    warm = generate_warmup(PROFILES[NAME], CORES, LENGTH, job.seed)
    System(traces, POLICY, warm_caches=warm).run(
        checkpoint_every=150, on_checkpoint=snaps.append)
    assert snaps, "run too short to checkpoint — lengthen the trace"
    store.put_blob(key, snaps[0].to_bytes())

    resumed = execute_job(job, cache_dir)
    assert resumed == uninterrupted
    assert store.get_blob(key) is None, "blob must be cleared on success"


def test_corrupt_blob_falls_back_to_fresh_run(tmp_path):
    job = _job(checkpoint_every=150)
    cache_dir = tmp_path / "cache"
    store = ResultCache(cache_dir)
    key = job_key(job)
    store.put_blob(key, b"RSNAP1\x00garbage that will not decompress")

    fresh = execute_job(job, cache_dir)
    assert fresh == execute_job(job, cache_dir)
    assert store.get_blob(key) is None


def test_blob_and_progress_round_trip(tmp_path):
    store = ResultCache(tmp_path / "cache")
    assert store.get_blob("k") is None
    store.put_blob("k", b"\x00\x01payload")
    assert store.get_blob("k") == b"\x00\x01payload"
    store.clear_blob("k")
    assert store.get_blob("k") is None

    assert store.get_progress("k") is None
    store.put_progress("k", {"cycle": 42, "name": NAME})
    assert store.get_progress("k") == {"cycle": 42, "name": NAME}
    store.clear_progress("k")
    assert store.get_progress("k") is None


def test_checkpointed_sweep_matches_direct_execution(tmp_path):
    """run_sweep carries checkpoint_every through the worker path and
    the cache dir through to the resume machinery."""
    jobs = [_job(checkpoint_every=150),
            _job(policy="x86", checkpoint_every=150)]
    outcome = run_sweep(jobs, workers=1, cache_dir=tmp_path / "cache")
    assert outcome.simulated == 2
    for job, res in zip(jobs, outcome.results):
        assert res.stats.to_dict() == execute_job(job, None)


# ---------------------------------------------------------------------------
# adaptive sizing
# ---------------------------------------------------------------------------

def test_explicit_workers_record_plain_modes(tmp_path):
    serial = run_sweep([_job()], workers=1, cache_dir=tmp_path / "c1")
    assert serial.mode == "serial" and serial.workers == 1
    parallel = run_sweep([_job(), _job(policy="x86")], workers=2,
                         cache_dir=tmp_path / "c2")
    assert parallel.mode == "parallel" and parallel.workers == 2


def test_adaptive_stays_serial_when_pool_cannot_pay(tmp_path,
                                                    monkeypatch):
    """With the spawn cost pinned far above any honest saving, the
    probe must keep the sweep in-process — and still simulate every
    cell exactly once."""
    monkeypatch.setenv("REPRO_POOL_SPAWN_COST", "1e9")
    monkeypatch.setenv("REPRO_WORKERS", "4")
    jobs = [_job(), _job(policy="x86"), _job(policy="370-NoSpec")]
    outcome = run_sweep(jobs, cache_dir=tmp_path / "cache")
    assert outcome.mode == "adaptive-serial"
    assert outcome.workers == 1
    assert outcome.simulated == len(jobs)


def test_adaptive_goes_parallel_when_spawn_is_free(tmp_path,
                                                   monkeypatch):
    monkeypatch.setenv("REPRO_POOL_SPAWN_COST", "0")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    jobs = [_job(), _job(policy="x86"), _job(policy="370-NoSpec")]
    outcome = run_sweep(jobs, cache_dir=tmp_path / "cache")
    assert outcome.mode == "adaptive-parallel"
    assert outcome.workers == 2
    assert outcome.simulated == len(jobs)


def test_adaptive_modes_agree_with_serial_reference(tmp_path,
                                                    monkeypatch):
    """Whatever the probe decides, the numbers are the numbers."""
    jobs = [_job(), _job(policy="x86")]
    reference = run_sweep(jobs, workers=1, cache_dir=tmp_path / "ref")

    monkeypatch.setenv("REPRO_POOL_SPAWN_COST", "0")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    adaptive = run_sweep(jobs, cache_dir=tmp_path / "adaptive")
    assert adaptive.mode == "adaptive-parallel"
    for a, b in zip(reference.results, adaptive.results):
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)


def test_single_job_skips_the_probe(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_POOL_SPAWN_COST", "0")
    monkeypatch.setenv("REPRO_WORKERS", "4")
    outcome = run_sweep([_job()], cache_dir=tmp_path / "cache")
    assert outcome.mode == "adaptive-serial"
    assert outcome.simulated == 1
