"""Fleet integration: a real coordinator + worker-subprocess topology.

The headline test is the robustness acceptance criterion: a 32-job
batch spread over three workers, one of which is SIGKILLed mid-batch,
must complete with every result byte-identical to a single-node
:class:`~repro.serve.api.ServeService` run of the same requests — the
failover requeue may move jobs, never change answers.

The chaos-gate test layers dropped heartbeats and coordinator-side
partitions on top (via :class:`FleetFaultPlan`), the anti-entropy test
checks a late joiner is backfilled with results it now owns, and the
quota test exercises the coordinator's client-level 429s (which need
no workers at all — admission precedes dispatch).
"""

import asyncio
import json
import os
import shutil
import tempfile

from repro.fleet import AsyncNodeClient, FleetService
from repro.fleet.coordinator import CoordinatorApi
from repro.resilience.fleet import (FleetFaultSpec, _repro_env,
                                    _spawn_worker, kill_worker,
                                    run_fleet_chaos)
from repro.serve.api import ServeService
from repro.serve.jobs import DONE, FAILED, REJECTED

# A fixed litmus subset: every machine in the zoo executes locked
# RMWs now, so nothing needs filtering — this list just pins the
# batch composition (15 litmus + 17 bench = 32 jobs).
LITMUS_NAMES = ["2+2w", "coRR", "fig5-sb-fwd", "iriw", "lb", "mp", "n5",
                "n6", "rwc", "sb", "sb+mfences", "self-read",
                "spectre-bcb", "spectre-slf", "wrc"]


def _acceptance_batch():
    """32 requests: the litmus battery plus a bench grid with enough
    distinct seeds that no two jobs share a content key."""
    requests = [{"kind": "litmus", "name": name}
                for name in LITMUS_NAMES]
    for profile in ("fft", "radix", "barnes", "cholesky"):
        for seed in range(4):
            requests.append({"kind": "bench", "name": profile,
                             "policy": "370-SLFSoS-key", "cores": 2,
                             "length": 400, "seed": seed})
    requests.append({"kind": "bench", "name": "fft",
                     "policy": "x86", "cores": 2, "length": 400,
                     "seed": 99})
    assert len(requests) == 32
    return requests


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


async def _single_node_results(requests):
    """The same batch through one in-process ServeService — the
    reference the fleet must match byte for byte."""
    service = ServeService(shards=2, shard_workers=1, cache=False)
    service.start()
    try:
        records = [service.submit_one(request) for request in requests]
        for job in records:
            await service.wait_for(job, 240.0)
        assert all(job.state == DONE for job in records), (
            [(job.id, job.state, job.error) for job in records
             if job.state != DONE])
        return {job.key: job.result for job in records}
    finally:
        await service.pool.shutdown(cancel=True)


def test_kill_one_of_three_workers_midbatch_byte_identity():
    requests = _acceptance_batch()
    report = run_fleet_chaos(jobs=requests, workers=3, seed=0,
                             spec=FleetFaultSpec(),  # the kill is the fault
                             kill_worker_after_s=0.5,
                             deadline_s=240.0)
    assert report.ok, report.summary()
    assert report.jobs == 32 and report.done == 32
    assert report.killed_workers == 1
    # The victim held in-flight work when it died; failover requeued it
    # onto the survivors.  (Death *declaration* may lag the recovery:
    # polls on a SIGKILLed node fail with connection resets long before
    # the heartbeat timeout, which is exactly what we want.)
    assert report.requeues >= 1
    assert report.mismatched == 0

    reference = asyncio.run(_single_node_results(requests))
    assert set(report.results) == set(reference)
    for key, payload in report.results.items():
        assert _canon(payload) == _canon(reference[key]), key


def test_chaos_gate_heartbeat_drops_and_partitions():
    # Partition windows (1.2 s) outlast the heartbeat timeout (0.8 s),
    # so victims get declared dead and re-register when the window
    # closes.  The period (2 s) leaves the initial registration alone
    # and the batch is sized to span several partition periods — the
    # litmus battery alone drains before the first window opens.
    spec = FleetFaultSpec(heartbeat_drop_p=0.15,
                          partition_period_s=2.5,
                          partition_duration_s=1.2)
    jobs = [{"kind": "litmus", "name": name} for name in LITMUS_NAMES]
    jobs += [{"kind": "bench", "name": profile, "policy": "x86",
              "cores": 2, "length": 8000, "seed": seed}
             for profile in ("fft", "radix", "barnes", "cholesky")
             for seed in range(3)]
    report = run_fleet_chaos(jobs=jobs, workers=3, seed=1, spec=spec,
                             heartbeat_timeout=0.8,
                             heartbeat_interval=0.1,
                             deadline_s=240.0)
    assert report.ok, report.summary()
    assert report.done == report.jobs
    assert report.injected["heartbeat_drop"] >= 1
    assert report.injected["partition"] >= 1
    # Partitions outlive the heartbeat timeout, so nodes were declared
    # dead and re-registered when their window closed.
    assert report.node_deaths >= 1
    assert report.registrations > 3


def test_anti_entropy_backfills_a_late_joiner():
    asyncio.run(_anti_entropy_scenario())


async def _anti_entropy_scenario():
    service = FleetService(heartbeat_timeout=5.0)
    api = CoordinatorApi(service, host="127.0.0.1", port=0)
    await api.start()
    url = f"http://127.0.0.1:{api.port}"
    env = _repro_env()
    tmp = tempfile.mkdtemp(prefix="fleet-ae-")
    procs = []
    try:
        proc0, _port0 = await _spawn_worker(
            url, "ae-w0", os.path.join(tmp, "w0"), 0.25, env)
        procs.append(proc0)
        await _wait_for(lambda: len(service.ring) == 1)

        job = await service.submit_one({"kind": "litmus", "name": "mp"})
        await service.wait_for(job, 60.0)
        assert job.state == DONE, job.error

        proc1, port1 = await _spawn_worker(
            url, "ae-w1", os.path.join(tmp, "w1"), 0.25, env)
        procs.append(proc1)
        await _wait_for(lambda: len(service.ring) == 2)

        # With two nodes and K=2 the joiner owns every key; the
        # registration-time anti-entropy sync must hand it the result
        # even though its private cache dir never saw the job.
        client = AsyncNodeClient(f"http://127.0.0.1:{port1}",
                                 timeout=5.0)

        async def joiner_has_key():
            _status, doc = await client.request("GET", "/v1/store")
            return job.key in doc.get("keys", [])

        await _wait_for(joiner_has_key)
        assert service.metrics.counter("anti_entropy_pushes") >= 1
    finally:
        for proc in procs:
            kill_worker(proc)
        await asyncio.gather(*(p.wait() for p in procs),
                             return_exceptions=True)
        await api.stop(drain_timeout=5.0)
        shutil.rmtree(tmp, ignore_errors=True)


async def _wait_for(condition, deadline=30.0, interval=0.05):
    t_end = asyncio.get_running_loop().time() + deadline
    while True:
        result = condition()
        if asyncio.iscoroutine(result):
            result = await result
        if result:
            return
        if asyncio.get_running_loop().time() >= t_end:
            raise AssertionError(f"condition never held: {condition}")
        await asyncio.sleep(interval)


def test_client_quotas_reject_with_structured_429():
    asyncio.run(_quota_scenario())


async def _quota_scenario():
    # No workers: quota admission happens before dispatch, and the
    # admitted jobs then fail fast on the no-live-nodes timeout.
    service = FleetService(quota_rate=1.0, quota_burst=2,
                           no_nodes_timeout=0.2)
    service.start()
    try:
        noisy = []
        for name in ("mp", "sb", "lb"):
            noisy.append(await service.submit_one(
                {"kind": "litmus", "name": name}, client_id="noisy"))
        assert noisy[0].state != REJECTED
        assert noisy[1].state != REJECTED
        assert noisy[2].state == REJECTED
        rejection = noisy[2].rejection
        assert rejection["error"] == "quota-exceeded"
        assert rejection["status"] == 429
        assert rejection["client"] == "noisy"
        assert rejection["retry_after_s"] > 0

        # Buckets are per client: another id is unaffected.
        quiet = await service.submit_one(
            {"kind": "litmus", "name": "wrc"}, client_id="quiet")
        assert quiet.state != REJECTED

        for job in (noisy[0], noisy[1], quiet):
            await service.wait_for(job, 10.0)
            assert job.state == FAILED
            assert job.error["type"] == "no-live-nodes"

        snap = service.quotas.snapshot()
        assert snap["rejected"] == 1
        assert snap["admitted"] == 3
    finally:
        await service.drain(timeout=2.0)
