"""Crash tolerance of the sweep runner: timeouts, worker exceptions,
retries, Ctrl-C, and cache corruption must all leave the sweep able to
finish and report — a night-long sweep never dies to one bad cell."""

import dataclasses
import signal

import pytest

from repro.sim.config import TINY
from repro.sweep import SweepJob, run_sweep
from repro.sweep.cache import ResultCache
from repro.sweep.runner import JobTimeout, _execute_job_guarded, job_key

CORES = 2
#: 2 traces on a 1-core config: System.__init__ raises ValueError —
#: a deterministic in-worker failure with no monkeypatching needed.
BROKEN_CONFIG = dataclasses.replace(TINY, cores=1)


def _good(policy="x86", length=300):
    return SweepJob(name="fft", policy=policy, cores=CORES, length=length,
                    config=TINY)


def _raising(policy="370-NoSpec"):
    return SweepJob(name="fft", policy=policy, cores=CORES, length=300,
                    config=BROKEN_CONFIG)


def _slow(policy="370-SLFSpec"):
    return SweepJob(name="fft", policy=policy, cores=CORES, length=50_000,
                    config=TINY)


def test_worker_exception_becomes_structured_error(tmp_path):
    outcome = run_sweep([_good(), _raising()], workers=1,
                        cache_dir=tmp_path)
    assert outcome.results[0] is not None
    assert outcome.results[1] is None
    assert outcome.failed == 1 and not outcome.interrupted
    err = outcome.errors[1]
    assert err["type"] == "ValueError"
    assert "traces but only" in err["message"]
    assert err["attempts"] == 1 and err["timeout"] is False
    assert outcome.errors[0] is None


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                    reason="per-job timeouts need SIGALRM")
def test_timeout_cell_is_flagged_and_sweep_completes(tmp_path):
    outcome = run_sweep([_good(), _slow()], workers=1,
                        cache_dir=tmp_path, timeout=0.05)
    assert outcome.results[0] is not None
    assert outcome.results[1] is None
    err = outcome.errors[1]
    assert err["type"] == "JobTimeout" and err["timeout"] is True


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                    reason="per-job timeouts need SIGALRM")
def test_timeout_nests_inside_an_outer_alarm():
    """The in-process guard must restore a caller's armed timer (the
    test suite itself runs under one) instead of clobbering it."""
    signal.setitimer(signal.ITIMER_REAL, 60.0)
    try:
        with pytest.raises(JobTimeout):
            _execute_job_guarded(_slow(), timeout=0.05)
        remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0)
        assert 0 < remaining <= 60.0
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)


def test_mixed_pool_sweep_completes_and_caches_survivors(tmp_path):
    jobs = [_good(), _raising(), _slow()]
    outcome = run_sweep(jobs, workers=2, cache_dir=tmp_path, timeout=0.2)
    assert [r is not None for r in outcome.results] == [True, False, False]
    assert outcome.failed == 2
    # The good cell was cached despite its neighbours failing.
    again = run_sweep([_good()], workers=1, cache_dir=tmp_path)
    assert again.cached == 1 and again.simulated == 0


def test_retries_are_bounded_and_counted(tmp_path):
    notes = []
    outcome = run_sweep([_raising()], workers=1, cache_dir=tmp_path,
                        retries=2, backoff=0.0, progress=notes.append)
    assert outcome.failed == 1
    assert outcome.errors[0]["attempts"] == 3  # 1 try + 2 retries
    assert sum("retrying" in n for n in notes) == 2


def test_identical_failing_jobs_share_one_error(tmp_path):
    job = _raising()
    outcome = run_sweep([job, job], workers=1, cache_dir=tmp_path)
    assert outcome.failed == 2
    assert outcome.errors[0] == outcome.errors[1]


class _InterruptAfterFirst:
    """A progress callback that raises KeyboardInterrupt once the first
    cell completes — a deterministic stand-in for Ctrl-C."""

    def __init__(self):
        self.fired = False

    def __call__(self, msg):
        if "done" in msg and not self.fired:
            self.fired = True
            raise KeyboardInterrupt


@pytest.mark.parametrize("workers", [1, 2])
def test_interrupt_keeps_completed_cells(tmp_path, workers):
    jobs = [_good("x86"), _good("370-NoSpec"), _good("370-SLFSoS")]
    outcome = run_sweep(jobs, workers=workers, cache_dir=tmp_path,
                        progress=_InterruptAfterFirst())
    assert outcome.interrupted
    kept = [r for r in outcome.results if r is not None]
    assert len(kept) >= 1
    for result, err in zip(outcome.results, outcome.errors):
        if result is None:
            assert err["type"] == "Cancelled"
    # Completed cells were cached before the interrupt hit.
    again = run_sweep(jobs, workers=1, cache_dir=tmp_path)
    assert again.cached >= len(kept)
    assert not again.interrupted and again.failed == 0


def test_corrupt_cache_entry_warns_and_resimulates(tmp_path):
    job = _good()
    run_sweep([job], workers=1, cache_dir=tmp_path)
    cache = ResultCache(tmp_path)
    cache.path_for(job_key(job)).write_text('{"truncated": ')
    notes = []
    outcome = run_sweep([job], workers=1, cache_dir=tmp_path,
                        progress=notes.append)
    assert outcome.cached == 0 and outcome.simulated == 1
    assert any("corrupt" in n for n in notes)


def test_foreign_cache_payload_warns_and_resimulates(tmp_path):
    job = _good()
    ResultCache(tmp_path).put(job_key(job), {"not": "a stats payload"})
    notes = []
    outcome = run_sweep([job], workers=1, cache_dir=tmp_path,
                        progress=notes.append)
    assert outcome.cached == 0 and outcome.simulated == 1
    assert any("unreadable" in n for n in notes)


def test_cache_write_failure_warns_not_raises(tmp_path):
    blocked = tmp_path / "a-file-not-a-directory"
    blocked.write_text("")
    notes = []
    cache = ResultCache(blocked / "cache", on_warning=notes.append)
    cache.put("k", {"a": 1})  # must not raise
    assert any("could not store" in n for n in notes)
    assert cache.get("k") is None


def test_unreadable_cache_entry_warns(tmp_path):
    notes = []
    cache = ResultCache(tmp_path, on_warning=notes.append)
    cache.put("k", {"a": 1})
    path = cache.path_for("k")
    path.chmod(0o000)
    try:
        import os
        if os.geteuid() == 0:  # root reads anything; nothing to test
            pytest.skip("permission bits do not bind as root")
        assert cache.get("k") is None
        assert any("cannot read" in n for n in notes)
    finally:
        path.chmod(0o644)


def test_cache_warning_defaults_to_warnings_module(tmp_path):
    cache = ResultCache(tmp_path)
    cache.path_for("k").write_text("][")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert cache.get("k") is None
