"""Integration: the paper's qualitative results on calibrated workloads.

These tests run real benchmark profiles through the full stack and
assert the *shape* of the paper's evaluation: which configuration wins,
roughly by how much, and which mechanism produces which statistic.
"""

import pytest

from repro.workloads.runner import (geomean, normalized_times,
                                    run_benchmark, run_policy_sweep)

# Forwarding-heavy benchmarks where the configurations separate clearly.
SAMPLES = ["barnes", "water_spatial", "502.gcc_1", "511.povray"]


@pytest.fixture(scope="module")
def sweeps():
    return {name: run_policy_sweep(name, cores=4, length=2500)
            for name in SAMPLES}


class TestFigure10Shape:
    def test_nospec_is_much_slower_than_x86(self, sweeps):
        """Blanket enforcement costs heavily (paper: 1.27x/1.23x)."""
        ratios = [normalized_times(r)["370-NoSpec"]
                  for r in sweeps.values()]
        assert geomean(ratios) > 1.15
        for name, result in sweeps.items():
            assert normalized_times(result)["370-NoSpec"] > 1.05, name

    def test_speculation_recovers_most_of_the_gap(self, sweeps):
        """All speculative 370 variants stay within ~10% of x86 while
        NoSpec does not (paper: 1.07/1.05/1.025 vs 1.27)."""
        for name, result in sweeps.items():
            norm = normalized_times(result)
            for policy in ("370-SLFSpec", "370-SLFSoS", "370-SLFSoS-key"):
                assert norm[policy] < norm["370-NoSpec"], (name, policy)
                assert norm[policy] < 1.12, (name, policy)

    def test_key_variant_close_to_x86(self, sweeps):
        """The paper's proposal: ~2.5% average overhead."""
        ratios = [normalized_times(r)["370-SLFSoS-key"]
                  for r in sweeps.values()]
        assert geomean(ratios) < 1.06

    def test_key_never_worse_than_slfspec_on_average(self, sweeps):
        key = geomean([normalized_times(r)["370-SLFSoS-key"]
                       for r in sweeps.values()])
        slfspec = geomean([normalized_times(r)["370-SLFSpec"]
                           for r in sweeps.values()])
        assert key <= slfspec + 0.005


class TestMechanismStats:
    def test_forwarding_only_under_forwarding_policies(self, sweeps):
        for name, result in sweeps.items():
            assert result["370-NoSpec"].stats.total.slf_loads == 0
            assert result["x86"].stats.total.slf_loads > 0
            assert result["370-SLFSoS-key"].stats.total.slf_loads > 0

    def test_gate_closes_only_for_sos_variants(self, sweeps):
        for name, result in sweeps.items():
            for policy in ("x86", "370-NoSpec", "370-SLFSpec"):
                assert result[policy].stats.total.gate_closes == 0
            assert result["370-SLFSoS-key"].stats.total.gate_closes > 0

    def test_nospec_waits_on_the_store_buffer(self, sweeps):
        for name, result in sweeps.items():
            assert result["370-NoSpec"].stats.total.sb_wait_events > 0

    def test_slfspec_stalls_slf_loads_at_head(self, sweeps):
        for name, result in sweeps.items():
            total = result["370-SLFSpec"].stats.total
            assert total.slf_retire_stall_events > 0


class TestTableIVShape:
    def test_forwarded_share_tracks_paper(self):
        """Measured SLF share must be close to the Table IV target the
        generator was calibrated against."""
        for name in ("barnes", "502.gcc_1", "fft"):
            result = run_benchmark(name, cores=4, length=2500)
            total = result.stats.total
            from repro.workloads import get_profile
            target = get_profile(name).forwarded_pct
            assert total.forwarded_pct == pytest.approx(target, abs=1.0), \
                name

    def test_gate_stalls_are_rare_and_short(self):
        """Section VI-A: closing the gate is 'a rare and short-lived
        event' — ~1% of instructions, tens of cycles."""
        result = run_benchmark("502.gcc_1", cores=4, length=2500)
        total = result.stats.total
        assert total.gate_stalls_pct < 15.0
        assert total.avg_gate_stall_cycles < 120.0


class TestFigure9Shape:
    def test_nospec_adds_rob_lq_stall_cycles(self, sweeps):
        """370-NoSpec throttles load completion: it spends at least as
        many absolute cycles dispatch-stalled on a full ROB/LQ as x86
        does (the Figure 9 pattern)."""
        for name, result in sweeps.items():
            x86 = result["x86"].stats.total
            nospec = result["370-NoSpec"].stats.total
            assert (nospec.stall_cycles_rob + nospec.stall_cycles_lq
                    >= x86.stall_cycles_rob + x86.stall_cycles_lq), name
