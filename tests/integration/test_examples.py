"""Smoke tests: every example script runs and tells the right story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout, check=True)


def test_quickstart():
    out = _run("quickstart.py").stdout
    assert "x86: ALLOWED" in out
    assert "370: forbidden" in out
    assert "370-SLFSoS-key" in out


def test_litmus_gallery():
    out = _run("litmus_gallery.py").stdout
    assert "AXIOM MISMATCH" not in out
    assert out.count("axioms agree") >= 21   # 7 cases x 3 models
    assert "x86 ONLY (case 1)" in out


def test_consistency_checker():
    out = _run("consistency_checker.py", "250").stdout
    assert "x86 exhibits non-store-atomic behaviour here" in out
    assert "store atomicity cannot be observed violated" in out
    assert "found" in out


def test_contended_lock():
    out = _run("contended_lock.py").stdout
    lines = [l for l in out.splitlines()
             if l.startswith(("x86 ", "370-")) and l.split()[-1].isdigit()]
    assert len(lines) == 5
    x86_witnesses = int(lines[0].split()[-1])
    assert x86_witnesses > 0
    for line in lines[1:]:
        assert int(line.split()[-1]) == 0  # 370 configs witness nothing


def test_store_atomicity_cost():
    out = _run("store_atomicity_cost.py", "water_spatial", "2").stdout
    assert "370-SLFSoS-key detail" in out
    assert "paper" in out
    # All five configs appear in the sweep table.
    for policy in ("x86", "370-NoSpec", "370-SLFSpec", "370-SLFSoS",
                   "370-SLFSoS-key"):
        assert policy in out


def test_witness_hunt():
    out = _run("witness_hunt.py", "120").stdout
    lines = [l for l in out.splitlines() if l.startswith(("x86 ", "370-"))]
    assert len(lines) == 5
    x86_hits = int(lines[0].split()[2])
    assert x86_hits > 0, "x86 pipeline should witness n6"
    for line in lines[1:]:
        assert int(line.split()[2]) == 0, line


def test_dekker_lock():
    out = _run("dekker_lock.py").stdout
    assert "BROKEN" in out       # plain sb breaks on the pipeline
    assert out.count("safe") >= 6  # fences and locked xchg fix it
