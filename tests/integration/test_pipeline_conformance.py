"""Pipeline-vs-model conformance: the reproduction's strongest check.

The cycle-level pipeline carries real data values; litmus programs are
compiled to micro-op traces (with randomized timing perturbation) and
executed under each of the five configurations.  Every architectural
outcome the pipeline produces must be allowed by the configuration's
abstract memory model — and the non-store-atomic witnesses must be
*reachable* on the x86 pipeline while every 370 configuration excludes
them (the paper's correctness claim, demonstrated end to end).
"""

import pytest

from repro.core.policies import POLICY_ORDER
from repro.litmus.operational import _matches, enumerate_outcomes
from repro.litmus.pipeline_runner import (check_conformance,
                                          observed_outcomes, run_once)
from repro.litmus.tests import FIG5, MP, N6, SB, SB_FENCED

LITMUS_TESTS = (SB, MP, N6, FIG5, SB_FENCED)


@pytest.mark.parametrize("policy", POLICY_ORDER)
@pytest.mark.parametrize("program", LITMUS_TESTS,
                         ids=lambda p: p.name)
def test_pipeline_conforms_to_model(program, policy):
    conforms, observed, allowed = check_conformance(
        program, policy, seeds=range(25))
    assert conforms, (
        f"{policy} produced model-illegal outcomes on {program.name}: "
        f"{sorted(map(str, observed - allowed))}")
    assert observed, "no outcomes observed"


class TestWitnessReachability:
    """The x86 pipeline can be caught violating store atomicity; the
    370 pipelines cannot."""

    N6_WITNESS = dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
    FIG5_WITNESS = dict(r0_rx=1, r0_ry=0, r1_ry=1, r1_rx=0)

    def test_x86_exhibits_n6(self):
        observed = observed_outcomes(N6, "x86", seeds=range(300))
        assert any(_matches(o, self.N6_WITNESS) for o in observed)

    def test_x86_exhibits_fig5_disagreement(self):
        observed = observed_outcomes(FIG5, "x86", seeds=range(300))
        assert any(_matches(o, self.FIG5_WITNESS) for o in observed)

    @pytest.mark.parametrize("policy", POLICY_ORDER[1:])
    def test_370_pipelines_never_exhibit_n6(self, policy):
        observed = observed_outcomes(N6, policy, seeds=range(150))
        assert not any(_matches(o, self.N6_WITNESS) for o in observed)

    @pytest.mark.parametrize("policy", POLICY_ORDER[1:])
    def test_370_pipelines_never_exhibit_fig5(self, policy):
        observed = observed_outcomes(FIG5, policy, seeds=range(150))
        assert not any(_matches(o, self.FIG5_WITNESS) for o in observed)


class TestValueLayer:
    def test_single_run_is_deterministic(self):
        a = run_once(N6, "x86", seed=17)
        b = run_once(N6, "x86", seed=17)
        assert a == b

    def test_sequential_semantics_on_one_core(self):
        from repro.litmus.program import Ld, St, make_program
        program = make_program(
            "seq", [[St("x", 3), Ld("x", "r0"), St("x", 7),
                     Ld("x", "r1")]])
        for policy in POLICY_ORDER:
            outcome = run_once(program, policy, seed=1)
            assert outcome.reg(0, "r0") == 3, policy
            assert outcome.reg(0, "r1") == 7, policy
            assert outcome.mem("x") == 7, policy

    def test_fenced_sb_never_relaxes_on_pipeline(self):
        witness = dict(r0_ry=0, r1_rx=0)
        for policy in ("x86", "370-SLFSoS-key"):
            observed = observed_outcomes(SB_FENCED, policy,
                                         seeds=range(60))
            assert not any(_matches(o, witness) for o in observed), policy

    def test_sb_relaxation_reachable_on_every_tso_pipeline(self):
        """The st->ld relaxation (both loads read 0) is the TSO
        behaviour all five configurations share — each pipeline should
        exhibit it with enough timing variation."""
        witness = dict(r0_ry=0, r1_rx=0)
        for policy in POLICY_ORDER:
            observed = observed_outcomes(SB, policy, seeds=range(80))
            assert any(_matches(o, witness) for o in observed), policy

    def test_locked_rmw_conforms(self):
        """sb with both sides locked: the Dekker fix holds on the
        pipeline — both-zero is never observed, outcomes stay legal."""
        from repro.litmus.battery import SB_BOTH_RMW
        for policy in ("x86", "370-SLFSoS-key"):
            conforms, observed, allowed = check_conformance(
                SB_BOTH_RMW, policy, seeds=range(30))
            assert conforms, policy
            assert not any(_matches(o, dict(r0_ry=0, r1_rx=0))
                           for o in observed), policy
