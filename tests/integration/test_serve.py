"""Integration tests for ``repro.serve``: the full service lifecycle.

Each test boots a real :class:`HttpApi` server (loopback, port 0) on a
background thread and drives it over HTTP with :class:`ServeClient` —
the same path production clients use.  The battery covers the
acceptance criteria: a mixed batch served byte-identically to direct
execution, warm resubmits answered from the store, admission-control
rejections, single-flight dedup of concurrent duplicates, the
stuck-shard watchdog, graceful SIGTERM drain of a real subprocess, and
the HTTP surface itself (long-poll, metrics, error statuses).
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.policies import POLICY_ORDER
from repro.serve.api import HttpApi, ServeService
from repro.serve.client import ServeClient
from repro.serve.jobs import LitmusSpec, execute_litmus, request_key
from repro.sweep.cache import ResultCache
from repro.sweep.runner import SweepJob, execute_job, run_sweep


# ----------------------------------------------------------------------
# Harness: a live server on a background thread
# ----------------------------------------------------------------------

class ServerThread:
    """Run ``HttpApi`` on its own event loop in a daemon thread."""

    def __init__(self, **service_kwargs):
        self.service_kwargs = service_kwargs
        self.service = None
        self.api = None
        self.port = None
        self.notes = []
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.service = ServeService(on_note=self.notes.append,
                                    **self.service_kwargs)
        self.api = HttpApi(self.service, port=0)
        self._loop = asyncio.get_running_loop()
        await self.api.start()
        self.port = self.api.port
        self._ready.set()
        await self.api._shutdown.wait()
        await self.api.stop(drain_timeout=60)

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("server did not come up")
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self.api.request_shutdown)
        self._thread.join(timeout=60)

    def client(self, timeout=30.0):
        return ServeClient(f"http://127.0.0.1:{self.port}",
                           timeout=timeout)


def _bench(name, policy, length=600, **kw):
    return {"kind": "bench", "name": name, "policy": policy,
            "cores": 2, "length": length, **kw}


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# The acceptance batch: ≥32 mixed jobs, byte-identical, then warm
# ----------------------------------------------------------------------

LITMUS_NAMES = ["2+2w", "coRR", "iriw", "lb", "mp", "n5", "n6", "rwc",
                "sb", "sb+mfences", "self-read", "wrc"]


def test_mixed_batch_byte_identity_and_warm_resubmit(tmp_path):
    bench_cells = [(name, policy)
                   for name in ("radix", "fft", "barnes", "cholesky")
                   for policy in POLICY_ORDER]
    requests = [_bench(name, policy) for name, policy in bench_cells]
    requests += [{"kind": "litmus", "name": name}
                 for name in LITMUS_NAMES]
    assert len(requests) >= 32

    with ServerThread(shards=2, shard_workers=2,
                      cache_dir=tmp_path) as server:
        client = server.client()

        t0 = time.monotonic()
        batch = client.submit_batch(requests)
        assert batch["accepted"] == len(requests)
        assert batch["rejected"] == 0 and batch["invalid"] == 0
        ids = [doc["id"] for doc in batch["jobs"]]
        docs = client.wait_all(ids, deadline=240)
        cold_elapsed = time.monotonic() - t0

        served = [docs[i] for i in ids]
        assert all(doc["state"] == "done" for doc in served)

        # Byte identity: every served payload equals direct execution.
        for doc, (name, policy) in zip(served, bench_cells):
            direct = execute_job(
                SweepJob(name=name, policy=policy, cores=2, length=600))
            assert _canon(doc["result"]) == _canon(direct), \
                f"served {name}/{policy} diverges from execute_job"
        for doc, name in zip(served[len(bench_cells):], LITMUS_NAMES):
            direct = execute_litmus(LitmusSpec(name))
            assert _canon(doc["result"]) == _canon(direct)

        # Warm resubmit: all hits, no new simulations, much faster.
        executed_before = server.service.metrics.counter("jobs_executed")
        t1 = time.monotonic()
        rerun = client.submit_batch(requests)
        warm_elapsed = time.monotonic() - t1
        assert all(doc["state"] == "done" and doc["cache_hit"]
                   for doc in rerun["jobs"])
        assert server.service.metrics.counter("jobs_executed") == \
            executed_before
        assert warm_elapsed < cold_elapsed / 5, \
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"

    # The store IS the sweep cache: a direct run_sweep against the same
    # directory answers every bench cell without simulating.
    outcome = run_sweep(
        [SweepJob(name=n, policy=p, cores=2, length=600)
         for n, p in bench_cells],
        workers=1, cache=True, cache_dir=tmp_path)
    assert outcome.cached == len(bench_cells)
    assert outcome.simulated == 0


def test_concurrent_duplicates_simulate_once(tmp_path):
    cell = _bench("radix", "x86", length=700, seed=9)
    with ServerThread(shards=2, shard_workers=2,
                      cache_dir=tmp_path) as server:
        client = server.client()
        batch = client.submit_batch([cell] * 6)
        assert batch["accepted"] == 6
        docs = client.wait_all([d["id"] for d in batch["jobs"]])
        payloads = {_canon(d["result"]) for d in docs.values()}
        assert len(payloads) == 1
        assert all(d["state"] == "done" for d in docs.values())
        metrics = client.metrics()
        assert metrics["counters"]["jobs_executed"] == 1
        assert metrics["counters"]["jobs_deduped"] == 5
        # Followers share the primary's shard and are flagged.
        flags = sorted(d["deduped"] for d in batch["jobs"])
        assert flags == [False] + [True] * 5
        assert len({d["shard"] for d in batch["jobs"]}) == 1


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------

def test_admission_rejects_beyond_queue_limit(tmp_path):
    slow = [_bench("radix", policy, length=8000)
            for policy in POLICY_ORDER] + [_bench("fft", "x86",
                                                  length=8000)]
    with ServerThread(shards=1, shard_workers=1, queue_limit=3,
                      cache_dir=tmp_path) as server:
        client = server.client()
        batch = client.submit_batch(slow)     # 6 distinct jobs, cap 3
        states = [d["state"] for d in batch["jobs"]]
        assert batch["accepted"] == 3 and batch["rejected"] == 3
        assert states[:3] == ["running", "queued", "queued"]
        assert states[3:] == ["rejected"] * 3
        rejection = batch["jobs"][3]["rejection"]
        assert rejection["error"] == "queue-full"
        assert rejection["status"] == 429
        assert rejection["shard"] == 0
        assert rejection["depth"] == rejection["limit"] == 3
        assert rejection["retry_after_s"] > 0

        # A single-job POST while the queue is still full → HTTP 429.
        status, doc = client.submit(_bench("barnes", "x86", length=8000))
        assert status == 429
        assert doc["state"] == "rejected"

        # The admitted jobs still run to completion.
        admitted = [d["id"] for d in batch["jobs"][:3]]
        done = client.wait_all(admitted, deadline=120)
        assert all(d["state"] == "done" for d in done.values())
        assert client.metrics()["counters"]["jobs_rejected"] == 4


def test_draining_rejects_everything_with_503(tmp_path):
    with ServerThread(shards=1, cache_dir=tmp_path) as server:
        client = server.client()
        server.service.draining = True
        server.service.pool.draining = True
        status, doc = client.submit(_bench("radix", "x86"))
        assert status == 503
        assert doc["state"] == "rejected"
        assert doc["rejection"]["error"] == "draining"
        health = client.healthz()
        assert health["draining"] is True


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------

def test_watchdog_recycles_a_stuck_shard(tmp_path):
    heavy = _bench("radix", "x86", length=500_000)
    heavy["cores"] = 8
    with ServerThread(shards=1, shard_workers=1, retries=0,
                      stuck_after=0.5, cache_dir=tmp_path) as server:
        client = server.client()
        status, doc = client.submit(heavy)
        assert status == 202
        _, failed = client.job(doc["id"], wait=30)
        assert failed["state"] == "failed"
        error = failed["error"]
        assert error["type"] == "StuckShardError"
        assert error["diagnostic"]["shard"] == 0
        assert error["diagnostic"]["inflight"][0]["job"] == doc["id"]

        # The recycled shard is healthy: the next job succeeds.
        status, quick = client.submit(_bench("radix", "x86"))
        _, done = client.job(quick["id"], wait=30)
        assert done["state"] == "done"
        metrics = client.metrics()
        assert metrics["counters"]["shard_recycles"] >= 1
        assert metrics["counters"]["jobs_failed"] == 1


# ----------------------------------------------------------------------
# Graceful SIGTERM drain (real subprocess through the CLI)
# ----------------------------------------------------------------------

def test_sigterm_drains_and_persists_results(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--shards", "1", "--cache-dir", str(tmp_path)],
        cwd="/root/repo", env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        line = proc.stdout.readline()
        assert "listening on http://" in line, line
        port = int(line.rsplit(":", 1)[1])
        client = ServeClient(f"http://127.0.0.1:{port}")
        client.wait_ready()

        job = SweepJob(name="radix", policy="x86", cores=2, length=5000)
        status, doc = client.submit(
            _bench("radix", "x86", length=5000))
        assert status == 202                  # admitted, not yet done

        proc.send_signal(signal.SIGTERM)      # drain, don't drop
        assert proc.wait(timeout=90) == 0
        tail = proc.stdout.read()
        assert "drained and stopped" in tail
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The in-flight job's result survived the shutdown, under the very
    # key a future service (or run_sweep) would look up.
    persisted = ResultCache(tmp_path).get(request_key(job))
    assert persisted is not None
    assert _canon(persisted) == _canon(execute_job(job))


# ----------------------------------------------------------------------
# HTTP surface details
# ----------------------------------------------------------------------

def test_http_surface_statuses_and_metrics(tmp_path):
    with ServerThread(shards=1, cache_dir=tmp_path) as server:
        client = server.client()

        health = client.healthz()
        assert health["ok"] is True
        assert health["draining"] is False
        assert health["shards"] == 1

        # Long-poll: one GET with ?wait= returns the finished document.
        status, doc = client.submit(_bench("radix", "x86", length=900))
        assert status == 202
        status, done = client.job(doc["id"], wait=30)
        assert status == 200 and done["state"] == "done"

        # A resubmit of a known key answers 200 immediately.
        status, hit = client.submit(_bench("radix", "x86", length=900))
        assert status == 200 and hit["cache_hit"] is True

        metrics = client.metrics()
        for counter in ("jobs_submitted", "jobs_executed",
                        "jobs_cache_hit", "http_requests"):
            assert counter in metrics["counters"]
        for gauge in ("uptime_s", "queue_depth", "inflight",
                      "cache_hit_rate", "jobs_per_sec", "draining"):
            assert gauge in metrics["gauges"]
        assert metrics["histograms"]["job_latency_ms"]["count"] >= 2
        assert "p99" in metrics["histograms"]["job_latency_ms"]
        assert metrics["shards"][0]["executed"] == 1
        assert metrics["store"]["puts"] == 1
        json.dumps(metrics)  # the snapshot must be JSON-clean

        # Error statuses.
        status, payload = client._request("GET", "/v1/nope")
        assert status == 404
        status, payload = client.job("job-999999")
        assert status == 404 and payload["error"] == "unknown-job"
        status, payload = client._request("GET", "/v1/jobs")
        assert status == 405
        status, payload = client.submit(
            {"kind": "bench", "name": "radix", "policy": "not-real"})
        assert status == 400 and payload["error"] == "invalid-job"
        # A JSON scalar is not a job request...
        status, payload = client._request("POST", "/v1/jobs", "not json")
        assert status == 400 and payload["error"] == "bad-request"
        # ...and broken JSON bytes are a bad-json 400.
        import urllib.error
        import urllib.request
        req = urllib.request.Request(
            f"{client.url}/v1/jobs", data=b"{broken", method="POST")
        try:
            urllib.request.urlopen(req, timeout=10)
            raised = None
        except urllib.error.HTTPError as exc:
            raised = (exc.code, json.loads(exc.read().decode()))
        assert raised is not None
        assert raised[0] == 400 and raised[1]["error"] == "bad-json"
