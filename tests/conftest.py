"""Suite-wide hardening: strict invariant mode + a per-test deadline.

* ``REPRO_STRICT=1`` makes every ``System.run()`` in the suite finish
  with a full runtime invariant sweep (:func:`repro.resilience.
  invariants.check_system`) — the whole test suite doubles as an
  invariant battery at no extra code cost.
* Every test runs under a wall-clock deadline (``REPRO_TEST_TIMEOUT``
  seconds, default 300) enforced with a SIGALRM interval timer, so a
  wedged simulation fails the test instead of hanging CI.  On platforms
  without SIGALRM the deadline is simply not enforced.
"""

import os
import signal

import pytest

os.environ.setdefault("REPRO_STRICT", "1")

_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.fixture(autouse=True)
def _per_test_deadline(request):
    if _TIMEOUT <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        pytest.fail(f"test exceeded its {_TIMEOUT:g}s deadline "
                    f"(REPRO_TEST_TIMEOUT)", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, _TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
