"""Unit tests for the load queue."""

import pytest

from repro.cpu.load_queue import ISSUED, PERFORMED, WAITING, LoadQueue


def _performed(lq, seq, addr, line=None):
    entry = lq.allocate(seq)
    entry.addr = addr
    entry.line = line if line is not None else addr - addr % 64
    entry.state = PERFORMED
    return entry


class TestAllocation:
    def test_program_order_enforced(self):
        lq = LoadQueue(4)
        lq.allocate(3)
        with pytest.raises(RuntimeError):
            lq.allocate(2)

    def test_full_raises(self):
        lq = LoadQueue(1)
        lq.allocate(0)
        assert lq.full
        with pytest.raises(RuntimeError):
            lq.allocate(1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LoadQueue(0)


class TestRetire:
    def test_retire_head_in_order(self):
        lq = LoadQueue(4)
        first = lq.allocate(0)
        lq.allocate(1)
        assert lq.retire_head(0) is first
        assert lq.head().seq == 1

    def test_retire_wrong_seq_raises(self):
        lq = LoadQueue(4)
        lq.allocate(0)
        lq.allocate(1)
        with pytest.raises(RuntimeError):
            lq.retire_head(1)


class TestSquash:
    def test_squash_removes_youngest_first_and_bumps_epoch(self):
        lq = LoadQueue(8)
        survivor = lq.allocate(0)
        victim_a = lq.allocate(3)
        victim_b = lq.allocate(7)
        removed = lq.squash_from(3)
        assert removed == [victim_b, victim_a]
        assert all(v.issue_epoch == 1 for v in removed)
        assert survivor.issue_epoch == 0
        assert list(lq) == [survivor]


class TestQueries:
    def test_matching_performed_by_line(self):
        lq = LoadQueue(8)
        hit = _performed(lq, 0, 0x1008, line=0x1000)
        waiting = lq.allocate(1)
        waiting.line = 0x1000
        other = _performed(lq, 2, 0x2000, line=0x2000)
        assert lq.matching_performed(0x1000) == [hit]
        assert lq.matching_performed(0x2000) == [other]
        assert lq.matching_performed(0x3000) == []

    def test_memdep_candidates(self):
        lq = LoadQueue(8)
        older = _performed(lq, 1, 0x100)
        issued = lq.allocate(5)
        issued.addr = 0x100
        issued.state = ISSUED
        not_issued = lq.allocate(6)
        not_issued.addr = 0x100
        not_issued.state = WAITING
        candidates = lq.issued_or_performed_matching(0x100, after_seq=2)
        assert candidates == [issued]
        # seq filter: loads at or before the store are excluded.
        assert lq.issued_or_performed_matching(0x100, after_seq=0) \
            == [older, issued]
