"""Engine and System termination edge cases: drained queues, legacy
``until=`` predicates, cycle-budget overruns, and true deadlocks must
all end in a clean return or a descriptive error — never a hang."""

import pytest

from repro.sim.config import TINY
from repro.sim.engine import Engine
from repro.sim.system import System
from repro.workloads import generate_workload, get_profile


def test_run_on_empty_queue_returns_immediately():
    engine = Engine()
    assert engine.run() == 0
    assert engine.events_dispatched == 0


def test_stopped_flag_is_sticky():
    engine = Engine()
    engine.schedule(5, lambda: None)
    engine.stop()
    engine.run()
    assert engine.events_dispatched == 0
    assert engine.pending == 1  # the event survives, undelivered


def test_legacy_until_predicate_terminates():
    engine = Engine()

    def tick():
        engine.schedule(1, tick)

    engine.schedule(1, tick)
    engine.run(until=lambda: engine.now >= 50)
    assert engine.now == 50


def test_max_cycles_leaves_engine_reusable():
    engine = Engine()
    fired = []

    def tick():
        fired.append(engine.now)
        engine.schedule(10, tick)

    engine.schedule(10, tick)
    engine.run(max_cycles=35)
    assert engine.now == 35
    assert fired == [10, 20, 30]
    # The budget stopped the run, not the engine: more budget, more events.
    engine.run(max_cycles=20)
    assert fired == [10, 20, 30, 40, 50]


def _traces(length=120):
    return generate_workload(get_profile("fft"), 2, length, 0)


def test_system_cycle_budget_overrun_is_descriptive():
    system = System(_traces(length=2_000), "x86", TINY)
    with pytest.raises(RuntimeError, match="exceeded 10 cycles"):
        system.run(max_cycles=10)


def test_system_on_legacy_engine_matches_stop_sentinel():
    """An injected engine without the stop sentinel falls back to the
    polled ``until=`` predicate — and must produce identical stats."""

    class LegacyEngine(Engine):
        supports_stop = False

    fast = System(_traces(), "370-SLFSoS-key", TINY).run()
    slow = System(_traces(), "370-SLFSoS-key", TINY,
                  engine=LegacyEngine()).run()
    assert fast.to_json() == slow.to_json()


def test_system_deadlock_without_watchdog_is_an_error():
    """A wedged gate with no watchdog installed: the run must still end
    in a RuntimeError (drained queue or budget), never a silent hang."""
    from repro.cpu.isa import Trace, alu, load

    trace = Trace()
    for i in range(120):
        trace.append(load(0x1000 + (i % 8) * 64, pc=0x10))
        trace.append(alu())
    trace.validate()
    system = System([trace], "370-SLFSoS-key", TINY, warm_caches=False)
    gate = system.cores[0].policy.gate
    system.engine.at(50, gate.close, 3 | (1 << 31))
    with pytest.raises(RuntimeError, match="deadlock|exceeded"):
        system.run(max_cycles=100_000)
