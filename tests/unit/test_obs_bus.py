"""Unit tests for the probe bus and its zero-overhead contract."""

import pytest

from repro.obs.bus import NULL_BUS, PROBE_SIGNATURES, ProbeBus


class TestSubscribe:
    def test_exact_name(self):
        bus = ProbeBus()
        hits = []
        bus.subscribe("gate.close", lambda *a: hits.append(a))
        bus.resolve("gate.close")(0, 10, 0x2A, 5)
        assert hits == [(0, 10, 0x2A, 5)]

    def test_prefix_wildcard(self):
        bus = ProbeBus()
        bus.subscribe("squash.*", lambda *a: None)
        assert bus.resolve("squash.inval") is not None
        assert bus.resolve("squash.evict") is not None
        assert bus.resolve("squash.memdep") is not None
        assert bus.resolve("gate.close") is None

    def test_star_matches_everything(self):
        bus = ProbeBus()
        bus.subscribe("*", lambda *a: None)
        for name in PROBE_SIGNATURES:
            assert bus.resolve(name) is not None

    def test_unknown_name_raises(self):
        bus = ProbeBus()
        with pytest.raises(KeyError):
            bus.subscribe("gate.does_not_exist", lambda *a: None)
        with pytest.raises(KeyError):
            bus.resolve("not.a.probe")

    def test_unmatched_wildcard_raises(self):
        bus = ProbeBus()
        with pytest.raises(KeyError):
            bus.subscribe("nosuch.*", lambda *a: None)


class TestResolve:
    def test_unobserved_probe_resolves_to_none(self):
        """The zero-overhead contract: no subscriber => literal None, so
        instrumented sites guard with a single ``is not None``."""
        bus = ProbeBus()
        assert bus.resolve("slf.forward") is None

    def test_single_subscriber_returned_directly(self):
        bus = ProbeBus()
        fn = lambda *a: None  # noqa: E731
        bus.subscribe("slf.forward", fn)
        assert bus.resolve("slf.forward") is fn

    def test_multiple_subscribers_fire_in_order(self):
        bus = ProbeBus()
        order = []
        bus.subscribe("gate.open", lambda *a: order.append("first"))
        bus.subscribe("gate.open", lambda *a: order.append("second"))
        bus.resolve("gate.open")(0, 1, 2, "key")
        assert order == ["first", "second"]

    def test_active_property(self):
        bus = ProbeBus()
        assert not bus.active
        bus.subscribe("mesi.inval", lambda *a: None)
        assert bus.active


class TestNullBus:
    def test_resolves_known_names_to_none(self):
        for name in PROBE_SIGNATURES:
            assert NULL_BUS.resolve(name) is None

    def test_still_checks_names(self):
        with pytest.raises(KeyError):
            NULL_BUS.resolve("typo.probe")

    def test_rejects_subscriptions(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.subscribe("gate.close", lambda *a: None)

    def test_never_active(self):
        assert not NULL_BUS.active


#: Fabric-wide probes with no owning core; everything else leads with
#: ``(core_id, cycle, ...)``.
SYSTEM_SCOPED = {"noc.msg"}


def test_every_signature_documents_core_and_cycle():
    """All probes lead with (core_id, cycle, ...) so watchers can be
    written uniformly; system-scoped ones still lead with the cycle."""
    for name, signature in PROBE_SIGNATURES.items():
        if name in SYSTEM_SCOPED:
            assert signature.startswith("(cycle"), name
        else:
            assert signature.startswith("(core_id, cycle"), name
