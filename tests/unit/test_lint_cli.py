"""CLI-level tests for ``repro lint``, including ``--changed`` mode."""

import json
import os
import subprocess
import textwrap

import pytest

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "fixtures", "lint", "repro")
REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src", "repro")

BAD_SOURCE = textwrap.dedent("""\
    import time


    def stamp():
        return time.time()
""")

CLEAN_SOURCE = textwrap.dedent("""\
    def stamp(engine):
        return engine.now
""")


def test_lint_default_tree_is_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_lint_reports_fixture_violations(capsys):
    bad = os.path.join(FIXTURES, "sim", "hot_slots_bad.py")
    assert main(["lint", bad]) == 1
    out = capsys.readouterr().out
    assert "hot-slots" in out


def test_lint_json_report(tmp_path, capsys):
    bad = os.path.join(FIXTURES, "sim", "det_rng_bad.py")
    out_path = tmp_path / "report.json"
    assert main(["lint", bad, "--json", str(out_path)]) == 1
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False
    assert any(v["rule"] == "det-rng" for v in payload["violations"])


def test_lint_rules_listing(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("det-wallclock", "det-rng", "obs-resolve-once",
                    "obs-guarded-fire", "hot-slots", "mut-default",
                    "iter-set-order"):
        assert rule_id in out


def test_lint_rule_filter(capsys):
    bad = os.path.join(FIXTURES, "sim", "det_wallclock_bad.py")
    assert main(["lint", bad, "--rule", "hot-slots"]) == 0


def test_lint_strict_rejects_critical_suppressions(tmp_path, capsys):
    hot = tmp_path / "repro" / "sim"
    hot.mkdir(parents=True)
    (hot / "mod.py").write_text(
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()  # lint: ignore[det-wallclock]\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert main(["lint", str(tmp_path), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "strict" in out


def test_lint_litmus_cross_check(capsys):
    clean = os.path.join(FIXTURES, "sim", "hot_slots_ok.py")
    assert main(["lint", clean, "--litmus", "--random", "20"]) == 0
    out = capsys.readouterr().out
    assert "0 mismatches" in out
    assert "store-atomicity races in the battery" in out
    assert "n6: forwarding race" in out


def test_lint_litmus_json(tmp_path, capsys):
    clean = os.path.join(FIXTURES, "sim", "hot_slots_ok.py")
    out_path = tmp_path / "litmus.json"
    assert main(["lint", clean, "--litmus",
                 "--litmus-json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is True
    assert payload["mismatches"] == []
    assert any(r["program"] == "n6" and r["shape"] == "forwarding"
               for r in payload["races"])
    assert all("rfi" in "".join(r["cycle"]) for r in payload["races"])


def _git(cwd, *argv):
    subprocess.run(["git", *argv], cwd=cwd, check=True,
                   capture_output=True, text=True,
                   env={**os.environ,
                        "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                        "GIT_COMMITTER_NAME": "t",
                        "GIT_COMMITTER_EMAIL": "t@t"})


def test_lint_changed_restricts_to_differing_files(tmp_path, monkeypatch,
                                                   capsys):
    repo = tmp_path / "work"
    hot = repo / "repro" / "sim"
    hot.mkdir(parents=True)
    tracked = hot / "tracked.py"
    stable = hot / "stable.py"
    tracked.write_text(CLEAN_SOURCE)
    # A pre-existing violation in an *unchanged* file must not fail a
    # --changed run.
    stable.write_text(BAD_SOURCE)
    _git(repo, "init", "-q", "-b", "main")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")

    monkeypatch.chdir(repo)
    tracked.write_text(CLEAN_SOURCE + "\n\ndef more(engine):\n"
                       "    return engine.now + 1\n")
    assert main(["lint", str(repo), "--changed", "--base", "main"]) == 0
    out = capsys.readouterr().out
    assert "1 files" in out or "1 file" in out

    # Introduce a violation in the changed file: now it must fail.
    tracked.write_text(BAD_SOURCE)
    assert main(["lint", str(repo), "--changed", "--base", "main"]) == 1
    out = capsys.readouterr().out
    assert "det-wallclock" in out
    assert "stable.py" not in out


def test_lint_changed_picks_up_untracked_files(tmp_path, monkeypatch,
                                               capsys):
    repo = tmp_path / "work"
    hot = repo / "repro" / "sim"
    hot.mkdir(parents=True)
    (hot / "seed.py").write_text(CLEAN_SOURCE)
    _git(repo, "init", "-q", "-b", "main")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")

    monkeypatch.chdir(repo)
    (hot / "fresh.py").write_text(BAD_SOURCE)
    assert main(["lint", str(repo), "--changed", "--base", "main"]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out


def test_lint_changed_skips_renamed_and_deleted_files(tmp_path,
                                                      monkeypatch,
                                                      capsys):
    repo = tmp_path / "work"
    hot = repo / "repro" / "sim"
    hot.mkdir(parents=True)
    (hot / "old_name.py").write_text(CLEAN_SOURCE)
    # The deleted file holds a violation: after deletion it must be
    # skipped with a note, not linted (it is gone) and not an error.
    (hot / "doomed.py").write_text(BAD_SOURCE)
    _git(repo, "init", "-q", "-b", "main")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")

    monkeypatch.chdir(repo)
    _git(repo, "mv", "repro/sim/old_name.py", "repro/sim/new_name.py")
    _git(repo, "rm", "-q", "repro/sim/doomed.py")
    assert main(["lint", str(repo), "--changed", "--base", "main"]) == 0
    out = capsys.readouterr().out
    assert "skipping" in out
    assert "doomed.py" in out
    assert "renamed or deleted" in out
    # The renamed file's old path (when git reports it) and the deleted
    # file must not surface as violations or errors.
    assert "det-wallclock" not in out

    # The renamed-to file is still linted under its new name.
    (repo / "repro" / "sim" / "new_name.py").write_text(BAD_SOURCE)
    assert main(["lint", str(repo), "--changed", "--base", "main"]) == 1
    out = capsys.readouterr().out
    assert "new_name.py" in out


def test_lint_changed_resolves_names_from_subdirectory(tmp_path,
                                                       monkeypatch,
                                                       capsys):
    repo = tmp_path / "work"
    hot = repo / "repro" / "sim"
    hot.mkdir(parents=True)
    tracked = hot / "tracked.py"
    tracked.write_text(CLEAN_SOURCE)
    _git(repo, "init", "-q", "-b", "main")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")

    # git names files relative to the repo root; --changed must resolve
    # them against the root even when invoked from a subdirectory.
    monkeypatch.chdir(hot)
    tracked.write_text(BAD_SOURCE)
    assert main(["lint", str(repo), "--changed", "--base", "main"]) == 1
    out = capsys.readouterr().out
    assert "det-wallclock" in out


def test_lint_changed_outside_git_exits_with_message(tmp_path,
                                                     monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="--changed needs a git"):
        main(["lint", str(tmp_path), "--changed", "--base",
              "no-such-ref"])
