"""Unit tests for repro.leakage: taint propagation, the leak watcher's
probe correlation, the gadget battery, and leak_run end-to-end."""

import json

import pytest

from repro.core.policies import POLICY_ORDER
from repro.cpu import isa
from repro.cpu.isa import Trace
from repro.leakage import GADGET_CONFIG, GADGETS, TaintMap, leak_run
from repro.leakage.taint import UNTAINTED
from repro.leakage.watcher import LeakWatcher
from repro.obs.bus import ProbeBus
from repro.sim.stats import SystemStats
from repro.sim.system import System

SECRET = 64
PROBE = 8 * 64


# ----------------------------------------------------------------------
# TaintMap
# ----------------------------------------------------------------------

def test_taint_secret_load_taints_value_not_address():
    trace = Trace([isa.load(SECRET)])
    taint = TaintMap(trace, [SECRET])
    assert taint.value_tainted == [True]
    assert taint.addr_tainted == [False]       # its *address* is public
    assert taint.source == [0]


def test_taint_propagates_through_deps_to_address():
    trace = Trace()
    s = trace.append(isa.load(SECRET))
    a = trace.append(isa.alu(deps=(s,)))
    trace.append(isa.load(PROBE, deps=(a,)))
    taint = TaintMap(trace, [SECRET])
    assert taint.value_tainted == [True, True, True]
    assert taint.addr_tainted == [False, False, True]
    assert taint.source == [0, 0, 0]
    assert taint.tainted_loads() == [2]


def test_taint_untainted_without_secret():
    trace = Trace()
    s = trace.append(isa.load(SECRET))
    trace.append(isa.load(PROBE, deps=(s,)))
    taint = TaintMap(trace, [])
    assert not taint.any_tainted
    assert taint.source == [UNTAINTED, UNTAINTED]


def test_taint_store_with_tainted_dep_has_tainted_address():
    trace = Trace()
    s = trace.append(isa.load(SECRET))
    trace.append(isa.store(PROBE, deps=(s,)))
    taint = TaintMap(trace, [SECRET])
    assert taint.addr_tainted == [False, True]


def test_taint_secret_read_dominates_dep_provenance():
    # A secret load fed by another secret load restarts provenance.
    trace = Trace()
    s0 = trace.append(isa.load(SECRET))
    trace.append(isa.load(2 * 64, deps=(s0,)))
    taint = TaintMap(trace, [SECRET, 2 * 64])
    assert taint.source == [0, 1]


# ----------------------------------------------------------------------
# LeakWatcher correlation (driven by hand-fired probes)
# ----------------------------------------------------------------------

def _watcher_with_tainted_probe():
    trace = Trace()
    s = trace.append(isa.load(SECRET))
    trace.append(isa.load(PROBE, deps=(s,)))
    bus = ProbeBus()
    watcher = LeakWatcher(bus, {0: TaintMap(trace, [SECRET])})
    return bus, watcher


def test_watcher_confirms_squashed_candidate():
    bus, watcher = _watcher_with_tainted_probe()
    perform = bus.resolve("load.perform")
    squash = bus.resolve("squash.inval")
    perform(0, 100, 1, PROBE, PROBE // 64, False, 1)
    squash(0, 130, 0, 2)
    report = watcher.finalize()
    assert len(report.confirmed) == 1
    assert report.leaked_lines == [PROBE // 64]
    assert report.confirmed[0].window == 30
    assert report.confirmed[0].squash_reason == "inval"
    assert report.confirmed[0].source == 0
    assert report.histograms["leak_window"].count == 1
    assert not report.exposed


def test_watcher_nonspeculative_perform_is_ignored():
    bus, watcher = _watcher_with_tainted_probe()
    perform = bus.resolve("load.perform")
    perform(0, 100, 1, PROBE, PROBE // 64, False, 0)   # spec == 0
    report = watcher.finalize()
    assert report.tainted_performs == 0
    assert not report.confirmed and not report.exposed


def test_watcher_unsquashed_candidate_is_exposed():
    bus, watcher = _watcher_with_tainted_probe()
    bus.resolve("load.perform")(0, 100, 1, PROBE, PROBE // 64, False, 2)
    report = watcher.finalize()
    assert not report.confirmed
    assert len(report.exposed) == 1
    assert report.exposed[0].spec == 2


def test_watcher_squash_older_seq_spares_candidate():
    bus, watcher = _watcher_with_tainted_probe()
    bus.resolve("load.perform")(0, 100, 1, PROBE, PROBE // 64, False, 1)
    bus.resolve("squash.memdep")(0, 120, 2, 1)         # from_seq > seq
    report = watcher.finalize()
    assert not report.confirmed and len(report.exposed) == 1


def test_watcher_side_effects_counted_inside_slf_window():
    bus, watcher = _watcher_with_tainted_probe()
    fill = bus.resolve("cache.fill")
    noc = bus.resolve("noc.msg")
    prefetch = bus.resolve("prefetch.issue")
    fill(0, 5, 3)                       # no window open: not counted
    bus.resolve("slf.forward")(0, 10, 4, 2, 1)
    fill(0, 12, 3)
    noc(13, "GetS")
    prefetch(0, 14, 9)
    bus.resolve("sb.write_l1")(0, 40, 2, 64, 1, 1)
    fill(0, 50, 3)                      # window closed again
    report = watcher.finalize()
    assert report.fills_in_window == 1
    assert report.noc_msgs_in_window == 1
    assert report.prefetches_in_window == 1
    assert report.histograms["slf_window"].count == 1
    assert report.histograms["slf_window"].mean == 30


def test_watcher_tainted_fill_requires_candidate_line():
    bus, watcher = _watcher_with_tainted_probe()
    bus.resolve("load.perform")(0, 100, 1, PROBE, PROBE // 64, False, 1)
    bus.resolve("cache.fill")(0, 101, PROBE // 64)
    bus.resolve("cache.fill")(0, 102, 3)
    bus.resolve("cache.fill")(1, 103, PROBE // 64)     # other core
    assert watcher.finalize().tainted_fills == 1


# ----------------------------------------------------------------------
# Gadgets and leak_run
# ----------------------------------------------------------------------

def test_gadget_registry_shape():
    assert set(GADGETS) == {"spectre-bcb", "spectre-slf"}
    for gadget in GADGETS.values():
        assert len(gadget.traces) == len(gadget.warm) == 2
        for trace in gadget.traces:
            trace.validate()
        taint = TaintMap(gadget.traces[0], gadget.secret)
        assert taint.tainted_loads(), gadget.name


@pytest.mark.parametrize("policy", POLICY_ORDER)
def test_bcb_leaks_under_every_policy(policy):
    _, report, _ = leak_run(GADGETS["spectre-bcb"], policy)
    assert report.leaked_lines == [GADGETS["spectre-bcb"].probe_line]
    assert report.histograms["leak_window"].count >= 1


@pytest.mark.parametrize("policy", POLICY_ORDER)
def test_slf_gadget_leaks_only_under_x86(policy):
    _, report, _ = leak_run(GADGETS["spectre-slf"], policy)
    if policy == "x86":
        assert report.leaked_lines == [GADGETS["spectre-slf"].probe_line]
    else:
        assert report.leaked_lines == []


def test_leak_run_attaches_stats_leakage():
    stats, report, _ = leak_run(GADGETS["spectre-bcb"], "x86")
    assert stats.leakage["gadget"] == "spectre-bcb"
    assert stats.leakage["policy"] == "x86"
    assert stats.leakage["leaked_lines"] == report.leaked_lines
    assert "leakage" in stats.to_dict()
    restored = SystemStats.from_dict(json.loads(stats.to_json()))
    assert restored.leakage == stats.leakage


def test_leakage_off_stats_byte_identical():
    """The acceptance gate: tracking off must not change a single byte
    of serialized stats, and tracking on must not perturb timing."""
    gadget = GADGETS["spectre-bcb"]

    def bare():
        system = System(list(gadget.traces), "x86", GADGET_CONFIG,
                        warm_caches=list(gadget.warm),
                        initial_memory=dict(gadget.initial_memory))
        return system.run(1_000_000).to_json()

    baseline = bare()
    assert baseline == bare()
    assert '"leakage"' not in baseline
    stats, _, _ = leak_run(gadget, "x86")
    observed = stats.to_dict()
    observed.pop("leakage")
    assert json.dumps(observed, sort_keys=True) == baseline


def test_report_publishes_into_metrics_registry():
    from repro.obs.metrics import MetricsRegistry

    _, report, _ = leak_run(GADGETS["spectre-bcb"], "x86")
    registry = MetricsRegistry()
    report.publish(registry)
    snap = registry.snapshot()
    assert snap["counters"]["leak.confirmed"] == len(report.confirmed)
    assert snap["counters"]["leak.leaked_lines"] == 1
    assert "leak.leak_window" in snap["histograms"]
