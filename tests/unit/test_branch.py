"""Unit tests for the TAGE branch predictor."""

import random

from repro.cpu.branch import TagePredictor


def test_learns_constant_direction():
    predictor = TagePredictor()
    for _ in range(50):
        predictor.update(0x40, True)
    assert predictor.predict(0x40) is True
    for _ in range(50):
        predictor.update(0x44, False)
    assert predictor.predict(0x44) is False


def test_learns_alternating_pattern_through_history():
    """A strict T/N/T/N pattern is unpredictable by a bimodal counter
    but learnable from one bit of global history."""
    predictor = TagePredictor()
    outcome = True
    # Warm up.
    for _ in range(600):
        predictor.update(0x80, outcome)
        outcome = not outcome
    correct = 0
    for _ in range(200):
        if predictor.predict(0x80) == outcome:
            correct += 1
        predictor.update(0x80, outcome)
        outcome = not outcome
    assert correct / 200 > 0.9


def test_loop_pattern_with_period():
    """Taken 7 times, not-taken once (a loop with 8 iterations)."""
    predictor = TagePredictor()
    def outcomes():
        while True:
            for i in range(8):
                yield i != 7
    gen = outcomes()
    for _ in range(2000):
        predictor.update(0x100, next(gen))
    correct = 0
    total = 400
    for _ in range(total):
        actual = next(gen)
        if predictor.predict(0x100) == actual:
            correct += 1
        predictor.update(0x100, actual)
    assert correct / total > 0.8


def test_random_branch_is_hard():
    predictor = TagePredictor()
    rng = random.Random(7)
    correct = 0
    total = 2000
    for _ in range(total):
        actual = rng.random() < 0.5
        if predictor.predict(0x200) == actual:
            correct += 1
        predictor.update(0x200, actual)
    assert 0.35 < correct / total < 0.65


def test_biased_branch_mostly_correct():
    predictor = TagePredictor()
    rng = random.Random(11)
    correct = 0
    total = 2000
    for _ in range(total):
        actual = rng.random() < 0.95
        if predictor.predict(0x300) == actual:
            correct += 1
        predictor.update(0x300, actual)
    assert correct / total > 0.85


def test_independent_pcs_do_not_destroy_each_other():
    predictor = TagePredictor()
    for i in range(400):
        predictor.update(0x1000, True)
        predictor.update(0x2000, False)
    assert predictor.predict(0x1000) is True
    assert predictor.predict(0x2000) is False


def test_stats_counters():
    predictor = TagePredictor()
    predictor.predict(0x10)
    predictor.update(0x10, True)
    assert predictor.predictions >= 1
    assert 0.0 <= predictor.mispredict_rate <= 1.0


def test_pipeline_uses_predictor():
    """Biased branches barely slow the pipeline; coin-flip branches do."""
    from repro.cpu.isa import Trace, alu, branch
    from repro.sim.config import TINY
    from repro.sim.system import simulate
    import random as _random

    rng = _random.Random(3)

    def mk(flaky):
        trace = Trace()
        for i in range(400):
            taken = (rng.random() < 0.5) if flaky else (i % 8 != 7)
            trace.append(branch(taken=taken, pc=0x40))
            trace.append(alu())
        return trace

    steady = simulate([mk(False)], "x86", TINY).execution_cycles
    flaky = simulate([mk(True)], "x86", TINY).execution_cycles
    assert flaky > steady * 1.5
