"""Unit tests for the histograms, watchers, and the observed-run path."""

import json

import pytest

from repro.cpu.isa import Trace, alu, load, store
from repro.obs.samplers import LogHistogram
from repro.obs.session import observe_run
from repro.sim.config import TINY


class TestLogHistogram:
    def test_zero_goes_to_bucket_zero(self):
        hist = LogHistogram()
        hist.add(0)
        assert hist.buckets() == [(0, 0, 1)]
        assert hist.max == 0

    def test_bucket_bounds_are_powers_of_two(self):
        hist = LogHistogram()
        for v in (1, 2, 3, 4, 7, 8):
            hist.add(v)
        assert hist.buckets() == [(1, 1, 1), (2, 3, 2), (4, 7, 2),
                                  (8, 15, 1)]

    def test_exact_aggregates(self):
        hist = LogHistogram()
        for v in (5, 10, 100):
            hist.add(v)
        assert hist.count == 3
        assert hist.total == 115
        assert hist.max == 100
        assert hist.mean == pytest.approx(115 / 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().add(-1)

    def test_percentile_clamped_to_max(self):
        hist = LogHistogram()
        hist.add(5)  # bucket [4, 7]
        assert hist.percentile(50) == 5   # clamped, not 7
        assert hist.percentile(100) == 5

    def test_percentile_empty_and_range(self):
        hist = LogHistogram()
        assert hist.percentile(50) == 0
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (1, 2, 3):
            a.add(v)
        for v in (3, 50):
            b.add(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == 59
        assert a.max == 50

    def test_json_round_trip_is_exact(self):
        hist = LogHistogram()
        for v in (0, 1, 9, 77, 1024):
            hist.add(v)
        blob = json.dumps(hist.to_dict())
        back = LogHistogram.from_dict(json.loads(blob))
        assert back.count == hist.count
        assert back.total == hist.total
        assert back.max == hist.max
        assert back.buckets() == hist.buckets()

    def test_summary_keys(self):
        hist = LogHistogram()
        hist.add(4)
        assert set(hist.summary()) == {"count", "mean", "p50", "p90",
                                       "p99", "max"}


def _slf_trace(n_pairs=20):
    """Store->load pairs to the same line: every load forwards, and the
    SoS policies close the gate at each SLF-load retire."""
    ops = []
    for i in range(n_pairs):
        addr = 0x1000 + 64 * i
        ops.append(store(addr, pc=0x30, value=i))
        ops.append(load(addr, pc=0x40))
    return Trace.from_ops(ops)


class TestObserveRun:
    def test_gate_intervals_match_stats(self):
        """The acceptance invariant at unit scale: every gate close
        recorded by CoreStats appears as exactly one interval."""
        stats, report, system = observe_run(
            [_slf_trace()], "370-SLFSoS-key", TINY, warm_caches=False)
        assert stats.total.gate_closes > 0
        assert report.gate_interval_count() == stats.total.gate_closes
        assert report.gate_interval_count() == stats.total.gate_opens

    def test_intervals_are_closed_and_ordered(self):
        stats, report, _ = observe_run(
            [_slf_trace()], "370-SLFSoS-key", TINY, warm_caches=False)
        for intervals in report.gate_intervals.values():
            for interval in intervals:
                assert 0 <= interval.start <= interval.end
                assert interval.open_reason in ("key", "drain", "eof")
            starts = [i.start for i in intervals]
            assert starts == sorted(starts)

    def test_lock_histogram_counts_every_interval(self):
        stats, report, _ = observe_run(
            [_slf_trace()], "370-SLFSoS", TINY, warm_caches=False)
        hist = report.histograms["gate_lock"]
        assert hist.count == report.gate_interval_count()
        assert hist.total == sum(i.cycles
                                 for v in report.gate_intervals.values()
                                 for i in v)

    def test_stall_histogram_tracks_stats(self):
        stats, report, _ = observe_run(
            [_slf_trace()], "370-SLFSoS-key", TINY, warm_caches=False)
        hist = report.histograms["gate_stall"]
        assert hist.count > 0
        assert hist.count == stats.total.gate_stall_events
        assert hist.total == stats.total.gate_stall_cycles

    def test_drain_and_window_histograms_populated(self):
        stats, report, _ = observe_run(
            [_slf_trace()], "370-SLFSoS-key", TINY, warm_caches=False)
        assert report.histograms["sb_drain"].count == \
            stats.total.retired_stores
        assert report.histograms["slf_window"].count > 0

    def test_x86_records_no_gate_activity(self):
        stats, report, _ = observe_run(
            [_slf_trace()], "x86", TINY, warm_caches=False)
        assert report.gate_interval_count() == 0
        assert report.histograms["gate_lock"].count == 0

    def test_occupancy_sampler_ran(self):
        stats, report, _ = observe_run(
            [_slf_trace(40)], "370-SLFSoS-key", TINY, warm_caches=False,
            sample_interval=16)
        assert report.sample_interval == 16
        series = report.samples[0]
        assert series, "expected occupancy samples"
        cycles = [s[0] for s in series]
        assert cycles == sorted(cycles)
        assert all(c <= stats.execution_cycles for c in cycles)
        assert report.occupancy[0]["samples"] == len(series)

    def test_memdep_squash_counted(self):
        ops = [alu(latency=3),
               store(0x200, deps=(0,), pc=0x30, value=5),
               load(0x200, pc=0x40)]
        trace = Trace.from_ops(ops)
        trace.memdep_hints = []  # cold predictor: collision squashes
        stats, report, _ = observe_run([trace], "x86", TINY,
                                       warm_caches=False)
        episodes = report.counters["squash_episodes"]
        assert episodes.get("memdep", 0) >= 1
        assert any(ev[3] == "memdep" for ev in report.squash_events)

    def test_to_dict_is_json_safe(self):
        stats, report, _ = observe_run(
            [_slf_trace()], "370-SLFSoS-key", TINY, warm_caches=False)
        blob = json.dumps(report.to_dict())
        back = json.loads(blob)
        assert back["gate"]["intervals"] == report.gate_interval_count()
        assert "samples" not in back
        with_samples = report.to_dict(include_samples=True)
        assert "samples" in with_samples

    def test_write_jsonl(self, tmp_path):
        stats, report, _ = observe_run(
            [_slf_trace()], "370-SLFSoS-key", TINY, warm_caches=False)
        path = tmp_path / "metrics.jsonl"
        n = report.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == n
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        types = {r["type"] for r in records}
        assert {"histogram", "counters", "gate_interval",
                "sample"} <= types
        n_intervals = sum(1 for r in records
                          if r["type"] == "gate_interval")
        assert n_intervals == report.gate_interval_count()
