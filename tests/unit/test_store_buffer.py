"""Unit tests for the combined SQ/SB circular buffer and its keys."""

import pytest

from repro.cpu.store_buffer import StoreBuffer


def _alloc(sb, seq, addr=None, retired=False):
    entry = sb.allocate(seq)
    if addr is not None:
        sb.resolve_store(entry, addr)
    entry.retired = retired
    return entry


class TestAllocation:
    def test_fifo_order(self):
        sb = StoreBuffer(4)
        entries = [_alloc(sb, seq) for seq in range(3)]
        assert list(sb) == entries
        assert sb.head() is entries[0]

    def test_full_raises(self):
        sb = StoreBuffer(2)
        _alloc(sb, 0)
        _alloc(sb, 1)
        assert sb.full
        with pytest.raises(RuntimeError):
            sb.allocate(2)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)

    def test_wraparound_allocation(self):
        sb = StoreBuffer(2)
        for round_no in range(5):
            entry = _alloc(sb, round_no, addr=8 * round_no, retired=True)
            entry.written = True
            assert sb.pop_head() is entry
        assert sb.empty


class TestPop:
    def test_pop_requires_written(self):
        sb = StoreBuffer(2)
        _alloc(sb, 0, retired=True)
        with pytest.raises(RuntimeError):
            sb.pop_head()

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            StoreBuffer(2).pop_head()


class TestKeys:
    """The (slot, sorting-bit) key of Section IV-B-2."""

    def test_key_identifies_live_store(self):
        sb = StoreBuffer(4)
        entry = _alloc(sb, 0, addr=0x100, retired=True)
        assert sb.holds_key(entry.key)
        assert sb.entry_for_key(entry.key) is entry

    def test_key_dies_with_deallocation(self):
        sb = StoreBuffer(4)
        entry = _alloc(sb, 0, addr=0x100, retired=True)
        key = entry.key
        entry.written = True
        sb.pop_head()
        assert not sb.holds_key(key)

    def test_reallocated_slot_gets_fresh_key(self):
        """The sorting bit flips on reuse: a stale key never matches the
        slot's new occupant (the paper's wrap-around disambiguation)."""
        sb = StoreBuffer(1)
        first = _alloc(sb, 0, addr=0x100, retired=True)
        old_key = first.key
        first.written = True
        sb.pop_head()
        second = _alloc(sb, 1, addr=0x200, retired=True)
        assert second.slot == first.slot
        assert second.key != old_key
        assert not sb.holds_key(old_key)
        assert sb.holds_key(second.key)

    def test_keys_unique_among_live_entries(self):
        sb = StoreBuffer(8)
        keys = {_alloc(sb, seq).key for seq in range(8)}
        assert len(keys) == 8

    def test_squashed_slot_gets_fresh_key(self):
        sb = StoreBuffer(4)
        entry = _alloc(sb, 0, addr=0x100)
        old_key = entry.key
        sb.squash_from(0)
        fresh = _alloc(sb, 0, addr=0x100)
        assert fresh.key != old_key


class TestSquash:
    def test_squash_removes_young_unretired(self):
        sb = StoreBuffer(8)
        _alloc(sb, 0, retired=True)
        _alloc(sb, 5)
        _alloc(sb, 9)
        removed = sb.squash_from(5)
        assert [e.seq for e in removed] == [9, 5]
        assert [e.seq for e in sb] == [0]

    def test_squash_never_touches_retired(self):
        sb = StoreBuffer(8)
        _alloc(sb, 0, retired=True)
        assert sb.squash_from(1) == []
        with pytest.raises(RuntimeError):
            sb.squash_from(0)  # retired stores are not squashable

    def test_squash_noop_when_all_older(self):
        sb = StoreBuffer(8)
        _alloc(sb, 0)
        _alloc(sb, 1)
        assert sb.squash_from(10) == []
        assert len(sb) == 2


class TestQueries:
    def test_forwarding_match_youngest_older(self):
        sb = StoreBuffer(8)
        _alloc(sb, 0, addr=0x100)
        target = _alloc(sb, 2, addr=0x100)
        _alloc(sb, 4, addr=0x200)
        _alloc(sb, 6, addr=0x100)   # younger than the load: excluded
        assert sb.forwarding_match(0x100, 5) is target
        assert sb.forwarding_match(0x200, 5).seq == 4
        assert sb.forwarding_match(0x300, 5) is None

    def test_forwarding_ignores_unresolved(self):
        sb = StoreBuffer(4)
        entry = sb.allocate(0)  # address unknown
        assert sb.forwarding_match(0x100, 3) is None
        sb.resolve_store(entry, 0x100)
        assert sb.forwarding_match(0x100, 3) is entry

    def test_unresolved_older(self):
        sb = StoreBuffer(8)
        sb.allocate(0)
        _alloc(sb, 2, addr=0x100)
        sb.allocate(4)
        assert [e.seq for e in sb.unresolved_older(5)] == [0, 4]
        assert [e.seq for e in sb.unresolved_older(3)] == [0]

    def test_has_unwritten_older(self):
        sb = StoreBuffer(8)
        entry = _alloc(sb, 0, addr=0x100, retired=True)
        assert sb.has_unwritten_older(5)
        assert not sb.has_unwritten_older(0)
        entry.written = True
        sb.pop_head()
        assert not sb.has_unwritten_older(5)
