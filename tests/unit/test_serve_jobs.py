"""Unit tests for the serve job model: parsing, keys, execution."""

import json

import pytest

from repro.litmus.operational import MODELS, enumerate_outcomes
from repro.litmus.registry import litmus_registry
from repro.serve.jobs import (DEFAULT_PRIORITY, JobValidationError,
                              LitmusSpec, execute_litmus, execute_request,
                              parse_request, request_key, spec_to_dict)
from repro.sweep.runner import SweepJob, job_key


class TestParseRequest:
    def test_bench_minimal(self):
        kind, spec, priority = parse_request(
            {"name": "radix", "policy": "x86"})
        assert kind == "bench"
        assert spec == SweepJob(name="radix", policy="x86")
        assert priority == DEFAULT_PRIORITY

    def test_sweep_alias(self):
        kind, spec, _ = parse_request(
            {"kind": "sweep", "name": "fft", "policy": "370-NoSpec",
             "cores": 2, "length": 800, "seed": 3})
        assert kind == "sweep"
        assert spec.cores == 2 and spec.length == 800 and spec.seed == 3

    def test_litmus_defaults_all_models(self):
        kind, spec, _ = parse_request({"kind": "litmus", "name": "mp"})
        assert kind == "litmus"
        assert spec == LitmusSpec("mp", tuple(MODELS))

    def test_litmus_model_subset(self):
        _, spec, _ = parse_request(
            {"kind": "litmus", "name": "sb", "models": ["SC", "x86"]})
        assert spec.models == ("SC", "x86")

    def test_priority_carried(self):
        _, _, priority = parse_request(
            {"kind": "litmus", "name": "mp", "priority": 5})
        assert priority == 5

    @pytest.mark.parametrize("bad", [
        42,                                           # not an object
        {"kind": "nope"},                             # unknown kind
        {"name": "radix", "policy": "not-a-policy"},  # unknown policy
        {"name": "not-a-benchmark", "policy": "x86"},
        {"name": "radix", "policy": "x86", "cores": 0},
        {"name": "radix", "policy": "x86", "length": 0},
        {"name": "radix", "policy": "x86", "typo_field": 1},
        {"name": "radix", "policy": "x86", "priority": "high"},
        {"kind": "litmus"},                           # missing name
        {"kind": "litmus", "name": "not-a-test"},
        {"kind": "litmus", "name": "mp", "models": []},
        {"kind": "litmus", "name": "mp", "models": ["alpha"]},
        {"kind": "litmus", "name": "mp", "stray": 1},
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(JobValidationError) as err:
            parse_request(bad)
        payload = err.value.payload
        assert payload["error"] == "invalid-job"
        assert payload["status"] == 400
        assert payload["message"]

    def test_spec_round_trips(self):
        for data in ({"kind": "litmus", "name": "mp",
                      "models": ["SC", "370"]},
                     {"kind": "bench", "name": "radix", "policy": "x86",
                      "cores": 4, "length": None, "seed": 1,
                      "detect_violations": False, "memdep_hints": True,
                      "obs": False, "obs_sample_interval": 64}):
            kind, spec, _ = parse_request(data)
            wire = spec_to_dict(kind, spec)
            kind2, spec2, _ = parse_request(wire)
            assert spec2 == spec


class TestRequestKey:
    def test_bench_key_is_the_sweep_cache_key(self):
        job = SweepJob(name="radix", policy="x86", cores=2, length=600)
        assert request_key(job) == job_key(job)

    def test_identical_requests_share_a_key(self):
        _, a, _ = parse_request({"name": "radix", "policy": "x86"})
        _, b, _ = parse_request({"kind": "sweep", "name": "radix",
                                 "policy": "x86"})
        assert request_key(a) == request_key(b)

    def test_any_field_change_forks_the_key(self):
        base = {"kind": "litmus", "name": "mp", "models": ["SC", "370"]}
        _, spec, _ = parse_request(base)
        variants = [{"kind": "litmus", "name": "sb",
                     "models": ["SC", "370"]},
                    {"kind": "litmus", "name": "mp", "models": ["SC"]},
                    {"name": "radix", "policy": "x86"}]
        keys = {request_key(parse_request(v)[1]) for v in variants}
        assert request_key(spec) not in keys
        assert len(keys) == len(variants)


class TestExecution:
    def test_litmus_matches_the_enumerator(self):
        spec = LitmusSpec("mp", ("SC", "x86"))
        payload = execute_litmus(spec)
        program = litmus_registry()["mp"]
        for model in spec.models:
            expected = sorted(str(o)
                              for o in enumerate_outcomes(program, model))
            assert payload["models"][model] == expected
            assert payload["counts"][model] == len(expected)

    def test_litmus_payload_is_deterministic_json(self):
        spec = LitmusSpec("iriw")
        a = json.dumps(execute_litmus(spec), sort_keys=True)
        b = json.dumps(execute_request(spec), sort_keys=True)
        assert a == b

    def test_execute_request_bench_equals_execute_job(self):
        from repro.sweep.runner import execute_job
        job = SweepJob(name="radix", policy="x86", cores=2, length=600)
        served = json.dumps(execute_request(job), sort_keys=True)
        direct = json.dumps(execute_job(job), sort_keys=True)
        assert served == direct


class TestSweepJobWire:
    def test_round_trip(self):
        job = SweepJob(name="fft", policy="370-SLFSoS", cores=4,
                       length=1000, seed=7, obs=True)
        assert SweepJob.from_dict(job.to_dict()) == job

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            SweepJob.from_dict({"name": "fft", "policy": "x86",
                                "bogus": 1})

    def test_missing_required_rejected(self):
        with pytest.raises(ValueError, match="required"):
            SweepJob.from_dict({"name": "fft"})

    def test_custom_config_not_serializable(self):
        from repro.sim.config import TINY
        job = SweepJob(name="fft", policy="x86", config=TINY)
        with pytest.raises(ValueError, match="config"):
            job.to_dict()


class TestSynthJobs:
    def test_parse_minimal(self):
        kind, spec, priority = parse_request(
            {"kind": "synth", "bounds": {"threads": 2, "max_ops": 2}})
        assert kind == "synth"
        assert spec.bounds.threads == 2 and spec.bounds.max_ops == 2
        assert spec.chunk == 0 and spec.chunks == 1
        from repro.synth.search import MODEL_PAIRS
        assert spec.pairs == MODEL_PAIRS
        assert priority == DEFAULT_PRIORITY

    def test_spec_round_trips(self):
        data = {"kind": "synth",
                "bounds": {"threads": 2, "max_ops": 2, "addresses": 2,
                           "fences": True, "max_total": 3},
                "pairs": [["370", "x86"]], "chunk": 1, "chunks": 4,
                "limit": 2}
        kind, spec, _ = parse_request(data)
        wire = spec_to_dict(kind, spec)
        _, spec2, _ = parse_request(wire)
        assert spec2 == spec

    @pytest.mark.parametrize("bad", [
        {"kind": "synth"},                              # missing bounds
        {"kind": "synth", "bounds": {"threads": 0}},
        {"kind": "synth", "bounds": {}, "pairs": []},
        {"kind": "synth", "bounds": {}, "pairs": [["x86", "SC"]]},
        {"kind": "synth", "bounds": {}, "pairs": [["SC", "SC"]]},
        {"kind": "synth", "bounds": {}, "pairs": [["SC", "alpha"]]},
        {"kind": "synth", "bounds": {}, "chunk": 2, "chunks": 2},
        {"kind": "synth", "bounds": {}, "chunks": 0},
        {"kind": "synth", "bounds": {}, "limit": -1},
        {"kind": "synth", "bounds": {}, "stray": 1},
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(JobValidationError):
            parse_request(bad)

    def test_chunk_forks_the_key(self):
        base = {"kind": "synth", "bounds": {"threads": 2, "max_ops": 2}}
        _, whole, _ = parse_request(base)
        _, part, _ = parse_request({**base, "chunk": 1, "chunks": 2})
        assert request_key(whole) != request_key(part)

    def test_execute_matches_direct_search(self):
        from repro.synth import SynthBounds, SynthResult, search
        _, spec, _ = parse_request(
            {"kind": "synth", "bounds": {"threads": 2, "max_ops": 2},
             "chunk": 0, "chunks": 2})
        payload = execute_request(spec)
        assert payload["kind"] == "synth"
        direct = search(SynthBounds(threads=2, max_ops=2),
                        chunk=0, chunks=2)
        expected = direct.to_dict()
        expected["kind"] = "synth"
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(expected, sort_keys=True)
        # And the wire form reconstructs losslessly.
        clone = SynthResult.from_dict(payload)
        assert clone.enumerated == direct.enumerated
        assert set(clone.distinguishers) == set(direct.distinguishers)

    def test_chunked_results_merge_to_the_serial_search(self):
        from repro.synth import SynthResult, merge_results, search
        from repro.synth.space import SynthBounds
        bounds = {"threads": 2, "max_ops": 2}
        parts = []
        for chunk in range(3):
            _, spec, _ = parse_request(
                {"kind": "synth", "bounds": bounds,
                 "chunk": chunk, "chunks": 3})
            parts.append(SynthResult.from_dict(execute_request(spec)))
        merged = merge_results(parts)
        serial = search(SynthBounds(threads=2, max_ops=2))
        assert merged.enumerated == serial.enumerated
        assert set(merged.distinguishers) == set(serial.distinguishers)
