"""Unit tests for the serve ResultStore (two-tier memoization + job
registry history bounds)."""

from repro.serve.jobs import (DONE, QUEUED, Job, LitmusSpec, next_job_id,
                              request_key)
from repro.serve.store import ResultStore


def _job(state=QUEUED):
    spec = LitmusSpec("mp", ("SC",))
    return Job(id=next_job_id(), kind="litmus", spec=spec,
               key=request_key(spec), state=state)


class TestResultTiers:
    def test_miss_then_hit_accounting(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        assert store.get("k" * 64) is None
        store.put("k" * 64, {"v": 1})
        assert store.get("k" * 64) == {"v": 1}
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)
        assert store.hit_rate() == 0.5

    def test_disk_tier_survives_a_new_store(self, tmp_path):
        ResultStore(cache_dir=tmp_path).put("a" * 64, {"v": 2})
        fresh = ResultStore(cache_dir=tmp_path)
        assert fresh.get("a" * 64) == {"v": 2}
        # ...and the hit populated the memory tier.
        assert fresh._memory["a" * 64] == {"v": 2}

    def test_memory_only_mode(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, persistent=False)
        store.put("b" * 64, {"v": 3})
        assert store.disk is None
        assert store.get("b" * 64) == {"v": 3}
        assert not list(tmp_path.glob("*.json"))

    def test_shares_the_sweep_cache_namespace(self, tmp_path):
        from repro.sweep.cache import ResultCache
        ResultCache(tmp_path).put("c" * 64, {"v": 4})
        assert ResultStore(cache_dir=tmp_path).get("c" * 64) == {"v": 4}

    def test_flush_is_safe_either_way(self, tmp_path):
        ResultStore(cache_dir=tmp_path).flush()
        ResultStore(cache_dir=tmp_path, persistent=False).flush()


class TestJobRegistry:
    def test_register_and_lookup(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, persistent=False)
        job = _job()
        store.register(job)
        assert store.job(job.id) is job
        assert store.job("job-999999") is None
        assert store.jobs_tracked == 1

    def test_history_evicts_oldest_finished_only(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, persistent=False,
                            history=2)
        live = _job()                  # stays queued throughout
        store.register(live)
        finished = []
        for _ in range(4):
            job = _job()
            store.register(job)
            job.state = DONE
            store.finished(job)
            finished.append(job)
        # Bound: 2 finished kept; the live job is never evicted.
        assert store.job(live.id) is live
        kept = [j for j in finished if store.job(j.id) is not None]
        assert kept == finished[-2:]

    def test_live_jobs_never_evicted_even_over_budget(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, persistent=False,
                            history=0)
        jobs = [_job() for _ in range(5)]
        for job in jobs:
            store.register(job)
        assert all(store.job(j.id) is j for j in jobs)
        for job in jobs:
            job.state = DONE
            store.finished(job)
        assert store.jobs_tracked == 0
