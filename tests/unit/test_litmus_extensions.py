"""Tests for the PC model, RMW instructions, the extended battery,
the sampler, and the happens-before explainer."""

import pytest

from repro.litmus import (EXTRA_CASES, FIG5, IRIW, MP, N6, PC, SB, WRC, X86,
                          allows, enumerate_axiomatic, enumerate_outcomes,
                          explain, sample)
from repro.litmus.battery import SB_BOTH_RMW, SB_ONE_RMW
from repro.litmus.program import Ld, Rmw, St, make_program


class TestProcessorConsistency:
    """Paper Table I, third row: PC is not even write-atomic."""

    def test_iriw_allowed_under_pc_only(self):
        witness = dict(r0_rx=1, r0_ry=0, r1_ry=1, r1_rx=0)
        assert allows(IRIW, PC, **witness)
        assert not allows(IRIW, X86, **witness)

    def test_wrc_distinguishes_write_atomicity(self):
        witness = dict(r1_rx=1, r2_ry=1, r2_rx=0)
        assert allows(WRC, PC, **witness)
        assert not allows(WRC, X86, **witness)

    def test_pc_keeps_per_source_order(self):
        # mp stays forbidden: stores from one core propagate in order.
        assert not allows(MP, PC, r0_rx=1, r0_ry=0)

    def test_pc_keeps_per_location_coherence(self):
        program = make_program("coRR", [
            [St("x", 1)],
            [Ld("x", "r0"), Ld("x", "r1")],
        ])
        assert not allows(program, PC, r1_r0=1, r1_r1=0)

    @pytest.mark.parametrize("program", [MP, SB, N6, IRIW, FIG5],
                             ids=lambda p: p.name)
    def test_x86_subset_of_pc(self, program):
        assert enumerate_outcomes(program, X86) \
            <= enumerate_outcomes(program, PC)

    def test_pc_fence_restores_order(self):
        from repro.litmus.tests import SB_FENCED
        assert not allows(SB_FENCED, PC, r0_ry=0, r1_rx=0)


class TestRmw:
    def test_rmw_returns_old_value(self):
        program = make_program("xchg", [[St("x", 5), Rmw("x", 9, "r0")]])
        outcomes = enumerate_outcomes(program, X86)
        assert len(outcomes) == 1
        (outcome,) = outcomes
        assert outcome.reg(0, "r0") == 5
        assert outcome.mem("x") == 9

    def test_locked_rmw_closes_dekker(self):
        witness = dict(r0_ry=0, r1_rx=0)
        assert allows(SB_ONE_RMW, X86, **witness)     # one side locked
        assert not allows(SB_BOTH_RMW, X86, **witness)  # both locked

    def test_rmw_atomic_between_threads(self):
        """Two atomic exchanges on one location can never both read the
        initial value (they are globally ordered)."""
        program = make_program("xchg-race", [
            [Rmw("x", 1, "r0")],
            [Rmw("x", 2, "r1")],
        ])
        for outcome in enumerate_outcomes(program, X86):
            old0 = outcome.reg(0, "r0")
            old1 = outcome.reg(1, "r1")
            assert not (old0 == 0 and old1 == 0)

    def test_rmw_executes_on_pc_machine(self):
        """Locked ops bus-lock the PC machine: enabled only once all
        copies converged, written to every copy atomically — so the
        both-locked SB witness stays forbidden."""
        witness = dict(r0_ry=0, r1_rx=0)
        assert not allows(SB_BOTH_RMW, PC, **witness)
        assert allows(SB_ONE_RMW, PC, **witness)

    def test_rmw_modeled_by_axiomatic_checker(self):
        assert enumerate_axiomatic(SB_BOTH_RMW, X86) \
            == enumerate_outcomes(SB_BOTH_RMW, X86)


class TestBattery:
    @pytest.mark.parametrize(
        "case", EXTRA_CASES, ids=[c.program.name for c in EXTRA_CASES])
    def test_expected_verdicts(self, case):
        for model, expected in case.expected:
            observed = allows(case.program, model, **case.witness_dict())
            assert observed == expected, (case.program.name, model)

    @pytest.mark.parametrize(
        "case", EXTRA_CASES, ids=[c.program.name for c in EXTRA_CASES])
    def test_battery_operational_equals_axiomatic(self, case):
        for model in ("SC", "370", "x86", "WMM"):
            assert enumerate_outcomes(case.program, model) \
                == enumerate_axiomatic(case.program, model), model


class TestSampler:
    def test_sample_covers_exact_outcome_set_eventually(self):
        report = sample(SB, X86, runs=3000, seed=1)
        assert set(report.histogram) == set(enumerate_outcomes(SB, X86))

    def test_sampled_outcomes_always_legal(self):
        for model in ("SC", "370", "x86", "PC"):
            report = sample(N6, model, runs=400, seed=2)
            legal = enumerate_outcomes(N6, model)
            assert set(report.histogram) <= legal, model

    def test_relaxed_outcome_is_rare_like_hardware(self):
        """The paper saw the n6 witness at ~1e-6 on hardware; under
        uniform random walking it is uncommon but present."""
        report = sample(N6, X86, runs=6000, seed=3)
        freq = report.frequency(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
        assert 0.0 < freq < 0.2

    def test_frequencies_sum_to_one(self):
        report = sample(MP, "370", runs=500, seed=4)
        assert sum(report.histogram.values()) == 500

    def test_summary_renders(self):
        report = sample(SB, X86, runs=200, seed=5)
        text = report.summary()
        assert "sb under x86" in text

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            sample(SB, "RMO", runs=10)


class TestExplain:
    def test_forbidden_outcome_gets_a_cycle(self):
        text = explain(N6, "370", r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
        assert "FORBIDDEN" in text
        assert "--rfi-->" in text   # the paper's Figure 2 argument
        assert "--fr-->" in text
        assert "--co-->" in text

    def test_allowed_outcome_reported(self):
        text = explain(N6, "x86", r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
        assert "ALLOWED" in text

    def test_unreachable_witness(self):
        text = explain(MP, "x86", r0_rx=7, r0_ry=7)
        assert "UNREACHABLE" in text

    def test_mp_cycle_uses_external_rf(self):
        text = explain(MP, "x86", r0_rx=1, r0_ry=0)
        assert "FORBIDDEN" in text
        assert "--rfe-->" in text

    def test_coherence_violation_explained(self):
        program = make_program("coRR", [
            [St("x", 1)],
            [Ld("x", "r0"), Ld("x", "r1")],
        ])
        text = explain(program, "x86", r1_r0=1, r1_r1=0)
        assert "FORBIDDEN" in text
        assert "po-loc" in text

    def test_explain_matches_enumeration_on_battery(self):
        for case in EXTRA_CASES:
            if any(isinstance(op, Rmw)
                   for th in case.program.threads for op in th):
                continue
            for model in ("SC", "370", "x86"):
                text = explain(case.program, model, **case.witness_dict())
                expected = case.expected_dict()[model]
                if expected:
                    assert "ALLOWED" in text, (case.program.name, model)
                else:
                    assert "ALLOWED" not in text, (case.program.name,
                                                   model)

    def test_pc_not_supported(self):
        with pytest.raises(ValueError):
            explain(MP, "PC", r0_rx=1)


class TestSamplerPC:
    def test_pc_walks_terminate_and_stay_legal(self):
        report = sample(IRIW, PC, runs=200, seed=9)
        legal = enumerate_outcomes(IRIW, PC)
        assert set(report.histogram) <= legal
        assert sum(report.histogram.values()) == 200
