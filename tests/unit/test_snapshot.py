"""Snapshot round-trip guarantees.

The contract under test (docs/SNAPSHOT.md):

* a pristine cycle-0 snapshot forks into any policy with stats
  byte-identical to building and re-warming the system from scratch;
* a checkpointed run is its own deterministic mode — two runs agree,
  and a run resumed from *any* checkpoint blob finishes with exactly
  the stats of the uninterrupted checkpointed run, fault plan and all;
* capture refuses non-quiescent systems, restore refuses mismatched
  traces/config/policy, and the binary form fails fast on foreign or
  version-skewed blobs.
"""

import dataclasses

import pytest

from repro.core.policies import POLICY_ORDER
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.sim.config import TINY
from repro.sim.system import System
from repro.snapshot import (NotQuiescent, Snapshot, SnapshotError, capture,
                            fork, restore)
from repro.workloads.profiles import PROFILES
from repro.workloads.runner import run_policy_sweep, run_policy_sweep_forked
from repro.workloads.synthetic import generate_warmup, generate_workload

CORES = 2
LENGTH = 400


def _traces(name="fft", length=LENGTH, seed=0):
    return generate_workload(PROFILES[name], CORES, length, seed)


def _warm(name="fft", length=LENGTH, seed=0):
    return generate_warmup(PROFILES[name], CORES, length, seed)


# ---------------------------------------------------------------------------
# warm fork (the Fig. 9/10 sweep path)
# ---------------------------------------------------------------------------

def test_forked_sweep_matches_rewarmed_sweep():
    """fork() from one shared warm-up == rebuild-and-rewarm per policy,
    stat for stat, for all five policies."""
    rewarmed = run_policy_sweep("fft", POLICY_ORDER, cores=CORES,
                                length=LENGTH)
    forked = run_policy_sweep_forked("fft", POLICY_ORDER, cores=CORES,
                                     length=LENGTH)
    assert list(forked) == list(rewarmed)
    for policy in POLICY_ORDER:
        assert (forked[policy].stats.to_dict()
                == rewarmed[policy].stats.to_dict()), policy


def test_fork_requires_pristine_snapshot():
    traces = _traces()
    system = System(traces, "370-SLFSoS", warm_caches=_warm())
    snaps = []
    system.run(checkpoint_every=150, on_checkpoint=snaps.append)
    assert snaps, "run too short to checkpoint — lengthen the trace"
    assert not snaps[0].pristine
    with pytest.raises(SnapshotError):
        fork(snaps[0], traces, "x86")


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", POLICY_ORDER)
def test_resume_from_bytes_matches_uninterrupted(policy):
    """Serialize the first checkpoint, restore it in a fresh System,
    finish — byte-identical stats to the uninterrupted checkpointed
    run, for every policy."""
    traces = _traces()
    warm = _warm()
    snaps = []
    uninterrupted = System(traces, policy, warm_caches=warm).run(
        checkpoint_every=150, on_checkpoint=snaps.append)
    assert snaps, "run too short to checkpoint — lengthen the trace"

    blob = snaps[0].to_bytes()
    resumed_system = restore(Snapshot.from_bytes(blob), traces)
    assert resumed_system.policy_name == policy
    resumed = resumed_system.run(checkpoint_every=150)
    assert resumed.to_dict() == uninterrupted.to_dict()


def test_checkpointed_run_is_deterministic():
    traces = _traces()
    kwargs = dict(checkpoint_every=150)
    a = System(traces, "370-SLFSoS", warm_caches=_warm()).run(**kwargs)
    b = System(traces, "370-SLFSoS", warm_caches=_warm()).run(**kwargs)
    assert a.to_dict() == b.to_dict()


def test_faulted_resume_matches_uninterrupted():
    """The fault plan's RNG stream, injected counters, and periodic
    metronomes all survive the round trip: resume from every
    checkpoint of a faulted run and land on identical stats."""
    spec = FaultSpec(noc_jitter=4, noc_jitter_prob=0.2, evict_period=250,
                     squash_period=700, sb_delay=3, sb_delay_prob=0.2)
    traces = _traces("barnes", length=1500, seed=3)

    def run_ckpt(sink):
        plan = FaultPlan(spec, seed=11)
        system = System(traces, "370-SLFSoS", faults=plan)
        return system.run(checkpoint_every=400, on_checkpoint=sink), plan

    snaps = []
    stats, plan = run_ckpt(snaps.append)
    again, plan2 = run_ckpt(lambda s: None)
    assert stats.to_dict() == again.to_dict()
    assert plan.injected == plan2.injected
    assert snaps, "run too short to checkpoint — lengthen the trace"

    for i, snap in enumerate(snaps):
        resumed_system = restore(Snapshot.from_bytes(snap.to_bytes()),
                                 traces)
        resumed = resumed_system.run(checkpoint_every=400)
        assert resumed.to_dict() == stats.to_dict(), f"checkpoint {i}"
        assert resumed_system.faults.injected == plan.injected, \
            f"checkpoint {i}"


# ---------------------------------------------------------------------------
# refusals
# ---------------------------------------------------------------------------

def test_capture_refuses_mid_flight_system():
    traces = _traces()
    system = System(traces, "370-SLFSoS")
    for core in system.cores:
        core.start()
    system.engine.run(max_cycles=40)
    with pytest.raises(NotQuiescent) as exc:
        capture(system)
    assert exc.value.reasons


def test_restore_rejects_mismatched_traces():
    system = System(_traces(), "370-SLFSoS", warm_caches=_warm())
    snap = capture(system)
    with pytest.raises(SnapshotError):
        restore(snap, _traces(length=LENGTH + 1))


def test_restore_rejects_mismatched_config():
    traces = _traces()
    snap = capture(System(traces, "370-SLFSoS"))
    with pytest.raises(SnapshotError):
        restore(snap, traces, config=TINY)


def test_policy_retarget_only_when_pristine():
    traces = _traces()
    pristine = capture(System(traces, "370-SLFSoS", warm_caches=_warm()))
    assert pristine.pristine
    retargeted = restore(pristine, traces, policy="x86")
    assert retargeted.policy_name == "x86"

    snaps = []
    System(traces, "370-SLFSoS", warm_caches=_warm()).run(
        checkpoint_every=150, on_checkpoint=snaps.append)
    assert snaps and not snaps[0].pristine
    with pytest.raises(SnapshotError):
        restore(snaps[0], traces, policy="x86")


# ---------------------------------------------------------------------------
# binary form
# ---------------------------------------------------------------------------

def test_from_bytes_rejects_foreign_blob():
    with pytest.raises(SnapshotError):
        Snapshot.from_bytes(b"not a snapshot at all")


def test_from_bytes_rejects_corrupt_payload():
    blob = capture(System(_traces(), "370-SLFSoS")).to_bytes()
    with pytest.raises(SnapshotError):
        Snapshot.from_bytes(blob[:-7])


def test_from_bytes_rejects_version_skew():
    snap = capture(System(_traces(), "370-SLFSoS"))
    snap.data["version"] += 1
    blob = snap.to_bytes()
    with pytest.raises(SnapshotError) as exc:
        Snapshot.from_bytes(blob)
    assert "version" in str(exc.value)


def test_round_trip_preserves_payload():
    snap = capture(System(_traces(), "370-SLFSoS", warm_caches=_warm()))
    clone = Snapshot.from_bytes(snap.to_bytes())
    # data-level equality would be too strict — JSON canonicalizes
    # tuples to lists — but the canonical byte form is a fixed point.
    assert clone.to_bytes() == snap.to_bytes()
    assert clone.pristine == snap.pristine
    assert clone.cycle == snap.cycle
