"""Tests for the Table IV data, profiles, and synthetic generator."""

import pytest

from repro.cpu import isa
from repro.workloads.profiles import (PARALLEL_PROFILES, PROFILES,
                                      SEQUENTIAL_PROFILES, get_profile)
from repro.workloads.synthetic import (generate_trace, generate_warmup,
                                       generate_workload)
from repro.workloads.tableiv import (FIGURE10_GEOMEAN, PARALLEL_AVERAGE,
                                     PARALLEL_ROWS, SEQUENTIAL_AVERAGE,
                                     SEQUENTIAL_ROWS, all_rows)


class TestTableIVData:
    def test_benchmark_counts(self):
        assert len(PARALLEL_ROWS) == 25     # SPLASH-3 + PARSEC
        assert len(SEQUENTIAL_ROWS) == 36   # SPECrate CPU2017
        assert len(all_rows()) == 61

    def test_reported_averages_match_rows(self):
        """The paper's 'Average' rows are arithmetic means of the
        per-benchmark columns (sanity on transcription)."""
        rows = list(PARALLEL_ROWS.values())
        mean_fwd = sum(r.forwarded_pct for r in rows) / len(rows)
        assert mean_fwd == pytest.approx(PARALLEL_AVERAGE.forwarded_pct,
                                         abs=0.01)
        rows = list(SEQUENTIAL_ROWS.values())
        mean_fwd = sum(r.forwarded_pct for r in rows) / len(rows)
        assert mean_fwd == pytest.approx(SEQUENTIAL_AVERAGE.forwarded_pct,
                                         abs=0.01)

    def test_headline_numbers(self):
        assert FIGURE10_GEOMEAN["parallel"]["370-NoSpec"] == 1.27
        assert FIGURE10_GEOMEAN["sequential"]["370-SLFSoS-key"] == 1.027

    def test_outliers_present(self):
        assert PARALLEL_ROWS["barnes"].forwarded_pct > 18
        assert PARALLEL_ROWS["x264"].reexecuted_pct > 10
        assert SEQUENTIAL_ROWS["505.mcf"].reexecuted_pct > 11
        assert PARALLEL_ROWS["radix"].avg_stall_cycles > 98


class TestProfiles:
    def test_every_row_has_a_profile(self):
        assert set(PROFILES) == set(all_rows())

    def test_get_profile(self):
        assert get_profile("barnes").suite == "parallel"
        assert get_profile("505.mcf").suite == "sequential"
        with pytest.raises(ValueError):
            get_profile("doom3")

    def test_stores_cover_forwarding(self):
        for profile in PROFILES.values():
            assert profile.stores_pct >= profile.forwarded_pct

    def test_mix_is_a_sane_fraction(self):
        for profile in PROFILES.values():
            total = (profile.loads_pct + profile.stores_pct
                     + profile.branch_pct)
            assert total < 95.0, profile.name


class TestGenerator:
    @pytest.mark.parametrize("name", ["barnes", "fft", "505.mcf", "radix"])
    def test_rates_close_to_targets(self, name):
        profile = get_profile(name)
        trace = generate_trace(profile, core_id=0, length=6000, seed=3)
        n = len(trace)
        loads = sum(1 for op in trace.ops if op.kind == isa.LOAD)
        stores = sum(1 for op in trace.ops if op.kind == isa.STORE)
        assert loads / n * 100 == pytest.approx(profile.loads_pct, abs=1.5)
        # Multi-argument forwarding idioms can overshoot the plain-store
        # target a little; forwarding coverage matters more.
        assert stores / n * 100 == pytest.approx(profile.stores_pct, abs=4.5)

    def test_traces_validate(self):
        for name in ("barnes", "x264", "ocean_cp", "502.gcc_1"):
            generate_trace(get_profile(name), 0, 2000, seed=0).validate()

    def test_deterministic_for_same_seed(self):
        profile = get_profile("barnes")
        a = generate_trace(profile, 0, 1000, seed=5)
        b = generate_trace(profile, 0, 1000, seed=5)
        assert a.ops == b.ops

    def test_different_cores_use_disjoint_private_regions(self):
        profile = get_profile("barnes")
        a = generate_trace(profile, 0, 1000, seed=5)
        b = generate_trace(profile, 1, 1000, seed=5)
        addrs_a = {op.addr for op in a.ops if op.is_mem}
        addrs_b = {op.addr for op in b.ops if op.is_mem}
        assert not (addrs_a & addrs_b)  # barnes has no shared region

    def test_parallel_profile_shares_memory(self):
        profile = get_profile("canneal")  # shared_fraction > 0
        a = generate_trace(profile, 0, 3000, seed=5)
        b = generate_trace(profile, 1, 3000, seed=5)
        addrs_a = {op.addr for op in a.ops if op.is_mem}
        addrs_b = {op.addr for op in b.ops if op.is_mem}
        assert addrs_a & addrs_b

    def test_memdep_hints_emitted(self):
        trace = generate_trace(get_profile("barnes"), 0, 500, seed=0)
        assert trace.memdep_hints

    def test_workload_shape(self):
        parallel = generate_workload(get_profile("barnes"), cores=4,
                                     length_per_core=500)
        assert len(parallel) == 4
        sequential = generate_workload(get_profile("505.mcf"), cores=4,
                                       length_per_core=500)
        assert len(sequential) == 1

    def test_warmup_streams_are_disjoint(self):
        profile = get_profile("radix")   # streaming stores
        measure = generate_workload(profile, cores=1, length_per_core=2000,
                                    seed=0)[0]
        warm = generate_warmup(profile, cores=1, length_per_core=2000,
                               seed=0)[0]
        stream_measure = {op.addr for op in measure.ops
                          if op.kind == isa.STORE
                          and op.addr >= 0x2000_0000_0000
                          and op.addr < 0x5000_0000_0000}
        stream_warm = {op.addr for op in warm.ops
                       if op.kind == isa.STORE
                       and op.addr >= 0x2000_0000_0000
                       and op.addr < 0x5000_0000_0000}
        assert stream_measure and stream_warm
        assert not (stream_measure & stream_warm)

    def test_contended_profile_touches_hot_line(self):
        profile = get_profile("x264")
        traces = generate_workload(profile, cores=2, length_per_core=4000,
                                   seed=0)
        hot = 0x6000_0000_0000
        for trace in traces:
            assert any(op.is_mem and op.addr == hot for op in trace.ops)
