"""Unit tests for the micro-op ISA and traces."""

import pytest

from repro.cpu import isa
from repro.cpu.isa import Op, Trace, alu, branch, fence, load, store


class TestOps:
    def test_constructors(self):
        ld = load(0x100, deps=(1, 2), pc=7)
        assert ld.kind == isa.LOAD and ld.addr == 0x100
        assert ld.deps == (1, 2) and ld.pc == 7
        st = store(0x200)
        assert st.kind == isa.STORE
        op = alu(latency=3)
        assert op.kind == isa.ALU and op.latency == 3
        br = branch(mispredict=True)
        assert br.kind == isa.BRANCH and br.mispredict
        assert fence().kind == isa.FENCE

    def test_memory_op_requires_address(self):
        with pytest.raises(ValueError):
            Op(isa.LOAD)
        with pytest.raises(ValueError):
            Op(isa.STORE, addr=-5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Op(99)

    def test_is_mem(self):
        assert load(0).is_mem and store(0).is_mem
        assert not alu().is_mem and not branch().is_mem

    def test_ops_are_frozen(self):
        with pytest.raises(Exception):
            load(0x100).addr = 0x200


class TestTrace:
    def test_append_returns_index(self):
        trace = Trace()
        assert trace.append(alu()) == 0
        assert trace.append(alu()) == 1
        assert len(trace) == 2

    def test_validate_rejects_forward_deps(self):
        trace = Trace()
        trace.append(alu(deps=(0,)))  # self-dependence
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_rejects_future_deps(self):
        trace = Trace()
        trace.append(alu())
        trace.append(alu(deps=(5,)))
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_rejects_misaligned_addresses(self):
        trace = Trace()
        trace.append(load(0x103))
        with pytest.raises(ValueError):
            trace.validate()

    def test_from_ops_validates(self):
        trace = Trace.from_ops([alu(), alu(deps=(0,)), load(0x100,
                                                            deps=(1,))])
        assert len(trace) == 3
        with pytest.raises(ValueError):
            Trace.from_ops([alu(deps=(3,))])

    def test_getitem(self):
        trace = Trace()
        op = alu()
        trace.append(op)
        assert trace[0] is op
