"""Sampler determinism: same seed → same results, across processes.

The sampler (:mod:`repro.litmus.sampler`) and the random program
generator (:func:`repro.litmus.checker.random_program`) both underpin
reproducibility claims — a histogram or a cross-check quoted in the
docs must be re-derivable from its seed on any machine.  These tests
pin that down: in-process determinism, cross-process determinism (a
fresh interpreter must produce byte-identical output), and that every
generated program round-trips through the litmus text format.
"""

import random
import subprocess
import sys

from repro.litmus.checker import random_program
from repro.litmus.parser import parse_litmus, render_litmus
from repro.litmus.sampler import sample
from repro.litmus.tests import SB

_PROGRAM_SCRIPT = """\
import random, sys
from repro.litmus.checker import random_program
from repro.litmus.parser import render_litmus
rng = random.Random(int(sys.argv[1]))
for i in range(20):
    prog = random_program(rng, name=f"rand-{i}", allow_fences=True)
    sys.stdout.write(render_litmus(prog))
    sys.stdout.write("---\\n")
"""

_SAMPLE_SCRIPT = """\
import sys
from repro.litmus.sampler import sample
from repro.litmus.tests import SB
report = sample(SB, sys.argv[1], runs=300, seed=int(sys.argv[2]))
for outcome, count in sorted(report.histogram.items(), key=str):
    print(count, outcome)
"""


def _run(script: str, *argv: str) -> str:
    proc = subprocess.run([sys.executable, "-c", script, *argv],
                          capture_output=True, text=True, check=True)
    return proc.stdout


def test_random_program_sequence_identical_across_processes():
    first = _run(_PROGRAM_SCRIPT, "7")
    second = _run(_PROGRAM_SCRIPT, "7")
    assert first == second
    assert first.count("---") == 20


def test_random_program_sequence_differs_across_seeds():
    assert _run(_PROGRAM_SCRIPT, "7") != _run(_PROGRAM_SCRIPT, "8")


def test_sampler_histogram_identical_across_processes():
    first = _run(_SAMPLE_SCRIPT, "x86", "3")
    second = _run(_SAMPLE_SCRIPT, "x86", "3")
    assert first == second
    assert first.strip()


def test_sampler_same_seed_same_histogram_in_process():
    a = sample(SB, "370", runs=200, seed=11)
    b = sample(SB, "370", runs=200, seed=11)
    assert a.histogram == b.histogram
    c = sample(SB, "370", runs=200, seed=12)
    # Different seeds walk different paths; the histograms are counters
    # over the same support, so equality here would be a frozen RNG.
    assert a.histogram != c.histogram


def test_random_programs_roundtrip_through_parser():
    rng = random.Random(123)
    for i in range(50):
        program = random_program(rng, name=f"rt-{i}", threads=2,
                                 max_ops=3, allow_fences=True)
        parsed = parse_litmus(render_litmus(program)).program
        assert parsed == program
