"""The static herd-style relation analysis against the axiomatic
oracle, plus the race classifier and the explain() chain rendering."""

import pytest

from repro.lint.memory_model import (Edge, classify, cross_check_battery,
                                     cross_check_program,
                                     cross_check_random, find_cycle,
                                     find_races, program_shapes)
from repro.litmus import FIG5, IRIW, MP, N6, SB, M370, SC, X86
from repro.litmus.explain import explain, explain_chain
from repro.litmus.program import Ld, St, make_program

# ----------------------------------------------------------------------
# Oracle agreement
# ----------------------------------------------------------------------

def test_battery_agrees_with_axiomatic_oracle():
    result = cross_check_battery()
    assert result.ok, "\n".join(result.mismatches)
    assert result.programs_checked >= 10
    assert result.programs_skipped == 0     # Rmw cases are modeled now


def test_random_programs_agree_with_axiomatic_oracle():
    result = cross_check_random(200, seed=20260805)
    assert result.ok, "\n".join(result.mismatches[:5])
    assert result.programs_checked == 200


def test_random_three_thread_programs_agree():
    result = cross_check_random(40, seed=11, threads=3, max_ops=2)
    assert result.ok, "\n".join(result.mismatches[:5])


def test_single_program_cross_check_reports_no_mismatch():
    assert cross_check_program(N6) == []
    assert cross_check_program(IRIW) == []


# ----------------------------------------------------------------------
# Per-model classification
# ----------------------------------------------------------------------

def test_n6_witness_outcome_split_between_models():
    x86 = classify(N6, X86)
    m370 = classify(N6, M370)
    gap = x86.allowed - m370.allowed
    assert len(gap) == 1
    [outcome] = gap
    witness = m370.witness(outcome)
    assert witness is not None
    assert witness.has_kind("rfi"), witness.kinds


def test_sc_is_strictest():
    for program in (N6, FIG5, MP, SB, IRIW):
        sc = classify(program, SC).allowed
        m370 = classify(program, M370).allowed
        x86 = classify(program, X86).allowed
        assert sc <= m370 <= x86, program.name


def test_forbidden_outcomes_carry_witness_cycles():
    m370 = classify(N6, M370)
    for outcome in m370.forbidden:
        witness = m370.witness(outcome)
        assert witness is not None
        assert witness.axiom in ("sc-per-location", "ghb")
        assert len(witness.edges) >= 2
        # The edges must actually chain into a cycle.
        for first, second in zip(witness.edges,
                                 witness.edges[1:] + witness.edges[:1]):
            assert first.dst == second.src


# ----------------------------------------------------------------------
# Race analysis (non-MCA flagging)
# ----------------------------------------------------------------------

def test_forwarding_races_on_the_paper_cases():
    for program in (N6, FIG5):
        report = find_races(program)
        assert not report.multi_copy_atomic
        assert [race.shape for race in report.races] == ["forwarding"]
        for race in report.races:
            assert race.witness.has_kind("rfi")


def test_mp_sb_iriw_have_no_x86_vs_370_race():
    for program in (MP, SB, IRIW):
        report = find_races(program)
        assert report.multi_copy_atomic, program.name


def test_iriw_shape_detected_structurally():
    assert "iriw" in program_shapes(IRIW)
    assert program_shapes(MP) == frozenset()
    assert program_shapes(SB) == frozenset()


def test_wrc_shape_detected_structurally():
    wrc = make_program(
        "wrc-shape",
        [[St("x", 1)],
         [Ld("x", "r0"), St("y", 1)],
         [Ld("y", "r0"), Ld("x", "r1")]])
    assert "wrc" in program_shapes(wrc)


# ----------------------------------------------------------------------
# Cycle finder
# ----------------------------------------------------------------------

def test_find_cycle_returns_none_on_acyclic_graph():
    edges = [Edge((0, 0), (0, 1), "po"), Edge((0, 1), (1, 0), "rf")]
    assert find_cycle(edges) is None


def test_find_cycle_extracts_the_loop_not_the_tail():
    edges = [
        Edge((9, 9), (0, 0), "po"),            # tail into the cycle
        Edge((0, 0), (0, 1), "po"),
        Edge((0, 1), (1, 0), "fr"),
        Edge((1, 0), (0, 0), "co"),
    ]
    cycle = find_cycle(edges)
    assert cycle is not None
    assert len(cycle) == 3
    nodes = {edge.src for edge in cycle}
    assert (9, 9) not in nodes
    for first, second in zip(cycle, cycle[1:] + cycle[:1]):
        assert first.dst == second.src


# ----------------------------------------------------------------------
# explain() integration
# ----------------------------------------------------------------------

N6_WITNESS = dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)


def test_explain_chain_emits_rf_fr_edges_and_x86_note():
    chain = explain_chain(N6, "370", **N6_WITNESS)
    assert chain is not None
    assert "--rfi-->" in chain
    assert "--fr-->" in chain
    assert "x86-TSO drops the forwarding edge" in chain
    assert "ALLOWED there" in chain


def test_explain_chain_none_when_outcome_allowed():
    assert explain_chain(N6, "x86", **N6_WITNESS) is None


def test_explain_appends_communication_chain():
    text = explain(N6, "370", **N6_WITNESS)
    assert "FORBIDDEN" in text
    assert "communication chain" in text
    assert "--rfi-->" in text


def test_explain_x86_reports_allowed_without_chain():
    text = explain(N6, "x86", **N6_WITNESS)
    assert "ALLOWED" in text
    assert "communication chain" not in text


def test_rmw_programs_are_classified():
    from repro.litmus import SB_BOTH_RMW
    from repro.litmus.operational import enumerate_outcomes
    verdict = classify(SB_BOTH_RMW, M370)
    assert verdict.allowed == enumerate_outcomes(SB_BOTH_RMW, M370)
    # The locked ops forbid the (0, 0) witness even under x86; a
    # forbidden-outcome chain renders without crashing.
    assert explain_chain(SB_BOTH_RMW, "x86", r0_ry=0, r1_rx=0) is not None
