"""Unit tests for the retire gate (paper Figure 8)."""

import pytest

from repro.core.gate import RetireGate


def test_starts_open():
    gate = RetireGate()
    assert not gate.closed
    assert gate.key is None


def test_close_and_reopen_with_matching_key():
    gate = RetireGate()
    gate.close(0x2A)
    assert gate.closed
    assert gate.key == 0x2A
    assert gate.open_with_key(0x2A)
    assert not gate.closed
    assert gate.key is None


def test_wrong_key_does_not_open():
    """Only the store that forwarded the data unlocks the gate: any other
    store exiting the SB leaves it closed (Fig. 8 step c)."""
    gate = RetireGate()
    gate.close(0x2A)
    assert not gate.open_with_key(0x2B)
    assert gate.closed


def test_open_with_key_on_open_gate_is_noop():
    gate = RetireGate()
    assert not gate.open_with_key(0x2A)
    assert not gate.closed


def test_double_close_forbidden():
    """Retirement is in order, so a second SLF load cannot retire while
    the gate is closed — double-closing indicates a pipeline bug."""
    gate = RetireGate()
    gate.close(1)
    with pytest.raises(RuntimeError):
        gate.close(2)


def test_unconditional_open():
    gate = RetireGate()
    gate.close(7)
    assert gate.open_unconditionally()
    assert not gate.closed
    assert not gate.open_unconditionally()  # already open


def test_counters():
    gate = RetireGate()
    gate.close(1)
    gate.open_with_key(1)
    gate.close(2)
    gate.open_unconditionally()
    assert gate.closes == 2
    assert gate.opens == 2


def test_lock_cycles_accumulate():
    gate = RetireGate()
    gate.close(0x2A, now=100)
    assert gate.open_with_key(0x2A, now=130)
    gate.close(0x2B, now=200)
    assert gate.open_unconditionally(now=250)
    assert gate.lock_cycles == 30 + 50
    assert gate.lock_cycles_by_key == {0x2A: 30, 0x2B: 50}


def test_lock_cycles_per_key_accumulate_across_episodes():
    gate = RetireGate()
    for start, end in ((0, 10), (20, 25)):
        gate.close(0x2A, now=start)
        gate.open_with_key(0x2A, now=end)
    assert gate.lock_cycles_by_key == {0x2A: 15}
    assert gate.lock_cycles == 15


def test_failed_unlock_records_nothing():
    gate = RetireGate()
    gate.close(0x2A, now=5)
    assert not gate.open_with_key(0x2B, now=50)
    assert gate.lock_cycles == 0
    assert gate.lock_cycles_by_key == {}


def test_figure8_narrative():
    """The three steps of the paper's Figure 8.

    (a) ld x matches st x in the SQ/SB and copies its key;
    (b) ld x retires and closes the gate with that key — ld y cannot
        retire;
    (c) st x exits the store buffer and reopens the gate with the
        shared key — ld y retires.
    """
    from repro.cpu.store_buffer import StoreBuffer

    sb = StoreBuffer(4)
    st_x = sb.allocate(0)
    sb.resolve_store(st_x, 0x100)

    # (a) store-to-load forwarding: the load copies the key.
    match = sb.forwarding_match(0x100, load_seq=1)
    assert match is st_x
    load_key = match.key

    # (b) the SLF load retires; its store is still in the buffer.
    st_x.retired = True
    gate = RetireGate()
    assert sb.holds_key(load_key)
    gate.close(load_key)
    assert gate.closed  # ld y blocked

    # (c) st x writes to the L1 and exits; its key reopens the gate.
    st_x.written = True
    sb.pop_head()
    assert gate.open_with_key(st_x.key)
    assert not gate.closed  # ld y free to retire
