"""Unit tests for the analysis/report formatting."""

import pytest

from repro.analysis.report import (CHARACTERIZATION_HEADERS,
                                   characterization_row, figure10_table,
                                   format_table, summarize_suite)
from repro.sim.stats import CoreStats, SystemStats
from repro.workloads.runner import BenchmarkResult
from repro.workloads.tableiv import PARALLEL_ROWS


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["bbbb", 22]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # Right alignment of the numeric column.
    assert lines[3].endswith(" 1")
    assert lines[4].endswith("22")


def test_format_table_floats_rounded():
    text = format_table(["x", "y"], [["r", 1.23456]])
    assert "1.235" in text


def test_characterization_row_with_paper():
    stats = CoreStats(retired_instructions=1000, retired_loads=300,
                      slf_loads=50, gate_stall_events=10,
                      gate_stall_cycles=120, reexecuted_instructions=4)
    row = characterization_row("barnes", stats, PARALLEL_ROWS["barnes"])
    assert len(row) == len(CHARACTERIZATION_HEADERS)
    assert row[0] == "barnes"
    assert row[2] == 30.0          # loads %
    assert row[3] == 5.0           # forwarded %
    assert row[7] == 31.78         # paper loads %


def _result(name, policy, cycles):
    stats = SystemStats()
    stats.execution_cycles = cycles
    return BenchmarkResult(name, "parallel", policy, stats)


def _sweep(name, cycles_by_policy):
    return {policy: _result(name, policy, cycles)
            for policy, cycles in cycles_by_policy.items()}


BASE = {"x86": 1000, "370-NoSpec": 1300, "370-SLFSpec": 1070,
        "370-SLFSoS": 1050, "370-SLFSoS-key": 1025}


def test_figure10_table_contains_geomeans():
    results = {"benchA": _sweep("benchA", BASE)}
    text = figure10_table(results, "parallel")
    assert "geomean" in text
    assert "paper-geomean" in text
    assert "1.300" in text and "1.025" in text


def test_summarize_suite_geomean():
    results = {"a": _sweep("a", BASE),
               "b": _sweep("b", {k: v * 2 for k, v in BASE.items()})}
    summary = summarize_suite(results, "parallel")
    assert summary["370-NoSpec"] == pytest.approx(1.3)
    assert summary["370-SLFSoS-key"] == pytest.approx(1.025)
