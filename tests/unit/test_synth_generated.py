"""The promoted (generated) battery members, re-verified from scratch.

``src/repro/litmus/generated.py`` is committed output of ``repro synth
--promote``.  Trust nothing: every case here is re-checked against all
three oracles, its witness verdicts are recomputed, its minimality is
re-established, and its structural novelty vs the hand-written battery
is re-derived — so a stale or hand-edited generated module fails loudly.
"""

import pytest

from repro.litmus.battery import EXTRA_CASES
from repro.litmus.generated import GENERATED_CASES
from repro.litmus.operational import enumerate_outcomes
from repro.litmus.program import canonical_key
from repro.litmus.registry import litmus_registry
from repro.litmus.tests import ALL_CASES
from repro.synth import outcome_profile, triple_check
from repro.synth.space import LATTICE

_IDS = [case.program.name for case in GENERATED_CASES]


def test_at_least_five_promoted_cases():
    assert len(GENERATED_CASES) >= 5


def test_generated_cases_are_registered():
    registry = litmus_registry()
    for case in GENERATED_CASES:
        assert case.program.name in registry
        assert registry[case.program.name] is case.program


def test_generated_keys_distinct_and_novel():
    hand = {canonical_key(case.program): case.program.name
            for case in ALL_CASES + EXTRA_CASES}
    seen = set()
    for case in GENERATED_CASES:
        key = canonical_key(case.program)
        assert key not in hand, \
            f"{case.program.name} duplicates {hand.get(key)}"
        assert key not in seen, f"{case.program.name} repeats {key}"
        seen.add(key)
        # The promoted name embeds the canonical key prefix — a renamed
        # or re-keyed program means the module is stale.
        assert case.program.name.endswith(key[:8])


@pytest.mark.parametrize("case", GENERATED_CASES, ids=_IDS)
def test_three_oracles_agree_exactly(case):
    report = triple_check(case.program)
    assert report.agree, "\n".join(report.mismatches)


@pytest.mark.parametrize("case", GENERATED_CASES, ids=_IDS)
def test_expected_verdicts_match_operational(case):
    from repro.litmus.operational import matching_outcomes
    for model, allowed in case.expected_dict().items():
        matches = matching_outcomes(case.program, model,
                                    **case.witness_dict())
        assert bool(matches) == allowed, \
            f"{case.program.name}: witness vs {model}"


@pytest.mark.parametrize("case", GENERATED_CASES, ids=_IDS)
def test_case_distinguishes_some_lattice_pair(case):
    expected = case.expected_dict()
    verdicts = [expected[model] for model in LATTICE]
    assert True in verdicts and False in verdicts, \
        f"{case.program.name} distinguishes nothing"


def _promoted_pair(case):
    # Names are "synth-{strong}-{weak}-{key8}" (lowercased).
    lower = {model.lower(): model for model in LATTICE}
    _, strong, weak, _ = case.program.name.split("-")
    return lower[strong], lower[weak]


@pytest.mark.parametrize("case", GENERATED_CASES, ids=_IDS)
def test_case_is_minimal(case):
    # Greedy re-minimization must not shrink a promoted witness for the
    # pair it was promoted under (it may shrink for *weaker* pairs —
    # e.g. a 370-vs-x86 witness can contain a smaller SC-vs-x86 one).
    from repro.synth import distinguishing_outcomes, minimize_program
    pair = _promoted_pair(case)
    expected = case.expected_dict()
    assert not expected[pair[0]] and expected[pair[1]]
    assert distinguishing_outcomes(case.program, pair)
    again = minimize_program(case.program, pair)
    assert again.threads == case.program.threads, \
        f"{case.program.name} not minimal for {pair}"


@pytest.mark.parametrize("case", GENERATED_CASES, ids=_IDS)
def test_sc_outcomes_nonempty_and_lattice_contained(case):
    profile = outcome_profile(case.program)
    assert profile["SC"], "every program has at least one SC outcome"
    assert profile["SC"] <= profile["370"] <= profile["x86"]
    for model in LATTICE:
        assert profile[model] == enumerate_outcomes(case.program, model)
