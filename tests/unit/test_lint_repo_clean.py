"""The acceptance bar: the real source tree lints clean, with zero
suppression markers in the determinism-critical packages."""

import os

from repro.lint import run_lint

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src", "repro")


def test_source_tree_is_lint_clean():
    report = run_lint([REPO_SRC])
    assert report.parse_errors == []
    assert report.violations == [], "\n".join(
        f"{v.location()}: {v.rule}: {v.message}"
        for v in report.violations)


def test_no_suppressions_in_critical_packages():
    report = run_lint([REPO_SRC])
    marks = report.suppressions_in(("sim", "cpu", "core"))
    assert marks == [], [f"{s.path}:{s.line}" for s in marks]


def test_no_suppressions_anywhere():
    # Stronger than the acceptance bar: the tree currently needs no
    # baselining at all.  Relax to the critical-package check above if a
    # legitimate suppression ever lands outside sim/cpu/core.
    report = run_lint([REPO_SRC])
    assert report.suppressions == []
    assert report.suppressed_count == 0
