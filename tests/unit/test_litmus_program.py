"""Tests for the litmus program representation."""

import pytest

from repro.litmus.program import Fence, Ld, Outcome, Program, St, make_program


def test_make_program_builds_tuples():
    program = make_program("t", [[St("x", 1)], [Ld("x", "r0")]],
                           initial={"x": 5})
    assert isinstance(program.threads, tuple)
    assert program.initial == (("x", 5),)
    assert program.initial_value("x") == 5
    assert program.initial_value("y") == 0


def test_addresses_collected_in_order():
    program = make_program("t", [[St("b", 1), Ld("a", "r0")],
                                 [St("c", 2)]])
    assert program.addresses == ("b", "a", "c")


def test_loads_and_stores_iterators():
    program = make_program("t", [[St("x", 1), Ld("x", "r0"), Fence()]])
    assert [(tid, idx) for tid, idx, _ in program.loads()] == [(0, 1)]
    assert [(tid, idx) for tid, idx, _ in program.stores()] == [(0, 0)]


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        make_program("t", [])


def test_register_reuse_rejected():
    with pytest.raises(ValueError):
        make_program("t", [[Ld("x", "r0"), Ld("y", "r0")]])


def test_outcome_accessors():
    outcome = Outcome(registers=(((0, "r0"), 7),),
                      memory=(("x", 1), ("y", 2)))
    assert outcome.reg(0, "r0") == 7
    assert outcome.mem("y") == 2
    with pytest.raises(KeyError):
        outcome.reg(1, "r0")
    with pytest.raises(KeyError):
        outcome.mem("z")
    assert "r0=7" in str(outcome)
    assert "[x]=1" in str(outcome)
