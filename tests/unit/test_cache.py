"""Unit tests for cache arrays and the private hierarchy."""

import pytest

from repro.coherence.cache import CacheArray, PrivateHierarchy
from repro.sim.config import CacheConfig


def _tiny_cache(size=4 * 64, ways=2):
    return CacheArray(CacheConfig(size, ways, 4))


class TestCacheArray:
    def test_line_alignment(self):
        cache = _tiny_cache()
        assert cache.line_of(0x1005) == 0x1000
        assert cache.line_of(0x1040) == 0x1040

    def test_miss_then_hit(self):
        cache = _tiny_cache()
        assert not cache.lookup(0x1000)
        cache.insert(0x1000)
        assert cache.lookup(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        # 2 sets, 2 ways.  Lines 0x0, 0x80, 0x100 map to set 0.
        cache = _tiny_cache()
        cache.insert(0x000)
        cache.insert(0x080)
        victim = cache.insert(0x100)
        assert victim == 0x000  # least recently used
        assert cache.evictions == 1

    def test_lookup_refreshes_lru(self):
        cache = _tiny_cache()
        cache.insert(0x000)
        cache.insert(0x080)
        cache.lookup(0x000)          # refresh
        victim = cache.insert(0x100)
        assert victim == 0x080

    def test_reinsert_refreshes_without_eviction(self):
        cache = _tiny_cache()
        cache.insert(0x000)
        cache.insert(0x080)
        assert cache.insert(0x000) is None
        assert cache.insert(0x100) == 0x080

    def test_remove(self):
        cache = _tiny_cache()
        cache.insert(0x000)
        assert cache.remove(0x000)
        assert not cache.remove(0x000)
        assert not cache.contains(0x000)

    def test_occupancy_and_resident_lines(self):
        cache = _tiny_cache()
        cache.insert(0x000)
        cache.insert(0x040)
        assert cache.occupancy() == 2
        assert sorted(cache.resident_lines()) == [0x000, 0x040]


class TestPrivateHierarchy:
    def _hierarchy(self):
        return PrivateHierarchy(CacheConfig(2 * 64, 1, 4),
                                CacheConfig(4 * 64, 2, 12))

    def test_l1_hit_latency(self):
        h = self._hierarchy()
        h.fill(0x000)
        assert h.access_latency(0x000) == 4

    def test_l2_hit_refills_l1(self):
        h = self._hierarchy()
        h.fill(0x000)
        h.l1.remove(0x000)  # simulate an L1-only castout
        assert h.access_latency(0x000) == 12
        assert h.access_latency(0x000) == 4  # refilled into L1

    def test_miss_returns_none(self):
        assert self._hierarchy().access_latency(0x000) is None

    def test_inclusion_on_l2_eviction(self):
        h = self._hierarchy()
        # Set 0 of L2 holds 2 ways: 0x000, 0x100 (line 64B, 2 sets).
        h.fill(0x000)
        h.fill(0x100)
        victim = h.fill(0x200)
        assert victim == 0x000
        assert not h.l1.contains(0x000)  # inclusion enforced
        assert not h.contains(0x000)

    def test_invalidate_removes_everywhere(self):
        h = self._hierarchy()
        h.fill(0x000)
        assert h.invalidate(0x000)
        assert not h.contains(0x000)
        assert not h.invalidate(0x000)

    def test_l1_evict_listener_fires_on_castout(self):
        h = self._hierarchy()
        seen = []
        h.l1_evict_listener = seen.append
        # L1: 2 sets, 1 way.  0x000 and 0x080 share L1 set 0.
        h.fill(0x000)
        h.fill(0x080)
        assert seen == [0x000]
        assert h.contains(0x000)  # still in L2

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            PrivateHierarchy(CacheConfig(128, 1, 4, line_bytes=32),
                             CacheConfig(256, 2, 12, line_bytes=64))
