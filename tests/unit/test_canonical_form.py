"""Canonical program form: structural identity up to relabeling."""

from repro.litmus.battery import EXTRA_CASES
from repro.litmus.program import (Fence, Ld, St, canonical_form,
                                  canonical_key, make_program)
from repro.litmus.tests import ALL_CASES, N6, SB


def _sb_variant(addrs=("x", "y"), values=(1, 2), regs=("r0", "r0"),
                swap=False):
    threads = [
        [St(addrs[0], values[0]), Ld(addrs[1], regs[0])],
        [St(addrs[1], values[1]), Ld(addrs[0], regs[1])],
    ]
    if swap:
        threads.reverse()
    return make_program("variant", threads)


def test_address_relabeling_is_canonical():
    assert canonical_key(_sb_variant()) == \
        canonical_key(_sb_variant(addrs=("p", "q")))


def test_value_relabeling_is_canonical():
    assert canonical_key(_sb_variant()) == \
        canonical_key(_sb_variant(values=(7, 42)))


def test_register_relabeling_is_canonical():
    assert canonical_key(_sb_variant()) == \
        canonical_key(_sb_variant(regs=("ra", "rb")))


def test_thread_permutation_is_canonical():
    assert canonical_key(_sb_variant()) == \
        canonical_key(_sb_variant(swap=True))


def test_battery_sb_matches_relabeled_variant():
    assert canonical_key(SB) == canonical_key(
        _sb_variant(addrs=("y", "x"), values=(9, 3), swap=True))


def test_different_structure_distinct():
    mp_like = make_program("t", [
        [Ld("x", "r0"), Ld("y", "r1")],
        [St("y", 1), St("x", 2)],
    ])
    assert canonical_key(mp_like) != canonical_key(SB)


def test_fences_are_structural():
    fenced = make_program("t", [
        [St("x", 1), Fence(), Ld("y", "r0")],
        [St("y", 2), Ld("x", "r1")],
    ])
    assert canonical_key(fenced) != canonical_key(SB)


def test_store_of_initial_value_is_distinct():
    # A store of the location's initial value is observationally
    # different from a store of a fresh value (a load cannot tell the
    # init apart from an equal-valued store); the canonical form pins
    # the initial value to class 0, so the two must not collapse.
    fresh = make_program("t", [[St("x", 1), Ld("x", "r0")]])
    initial = make_program("t", [[St("x", 0), Ld("x", "r0")]])
    assert canonical_key(fresh) != canonical_key(initial)


def test_value_equality_per_address_preserved():
    # Two stores of the same value to one address vs distinct values:
    # distinct structures.
    same = make_program("t", [[St("x", 5)], [St("x", 5), Ld("x", "r0")]])
    diff = make_program("t", [[St("x", 5)], [St("x", 6), Ld("x", "r0")]])
    assert canonical_key(same) != canonical_key(diff)


def test_initial_only_addresses_kept():
    with_extra = make_program("t", [[St("x", 1)]], initial={"y": 0})
    without = make_program("t", [[St("x", 1)]])
    assert canonical_key(with_extra) != canonical_key(without)


def test_canonical_form_is_deterministic_text():
    form = canonical_form(N6)
    assert form == canonical_form(N6)
    assert "a0" in form and "T0" in form


def test_battery_has_no_structural_duplicates():
    keys = {}
    for case in ALL_CASES + EXTRA_CASES:
        keys.setdefault(canonical_key(case.program),
                        []).append(case.program.name)
    duplicates = {k: v for k, v in keys.items() if len(v) > 1}
    assert duplicates == {}


def test_generated_battery_members_are_new_structures():
    from repro.litmus.generated import GENERATED_CASES
    hand = {canonical_key(case.program)
            for case in ALL_CASES + EXTRA_CASES}
    for case in GENERATED_CASES:
        assert canonical_key(case.program) not in hand
