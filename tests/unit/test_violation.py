"""Unit tests for the store-atomicity violation witness (Figures 6/7)."""

from repro.core.violation import ViolationDetector
from repro.cpu.load_queue import LoadQueue
from repro.cpu.store_buffer import StoreBuffer


def _scenario():
    """st x forwards to ld x (seq 1); ld y (seq 2) is the younger load."""
    detector = ViolationDetector(line_bytes=64)
    sb = StoreBuffer(4)
    st_x = sb.allocate(0)
    st_x.addr, st_x.resolved = 0x100, True
    lq = LoadQueue(4)
    ld_x = lq.allocate(1)
    ld_x.addr = 0x100
    ld_y = lq.allocate(2)
    ld_y.addr = 0x800          # different line
    return detector, st_x, ld_x, ld_y


def test_full_window_of_vulnerability_is_witnessed():
    """Fig. 6: ld y retires inside st x's window, then an invalidation
    for y's line arrives before st x writes — store atomicity violated."""
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    detector.on_load_retired(ld_x)   # the SLF load itself: no window
    detector.on_load_retired(ld_y)   # younger load retires in the window
    detector.on_line_removed(0x800)
    assert detector.violations == 1


def test_no_violation_if_store_writes_first():
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    detector.on_load_retired(ld_y)
    detector.on_store_written(st_x)   # window closes
    detector.on_line_removed(0x800)
    assert detector.violations == 0


def test_no_violation_without_younger_retire():
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    detector.on_line_removed(0x800)
    assert detector.violations == 0


def test_slf_load_itself_opens_no_window():
    """The paper's insight: the SLF load is not speculative — only
    younger loads are endangered."""
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    detector.on_load_retired(ld_x)
    detector.on_line_removed(0x100)
    assert detector.violations == 0


def test_same_line_as_store_excluded():
    """An invalidation of the *forwarded* line relates to the store
    itself, not to a reordered observation of another location."""
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    other = ld_y
    other.addr = 0x108            # same line as st x
    detector.on_load_retired(other)
    detector.on_line_removed(0x100)
    assert detector.violations == 0


def test_loads_older_than_slf_open_no_window():
    """Loads preceding the SLF load in program order are inserted in
    memory order before it (Section III-A, last paragraph)."""
    detector = ViolationDetector(line_bytes=64)
    sb = StoreBuffer(4)
    st_x = sb.allocate(5)
    st_x.addr, st_x.resolved = 0x100, True
    lq = LoadQueue(4)
    older = lq.allocate(1)
    older.addr = 0x800
    slf = lq.allocate(6)
    slf.addr = 0x100
    detector.on_forward(slf, st_x)
    detector.on_load_retired(older)   # older than the SLF load
    detector.on_line_removed(0x800)
    assert detector.violations == 0


def test_squash_cancels_windows():
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    detector.on_load_retired(ld_y)
    detector.on_squash(1)             # the SLF load was flushed
    detector.on_line_removed(0x800)
    assert detector.violations == 0


def test_multiple_windows_counted_independently():
    detector, st_x, ld_x, ld_y = _scenario()
    detector.on_forward(ld_x, st_x)
    detector.on_load_retired(ld_y)
    third = type(ld_y).__new__(type(ld_y))  # another retired load entry
    # simpler: reuse the LoadQueue API
    from repro.cpu.load_queue import LoadQueue
    lq2 = LoadQueue(4)
    ld_z = lq2.allocate(3)
    ld_z.addr = 0xC00
    detector.on_load_retired(ld_z)
    detector.on_line_removed(0x800)
    detector.on_line_removed(0xC00)
    assert detector.violations == 2
