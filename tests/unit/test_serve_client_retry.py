"""ServeClient retry behaviour against a scripted stdlib HTTP server:
Retry-After-honouring backoff on 429/503, idempotent-GET retry on
connection resets, and retries=0 passing the first answer through."""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.client import ServeClient, ServeError


class ScriptedHandler(BaseHTTPRequestHandler):
    """Plays back ``server.script`` one entry per request.

    Entries: ``("status", code, payload, headers)`` sends a JSON
    response; ``("reset",)`` slams the connection shut with no bytes —
    what a SIGKILLed fleet node looks like mid-poll.
    """

    def _play(self):
        server = self.server
        with server.lock:
            server.seen.append((self.command, self.path,
                                self.headers.get("X-Client-Id")))
            step = (server.script.pop(0) if server.script
                    else ("status", 200, {"ok": True}, {}))
        if step[0] == "reset":
            self.connection.close()
            return
        _, code, payload, headers = step
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    do_GET = _play
    do_POST = _play

    def log_message(self, *args):
        pass


@pytest.fixture
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), ScriptedHandler)
    server.script = []
    server.seen = []
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def _client(server, **kwargs):
    host, port = server.server_address
    return ServeClient(f"http://{host}:{port}", timeout=5.0, **kwargs)


def test_retries_429_honouring_retry_after(scripted_server):
    scripted_server.script = [
        ("status", 429, {"error": "quota-exceeded"}, {"Retry-After": "1"}),
        ("status", 200, {"state": "done"}, {}),
    ]
    client = _client(scripted_server, retries=2)
    t0 = time.monotonic()
    status, payload = client.get("/v1/jobs/j1")
    elapsed = time.monotonic() - t0
    assert status == 200
    assert payload == {"state": "done"}
    assert len(scripted_server.seen) == 2
    # The 1-second Retry-After was honoured, not the default jitter.
    assert elapsed >= 0.9


def test_retries_503_then_succeeds(scripted_server):
    scripted_server.script = [
        ("status", 503, {"error": "draining"}, {"Retry-After": "0"}),
        ("status", 503, {"error": "draining"}, {"Retry-After": "0"}),
        ("status", 200, {"ok": True}, {}),
    ]
    client = _client(scripted_server, retries=2)
    status, _ = client.get("/v1/healthz")
    assert status == 200
    assert len(scripted_server.seen) == 3


def test_zero_retries_returns_first_rejection(scripted_server):
    scripted_server.script = [
        ("status", 429, {"error": "quota-exceeded"}, {"Retry-After": "9"}),
    ]
    client = _client(scripted_server)   # retries defaults to 0
    status, payload = client.get("/v1/jobs/j1")
    assert status == 429
    assert payload["error"] == "quota-exceeded"
    assert len(scripted_server.seen) == 1


def test_get_retries_connection_reset(scripted_server):
    scripted_server.script = [
        ("reset",),
        ("status", 200, {"state": "done"}, {}),
    ]
    client = _client(scripted_server, retries=2, backoff=0.01)
    status, payload = client.get("/v1/jobs/j1")
    assert status == 200
    assert payload == {"state": "done"}


def test_post_never_retries_transport_errors(scripted_server):
    # A reset mid-POST may or may not have enqueued the job; blind
    # resubmission is the caller's decision, not the client's.
    scripted_server.script = [("reset",), ("status", 200, {}, {})]
    client = _client(scripted_server, retries=3, backoff=0.01)
    with pytest.raises(ServeError):
        client.submit({"kind": "litmus", "name": "mp"})
    assert len(scripted_server.seen) == 1


def test_client_id_header_is_sent(scripted_server):
    scripted_server.script = [("status", 200, {"ok": True}, {})]
    client = _client(scripted_server, client_id="bench-7")
    client.get("/v1/healthz")
    assert scripted_server.seen[0][2] == "bench-7"
