"""Tests for the litmus text-format parser."""

import pytest

from repro.litmus.operational import allows, enumerate_outcomes
from repro.litmus.parser import (LitmusParseError, parse_litmus,
                                 render_litmus)
from repro.litmus.program import Fence, Ld, Rmw, St
from repro.litmus.tests import ALL_CASES, MP

MP_SOURCE = """
name: mp
# message passing
T0:
  ld x -> rx
  ld y -> ry

T1:
  st y,1
  st x,1

exists: r0_rx=1 r0_ry=0
"""


def test_parse_mp():
    parsed = parse_litmus(MP_SOURCE)
    assert parsed.program.name == "mp"
    assert parsed.witness == {"r0_rx": 1, "r0_ry": 0}
    assert parsed.program == MP  # structural equality with the built-in


def test_parse_all_instruction_kinds():
    parsed = parse_litmus("""
name: kinds
init: y=5
T0:
  st x,1
  mfence
  ld x -> r0
  xchg y,2 -> r1
""")
    thread = parsed.program.threads[0]
    assert thread == (St("x", 1), Fence(), Ld("x", "r0"),
                      Rmw("y", 2, "r1"))
    assert parsed.program.initial_value("y") == 5


def test_parsed_program_runs():
    parsed = parse_litmus(MP_SOURCE)
    assert not allows(parsed.program, "x86", **parsed.witness)


def test_comments_and_blank_lines_ignored():
    parsed = parse_litmus("""
# a comment
name: c   # trailing comment? no: whole-line only before strip

T0:
  st x,1  # write flag
""")
    assert len(parsed.program.threads[0]) == 1


class TestErrors:
    def test_unparsable_instruction(self):
        with pytest.raises(LitmusParseError, match="cannot parse"):
            parse_litmus("T0:\n  mov x,1\n")

    def test_instruction_outside_thread(self):
        with pytest.raises(LitmusParseError, match="outside a thread"):
            parse_litmus("st x,1\n")

    def test_duplicate_thread(self):
        with pytest.raises(LitmusParseError, match="twice"):
            parse_litmus("T0:\n  st x,1\nT0:\n  st y,1\n")

    def test_non_contiguous_threads(self):
        with pytest.raises(LitmusParseError, match="contiguous"):
            parse_litmus("T0:\n  st x,1\nT2:\n  st y,1\n")

    def test_empty(self):
        with pytest.raises(LitmusParseError, match="no threads"):
            parse_litmus("name: empty\n")

    def test_bad_condition(self):
        with pytest.raises(LitmusParseError, match="key=value"):
            parse_litmus("T0:\n  st x,1\nexists: broken\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "case",
        [c for c in ALL_CASES],
        ids=lambda c: c.program.name)
    def test_builtin_cases_roundtrip(self, case):
        source = render_litmus(case.program, case.witness_dict())
        parsed = parse_litmus(source)
        # Names with characters outside \w can differ; compare structure.
        assert parsed.program.threads == case.program.threads
        assert parsed.program.initial == case.program.initial
        assert parsed.witness == case.witness_dict()

    def test_roundtrip_preserves_outcomes(self):
        source = render_litmus(MP)
        parsed = parse_litmus(source)
        for model in ("SC", "370", "x86"):
            assert enumerate_outcomes(parsed.program, model) \
                == enumerate_outcomes(MP, model)
