"""Tests for the ConsistencyChecker (paper footnote 1)."""

import random

from repro.litmus.checker import (compare, find_violating_programs,
                                  random_program,
                                  store_atomicity_violations)
from repro.litmus.tests import FIG5, MP, N6


def test_n6_reports_one_x86_only_behaviour():
    report = compare(N6)
    assert report.model_a == "370" and report.model_b == "x86"
    assert len(report.only_in_b) == 1
    assert report.only_in_a == frozenset()
    assert not report.equivalent


def test_mp_is_equivalent_across_models():
    report = compare(MP)
    assert report.equivalent


def test_store_atomicity_violations_helper():
    assert len(store_atomicity_violations(FIG5)) == 1
    assert store_atomicity_violations(MP) == frozenset()


def test_summary_mentions_counts():
    text = compare(N6).summary()
    assert "n6" in text
    assert "x86-only" in text


def test_random_program_is_wellformed():
    rng = random.Random(0)
    for _ in range(20):
        program = random_program(rng, threads=2, max_ops=3)
        assert 1 <= len(program.threads) <= 2
        # store values globally unique
        values = [op.value for _, _, op in program.stores()]
        assert len(values) == len(set(values))


def test_discovery_mode_finds_known_violations():
    """Random search over tiny programs must surface at least one
    program whose x86 behaviours exceed 370's (the paper found such
    programs with its checker tool)."""
    reports = find_violating_programs(seed=1, trials=200, threads=2,
                                      max_ops=4)
    assert reports, "expected at least one non-store-atomic program"
    for report in reports:
        assert report.only_in_b
        # The program must contain a potential forwarding source: some
        # thread stores to an address it also loads (without forwarding
        # the two models are indistinguishable).
        forwarding_possible = False
        for thread in report.program.threads:
            st_addrs = {op.addr for op in thread if hasattr(op, "value")}
            ld_addrs = {op.addr for op in thread if hasattr(op, "reg")}
            if st_addrs & ld_addrs:
                forwarding_possible = True
        assert forwarding_possible, (
            f"{report.program.name}: x86-only outcome without forwarding?")
