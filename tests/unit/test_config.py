"""Unit tests for the system configuration (paper Table III)."""

import pytest

from repro.sim.config import (SKYLAKE_LIKE, TINY, CacheConfig, CoreConfig,
                              MemoryConfig, NetworkConfig, SystemConfig)


class TestTableIII:
    """The default configuration must match the paper's Table III."""

    def test_processor_parameters(self):
        core = SKYLAKE_LIKE.core
        assert core.issue_width == 5
        assert core.retire_width == 5
        assert core.rob_entries == 224
        assert core.lq_entries == 72
        assert core.sq_sb_entries == 56

    def test_memory_parameters(self):
        mem = SKYLAKE_LIKE.memory
        assert mem.l1.size_bytes == 32 * 1024
        assert mem.l1.ways == 8
        assert mem.l1.hit_latency == 4
        assert mem.l2.size_bytes == 128 * 1024
        assert mem.l2.hit_latency == 12
        assert mem.l3_bank.size_bytes == 1024 * 1024
        assert mem.l3_bank.hit_latency == 35
        assert mem.l3_banks == 8
        assert mem.memory_latency == 160

    def test_network_parameters(self):
        net = SKYLAKE_LIKE.network
        assert net.switch_latency == 6
        assert net.data_flits == 5
        assert net.control_flits == 1
        assert net.data_latency == 11
        assert net.control_latency == 7

    def test_eight_cores(self):
        assert SKYLAKE_LIKE.cores == 8


class TestCacheConfig:
    def test_sets_computation(self):
        cache = CacheConfig(32 * 1024, 8, 4)
        assert cache.sets == 64  # 32KB / (8 ways * 64B)

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(64, 8, 4).sets


def test_with_cores_returns_new_config():
    config = SKYLAKE_LIKE.with_cores(2)
    assert config.cores == 2
    assert SKYLAKE_LIKE.cores == 8
    assert config.core == SKYLAKE_LIKE.core


def test_tiny_config_is_consistent():
    assert TINY.cores == 2
    assert TINY.memory.l1.sets > 0
    assert TINY.memory.l2.sets > 0
    assert TINY.core.sq_sb_entries < SKYLAKE_LIKE.core.sq_sb_entries


def test_configs_are_frozen():
    with pytest.raises(Exception):
        SKYLAKE_LIKE.cores = 4
