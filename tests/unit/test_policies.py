"""Unit tests for the five consistency policies (against a stub core)."""

import pytest

from repro.core.policies import (POLICIES, POLICY_ORDER, NoSpecPolicy,
                                 SLFSoSKeyPolicy, SLFSoSPolicy, SLFSpecPolicy,
                                 X86Policy, make_policy)
from repro.core.reasons import GATE, SLF_SB
from repro.cpu.load_queue import PERFORMED, LoadQueue
from repro.cpu.store_buffer import StoreBuffer
from repro.sim.stats import CoreStats


class StubCore:
    """Just enough core for the policy hooks."""

    def __init__(self):
        self.sb = StoreBuffer(8)
        self.lq = LoadQueue(8)
        self.stats = CoreStats()


def _forwarding_pair(core, store_seq=0, load_seq=2, addr=0x100):
    store = core.sb.allocate(store_seq)
    store.addr, store.resolved = addr, True
    load = core.lq.allocate(load_seq)
    load.addr = addr
    load.state = PERFORMED
    return store, load


class TestRegistry:
    def test_all_five_present_in_paper_order(self):
        assert POLICY_ORDER == ["x86", "370-NoSpec", "370-SLFSpec",
                                "370-SLFSoS", "370-SLFSoS-key"]
        assert set(POLICIES) == set(POLICY_ORDER)

    def test_make_policy(self):
        assert isinstance(make_policy("x86"), X86Policy)
        assert isinstance(make_policy("370-NoSpec"), NoSpecPolicy)
        assert isinstance(make_policy("370-SLFSpec"), SLFSpecPolicy)
        assert isinstance(make_policy("370-SLFSoS"), SLFSoSPolicy)
        assert isinstance(make_policy("370-SLFSoS-key"), SLFSoSKeyPolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("SC++")

    def test_store_atomicity_flags(self):
        assert not make_policy("x86").store_atomic
        for name in POLICY_ORDER[1:]:
            assert make_policy(name).store_atomic

    def test_forwarding_flags(self):
        assert not make_policy("370-NoSpec").allows_forwarding
        for name in ("x86", "370-SLFSpec", "370-SLFSoS", "370-SLFSoS-key"):
            assert make_policy(name).allows_forwarding


class TestOnForward:
    def test_records_slf_state_and_key(self):
        core = StubCore()
        policy = make_policy("x86")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        assert load.slf
        assert load.key == store.key
        assert load.store_seq == store.seq


class TestX86:
    def test_never_blocks_retirement(self):
        core = StubCore()
        policy = make_policy("x86")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        assert policy.load_retire_block(load) is None

    def test_no_extra_speculation(self):
        policy = make_policy("x86")
        policy.attach(StubCore())
        assert policy.speculative_floor() == (None, False)


class TestSLFSpec:
    def test_slf_load_blocked_while_older_store_unwritten(self):
        core = StubCore()
        policy = make_policy("370-SLFSpec")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        assert policy.load_retire_block(load) == SLF_SB

    def test_unblocked_once_sb_drains(self):
        core = StubCore()
        policy = make_policy("370-SLFSpec")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        store.retired = True
        store.written = True
        core.sb.pop_head()
        assert policy.load_retire_block(load) is None

    def test_non_slf_load_never_blocked(self):
        core = StubCore()
        policy = make_policy("370-SLFSpec")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        # No forwarding happened: plain load.
        assert policy.load_retire_block(load) is None

    def test_speculative_floor_inclusive_of_slf_load(self):
        core = StubCore()
        policy = make_policy("370-SLFSpec")
        policy.attach(core)
        store, load = _forwarding_pair(core, load_seq=2)
        policy.on_forward(load, store)
        floor, inclusive = policy.speculative_floor()
        assert floor == 2 and inclusive is True


class TestSoSVariants:
    @pytest.fixture(params=["370-SLFSoS", "370-SLFSoS-key"])
    def setup(self, request):
        core = StubCore()
        policy = make_policy(request.param)
        policy.attach(core)
        return core, policy

    def test_slf_load_retires_and_closes_gate(self, setup):
        core, policy = setup
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        store.retired = True
        assert policy.load_retire_block(load) is None  # SLF load is free
        policy.on_load_retire(load)
        assert policy.gate.closed
        assert core.stats.gate_closes == 1

    def test_gate_not_closed_if_store_already_written(self, setup):
        core, policy = setup
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        store.retired = True
        store.written = True
        core.sb.pop_head()
        policy.on_load_retire(load)
        assert not policy.gate.closed

    def test_younger_loads_blocked_while_gate_closed(self, setup):
        core, policy = setup
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        store.retired = True
        policy.on_load_retire(load)
        younger = core.lq.allocate(5)
        younger.state = PERFORMED
        assert policy.load_retire_block(younger) == GATE

    def test_speculative_floor_excludes_slf_load(self, setup):
        core, policy = setup
        store, load = _forwarding_pair(core, load_seq=2)
        policy.on_forward(load, store)
        floor, inclusive = policy.speculative_floor()
        assert floor == 2 and inclusive is False

    def test_squash_clears_stale_forwardings(self, setup):
        core, policy = setup
        store, load = _forwarding_pair(core, load_seq=2)
        policy.on_forward(load, store)
        policy.on_squash(2)
        assert policy.speculative_floor() == (None, False)


class TestGateReopening:
    def test_key_variant_reopens_on_forwarding_store_write(self):
        core = StubCore()
        policy = make_policy("370-SLFSoS-key")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        other = core.sb.allocate(5)
        other.addr, other.resolved, other.retired = 0x200, True, True
        policy.on_forward(load, store)
        store.retired = True
        policy.on_load_retire(load)
        assert policy.gate.closed
        # Another store writing does NOT open the gate (key mismatch)...
        policy.on_store_written(other)
        assert policy.gate.closed
        # ...the forwarding store does.
        policy.on_store_written(store)
        assert not policy.gate.closed
        assert policy.speculative_floor() == (None, False)

    def test_drain_variant_reopens_only_on_sb_drain(self):
        core = StubCore()
        policy = make_policy("370-SLFSoS")
        policy.attach(core)
        store, load = _forwarding_pair(core)
        policy.on_forward(load, store)
        store.retired = True
        policy.on_load_retire(load)
        assert policy.gate.closed
        # Writing the forwarding store is NOT enough for the keyless
        # variant...
        policy.on_store_written(store)
        assert policy.gate.closed
        # ...the SB must drain.
        policy.on_sb_drained()
        assert not policy.gate.closed
        assert policy.speculative_floor() == (None, False)
