"""Unit tests for the benchmark runner."""

import pytest

from repro.workloads.runner import (geomean, normalized_times,
                                    run_benchmark, run_policy_sweep,
                                    suite_names)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([1.0]) == 1.0
    with pytest.raises(ValueError):
        geomean([])


def test_suite_names():
    assert "barnes" in suite_names("parallel")
    assert "505.mcf" in suite_names("sequential")
    assert len(suite_names("parallel")) == 25
    assert len(suite_names("sequential")) == 36
    with pytest.raises(ValueError):
        suite_names("mobile")


def test_run_benchmark_returns_result():
    result = run_benchmark("fft", cores=2, length=600)
    assert result.name == "fft"
    assert result.suite == "parallel"
    assert result.policy == "370-SLFSoS-key"
    assert result.cycles > 0
    assert result.stats.total.retired_instructions >= 1200


def test_sequential_benchmark_uses_one_core():
    result = run_benchmark("557.xz_2", cores=4, length=600)
    assert len(result.stats.per_core) == 1


def test_run_policy_sweep_and_normalization():
    results = run_policy_sweep("water_spatial", cores=2, length=800,
                               policies=("x86", "370-NoSpec"))
    assert set(results) == {"x86", "370-NoSpec"}
    norm = normalized_times(results)
    assert norm["x86"] == 1.0
    assert norm["370-NoSpec"] >= 1.0


def test_sweep_is_reproducible():
    a = run_policy_sweep("fft", cores=2, length=500,
                         policies=("x86",))["x86"].cycles
    b = run_policy_sweep("fft", cores=2, length=500,
                         policies=("x86",))["x86"].cycles
    assert a == b


def test_compare_policies_helper():
    from repro.sim.system import compare_policies
    from repro.workloads import generate_workload, get_profile
    traces = generate_workload(get_profile("fft"), cores=1,
                               length_per_core=300)
    results = compare_policies(traces, policies=("x86", "370-SLFSoS-key"))
    assert set(results) == {"x86", "370-SLFSoS-key"}
    for stats in results.values():
        assert stats.total.retired_instructions == 300
