"""The memory-model registry and its machine-checked lattice.

Every battery and generated case is judged under every registered
model; allowed-outcome monotonicity must hold along every (transitive)
lattice edge, and the classic WMM-vs-x86 witnesses must be confirmed
by all three oracles.
"""

import pytest

from repro.litmus.battery import EXTRA_CASES
from repro.litmus.generated import GENERATED_CASES
from repro.litmus.operational import MODELS
from repro.litmus.tests import ALL_CASES
from repro.models import (MODEL_ORDER, REGISTRY, get_model, lattice_edges,
                          declared_edges, model_names, model_table)
from repro.models.lattice import check_lattice, check_program
from repro.synth.oracle import triple_check

_CORPUS = ALL_CASES + EXTRA_CASES + GENERATED_CASES
_IDS = [case.program.name for case in _CORPUS]


class TestRegistry:
    def test_five_models_registered(self):
        assert MODEL_ORDER == ("SC", "370", "x86", "PC", "WMM")
        assert set(REGISTRY) == set(MODEL_ORDER)

    def test_operational_models_come_from_the_registry(self):
        # litmus.operational.MODELS and the registry must agree — one
        # namespace for every model-by-name lookup in the tree.
        assert tuple(MODELS) == model_names()

    def test_get_model_roundtrip(self):
        for name in model_names():
            assert get_model(name).name == name

    def test_get_model_unknown_name(self):
        with pytest.raises(ValueError, match="registered models"):
            get_model("ARMv8")

    def test_axiomatic_names_skip_pc(self):
        assert model_names(axiomatic_only=True) == \
            ("SC", "370", "x86", "WMM")
        assert get_model("PC").axiomatic is None

    def test_model_table_covers_every_model(self):
        rows = model_table()
        assert [row[0] for row in rows] == list(MODEL_ORDER)
        for row in rows:
            assert all(isinstance(cell, str) and cell for cell in row)

    def test_wmm_carries_both_formalizations(self):
        wmm = get_model("WMM")
        assert wmm.axiomatic is not None
        assert wmm.enumerate  # operational factory present


class TestLattice:
    def test_declared_edges_are_immediate_parents(self):
        assert set(declared_edges()) == {
            ("SC", "370"), ("370", "x86"), ("x86", "PC"),
            ("PC", "WMM"), ("x86", "WMM")}

    def test_transitive_closure(self):
        edges = set(lattice_edges())
        assert ("SC", "WMM") in edges
        assert ("SC", "x86") in edges
        assert ("370", "PC") in edges
        # Never reflexive or inverted.
        assert all(s != w for s, w in edges)
        assert ("WMM", "SC") not in edges

    @pytest.mark.parametrize("case", _CORPUS, ids=_IDS)
    def test_monotone_along_every_edge(self, case):
        assert check_program(case.program) == []

    def test_full_corpus_report(self):
        report = check_lattice()
        assert report.ok
        assert report.programs_checked == len(_CORPUS)
        assert report.edges == lattice_edges()


class TestWmmWitnesses:
    """The registry's weakest member must be observably weaker than
    x86 — on at least two classic programs, via all three oracles."""

    WITNESSES = [case for case in _CORPUS
                 if case.expected_dict().get("WMM") is True
                 and case.expected_dict().get("x86") is False]

    def test_at_least_two_wmm_only_cases(self):
        names = {case.program.name for case in self.WITNESSES}
        assert {"mp", "iriw"} <= names
        assert len(names) >= 2

    @pytest.mark.parametrize(
        "case", WITNESSES, ids=[c.program.name for c in WITNESSES])
    def test_witness_confirmed_by_all_three_oracles(self, case):
        from repro.litmus.operational import matching_outcomes
        report = triple_check(case.program, models=("x86", "WMM"))
        assert report.agree, "\n".join(report.mismatches)
        witness = case.witness_dict()
        assert matching_outcomes(case.program, "WMM", **witness)
        assert not matching_outcomes(case.program, "x86", **witness)
