"""Directed tests of the out-of-order pipeline on small systems."""

import pytest

from repro.core.policies import POLICY_ORDER
from repro.cpu.isa import Trace, alu, branch, fence, load, store
from repro.sim.config import (CacheConfig, CoreConfig, MemoryConfig,
                              SystemConfig)
from repro.sim.system import System, simulate

SMALL = SystemConfig(
    cores=2,
    core=CoreConfig(rob_entries=32, lq_entries=12, sq_sb_entries=8, mshrs=4),
    memory=MemoryConfig(
        l1=CacheConfig(4 * 1024, 2, 4),
        l2=CacheConfig(16 * 1024, 4, 12),
        l3_bank=CacheConfig(64 * 1024, 8, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)


def run(traces, policy, warm=True, **kwargs):
    return simulate(traces, policy, config=SMALL, warm_caches=warm, **kwargs)


def fwd_trace(n=20, addr=0x1000):
    """store->load pairs to one address, with dependent work."""
    t = Trace()
    for _ in range(n):
        s = t.append(store(addr, pc=0x10))
        t.append(load(addr, deps=(), pc=0x20))
        t.append(alu(deps=(t.append(alu()) ,)))
    t.memdep_hints = [(0x20, 0x10)]
    t.validate()
    return t


class TestBasicExecution:
    def test_retires_whole_trace(self):
        trace = Trace.from_ops([alu() for _ in range(10)])
        stats = run([trace], "x86")
        assert stats.total.retired_instructions == 10

    def test_all_policies_complete(self):
        trace = fwd_trace()
        for policy in POLICY_ORDER:
            stats = run([trace], policy)
            assert stats.total.retired_instructions == len(trace), policy

    def test_empty_dependency_chain_parallelism(self):
        """Independent ALUs retire at nearly the issue width."""
        trace = Trace.from_ops([alu() for _ in range(500)])
        stats = run([trace], "x86")
        ipc = 500 / stats.execution_cycles
        assert ipc > 3.0

    def test_dependent_chain_serializes(self):
        ops = [alu()]
        for i in range(499):
            ops.append(alu(deps=(i,)))
        stats = run([Trace.from_ops(ops)], "x86")
        ipc = 500 / stats.execution_cycles
        assert ipc < 1.2


class TestForwarding:
    def test_x86_forwards(self):
        stats = run([fwd_trace()], "x86")
        assert stats.total.slf_loads == 20

    def test_nospec_never_forwards(self):
        stats = run([fwd_trace()], "370-NoSpec")
        assert stats.total.slf_loads == 0
        assert stats.total.sb_wait_events >= 20

    def test_nospec_slower_than_x86_on_forwarding_chain(self):
        """The load must wait for the store to reach the L1: dependent
        chains serialize (the cost the paper quantifies as 1.27x)."""
        t = Trace()
        prev = None
        for _ in range(50):
            s = t.append(store(0x1000, deps=(prev,) if prev is not None
                               else ()))
            ld = t.append(load(0x1000, pc=0x20))
            prev = t.append(alu(deps=(ld,)))
        t.memdep_hints = [(0x20, 0)]
        x86 = run([t], "x86").execution_cycles
        nospec = run([t], "370-NoSpec").execution_cycles
        assert nospec > x86 * 1.2

    def test_forwarding_from_youngest_matching_store(self):
        """Two stores to the same address: the load forwards and still
        retires exactly once with correct counts."""
        t = Trace()
        t.append(store(0x1000))
        t.append(store(0x1000))
        t.append(load(0x1000))
        stats = run([t], "x86")
        assert stats.total.slf_loads == 1


class TestGateBehaviour:
    def test_sos_key_closes_and_reopens_gate(self):
        stats = run([fwd_trace()], "370-SLFSoS-key")
        assert stats.total.gate_closes > 0
        assert stats.total.retired_instructions == len(fwd_trace())

    def test_x86_never_closes_gate(self):
        stats = run([fwd_trace()], "x86")
        assert stats.total.gate_closes == 0

    def test_gate_stall_requires_younger_load(self):
        """A lone forwarding pair with no trailing load never produces a
        gate stall event."""
        t = Trace()
        t.append(store(0x1000, pc=0x10))
        t.append(load(0x1000, pc=0x20))
        t.memdep_hints = [(0x20, 0x10)]
        stats = run([t], "370-SLFSoS-key")
        assert stats.total.gate_stall_events == 0


class TestFence:
    def test_fence_waits_for_sb_drain(self):
        t = Trace()
        t.append(store(0x1000))
        t.append(fence())
        t.append(load(0x2000))
        stats = run([t], "x86")
        assert stats.total.retired_instructions == 3

    def test_fence_orders_store_load(self):
        """Fenced store->load takes at least the store's drain latency."""
        plain = Trace.from_ops([store(0x1000), load(0x2000)])
        fenced = Trace.from_ops([store(0x1000), fence(), load(0x2000)])
        fast = run([plain], "x86").execution_cycles
        slow = run([fenced], "x86").execution_cycles
        assert slow >= fast


class TestBranches:
    def test_mispredict_slows_execution(self):
        good = Trace.from_ops(
            [branch() if i % 5 == 0 else alu() for i in range(200)])
        bad = Trace.from_ops(
            [branch(mispredict=True) if i % 5 == 0 else alu()
             for i in range(200)])
        fast = run([good], "x86").execution_cycles
        slow = run([bad], "x86").execution_cycles
        assert slow > fast * 1.5


class TestMemoryDependence:
    def test_unhinted_collision_squashes_then_learns(self):
        """A load issued past an unresolved same-address store is
        squashed when the store resolves; StoreSet training prevents the
        next occurrence."""
        t = Trace()
        for i in range(10):
            # The store's address resolves late (dependent on slow ALU).
            slow = t.append(alu(latency=3))
            t.append(store(0x3000, deps=(slow,), pc=0x30))
            t.append(load(0x3000, pc=0x40))
            t.append(alu())
        stats = run([t], "x86")
        assert stats.total.squashes_memdep >= 1
        assert stats.total.squashes_memdep <= 3  # learned quickly
        assert stats.total.retired_instructions == len(t)

    def test_hinted_pairs_never_squash(self):
        t = Trace()
        for i in range(10):
            slow = t.append(alu(latency=3))
            t.append(store(0x3000, deps=(slow,), pc=0x30))
            t.append(load(0x3000, pc=0x40))
        t.memdep_hints = [(0x40, 0x30)]
        stats = run([t], "x86")
        assert stats.total.squashes_memdep == 0


class TestInvalidationSquash:
    def _contended(self):
        """Core 0 reads a shared line speculatively past older cold-miss
        loads; core 1 writes it, invalidating core 0's speculative
        loads (classic TSO load-load ordering squash)."""
        reader = Trace()
        for i in range(40):
            reader.append(load(0x80000 + 64 * i))   # cold miss: slow
            reader.append(load(0x7000))             # shared hot line
        writer = Trace()
        prev = None
        for i in range(40):
            writer.append(store(0x7000))
            for _ in range(3):
                prev = writer.append(
                    alu(deps=(prev,) if prev is not None else (),
                        latency=3))
        return reader, writer

    def test_inval_squashes_speculative_loads(self):
        reader, writer = self._contended()
        stats = run([reader, writer], "x86", warm=False)
        assert stats.total.squashes_inval > 0
        assert stats.total.retired_instructions == len(reader) + len(writer)

    def test_squash_reexecution_counted(self):
        reader, writer = self._contended()
        stats = run([reader, writer], "x86", warm=False)
        assert stats.total.reexecuted_instructions > 0


class TestViolationWitness:
    def _window_workload(self):
        """Fig. 6/7: core 0 forwards st x -> ld x, then loads y; core 1
        keeps writing y, landing invalidations in the window."""
        core0 = Trace()
        for i in range(60):
            core0.append(store(0x100, pc=0x10))
            core0.append(load(0x100, pc=0x20))
            core0.append(load(0x4000, pc=0x30))
        core0.memdep_hints = [(0x20, 0x10)]
        core1 = Trace()
        for i in range(60):
            core1.append(store(0x4000, pc=0x50))
            core1.append(alu())
        return core0, core1

    def test_x86_witnesses_violations(self):
        core0, core1 = self._window_workload()
        stats = simulate([core0, core1], "x86", config=SMALL,
                         detect_violations=True)
        assert stats.total.store_atomicity_violations > 0

    @pytest.mark.parametrize("policy", POLICY_ORDER[1:])
    def test_store_atomic_policies_witness_none(self, policy):
        core0, core1 = self._window_workload()
        stats = simulate([core0, core1], policy, config=SMALL,
                         detect_violations=True)
        assert stats.total.store_atomicity_violations == 0


class TestStallAccounting:
    def test_stall_percentages_bounded(self):
        trace = fwd_trace(100)
        for policy in POLICY_ORDER:
            stats = run([trace], policy)
            for name, pct in stats.total.stall_pct.items():
                assert 0.0 <= pct <= 100.0, (policy, name, pct)

    def test_sq_fills_under_store_pressure(self):
        t = Trace()
        for i in range(400):
            t.append(store(0x100000 + 64 * i))  # cold streaming stores
        stats = run([t], "x86", warm=False)
        assert stats.total.stall_cycles_sq > 0


class TestDeterminism:
    def test_same_run_same_cycles(self):
        trace = fwd_trace(50)
        a = run([trace, trace], "370-SLFSoS-key").execution_cycles
        b = run([trace, trace], "370-SLFSoS-key").execution_cycles
        assert a == b
