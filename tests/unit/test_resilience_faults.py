"""Deterministic fault injection (repro.resilience.faults).

The two load-bearing properties:

* **determinism** — same ``(spec, seed)`` means a byte-identical run,
  down to the stats JSON and the per-mechanism injection counts;
* **zero overhead** — a disabled plan (all-zero spec) leaves the run
  byte-identical to one with no plan at all, for every policy.
"""

import pytest

from repro.core.policies import POLICY_ORDER
from repro.resilience import DEFAULT_CHAOS, FaultPlan, FaultSpec
from repro.sim.config import TINY
from repro.sim.system import System
from repro.workloads import generate_workload, get_profile

#: Aggressive enough that every mechanism fires several times within a
#: few-thousand-cycle run (DEFAULT_CHAOS is tuned for litmus runs and
#: its squash period rarely fires in very short workloads).
AGGRESSIVE = FaultSpec(noc_jitter=6, noc_jitter_prob=0.5,
                       evict_period=50, squash_period=150,
                       sb_delay=4, sb_delay_prob=0.5)


def _run(policy="370-SLFSoS-key", faults=None, length=400, seed=0):
    traces = generate_workload(get_profile("fft"), 2, length, seed)
    system = System(traces, policy, TINY, faults=faults)
    return system.run()


def test_same_seed_is_byte_identical():
    plans = [FaultPlan(AGGRESSIVE, seed=7) for _ in range(2)]
    stats = [_run(faults=plan) for plan in plans]
    assert stats[0].to_json() == stats[1].to_json()
    assert plans[0].injected == plans[1].injected


def test_different_seeds_inject_differently():
    a = FaultPlan(AGGRESSIVE, seed=1)
    b = FaultPlan(AGGRESSIVE, seed=2)
    sa, sb = _run(faults=a), _run(faults=b)
    assert (a.injected, sa.to_json()) != (b.injected, sb.to_json())


def test_every_mechanism_fires_under_aggressive_spec():
    plan = FaultPlan(AGGRESSIVE, seed=11)
    stats = _run(faults=plan)
    assert all(plan.injected[kind] > 0
               for kind in ("noc", "evict", "squash", "sb")), plan.injected
    # Spurious squashes land in their own counter, not memdep's.
    assert stats.total.squashes_fault == plan.injected["squash"]


@pytest.mark.parametrize("policy", POLICY_ORDER)
def test_disabled_plan_is_zero_overhead(policy):
    """faults=None, a disabled plan, and DEFAULT_CHAOS-with-no-install
    must be indistinguishable: the hook sites stay on their fast path."""
    baseline = _run(policy=policy, faults=None)
    disabled = _run(policy=policy, faults=FaultPlan(FaultSpec(), seed=3))
    assert baseline.to_json() == disabled.to_json()


def test_faulted_run_still_passes_strict_invariants():
    # conftest sets REPRO_STRICT=1, so this run ends with a full
    # check_system sweep — injected faults must never corrupt the model.
    stats = _run(faults=FaultPlan(AGGRESSIVE, seed=4))
    assert stats.total.retired_instructions > 0


def test_plan_is_single_use():
    plan = FaultPlan(AGGRESSIVE, seed=0)
    _run(faults=plan)
    with pytest.raises(RuntimeError, match="single-use"):
        _run(faults=plan)


def test_spec_enabled_property():
    assert not FaultSpec().enabled
    assert DEFAULT_CHAOS.enabled
    assert FaultSpec(squash_period=10).enabled
    # A jitter magnitude with zero probability injects nothing.
    assert not FaultSpec(noc_jitter=8).enabled


def test_plan_to_dict_is_json_safe():
    import json
    plan = FaultPlan(AGGRESSIVE, seed=9)
    _run(faults=plan)
    payload = json.loads(json.dumps(plan.to_dict()))
    assert payload["seed"] == 9
    assert payload["spec"]["evict_period"] == AGGRESSIVE.evict_period
    assert set(payload["injected"]) == {"noc", "evict", "squash", "sb"}
