"""Satellite coverage: every squash reason fires its ``squash.<reason>``
probe, under every policy, with the probe count exactly matching the
per-reason stats counter — including the injected ``fault`` reason under
a seeded FaultPlan.

Each reason gets a dedicated workload known to trigger it:

* ``memdep`` — a load issued past an unresolved same-address store;
* ``inval``  — a remote store invalidating a speculatively-read line
  (cold caches, two contending cores);
* ``evict``  — same-set conflict loads under ``l1_evict_squash=True``;
* ``fault``  — spurious squashes from a seeded
  :class:`~repro.resilience.faults.FaultPlan`.
"""

import dataclasses

import pytest

from repro.core.policies import POLICY_ORDER
from repro.cpu.isa import Trace, alu, load, store
from repro.obs.bus import SQUASH_REASONS, ProbeBus, resolve_squash_probes
from repro.resilience import FaultPlan, FaultSpec
from repro.sim.config import TINY
from repro.sim.system import System


def _memdep_workload():
    trace = Trace()
    for _ in range(10):
        slow = trace.append(alu(latency=3))
        trace.append(store(0x3000, deps=(slow,), pc=0x30))
        trace.append(load(0x3000, pc=0x40))
        trace.append(alu())
    return [trace], TINY, None


def _inval_workload():
    reader = Trace()
    for i in range(40):
        reader.append(load(0x80000 + 64 * i))   # cold miss: slow head
        reader.append(load(0x7000))             # shared hot line
    writer = Trace()
    prev = None
    for _ in range(40):
        writer.append(store(0x7000))
        for _ in range(3):
            prev = writer.append(
                alu(deps=(prev,) if prev is not None else (), latency=3))
    return [reader, writer], TINY, None


def _evict_workload():
    config = dataclasses.replace(
        TINY, core=dataclasses.replace(TINY.core, l1_evict_squash=True))
    trace = Trace()
    for i in range(20):
        trace.append(load(0x80000 + 4096 * i))  # cold slow head
        trace.append(load(0x7000))              # speculative hot line
        for k in range(1, 4):                   # same-set conflicts
            trace.append(load(0x7000 + 0x800 * k))
    return [trace], config, None


def _fault_workload():
    trace = Trace()
    for i in range(50):
        trace.append(load(0x80000 + 64 * i))
        trace.append(alu())
        trace.append(store(0x2000 + 64 * (i % 4)))
    return [trace], TINY, FaultPlan(FaultSpec(squash_period=60), seed=5)


_WORKLOADS = {
    "memdep": _memdep_workload,
    "inval": _inval_workload,
    "evict": _evict_workload,
    "fault": _fault_workload,
}


def test_every_reason_has_a_workload():
    assert set(_WORKLOADS) == set(SQUASH_REASONS)


@pytest.mark.parametrize("policy", POLICY_ORDER)
@pytest.mark.parametrize("reason", SQUASH_REASONS)
def test_squash_probe_fires_and_matches_stats(reason, policy):
    traces, config, faults = _WORKLOADS[reason]()
    bus = ProbeBus()
    by_reason = {r: [] for r in SQUASH_REASONS}
    for r in SQUASH_REASONS:
        bus.subscribe(f"squash.{r}",
                      lambda *args, _r=r: by_reason[_r].append(args))
    system = System(traces, policy, config, probes=bus, faults=faults,
                    warm_caches=False)
    stats = system.run(2_000_000)

    assert len(by_reason[reason]) >= 1, \
        f"{reason} never fired under {policy}"
    for r in SQUASH_REASONS:
        counter = getattr(stats.total, f"squashes_{r}")
        assert len(by_reason[r]) == counter, (r, policy)
    # Payload shape: (core_id, cycle, from_seq, flushed).
    core_id, cycle, from_seq, flushed = by_reason[reason][0]
    assert 0 <= core_id < len(traces)
    assert 0 <= cycle <= stats.execution_cycles
    assert from_seq >= 0 and flushed >= 1


def test_resolve_squash_probes_covers_all_reasons():
    bus = ProbeBus()
    fired = []
    bus.subscribe("squash.*", lambda *args: fired.append(args))
    probes = resolve_squash_probes(bus)
    assert set(probes) == set(SQUASH_REASONS)
    for probe in probes.values():
        probe(0, 1, 2, 3)
    assert len(fired) == len(SQUASH_REASONS)
    # On a silent bus every entry resolves to None (zero-overhead off).
    assert all(fn is None
               for fn in resolve_squash_probes(ProbeBus()).values())
