"""Runtime invariant enforcement (repro.resilience.invariants).

The watchdog must catch a *deliberately* wedged pipeline two ways: the
invariant sweep names the broken invariant (gate locked by a dead key),
and with invariants off the forward-progress detector still converts the
hang into a structured DeadlockError.
"""

import json

import pytest

from repro.cpu.isa import Trace, alu, load
from repro.resilience import (DeadlockError, InvariantViolation, Watchdog,
                              check_system, system_diagnostic)
from repro.resilience.invariants import format_diagnostic
from repro.sim.config import TINY
from repro.sim.system import System
from repro.workloads import generate_workload, get_profile


def _load_only_trace(n=200):
    """Loads and ALUs only: with no stores the SB never drains from
    non-empty to empty, so 370-SLFSoS-key's drain-reopen never fires and
    an externally wedged gate stays closed forever."""
    trace = Trace()
    for i in range(n):
        trace.append(load(0x1000 + (i % 8) * 64, pc=0x10))
        trace.append(alu())
    trace.validate()
    return trace


def _wedged_system():
    """A healthy system whose gate gets locked, mid-run, with a key that
    names no live SB entry — the bug class the invariant exists for."""
    system = System([_load_only_trace(), _load_only_trace()],
                    "370-SLFSoS-key", TINY, warm_caches=False)
    gate = system.cores[0].policy.gate
    system.engine.at(50, gate.close, 3 | (1 << 31))
    return system


def test_wedged_gate_caught_by_invariant_sweep():
    system = _wedged_system()
    Watchdog(period=25, stall_limit=100_000).install(system)
    with pytest.raises(InvariantViolation, match="gate-key-live") as info:
        system.run(max_cycles=200_000)
    diag = info.value.diagnostic
    assert diag["invariant"] == "gate-key-live"
    assert diag["cores"][0]["gate_closed"] is True
    assert diag["cores"][0]["gate_key"] == 3 | (1 << 31)
    # The payload must be machine-readable as-is (CI consumes it).
    json.loads(format_diagnostic(diag))


def test_wedged_gate_caught_by_progress_detector():
    """Same wedge, invariants off: the forward-progress watchdog still
    refuses to hang and reports what the system was doing."""
    system = _wedged_system()
    Watchdog(period=100, stall_limit=2_000,
             invariants=False).install(system)
    with pytest.raises(DeadlockError, match="no forward progress") as info:
        system.run(max_cycles=2_000_000)
    diag = info.value.diagnostic
    assert diag["stalled_for"] >= 2_000
    # Core 1's trace completes; only the wedged core 0 stays unfinished.
    assert diag["unfinished_cores"] >= 1
    assert diag["cores"][0]["finished"] is False
    json.loads(format_diagnostic(diag))


def _healthy_system(length=300):
    traces = generate_workload(get_profile("fft"), 2, length, 0)
    return System(traces, "370-SLFSoS-key", TINY)


def test_healthy_run_passes_periodic_checks():
    system = _healthy_system()
    watchdog = Watchdog(period=50, stall_limit=500_000)
    watchdog.install(system)
    system.run()
    assert watchdog.checks_run > 0
    check_system(system)  # and once more at quiescence


def test_per_event_mode_checks_every_event():
    system = _healthy_system(length=80)
    watchdog = Watchdog(period=1_000, per_event=True)
    watchdog.install(system)
    system.run()
    # One sweep per dispatched event while the run was live — orders of
    # magnitude more than the periodic tick alone would do.
    assert watchdog.checks_run > system.engine.events_dispatched // 2


class _Entry:
    def __init__(self, seq, retired=False):
        self.seq = seq
        self.retired = retired


def test_sb_fifo_violation_detected():
    system = _healthy_system(length=60)
    system.run()
    system.cores[0].sb = [_Entry(5, retired=True), _Entry(3)]
    with pytest.raises(InvariantViolation, match="sb-fifo"):
        check_system(system)


def test_sb_retired_prefix_violation_detected():
    system = _healthy_system(length=60)
    system.run()
    system.cores[0].sb = [_Entry(3, retired=False), _Entry(5, retired=True)]
    with pytest.raises(InvariantViolation, match="sb-retired-prefix"):
        check_system(system)


def test_lq_age_order_violation_detected():
    system = _healthy_system(length=60)
    system.run()
    system.cores[0].lq = [_Entry(7), _Entry(2)]
    with pytest.raises(InvariantViolation, match="lq-age-order"):
        check_system(system)


def test_mesi_swmr_violation_detected():
    system = _healthy_system(length=60)
    system.run()
    system.memory.controllers[0].state[0xdead0] = "M"
    system.memory.controllers[1].state[0xdead0] = "S"
    with pytest.raises(InvariantViolation, match="mesi-swmr"):
        check_system(system)


def test_system_diagnostic_shape():
    system = _healthy_system(length=60)
    system.run()
    diag = system_diagnostic(system, note="post-run")
    assert diag["note"] == "post-run"
    assert diag["unfinished_cores"] == 0
    assert len(diag["cores"]) == 2
    for core in diag["cores"]:
        assert core["finished"] is True
        assert core["retired"] > 0
    json.loads(format_diagnostic(diag))


def test_watchdog_guards_bad_arguments():
    with pytest.raises(ValueError):
        Watchdog(period=0)
    system = _healthy_system(length=60)
    watchdog = Watchdog()
    watchdog.install(system)
    with pytest.raises(RuntimeError, match="already installed"):
        watchdog.install(system)
    system.run()
