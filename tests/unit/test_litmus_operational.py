"""Operational memory-model tests: the paper's litmus verdicts."""

import pytest

from repro.litmus.operational import (M370, MODELS, SC, X86, allows,
                                      enumerate_outcomes, matching_outcomes)
from repro.litmus.program import Fence, Ld, St, make_program
from repro.litmus.tests import (ALL_CASES, FIG5, IRIW, MP, N6, PAPER_CASES,
                                SB, SB_FENCED)


class TestPaperVerdicts:
    """Each litmus case must reproduce the verdicts of Figures 1-5."""

    @pytest.mark.parametrize(
        "case", ALL_CASES, ids=[c.program.name for c in ALL_CASES])
    def test_case(self, case):
        for model, expected in case.expected:
            observed = allows(case.program, model, **case.witness_dict())
            assert observed == expected, (
                f"{case.program.name} under {model}: expected "
                f"{'allowed' if expected else 'forbidden'}")


class TestFig2N6:
    def test_n6_witness_only_under_x86(self):
        witness = dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
        assert allows(N6, X86, **witness)
        assert not allows(N6, M370, **witness)
        assert not allows(N6, SC, **witness)

    def test_x86_outcomes_superset_of_370(self):
        assert enumerate_outcomes(N6, M370) <= enumerate_outcomes(N6, X86)


class TestTableII:
    """Exhaustive fig5 search: exactly three outcomes under 370, plus
    the disagreement outcome under x86 (Table II)."""

    def test_370_has_exactly_three_outcomes(self):
        outcomes = enumerate_outcomes(FIG5, M370)
        assert len(outcomes) == 3
        # Every 370 outcome has rx==1 in core0 and ry==1 in core1
        # (each core must see its own store).
        for o in outcomes:
            assert o.reg(0, "rx") == 1
            assert o.reg(1, "ry") == 1

    def test_cases_2_3_4_of_table_ii(self):
        outcomes = enumerate_outcomes(FIG5, M370)
        observed = {(o.reg(0, "rx"), o.reg(0, "ry"),
                     o.reg(1, "rx"), o.reg(1, "ry")) for o in outcomes}
        assert observed == {
            (1, 0, 1, 1),   # case 3: Core1 sees order, Core2 cannot
            (1, 1, 0, 1),   # case 2: Core2 sees order, Core1 cannot
            (1, 1, 1, 1),   # case 4: none can see any order
        }

    def test_case_1_disagreement_is_x86_only(self):
        extra = (enumerate_outcomes(FIG5, X86)
                 - enumerate_outcomes(FIG5, M370))
        assert len(extra) == 1
        (outcome,) = extra
        assert (outcome.reg(0, "rx"), outcome.reg(0, "ry")) == (1, 0)
        assert (outcome.reg(1, "ry"), outcome.reg(1, "rx")) == (1, 0)


class TestModelHierarchy:
    @pytest.mark.parametrize(
        "case", ALL_CASES, ids=[c.program.name for c in ALL_CASES])
    def test_sc_subset_370_subset_x86(self, case):
        program = case.program
        sc = enumerate_outcomes(program, SC)
        m370 = enumerate_outcomes(program, M370)
        x86 = enumerate_outcomes(program, X86)
        assert sc <= m370 <= x86


class TestSingleThreadSemantics:
    def test_self_read_always_sees_own_store(self):
        program = make_program("own", [[St("x", 7), Ld("x", "r0")]])
        for model in MODELS:
            for outcome in enumerate_outcomes(program, model):
                assert outcome.reg(0, "r0") == 7

    def test_final_memory_reflects_last_store(self):
        program = make_program("final", [[St("x", 1), St("x", 2)]])
        for model in MODELS:
            for outcome in enumerate_outcomes(program, model):
                assert outcome.mem("x") == 2

    def test_initial_values_respected(self):
        program = make_program("init", [[Ld("x", "r0")]], initial={"x": 9})
        for model in MODELS:
            outcomes = enumerate_outcomes(program, model)
            assert len(outcomes) == 1
            assert next(iter(outcomes)).reg(0, "r0") == 9


class TestFences:
    def test_fence_restores_sb_order(self):
        witness = dict(r0_ry=0, r1_rx=0)
        assert allows(SB, X86, **witness)
        assert not allows(SB_FENCED, X86, **witness)

    def test_fence_in_370_also_blocks(self):
        assert allows(SB, M370, r0_ry=0, r1_rx=0)
        assert not allows(SB_FENCED, M370, r0_ry=0, r1_rx=0)


class TestApi:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            enumerate_outcomes(MP, "PSO")

    def test_matching_outcomes_filters(self):
        hits = matching_outcomes(SB, X86, r0_ry=0, r1_rx=0)
        assert len(hits) == 1

    def test_bad_condition_key_rejected(self):
        with pytest.raises(ValueError):
            allows(SB, X86, bogus=1)
