"""Unit tests for the obs MetricsRegistry."""

import json

from repro.obs.metrics import MetricsRegistry


def test_counters_start_at_zero_and_accumulate():
    reg = MetricsRegistry()
    assert reg.counter("jobs") == 0
    assert reg.inc("jobs") == 1
    assert reg.inc("jobs", 4) == 5
    assert reg.counter("jobs") == 5


def test_gauges_sample_at_snapshot_time():
    reg = MetricsRegistry()
    depth = {"value": 0}
    reg.gauge("queue_depth", lambda: depth["value"])
    depth["value"] = 7
    assert reg.snapshot()["gauges"]["queue_depth"] == 7
    depth["value"] = 2
    assert reg.snapshot()["gauges"]["queue_depth"] == 2


def test_failing_gauge_exports_an_error_string():
    reg = MetricsRegistry()

    def boom():
        raise RuntimeError("sensor offline")

    reg.gauge("ok", lambda: 1)
    reg.gauge("bad", boom)
    gauges = reg.snapshot()["gauges"]
    assert gauges["ok"] == 1
    assert gauges["bad"].startswith("error: RuntimeError")


def test_histograms_summarize_with_buckets():
    reg = MetricsRegistry()
    for value in (1, 5, 100):
        reg.observe("latency_ms", value)
    hist = reg.snapshot()["histograms"]["latency_ms"]
    assert hist["count"] == 3
    assert hist["max"] == 100
    assert hist["p50"] <= hist["p99"] <= hist["max"]
    assert sum(b["count"] for b in hist["buckets"]) == 3
    for bucket in hist["buckets"]:
        assert bucket["lo"] <= bucket["hi"]


def test_snapshot_is_json_safe_and_sorted():
    reg = MetricsRegistry()
    reg.inc("zeta")
    reg.inc("alpha")
    reg.gauge("g", lambda: 1.5)
    reg.observe("h", 3)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert list(snap["counters"]) == ["alpha", "zeta"]
    assert set(snap) == {"counters", "gauges", "histograms"}
