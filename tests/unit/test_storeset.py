"""Unit tests for the StoreSet memory-dependence predictor."""

from repro.cpu.storeset import StoreSetPredictor


LOAD_PC, STORE_PC = 0x200, 0x100


def test_untrained_predicts_nothing():
    predictor = StoreSetPredictor()
    assert predictor.predicted_store(LOAD_PC) is None


def test_violation_trains_dependence():
    predictor = StoreSetPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_dispatched(STORE_PC, seq=42)
    assert predictor.predicted_store(LOAD_PC) == 42


def test_resolution_clears_prediction():
    predictor = StoreSetPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_dispatched(STORE_PC, seq=42)
    predictor.store_resolved(STORE_PC, seq=42)
    assert predictor.predicted_store(LOAD_PC) is None


def test_stale_resolution_does_not_clear_newer_store():
    predictor = StoreSetPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_dispatched(STORE_PC, seq=42)
    predictor.store_dispatched(STORE_PC, seq=50)   # newer instance
    predictor.store_resolved(STORE_PC, seq=42)     # stale resolve
    assert predictor.predicted_store(LOAD_PC) == 50


def test_squash_clears_like_resolution():
    predictor = StoreSetPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_dispatched(STORE_PC, seq=42)
    predictor.store_squashed(STORE_PC, seq=42)
    assert predictor.predicted_store(LOAD_PC) is None


def test_merge_converges_two_sets():
    predictor = StoreSetPredictor()
    predictor.train_violation(0x200, 0x100)
    predictor.train_violation(0x201, 0x101)
    # Now merge the two sets through a cross violation.
    predictor.train_violation(0x200, 0x101)
    predictor.store_dispatched(0x101, seq=9)
    assert predictor.predicted_store(0x200) == 9


def test_untrained_store_does_not_enter_lfst():
    predictor = StoreSetPredictor()
    predictor.store_dispatched(STORE_PC, seq=1)
    predictor.train_violation(LOAD_PC, STORE_PC)
    # Training happened after dispatch: no LFST entry yet.
    assert predictor.predicted_store(LOAD_PC) is None


def test_periodic_clearing():
    predictor = StoreSetPredictor(clear_interval=5)
    predictor.train_violation(LOAD_PC, STORE_PC)
    for seq in range(6):
        predictor.store_dispatched(STORE_PC, seq)
    # The cyclic clear wiped the tables at some point; after re-training
    # everything works again.
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_dispatched(STORE_PC, seq=100)
    assert predictor.predicted_store(LOAD_PC) == 100


def test_violations_counter():
    predictor = StoreSetPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.train_violation(LOAD_PC + 1, STORE_PC + 1)
    assert predictor.violations_trained == 2
