"""Unit tests for the functional cache warm-up."""

from repro.coherence.mesi import E, M, S, CoherentMemorySystem
from repro.coherence.warmup import warm_from_traces, warm_load, warm_store
from repro.cpu.isa import Trace, alu, load, store
from repro.sim.config import TINY
from repro.sim.engine import Engine


def _memory(cores=2):
    return CoherentMemorySystem(Engine(), TINY.with_cores(cores))


def test_warm_store_installs_m_and_ownership():
    mem = _memory()
    warm_store(mem, 0, 0x1000)
    assert mem.controller(0).peek_state(0x1000) == M
    assert mem.bank_of(0x1000).owner[0x1000] == 0


def test_warm_store_invalidates_other_holders():
    mem = _memory()
    warm_load(mem, 1, 0x1000)
    warm_store(mem, 0, 0x1000)
    assert mem.controller(1).peek_state(0x1000) is None
    assert not mem.controller(1).hierarchy.contains(0x1000)


def test_warm_load_exclusive_when_alone():
    mem = _memory()
    warm_load(mem, 0, 0x2000)
    assert mem.controller(0).peek_state(0x2000) == E


def test_warm_load_downgrades_remote_owner():
    mem = _memory()
    warm_store(mem, 1, 0x2000)
    warm_load(mem, 0, 0x2000)
    assert mem.controller(0).peek_state(0x2000) == S
    assert mem.controller(1).peek_state(0x2000) == S
    bank = mem.bank_of(0x2000)
    assert 0x2000 not in bank.owner
    assert bank.sharers[0x2000] == {0, 1}


def test_warm_load_refreshes_existing_line():
    mem = _memory()
    warm_load(mem, 0, 0x2000)
    warm_load(mem, 0, 0x2000)
    assert mem.controller(0).peek_state(0x2000) == E


def test_warm_from_traces_installs_working_set():
    mem = _memory()
    t0 = Trace.from_ops([store(0x1000), load(0x3000), alu()])
    t1 = Trace.from_ops([load(0x1000)])
    warm_from_traces(mem, [t0, t1])
    assert mem.controller(0).peek_state(0x3000) in (E, S)
    # Core 1 read core 0's stored line afterwards: both share.
    assert mem.controller(0).peek_state(0x1000) == S
    assert mem.controller(1).peek_state(0x1000) == S


def test_warm_eviction_keeps_state_consistent():
    """Overflowing a set during warm-up must leave controller state and
    tag arrays in sync (evicted lines lose their state entries)."""
    mem = _memory()
    ctrl = mem.controller(0)
    l2 = ctrl.hierarchy.l2.config
    set_stride = l2.line_bytes * l2.sets
    lines = [0x100000 + i * set_stride for i in range(l2.ways + 3)]
    for addr in lines:
        warm_store(mem, 0, addr)
    for line in ctrl.state:
        assert ctrl.hierarchy.contains(line)
    resident = set(ctrl.hierarchy.l2.resident_lines())
    assert set(ctrl.state) == resident


def test_warmed_system_hits_in_cache():
    """After warm-up, a simulated load to a warmed line is a hit."""
    engine = Engine()
    mem = CoherentMemorySystem(engine, TINY)
    warm_from_traces(mem, [Trace.from_ops([load(0x4000)])])
    done = []
    hit = mem.controller(0).load(0x4000, lambda: done.append(engine.now))
    assert hit is True
    engine.run()
    assert done
