"""Unit tests for ``repro.synth``: space, profile, search, oracle."""

import pytest

from repro.lint.memory_model import classify
from repro.litmus.program import canonical_key
from repro.litmus.tests import MP, N6, SB
from repro.synth import (MODEL_PAIRS, SynthBounds, SynthResult,
                         count_programs, distinguishing_outcomes,
                         enumerate_programs, lattice_violations,
                         may_distinguish, merge_results, minimize_program,
                         outcome_profile, pool_distinguishers, search,
                         triple_check, triple_check_many)
from repro.synth.profile import profile_diff
from repro.synth.space import LATTICE

SMALL = SynthBounds(threads=2, max_ops=2, addresses=2)


# ----------------------------------------------------------------------
# Space enumeration
# ----------------------------------------------------------------------

class TestSpace:
    def test_count_matches_enumeration(self):
        assert count_programs(SMALL) == \
            sum(1 for _ in enumerate_programs(SMALL))

    def test_chunks_partition_the_space(self):
        whole = {index for index, _ in enumerate_programs(SMALL)}
        chunked = []
        for chunk in range(3):
            chunked.append({index for index, _ in
                            enumerate_programs(SMALL, chunk=chunk,
                                               chunks=3)})
        assert set.union(*chunked) == whole
        assert sum(len(c) for c in chunked) == len(whole)

    def test_indices_stable_across_partitions(self):
        whole = dict(enumerate_programs(SMALL))
        for chunk in range(4):
            for index, program in enumerate_programs(SMALL, chunk=chunk,
                                                     chunks=4):
                assert whole[index].threads == program.threads

    def test_max_total_caps_events(self):
        capped = SynthBounds(threads=3, max_ops=2, addresses=2,
                             max_total=4)
        for _, program in enumerate_programs(capped):
            assert sum(len(t) for t in program.threads) <= 4

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            SynthBounds(threads=0)
        with pytest.raises(ValueError):
            SynthBounds(max_ops=9)
        with pytest.raises(ValueError):
            enumerate_programs(SMALL, chunk=2, chunks=2).__next__()

    def test_bounds_roundtrip(self):
        bounds = SynthBounds(threads=3, max_ops=2, addresses=3,
                             fences=True, max_total=5)
        assert SynthBounds.from_dict(bounds.to_dict()) == bounds

    def test_prefilter_is_sound_on_classics(self):
        # SB has the unfenced st->ld pair; MP has none.
        assert may_distinguish(SB, ("SC", "x86"))
        assert not may_distinguish(MP, ("SC", "x86"))
        # N6 has the same-address st->ld forwarding shape.
        assert may_distinguish(N6, ("370", "x86"))
        assert not may_distinguish(MP, ("370", "x86"))

    def test_prefilter_never_rejects_a_real_distinguisher(self):
        for _, program in enumerate_programs(SMALL):
            for pair in MODEL_PAIRS:
                if not may_distinguish(program, pair):
                    assert distinguishing_outcomes(program, pair) == ()

    def test_prefilter_sound_on_extended_vocabulary(self):
        # Exhaustive soundness proof over the full rmw + acquire/
        # release space: a program the prefilter rejects for a pair
        # must profile to identical outcome sets.  One 4-model profile
        # per program keeps the sweep fast.
        bounds = SynthBounds(threads=2, max_ops=2, addresses=1,
                             rmws=True, acqrel=True)
        for _, program in enumerate_programs(bounds):
            rejected = [pair for pair in MODEL_PAIRS
                        if not may_distinguish(program, pair)]
            if not rejected:
                continue
            profile = outcome_profile(program)
            for pair in rejected:
                assert profile_diff(profile, pair) == (), \
                    (program.name, pair)


# ----------------------------------------------------------------------
# Outcome profiling
# ----------------------------------------------------------------------

class TestProfile:
    @pytest.mark.parametrize("program", [SB, N6, MP],
                             ids=lambda p: p.name)
    def test_profile_matches_classify(self, program):
        profile = outcome_profile(program)
        for model in LATTICE:
            assert profile[model] == \
                frozenset(classify(program, model).allowed)

    def test_lattice_containment_on_classics(self):
        for program in (SB, N6, MP):
            assert lattice_violations(outcome_profile(program)) == []

    def test_lattice_violation_detected(self):
        profile = outcome_profile(SB)
        # Fabricate a broken profile: SC allowing more than x86.
        broken = {"SC": profile["x86"], "370": profile["370"],
                  "x86": profile["SC"]}
        assert lattice_violations(broken)

    def test_profile_diff_on_n6(self):
        profile = outcome_profile(N6)
        assert profile_diff(profile, ("370", "x86"))
        assert not profile_diff(profile, ("SC", "SC"))  # degenerate


# ----------------------------------------------------------------------
# Search, minimization, dedupe
# ----------------------------------------------------------------------

class TestSearch:
    def test_search_rediscovers_sb(self):
        result = search(SMALL)
        keys = {key for (_, key) in result.distinguishers}
        assert canonical_key(SB) in keys
        assert result.lattice_errors == []

    def test_minimized_witnesses_are_local_minima(self):
        result = search(SMALL)
        for dist in result.distinguishers.values():
            smaller = minimize_program(dist.program, dist.pair)
            assert sum(len(t) for t in smaller.threads) == dist.events

    def test_minimize_preserves_distinction(self):
        small = minimize_program(N6, ("370", "x86"))
        assert distinguishing_outcomes(small, ("370", "x86"))
        # n6 is already minimal for its pair: nothing to delete.
        assert small.threads == N6.threads

    def test_known_keys_are_skipped(self):
        known = frozenset(key for (_, key)
                          in search(SMALL).distinguishers)
        rerun = search(SMALL, known=known)
        assert rerun.distinct == 0
        assert rerun.hits > 0

    def test_limit_stops_early(self):
        # The limit is checked per program, so one program hitting
        # several pairs can overshoot it — but the walk must stop.
        result = search(SMALL, limit=1)
        assert result.distinct >= 1
        assert result.enumerated < count_programs(SMALL)

    def test_result_json_roundtrip(self):
        result = search(SMALL)
        clone = SynthResult.from_dict(result.to_dict())
        assert clone.enumerated == result.enumerated
        assert clone.hits == result.hits
        assert set(clone.distinguishers) == set(result.distinguishers)
        for slot, dist in result.distinguishers.items():
            assert clone.distinguishers[slot].program.threads == \
                dist.program.threads

    def test_chunked_search_merges_to_serial(self):
        serial = search(SMALL)
        chunks = [search(SMALL, chunk=c, chunks=3) for c in range(3)]
        merged = merge_results(chunks)
        assert merged.enumerated == serial.enumerated
        assert merged.judged == serial.judged
        assert merged.hits == serial.hits
        assert set(merged.distinguishers) == set(serial.distinguishers)

    def test_pool_across_spaces_dedupes(self):
        result = search(SMALL)
        pooled = pool_distinguishers([result, result])
        assert len(pooled) == result.distinct


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------

class TestOracle:
    @pytest.mark.parametrize("program", [SB, N6, MP],
                             ids=lambda p: p.name)
    def test_oracles_agree_on_classics(self, program):
        report = triple_check(program)
        assert report.agree, "\n".join(report.mismatches)
        assert report.counts["SC"] >= 1

    def test_triple_check_many(self):
        ok, reports = triple_check_many([SB, MP])
        assert ok and len(reports) == 2

    def test_synthesized_witnesses_pass_all_oracles(self):
        result = search(SMALL)
        programs = [d.program for d in result.distinguishers.values()]
        ok, reports = triple_check_many(programs)
        assert ok, "\n".join(m for r in reports for m in r.mismatches)
