"""Unit tests for the write-atomic MESI directory protocol."""

import pytest

from repro.coherence.mesi import E, M, S, CoherentMemorySystem
from repro.sim.config import TINY, CacheConfig, MemoryConfig, SystemConfig
from repro.sim.engine import Engine


def _system(cores=3):
    config = SystemConfig(
        cores=cores,
        memory=MemoryConfig(
            l1=CacheConfig(4 * 1024, 2, 4),
            l2=CacheConfig(16 * 1024, 4, 12),
            l3_bank=CacheConfig(64 * 1024, 8, 35),
            l3_banks=2,
            prefetcher=False,
        ))
    engine = Engine()
    return engine, CoherentMemorySystem(engine, config)


def _complete(engine, flag):
    def cb():
        flag.append(engine.now)
    return cb


class TestLoads:
    def test_first_load_granted_exclusive(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        done = []
        assert ctrl.load(0x1000, _complete(engine, done)) is False
        engine.run()
        assert done, "load never completed"
        assert ctrl.peek_state(0x1000) == E

    def test_second_load_same_core_hits(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        done = []
        ctrl.load(0x1000, _complete(engine, done))
        engine.run()
        start = engine.now
        assert ctrl.load(0x1008, _complete(engine, done)) is True
        engine.run()
        assert len(done) == 2
        # The hit completes after the L1 latency.
        assert done[1] - start == mem.config.l1.hit_latency

    def test_two_readers_share(self):
        engine, mem = _system()
        done = []
        mem.controller(0).load(0x1000, _complete(engine, done))
        engine.run()
        mem.controller(1).load(0x1000, _complete(engine, done))
        engine.run()
        assert len(done) == 2
        assert mem.controller(0).peek_state(0x1000) == S
        assert mem.controller(1).peek_state(0x1000) == S

    def test_miss_slower_than_hit(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        miss_done, hit_done = [], []
        start = engine.now
        ctrl.load(0x1000, _complete(engine, miss_done))
        engine.run()
        miss_latency = miss_done[0] - start
        start = engine.now
        ctrl.load(0x1000, _complete(engine, hit_done))
        engine.run()
        hit_latency = hit_done[0] - start
        assert miss_latency > hit_latency
        # Miss pays at least network + directory + network.
        assert miss_latency >= 2 * 7 + 35


class TestStores:
    def test_store_miss_gets_m(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        done = []
        ctrl.store(0x2000, _complete(engine, done))
        engine.run()
        assert done
        assert ctrl.peek_state(0x2000) == M

    def test_store_hit_on_exclusive_is_silent_upgrade(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        done = []
        ctrl.load(0x2000, _complete(engine, done))
        engine.run()
        assert ctrl.peek_state(0x2000) == E
        messages_before = mem.network.stats.total
        assert ctrl.store(0x2000, _complete(engine, done)) is True
        engine.run()
        assert mem.network.stats.total == messages_before
        assert ctrl.peek_state(0x2000) == M

    def test_write_atomicity_store_waits_for_all_inv_acks(self):
        """The paper's §II-E assumption: a write is acknowledged only
        after *all* invalidations have been performed."""
        engine, mem = _system(cores=3)
        done = []
        # Cores 1 and 2 share the line.
        mem.controller(1).load(0x3000, _complete(engine, done))
        engine.run()
        mem.controller(2).load(0x3000, _complete(engine, done))
        engine.run()
        invs_before = mem.stats_invalidations
        store_done = []
        mem.controller(0).store(0x3000, _complete(engine, store_done))
        engine.run()
        assert store_done
        assert mem.stats_invalidations - invs_before == 2
        assert mem.controller(1).peek_state(0x3000) is None
        assert mem.controller(2).peek_state(0x3000) is None
        assert mem.controller(0).peek_state(0x3000) == M

    def test_upgrade_from_shared(self):
        engine, mem = _system()
        done = []
        mem.controller(0).load(0x3000, _complete(engine, done))
        engine.run()
        mem.controller(1).load(0x3000, _complete(engine, done))
        engine.run()
        # Core 0 upgrades: exactly one invalidation (to core 1).
        invs_before = mem.stats_invalidations
        mem.controller(0).store(0x3000, _complete(engine, done))
        engine.run()
        assert mem.stats_invalidations - invs_before == 1
        assert mem.controller(0).peek_state(0x3000) == M


class TestInvalidationDelivery:
    def test_removal_listener_called_on_inval(self):
        engine, mem = _system()
        removed = []
        done = []
        mem.controller(1).load(0x4000, _complete(engine, done))
        engine.run()
        mem.controller(1).removal_listener = \
            lambda line, kind: removed.append((line, kind))
        mem.controller(0).store(0x4000, _complete(engine, done))
        engine.run()
        assert removed == [(0x4000, "inval")]

    def test_owner_forward_on_remote_load(self):
        engine, mem = _system()
        done = []
        mem.controller(0).store(0x5000, _complete(engine, done))
        engine.run()
        assert mem.controller(0).peek_state(0x5000) == M
        mem.controller(1).load(0x5000, _complete(engine, done))
        engine.run()
        assert len(done) == 2
        # Previous owner downgraded, both now share.
        assert mem.controller(0).peek_state(0x5000) == S
        assert mem.controller(1).peek_state(0x5000) == S


class TestEvictions:
    def test_capacity_eviction_notifies_core(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        removed = []
        ctrl.removal_listener = lambda line, kind: removed.append(
            (line, kind))
        done = []
        # L2 is 16KB/4-way/64 sets: lines 0, 16KB/4.., conflict in set 0.
        set_stride = 64 * (16 * 1024 // (4 * 64))  # bytes between same-set lines
        for i in range(5):
            ctrl.load(i * set_stride, _complete(engine, done))
            engine.run()
        evicts = [r for r in removed if r[1] == "evict"]
        assert evicts, "conflict misses should evict"
        assert evicts[0][0] == 0  # the first-touched line went first

    def test_dirty_eviction_writes_back(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        done = []
        set_stride = 64 * (16 * 1024 // (4 * 64))
        ctrl.store(0, _complete(engine, done))
        engine.run()
        for i in range(1, 5):
            ctrl.load(i * set_stride, _complete(engine, done))
            engine.run()
        assert ctrl.peek_state(0) is None
        # The directory no longer thinks core 0 owns line 0: a fresh
        # load by core 1 is granted without forwarding to core 0.
        mem.controller(1).load(0, _complete(engine, done))
        engine.run()
        assert mem.controller(1).peek_state(0) in (E, S)


class TestMSHRs:
    def test_mshr_limit_queues_excess_misses(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        ctrl.mshrs = 2
        done = []
        for i in range(4):
            ctrl.load(0x10000 + i * 64, _complete(engine, done))
        assert len(ctrl.txns) == 2
        assert len(ctrl.txn_queue) == 2
        engine.run()
        assert len(done) == 4

    def test_coalesced_loads_share_one_txn(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        done = []
        ctrl.load(0x10000, _complete(engine, done))
        ctrl.load(0x10008, _complete(engine, done))  # same line
        assert len(ctrl.txns) == 1
        engine.run()
        assert len(done) == 2


class TestPrefetch:
    def test_prefetch_exclusive_installs_m(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        assert ctrl.prefetch_exclusive(0x6000) is True
        engine.run()
        assert ctrl.peek_state(0x6000) == M

    def test_prefetch_dropped_when_mshrs_full(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        ctrl.mshrs = 1
        ctrl.load(0x7000, lambda: None)
        assert ctrl.prefetch_exclusive(0x8000) is False

    def test_prefetch_noop_when_owned(self):
        engine, mem = _system()
        ctrl = mem.controller(0)
        ctrl.store(0x9000, lambda: None)
        engine.run()
        before = mem.network.stats.total
        assert ctrl.prefetch_exclusive(0x9000) is True
        assert mem.network.stats.total == before
