"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


def test_schedule_and_run_in_order():
    engine = Engine()
    order = []
    engine.schedule(5, order.append, "b")
    engine.schedule(1, order.append, "a")
    engine.schedule(9, order.append, "c")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 9


def test_same_cycle_events_fire_in_insertion_order():
    engine = Engine()
    order = []
    for tag in range(10):
        engine.schedule(3, order.append, tag)
    engine.run()
    assert order == list(range(10))


def test_zero_delay_event_runs_at_current_cycle():
    engine = Engine()
    seen = []

    def outer():
        engine.schedule(0, seen.append, engine.now)

    engine.schedule(4, outer)
    engine.run()
    assert seen == [4]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule(2, lambda: engine.at(10, seen.append, "x"))
    engine.run()
    assert seen == ["x"]
    assert engine.now == 10


def test_run_until_predicate_stops_early():
    engine = Engine()
    count = [0]

    def tick():
        count[0] += 1
        engine.schedule(1, tick)

    engine.schedule(0, tick)
    engine.run(until=lambda: count[0] >= 5)
    assert count[0] == 5


def test_run_max_cycles_bounds_time():
    engine = Engine()

    def forever():
        engine.schedule(10, forever)

    engine.schedule(0, forever)
    engine.run(max_cycles=55)
    assert engine.now == 55
    assert engine.pending > 0


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_events_can_cascade_within_same_cycle():
    engine = Engine()
    depth = []

    def nest(n):
        depth.append(n)
        if n < 3:
            engine.schedule(0, nest, n + 1)

    engine.schedule(7, nest, 0)
    engine.run()
    assert depth == [0, 1, 2, 3]
    assert engine.now == 7


def test_pending_counts_events():
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    assert engine.pending == 2
    engine.step()
    assert engine.pending == 1


def test_determinism_across_identical_runs():
    def run_once():
        engine = Engine()
        log = []
        engine.schedule(3, log.append, 1)
        engine.schedule(3, log.append, 2)
        engine.schedule(1, lambda: engine.schedule(2, log.append, 3))
        engine.run()
        return log

    assert run_once() == run_once()


def test_run_resumes_after_deadline_without_past_events():
    """Regression: a deadline-terminated run leaves queued events that a
    later run() must dispatch, not reject as scheduled in the past."""
    engine = Engine()
    fired = []

    def periodic():
        fired.append(engine.now)
        engine.schedule(10, periodic)

    engine.schedule(0, periodic)
    engine.run(max_cycles=25)
    assert engine.now == 25
    assert fired == [0, 10, 20]
    # The next event (cycle 30) is still queued; resuming runs it.
    engine.run(max_cycles=10)
    assert engine.now == 35
    assert fired == [0, 10, 20, 30]


def test_run_deadline_between_bucketed_events():
    """A deadline landing between a dispatched cycle and its queued
    next-cycle tick must not lose or double-run the tick."""
    engine = Engine()
    fired = []

    def tick():
        fired.append(engine.now)
        if engine.now < 6:
            engine.schedule(1, tick)

    engine.schedule(0, tick)
    engine.run(max_cycles=3)
    assert engine.now == 3
    assert fired == [0, 1, 2, 3]
    engine.run()
    assert fired == [0, 1, 2, 3, 4, 5, 6]


def test_run_deadline_in_the_past_is_a_noop():
    engine = Engine()
    engine.schedule(5, lambda: None)
    engine.run(max_cycles=0)
    assert engine.now == 0
    assert engine.pending == 1


def test_at_rejects_past_time_with_clear_error():
    engine = Engine()
    engine.schedule(8, lambda: None)
    engine.run()
    assert engine.now == 8
    with pytest.raises(ValueError) as exc:
        engine.at(3, lambda: None)
    assert "cycle 3" in str(exc.value)
    assert "cycle 8" in str(exc.value)


def test_at_current_time_is_allowed():
    engine = Engine()
    seen = []
    engine.schedule(5, lambda: engine.at(5, seen.append, "now"))
    engine.run()
    assert seen == ["now"]


def test_stop_ends_run_and_is_sticky():
    engine = Engine()
    log = []

    def tick(n):
        log.append(n)
        if n == 2:
            engine.stop()
        engine.schedule(1, tick, n + 1)

    engine.schedule(0, tick, 0)
    engine.run()
    # The stopping event finishes, then the loop exits with the rest
    # of the queue intact.
    assert log == [0, 1, 2]
    assert engine.stopped
    assert engine.pending == 1
    # The flag is sticky, mirroring a terminal until() predicate: a
    # stopped engine's run() returns immediately.
    engine.run()
    assert log == [0, 1, 2]
    assert engine.pending == 1


def test_events_dispatched_counter():
    engine = Engine()
    for delay in (0, 1, 5):
        engine.schedule(delay, lambda: None)
    engine.run()
    assert engine.events_dispatched == 3
