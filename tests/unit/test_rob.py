"""Unit tests for the reorder buffer."""

import pytest

from repro.cpu.isa import alu
from repro.cpu.rob import ReorderBuffer


def test_allocation_in_order():
    rob = ReorderBuffer(4)
    rob.allocate(0, alu())
    rob.allocate(1, alu())
    with pytest.raises(RuntimeError):
        rob.allocate(1, alu())


def test_full():
    rob = ReorderBuffer(2)
    rob.allocate(0, alu())
    rob.allocate(1, alu())
    assert rob.full
    with pytest.raises(RuntimeError):
        rob.allocate(2, alu())


def test_retire_requires_completed_head():
    rob = ReorderBuffer(4)
    entry = rob.allocate(0, alu())
    with pytest.raises(RuntimeError):
        rob.retire_head()
    entry.completed = True
    assert rob.retire_head() is entry
    assert rob.empty


def test_squash_from_bumps_epochs():
    rob = ReorderBuffer(8)
    keep = rob.allocate(0, alu())
    victims = [rob.allocate(seq, alu()) for seq in (2, 4, 6)]
    removed = rob.squash_from(2)
    assert [e.seq for e in removed] == [6, 4, 2]
    assert all(e.issue_epoch == 1 for e in victims)
    assert keep.issue_epoch == 0
    assert rob.tail_seq() == 0


def test_entries_order_by_seq():
    rob = ReorderBuffer(4)
    a = rob.allocate(1, alu())
    b = rob.allocate(2, alu())
    assert a < b


def test_capacity_validation():
    with pytest.raises(ValueError):
        ReorderBuffer(0)
