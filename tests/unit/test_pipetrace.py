"""Unit tests for the pipeline tracer."""

import pytest

from repro.core.policies import POLICY_ORDER
from repro.cpu.isa import Trace, alu, load, store
from repro.sim.config import TINY
from repro.sim.pipetrace import PipeTracer
from repro.sim.system import System


def _run(ops, policy="x86", cores=1, hints=((0x40, 0x30),)):
    traces = []
    for _ in range(cores):
        trace = Trace.from_ops(ops)
        trace.memdep_hints = list(hints)
        traces.append(trace)
    system = System(traces, policy, TINY, warm_caches=False,
                    trace_pipeline=True)
    system.run()
    return system


class TestHookIntegration:
    def test_every_instruction_recorded_and_retired(self):
        system = _run([alu(), store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40), alu()])
        tracer = system.cores[0].tracer
        assert len(tracer.retired_records()) == 4
        assert tracer.squashed_records() == []

    def test_lifecycle_ordering(self):
        system = _run([store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40)])
        for record in system.cores[0].tracer.retired_records():
            assert record.dispatched is not None
            assert record.dispatched <= record.issued
            assert record.issued <= record.completed
            assert record.completed <= record.retired

    def test_slf_annotated(self):
        system = _run([store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40)])
        tracer = system.cores[0].tracer
        ld = tracer.record_for(1)
        assert ld.kind == "load"
        assert ld.slf is True

    def test_squash_creates_new_incarnation(self):
        # An unhinted store->load collision with slow address generation
        # squashes the load once.
        slow = alu(latency=3)
        ops = [slow, store(0x200, deps=(0,), pc=0x30, value=5),
               load(0x200, pc=0x40)]
        system = _run(ops, hints=())  # cold predictor: collision squashes
        tracer = system.cores[0].tracer
        squashed = tracer.squashed_records()
        assert squashed, "expected a memdep squash"
        assert squashed[0].squash_reason == "memdep"
        final = tracer.record_for(2, incarnation=-1)
        assert final.retired is not None
        assert final.incarnation >= 1


class TestMultiIncarnation:
    """The squash/re-execution path, traced under every policy."""

    # Unhinted store->load collision with slow address generation: the
    # load issues early, the late store hits it, and the memdep squash
    # re-dispatches the load as a new incarnation.
    OPS = staticmethod(lambda: [
        alu(latency=3),
        store(0x200, deps=(0,), pc=0x30, value=5),
        load(0x200, pc=0x40),
    ])

    @pytest.mark.parametrize("policy", POLICY_ORDER)
    def test_squash_traced_under_every_policy(self, policy):
        system = _run(self.OPS(), policy=policy, hints=())
        tracer = system.cores[0].tracer

        squashed = tracer.squashed_records()
        assert squashed, f"{policy}: expected a memdep squash"
        for record in squashed:
            assert record.squash_reason == "memdep"
            assert record.retired is None
            assert record.squashed is not None
            assert record.squashed >= record.dispatched

        # The killed and surviving incarnations are distinct records
        # with increasing incarnation numbers, and the last one retires.
        load_records = sorted(
            (r for r in tracer.records if r.seq == 2),
            key=lambda r: r.incarnation)
        assert len(load_records) >= 2
        incs = [r.incarnation for r in load_records]
        assert incs == sorted(set(incs))
        final = tracer.record_for(2, incarnation=-1)
        assert final.retired is not None
        assert final.incarnation >= 1

    @pytest.mark.parametrize("policy", POLICY_ORDER)
    def test_every_instruction_eventually_retires(self, policy):
        system = _run(self.OPS(), policy=policy, hints=())
        tracer = system.cores[0].tracer
        retired_seqs = {r.seq for r in tracer.retired_records()}
        assert retired_seqs == {0, 1, 2}


class TestGateBlockedAnnotation:
    """SoS policies annotate loads that stall behind a closed gate."""

    # Back-to-back SLF pairs: each load closes the gate at retire, and
    # the next pair's load reaches the ROB head before the SB entry has
    # drained, so it must wait for the gate to reopen.
    OPS = staticmethod(lambda: [
        op
        for i in range(10)
        for op in (store(0x1000 + 64 * i, pc=0x30, value=i),
                   load(0x1000 + 64 * i, pc=0x40))
    ])

    @pytest.mark.parametrize("policy", ["370-SLFSoS", "370-SLFSoS-key"])
    def test_gate_blocked_cycles_recorded(self, policy):
        system = _run(self.OPS(), policy=policy, hints=())
        tracer = system.cores[0].tracer
        blocked = [r for r in tracer.retired_records()
                   if r.gate_blocked_cycles]
        assert blocked, f"{policy}: expected a gate-blocked load"
        assert all(r.kind == "load" for r in blocked)
        assert all(r.gate_blocked_cycles > 0 for r in blocked)

    def test_x86_never_gate_blocked(self):
        system = _run(self.OPS(), policy="x86", hints=())
        tracer = system.cores[0].tracer
        assert all(r.gate_blocked_cycles == 0
                   for r in tracer.retired_records())


class TestRendering:
    def test_render_contains_rows(self):
        system = _run([store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40), alu()])
        text = system.cores[0].tracer.render()
        assert "seq" in text
        assert "store" in text and "load" in text
        assert "SLF" in text

    def test_summary(self):
        system = _run([alu() for _ in range(10)])
        summary = system.cores[0].tracer.summary()
        assert summary["retired"] == 10
        assert summary["avg_latency"] > 0

    def test_limit_respected(self):
        tracer = PipeTracer(limit=2)
        for seq in range(5):
            tracer.on_dispatch(seq, 0, seq)
        assert len(tracer.records) == 2


def test_tracer_off_by_default():
    traces = [Trace.from_ops([alu()])]
    system = System(traces, "x86", TINY, warm_caches=False)
    assert system.cores[0].tracer is None
