"""Unit tests for the pipeline tracer."""

from repro.cpu.isa import Trace, alu, load, store
from repro.sim.config import TINY
from repro.sim.pipetrace import PipeTracer
from repro.sim.system import System


def _run(ops, policy="x86", cores=1, hints=((0x40, 0x30),)):
    traces = []
    for _ in range(cores):
        trace = Trace.from_ops(ops)
        trace.memdep_hints = list(hints)
        traces.append(trace)
    system = System(traces, policy, TINY, warm_caches=False,
                    trace_pipeline=True)
    system.run()
    return system


class TestHookIntegration:
    def test_every_instruction_recorded_and_retired(self):
        system = _run([alu(), store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40), alu()])
        tracer = system.cores[0].tracer
        assert len(tracer.retired_records()) == 4
        assert tracer.squashed_records() == []

    def test_lifecycle_ordering(self):
        system = _run([store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40)])
        for record in system.cores[0].tracer.retired_records():
            assert record.dispatched is not None
            assert record.dispatched <= record.issued
            assert record.issued <= record.completed
            assert record.completed <= record.retired

    def test_slf_annotated(self):
        system = _run([store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40)])
        tracer = system.cores[0].tracer
        ld = tracer.record_for(1)
        assert ld.kind == "load"
        assert ld.slf is True

    def test_squash_creates_new_incarnation(self):
        # An unhinted store->load collision with slow address generation
        # squashes the load once.
        slow = alu(latency=3)
        ops = [slow, store(0x200, deps=(0,), pc=0x30, value=5),
               load(0x200, pc=0x40)]
        system = _run(ops, hints=())  # cold predictor: collision squashes
        tracer = system.cores[0].tracer
        squashed = tracer.squashed_records()
        assert squashed, "expected a memdep squash"
        assert squashed[0].squash_reason == "memdep"
        final = tracer.record_for(2, incarnation=-1)
        assert final.retired is not None
        assert final.incarnation >= 1


class TestRendering:
    def test_render_contains_rows(self):
        system = _run([store(0x100, pc=0x30, value=1),
                       load(0x100, pc=0x40), alu()])
        text = system.cores[0].tracer.render()
        assert "seq" in text
        assert "store" in text and "load" in text
        assert "SLF" in text

    def test_summary(self):
        system = _run([alu() for _ in range(10)])
        summary = system.cores[0].tracer.summary()
        assert summary["retired"] == 10
        assert summary["avg_latency"] > 0

    def test_limit_respected(self):
        tracer = PipeTracer(limit=2)
        for seq in range(5):
            tracer.on_dispatch(seq, 0, seq)
        assert len(tracer.records) == 2


def test_tracer_off_by_default():
    traces = [Trace.from_ops([alu()])]
    system = System(traces, "x86", TINY, warm_caches=False)
    assert system.cores[0].tracer is None
