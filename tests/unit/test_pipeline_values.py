"""Directed tests of the functional value layer and fence semantics."""

from repro.core.policies import POLICY_ORDER
from repro.cpu.isa import Trace, alu, fence, load, store
from repro.sim.config import (CacheConfig, CoreConfig, MemoryConfig,
                              SystemConfig)
from repro.sim.system import System

SMALL = SystemConfig(
    cores=2,
    core=CoreConfig(rob_entries=32, lq_entries=12, sq_sb_entries=8,
                    mshrs=4),
    memory=MemoryConfig(
        l1=CacheConfig(4 * 1024, 2, 4),
        l2=CacheConfig(16 * 1024, 4, 12),
        l3_bank=CacheConfig(64 * 1024, 8, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)


def run(traces, policy, initial=None):
    system = System(traces, policy, SMALL, warm_caches=False,
                    initial_memory=initial)
    system.run()
    return system


class TestForwardingValues:
    def test_load_gets_forwarded_value(self):
        t = Trace()
        t.append(store(0x100, pc=0x30, value=42))
        t.append(load(0x100, pc=0x40))
        t.memdep_hints = [(0x40, 0x30)]
        system = run([t], "x86")
        assert system.cores[0].retired_load_values[1] == 42

    def test_youngest_matching_store_wins(self):
        t = Trace()
        t.append(store(0x100, pc=0x30, value=1))
        t.append(store(0x100, pc=0x31, value=2))
        t.append(load(0x100, pc=0x40))
        t.memdep_hints = [(0x40, 0x30), (0x40, 0x31)]
        system = run([t], "x86")
        assert system.cores[0].retired_load_values[2] == 2

    def test_initial_memory_visible(self):
        t = Trace.from_ops([load(0x200)])
        system = run([t], "x86", initial={0x200: 99})
        assert system.cores[0].retired_load_values[0] == 99

    def test_nospec_reads_written_value(self):
        t = Trace()
        t.append(store(0x100, pc=0x30, value=7))
        t.append(load(0x100, pc=0x40))
        t.memdep_hints = [(0x40, 0x30)]
        system = run([t], "370-NoSpec")
        assert system.cores[0].retired_load_values[1] == 7
        assert system.cores[0].stats.slf_loads == 0

    def test_store_updates_global_memory_at_write(self):
        t = Trace.from_ops([store(0x300, value=5)])
        system = run([t], "x86")
        assert system.memory_data[0x300] == 5


class TestFenceIssueBarrier:
    def test_load_waits_for_fence(self):
        """A load after mfence must observe every pre-fence store of its
        own thread from memory, even across the fence."""
        for policy in POLICY_ORDER:
            t = Trace()
            t.append(store(0x100, pc=0x30, value=11))
            t.append(fence())
            t.append(load(0x100, pc=0x40))
            system = run([t], policy)
            assert system.cores[0].retired_load_values[2] == 11, policy

    def test_fence_prevents_early_value_binding(self):
        """Without the fence the second load may bind y before the
        cross-core store; with fences on both sides, sb's relaxed
        outcome must be gone for every timing (here: one timing)."""
        t0 = Trace()
        t0.append(store(0x100, pc=0x30, value=1))
        t0.append(fence())
        t0.append(load(0x200, pc=0x40))
        t1 = Trace()
        t1.append(store(0x200, pc=0x31, value=1))
        t1.append(fence())
        t1.append(load(0x100, pc=0x41))
        system = run([t0, t1], "x86")
        r0 = system.cores[0].retired_load_values[2]
        r1 = system.cores[1].retired_load_values[2]
        assert not (r0 == 0 and r1 == 0)

    def test_fence_does_not_block_older_loads(self):
        t = Trace()
        t.append(load(0x100, pc=0x40))
        t.append(fence())
        t.append(alu())
        system = run([t], "x86", initial={0x100: 3})
        assert system.cores[0].retired_load_values[0] == 3


class TestCrossCoreValues:
    def test_reader_sees_writer_eventually(self):
        writer = Trace.from_ops([store(0x400, value=123)])
        # The reader spins long enough for the store to land.
        reader = Trace()
        for i in range(60):
            reader.append(alu(latency=3,
                              deps=(i - 1,) if i > 0 else ()))
        reader.append(load(0x400, deps=(59,)))
        system = run([reader, writer], "370-SLFSoS-key")
        assert system.cores[0].retired_load_values[60] == 123


class TestRmwOnPipeline:
    def test_xchg_returns_old_and_writes_new(self):
        from repro.cpu.isa import rmw
        t = Trace()
        t.append(store(0x100, pc=0x30, value=5))
        t.append(rmw(0x100, value=9))
        t.append(load(0x100, pc=0x40))
        t.memdep_hints = [(0x40, 0x30)]
        system = run([t], "x86")
        core = system.cores[0]
        assert core.retired_load_values[1] == 5
        assert core.retired_load_values[2] == 9
        assert system.memory_data[0x100] == 9

    def test_two_xchg_never_both_read_initial(self):
        from repro.cpu.isa import rmw
        for policy in POLICY_ORDER:
            t0 = Trace.from_ops([rmw(0x200, value=1)])
            t1 = Trace.from_ops([rmw(0x200, value=2)])
            system = run([t0, t1], policy)
            old0 = system.cores[0].retired_load_values[0]
            old1 = system.cores[1].retired_load_values[0]
            assert not (old0 == 0 and old1 == 0), policy
            assert {old0, old1} <= {0, 1, 2}

    def test_rmw_waits_for_sb_drain(self):
        """The locked op must not execute before older stores are
        globally visible: the RMW's observed value reflects the older
        store to the same address."""
        from repro.cpu.isa import rmw
        t = Trace()
        t.append(store(0x300, pc=0x30, value=77))
        t.append(rmw(0x300, value=88))
        system = run([t], "370-SLFSoS-key")
        assert system.cores[0].retired_load_values[1] == 77
