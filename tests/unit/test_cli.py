"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "n6" in out
    assert "barnes" in out
    assert "370-SLFSoS-key" in out


def test_litmus_enumeration(capsys):
    assert main(["litmus", "sb", "-m", "SC", "x86"]) == 0
    out = capsys.readouterr().out
    assert "SC: 3 outcomes" in out
    assert "x86: 4 outcomes" in out


def test_litmus_unknown_name():
    with pytest.raises(SystemExit):
        main(["litmus", "nope"])


def test_explain(capsys):
    assert main(["explain", "mp", "-m", "x86",
                 "-w", "r0_rx=1", "r0_ry=0"]) == 0
    out = capsys.readouterr().out
    assert "FORBIDDEN" in out
    assert "-->" in out


def test_explain_requires_witness():
    with pytest.raises(SystemExit):
        main(["explain", "mp", "-m", "x86"])


def test_explain_bad_witness():
    with pytest.raises(SystemExit):
        main(["explain", "mp", "-m", "x86", "-w", "rx"])


def test_compare(capsys):
    assert main(["compare", "n6"]) == 0
    out = capsys.readouterr().out
    assert "x86-only" in out


def test_sample(capsys):
    assert main(["sample", "sb", "-m", "x86", "-n", "300"]) == 0
    out = capsys.readouterr().out
    assert "300 runs" in out


def test_bench(capsys):
    assert main(["bench", "fft", "-c", "2", "-l", "600"]) == 0
    out = capsys.readouterr().out
    assert "fft under 370-SLFSoS-key" in out
    assert "forwarded" in out


def test_bench_json(capsys):
    assert main(["bench", "fft", "-c", "2", "-l", "600", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["execution_cycles"] > 0
    assert "per_core" in stats and "0" in stats["per_core"]


def test_bench_obs(capsys, tmp_path):
    out = tmp_path / "m.jsonl"
    assert main(["bench", "fft", "-c", "2", "-l", "600",
                 "--obs", "--obs-out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "top stalls" in text
    assert out.exists()
    records = [json.loads(line)
               for line in out.read_text().splitlines()]
    assert records[0]["type"] == "meta"


def test_trace(capsys, tmp_path):
    trace_path = tmp_path / "fft.trace.json"
    metrics_path = tmp_path / "fft.metrics.jsonl"
    assert main(["trace", "fft", "-c", "2", "-l", "600",
                 "-o", str(trace_path),
                 "--metrics", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "gate intervals" in out
    assert "top stalls" in out

    from repro.obs.validate import validate_chrome_trace_file
    counts = validate_chrome_trace_file(str(trace_path))
    trace = json.loads(trace_path.read_text())
    assert counts["gate_slices"] == trace["otherData"]["gate_closes"]
    assert metrics_path.exists()


def test_sweep(capsys):
    assert main(["sweep", "fft", "-c", "2", "-l", "600"]) == 0
    out = capsys.readouterr().out
    for policy in ("x86", "370-NoSpec", "370-SLFSoS-key"):
        assert policy in out


def test_rmw_litmus_runs_under_every_model(capsys):
    assert main(["litmus", "sb+rmw-both"]) == 0
    out = capsys.readouterr().out
    for model in ("SC", "370", "x86", "PC", "WMM"):
        assert f"\n{model}: " in out
    assert "not defined" not in out


def test_run_file(tmp_path, capsys):
    source = """name: filed
T0:
  st x,1
  ld y -> ry
T1:
  st y,1
  ld x -> rx
exists: r0_ry=0 r1_rx=0
"""
    path = tmp_path / "sb.litmus"
    path.write_text(source)
    assert main(["run-file", str(path), "-m", "SC", "x86"]) == 0
    out = capsys.readouterr().out
    assert "SC: 3 outcomes" in out
    assert "forbidden" in out   # SC forbids the sb witness
    assert "ALLOWED" in out     # x86 allows it


def test_run_file_missing(tmp_path):
    with pytest.raises(SystemExit):
        main(["run-file", str(tmp_path / "nope.litmus")])


def test_record_and_replay(tmp_path, capsys):
    path = tmp_path / "w.json"
    assert main(["record", "fft", str(path), "-c", "2", "-l", "500"]) == 0
    assert main(["replay", str(path), "-p", "x86"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert "replayed" in out and "fft" in out


def test_replay_json_and_obs(tmp_path, capsys):
    path = tmp_path / "w.json"
    assert main(["record", "fft", str(path), "-c", "2", "-l", "500"]) == 0
    capsys.readouterr()
    assert main(["replay", str(path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["execution_cycles"] > 0
    assert main(["replay", str(path), "--obs"]) == 0
    assert "top stalls" in capsys.readouterr().out


def test_replay_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["replay", str(tmp_path / "missing.json")])
