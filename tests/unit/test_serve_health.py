"""/v1/healthz degraded-state reporting: drain-in-progress, recent
watchdog recycles, recent broken-pool replacements, and recovery once
the incident window passes."""

import time

from repro.serve.api import ServeService


def _service(**kw):
    # Executors spawn lazily, so a never-started service is cheap.
    return ServeService(shards=1, cache=False, **kw)


def test_healthz_ok_by_default():
    doc = _service().healthz()
    assert doc["ok"] is True
    assert doc["state"] == "ok"
    assert doc["degraded"] == []
    assert doc["draining"] is False
    assert doc["shards"] == 1
    assert doc["recycles"] == 0
    assert doc["pool_replacements"] == 0


def test_draining_reports_degraded_but_alive():
    service = _service()
    service.draining = True
    doc = service.healthz()
    assert doc["ok"] is True            # still answering
    assert doc["state"] == "degraded"
    assert "drain-in-progress" in doc["degraded"]
    assert doc["draining"] is True


def test_recent_incident_reports_degraded():
    service = _service()
    service.pool.last_incident = (time.monotonic(), "watchdog-recycle")
    doc = service.healthz()
    assert doc["state"] == "degraded"
    assert doc["degraded"] == ["watchdog-recycle"]


def test_incident_ages_out_of_the_window():
    service = _service(degraded_window=5.0)
    service.pool.last_incident = (time.monotonic() - 6.0,
                                  "pool-replacement")
    doc = service.healthz()
    assert doc["state"] == "ok"
    assert doc["degraded"] == []


def test_draining_and_incident_stack():
    service = _service()
    service.draining = True
    service.pool.last_incident = (time.monotonic(), "pool-replacement")
    doc = service.healthz()
    assert doc["state"] == "degraded"
    assert doc["degraded"] == ["drain-in-progress", "pool-replacement"]
