"""Axiomatic checker tests: cross-validation against the operational
models and the rfi-globality distinction the paper relies on."""

import pytest

from repro.litmus.axiomatic import enumerate_axiomatic
from repro.litmus.operational import enumerate_outcomes
from repro.litmus.program import Fence, Ld, St, make_program
from repro.litmus.tests import ALL_CASES, FIG5, N6

MODELS = ("SC", "370", "x86")


class TestCrossValidation:
    """For every paper litmus test and every model, the axiomatic
    enumeration must produce exactly the operational outcome set."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize(
        "case", ALL_CASES, ids=[c.program.name for c in ALL_CASES])
    def test_operational_equals_axiomatic(self, case, model):
        operational = enumerate_outcomes(case.program, model)
        axiomatic = enumerate_axiomatic(case.program, model)
        assert operational == axiomatic


class TestRfiGlobality:
    """Figure 2's point: 370 differs from x86 exactly in whether
    internal read-from (store-to-load forwarding) is globally ordered."""

    def test_n6_cycle_through_rfi(self):
        x86_only = (enumerate_axiomatic(N6, "x86")
                    - enumerate_axiomatic(N6, "370"))
        assert len(x86_only) == 1
        (outcome,) = x86_only
        assert outcome.reg(0, "rx") == 1   # forwarded from own store
        assert outcome.reg(0, "ry") == 0

    def test_fig5_disagreement_through_double_rfi(self):
        x86_only = (enumerate_axiomatic(FIG5, "x86")
                    - enumerate_axiomatic(FIG5, "370"))
        assert len(x86_only) == 1


class TestUniproc:
    def test_load_cannot_skip_own_latest_store(self):
        program = make_program(
            "coRR", [[St("x", 1), St("x", 2), Ld("x", "r0")]])
        for model in MODELS:
            for outcome in enumerate_axiomatic(program, model):
                assert outcome.reg(0, "r0") == 2

    def test_no_loads_no_stores_single_outcome(self):
        program = make_program("empty", [[Ld("x", "r0")]])
        for model in MODELS:
            assert len(enumerate_axiomatic(program, model)) == 1


class TestFenceAxioms:
    def test_fenced_sb_forbidden_everywhere(self):
        program = make_program("sb+f", [
            [St("x", 1), Fence(), Ld("y", "ry")],
            [St("y", 1), Fence(), Ld("x", "rx")],
        ])
        for model in MODELS:
            bad = [o for o in enumerate_axiomatic(program, model)
                   if o.reg(0, "ry") == 0 and o.reg(1, "rx") == 0]
            assert bad == []


def test_unknown_model_rejected():
    with pytest.raises(ValueError):
        enumerate_axiomatic(N6, "PSO")
