"""Per-client token-bucket admission: burst, refill, structured 429s."""

from repro.fleet.admission import MAX_CLIENTS, ClientQuotas


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_disabled_quotas_admit_everything():
    quotas = ClientQuotas(rate=0.0, burst=0)
    assert not quotas.enabled
    for _ in range(10_000):
        assert quotas.admit("anyone") is None


def test_burst_then_reject_with_retry_after():
    clock = FakeClock()
    quotas = ClientQuotas(rate=10.0, burst=5, clock=clock)
    for _ in range(5):
        assert quotas.admit("alice") is None
    rejection = quotas.admit("alice")
    assert rejection is not None
    assert rejection["error"] == "quota-exceeded"
    assert rejection["status"] == 429
    assert rejection["client"] == "alice"
    # Empty bucket at 10 tokens/s: one token is 0.1s away.
    assert 0.0 < rejection["retry_after_s"] <= 0.1


def test_refill_readmits_after_retry_after_elapses():
    clock = FakeClock()
    quotas = ClientQuotas(rate=10.0, burst=2, clock=clock)
    assert quotas.admit("bob") is None
    assert quotas.admit("bob") is None
    rejection = quotas.admit("bob")
    assert rejection is not None
    clock.advance(rejection["retry_after_s"] + 0.01)
    assert quotas.admit("bob") is None


def test_clients_are_isolated():
    clock = FakeClock()
    quotas = ClientQuotas(rate=1.0, burst=1, clock=clock)
    assert quotas.admit("alice") is None
    assert quotas.admit("alice") is not None
    # Alice exhausting her bucket does not touch Bob's.
    assert quotas.admit("bob") is None


def test_refill_caps_at_burst():
    clock = FakeClock()
    quotas = ClientQuotas(rate=100.0, burst=3, clock=clock)
    assert quotas.admit("carol") is None
    clock.advance(3600.0)  # a long idle stretch must not bank tokens
    for _ in range(3):
        assert quotas.admit("carol") is None
    assert quotas.admit("carol") is not None


def test_pruning_bounds_tracked_clients():
    clock = FakeClock()
    quotas = ClientQuotas(rate=10.0, burst=5, clock=clock)
    for i in range(MAX_CLIENTS + 100):
        quotas.admit(f"client-{i}")
        clock.advance(10.0)  # every earlier bucket refills to full
    snap = quotas.snapshot()
    assert len(snap["clients"]) <= MAX_CLIENTS


def test_snapshot_shape():
    quotas = ClientQuotas(rate=50.0, burst=100)
    quotas.admit("alice")
    snap = quotas.snapshot()
    assert snap["enabled"] is True
    assert snap["rate"] == 50.0
    assert snap["burst"] == 100
    assert list(snap["clients"]) == ["alice"]
    assert snap["admitted"] == 1
    assert snap["rejected"] == 0
