"""Tests for trace serialization."""

import pytest

from repro.sim.system import simulate
from repro.workloads import generate_warmup, generate_workload, get_profile
from repro.workloads.tracefile import (TraceFileError, load_workload,
                                       save_workload)


def test_roundtrip_preserves_ops(tmp_path):
    profile = get_profile("barnes")
    traces = generate_workload(profile, cores=2, length_per_core=400)
    warm = generate_warmup(profile, cores=2, length_per_core=400)
    path = tmp_path / "barnes.json"
    save_workload(path, traces, warmup=warm,
                  meta={"benchmark": "barnes", "seed": 0})
    loaded, loaded_warm, meta = load_workload(path)
    assert len(loaded) == 2
    assert [t.ops for t in loaded] == [t.ops for t in traces]
    assert [t.memdep_hints for t in loaded] \
        == [t.memdep_hints for t in traces]
    assert [t.ops for t in loaded_warm] == [t.ops for t in warm]
    assert meta == {"benchmark": "barnes", "seed": 0}


def test_replay_is_bit_identical(tmp_path):
    from repro.sim.config import TINY
    profile = get_profile("water_spatial")
    traces = generate_workload(profile, cores=2, length_per_core=400)
    path = tmp_path / "w.json"
    save_workload(path, traces)
    loaded, _, _ = load_workload(path)
    original = simulate(traces, "370-SLFSoS-key", TINY)
    replayed = simulate(loaded, "370-SLFSoS-key", TINY)
    assert original.execution_cycles == replayed.execution_cycles
    assert original.total.slf_loads == replayed.total.slf_loads


def test_warmup_optional(tmp_path):
    traces = generate_workload(get_profile("fft"), cores=1,
                               length_per_core=100)
    path = tmp_path / "t.json"
    save_workload(path, traces)
    loaded, warm, meta = load_workload(path)
    assert warm is None
    assert meta == {}


class TestErrors:
    def test_not_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("not json {")
        with pytest.raises(TraceFileError, match="valid JSON"):
            load_workload(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(TraceFileError, match="not a repro-trace"):
            load_workload(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "repro-trace", "version": 99}')
        with pytest.raises(TraceFileError, match="version"):
            load_workload(path)

    def test_empty_workload(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            '{"format": "repro-trace", "version": 1, "cores": []}')
        with pytest.raises(TraceFileError, match="no cores"):
            load_workload(path)

    def test_corrupt_op(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            '{"format": "repro-trace", "version": 1, '
            '"cores": [{"ops": [[1, 2]]}]}')
        with pytest.raises(TraceFileError, match="bad op record"):
            load_workload(path)
