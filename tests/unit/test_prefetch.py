"""Unit tests for the stride prefetcher."""

from repro.memory.prefetch import StridePrefetcher


def _prefetcher(degree=2):
    issued = []
    pf = StridePrefetcher(issued.append, degree=degree)
    return pf, issued


def test_no_prefetch_before_confidence():
    pf, issued = _prefetcher()
    pf.observe(0x40, 1000)
    pf.observe(0x40, 1064)
    assert issued == []  # stride seen once: confidence 1 < 2


def test_prefetch_after_repeated_stride():
    pf, issued = _prefetcher(degree=2)
    for i in range(4):
        pf.observe(0x40, 1000 + 64 * i)
    assert 1000 + 64 * 3 + 64 in issued
    assert 1000 + 64 * 3 + 128 in issued


def test_stride_change_resets_confidence():
    pf, issued = _prefetcher()
    for i in range(4):
        pf.observe(0x40, 1000 + 64 * i)
    issued.clear()
    pf.observe(0x40, 50_000)   # wild jump
    pf.observe(0x40, 50_008)   # new stride, confidence low again
    assert issued == []


def test_zero_stride_never_prefetches():
    pf, issued = _prefetcher()
    for _ in range(10):
        pf.observe(0x40, 1000)
    assert issued == []


def test_separate_pcs_tracked_independently():
    pf, issued = _prefetcher(degree=1)
    for i in range(4):
        pf.observe(0x40, 1000 + 64 * i)
        pf.observe(0x41, 9000 + 8 * i)
    assert 1000 + 64 * 3 + 64 in issued
    assert 9000 + 8 * 3 + 8 in issued


def test_table_capacity_evicts_lru_pc():
    pf, issued = _prefetcher()
    pf.table_size = 2
    pf._table.clear()
    pf.observe(1, 100)
    pf.observe(2, 200)
    pf.observe(3, 300)   # evicts pc 1
    assert 1 not in pf._table
    assert 2 in pf._table and 3 in pf._table


def test_negative_stride_supported():
    pf, issued = _prefetcher(degree=1)
    for i in range(4):
        pf.observe(0x40, 10_000 - 64 * i)
    assert 10_000 - 64 * 3 - 64 in issued
