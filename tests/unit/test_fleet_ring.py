"""Consistent-hash ring: placement determinism, replication sets,
membership-churn stability."""

import hashlib

import pytest

from repro.fleet.ring import HashRing, key_point


def _keys(n):
    """n realistic keys: sha256 hex digests, like request_key mints."""
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest()
            for i in range(n)]


def test_empty_ring_owns_nothing():
    ring = HashRing()
    assert len(ring) == 0
    assert ring.owners("ab" * 32, 2) == []
    assert ring.primary("ab" * 32) is None


def test_owners_are_distinct_and_bounded_by_membership():
    ring = HashRing()
    for node in ("a", "b", "c"):
        ring.add(node)
    for key in _keys(50):
        owners = ring.owners(key, 2)
        assert len(owners) == 2
        assert len(set(owners)) == 2
        # Asking for more replicas than nodes yields every node once.
        assert sorted(ring.owners(key, 10)) == ["a", "b", "c"]


def test_placement_is_insertion_order_independent():
    forward, backward = HashRing(), HashRing()
    for node in ("w0", "w1", "w2", "w3"):
        forward.add(node)
    for node in ("w3", "w2", "w1", "w0"):
        backward.add(node)
    for key in _keys(100):
        assert forward.owners(key, 2) == backward.owners(key, 2)


def test_removal_only_moves_the_removed_nodes_keys():
    ring = HashRing()
    for node in ("w0", "w1", "w2", "w3"):
        ring.add(node)
    keys = _keys(200)
    before = {key: ring.primary(key) for key in keys}
    ring.remove("w2")
    moved = 0
    for key in keys:
        after = ring.primary(key)
        if before[key] == "w2":
            assert after != "w2"
            moved += 1
        else:
            # Consistency: keys not owned by the leaver do not move.
            assert after == before[key]
    # w2 owned roughly a quarter of the space.
    assert 0 < moved < len(keys)


def test_rejoin_restores_identical_placement():
    ring = HashRing()
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    keys = _keys(100)
    before = {key: ring.owners(key, 2) for key in keys}
    ring.remove("w1")
    ring.add("w1")
    assert all(ring.owners(key, 2) == before[key] for key in keys)


def test_load_is_roughly_even():
    ring = HashRing()
    nodes = [f"w{i}" for i in range(4)]
    for node in nodes:
        ring.add(node)
    counts = {node: 0 for node in nodes}
    for key in _keys(2000):
        counts[ring.primary(key)] += 1
    share = 2000 / len(nodes)
    for node, count in counts.items():
        assert 0.5 * share < count < 1.7 * share, (node, counts)


def test_key_point_uses_hex_prefix_directly():
    key = "f" * 64
    assert key_point(key) == int("f" * 16, 16)
    # Non-hex keys still map somewhere stable.
    assert key_point("not-a-digest") == key_point("not-a-digest")


def test_add_is_idempotent_and_remove_unknown_is_noop():
    ring = HashRing()
    ring.add("a")
    ring.add("a")
    assert len(ring) == 1
    ring.remove("ghost")
    assert ring.nodes() == ["a"]
    assert "a" in ring and "ghost" not in ring


def test_vnodes_validation():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
