"""Unit tests for the interconnect model."""

import pytest

from repro.noc.network import CONTROL, DATA, Network
from repro.sim.config import NetworkConfig
from repro.sim.engine import Engine


def _network():
    engine = Engine()
    return engine, Network(engine, NetworkConfig())


def test_control_latency_table_iii():
    engine, net = _network()
    arrivals = []
    net.send_control(lambda: arrivals.append(engine.now))
    engine.run()
    assert arrivals == [7]  # 6-cycle hop + 1 flit


def test_data_latency_table_iii():
    engine, net = _network()
    arrivals = []
    net.send_data(lambda: arrivals.append(engine.now))
    engine.run()
    assert arrivals == [11]  # 6-cycle hop + 5 flits


def test_traffic_accounting():
    engine, net = _network()
    net.send_control(lambda: None)
    net.send_control(lambda: None)
    net.send_data(lambda: None)
    assert net.stats.messages[CONTROL] == 2
    assert net.stats.messages[DATA] == 1
    assert net.stats.total == 3


def test_arguments_passed_through():
    engine, net = _network()
    seen = []
    net.send(DATA, lambda a, b: seen.append((a, b)), 1, 2)
    engine.run()
    assert seen == [(1, 2)]


def test_unknown_class_rejected():
    _, net = _network()
    with pytest.raises(ValueError):
        net.latency("quantum")
