"""Unit tests for the bounded ResultCache (satellite: max_bytes + LRU
pruning + the ``repro cache`` CLI)."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.sweep.cache import ResultCache


def _fill(cache, names, size=100, start_mtime=1_000_000):
    """Store entries with explicit, increasing mtimes (oldest first)."""
    for i, name in enumerate(names):
        cache.put(name, {"pad": "x" * size})
        os.utime(cache.path_for(name),
                 (start_mtime + i, start_mtime + i))


def _entry_bytes(cache, name):
    return cache.path_for(name).stat().st_size


class TestBounding:
    def test_unbounded_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX", raising=False)
        cache = ResultCache(tmp_path)
        assert cache.max_bytes is None
        _fill(cache, [f"k{i}" for i in range(10)])
        assert cache.stats()["entries"] == 10

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX", "12345")
        assert ResultCache(tmp_path).max_bytes == 12345

    def test_negative_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=-1)

    def test_put_prunes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, ["old", "mid", "new"])
        per_entry = _entry_bytes(cache, "old")
        cache.max_bytes = per_entry * 2
        cache.put("latest", {"pad": "x" * 100})
        names = {p.stem for p in cache.directory.glob("*.json")}
        assert "latest" in names          # keep= survives its own put
        assert "old" not in names         # oldest went first
        assert cache.stats()["total_bytes"] <= cache.max_bytes

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, ["a", "b", "c"])
        assert cache.get("a") is not None  # 'a' is now most recent
        per_entry = _entry_bytes(cache, "a")
        cache.max_bytes = per_entry * 2
        cache.put("d", {"pad": "x" * 100})
        names = {p.stem for p in cache.directory.glob("*.json")}
        assert "a" in names and "d" in names
        assert "b" not in names           # oldest untouched entry

    def test_gc_keep_is_never_pruned(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b", "c"])
        removed, freed = cache.gc(0, keep="a")
        assert removed == 2 and freed > 0
        assert cache.path_for("a").exists()

    def test_gc_without_bound_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b"])
        assert cache.gc() == (0, 0)
        assert cache.stats()["entries"] == 2

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=999)
        stats = cache.stats()
        assert stats == {"directory": str(tmp_path), "entries": 0,
                         "total_bytes": 0, "max_bytes": 999,
                         "oldest_mtime": None, "newest_mtime": None}
        _fill(cache, ["a", "b"])
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]


class TestCacheCli:
    def test_stats_output(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b", "c"])
        assert cli_main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "3" in out

    def test_gc_respects_bound(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b", "c", "d"])
        per_entry = _entry_bytes(cache, "a")
        assert cli_main(["cache", "--cache-dir", str(tmp_path),
                         "--max-bytes", str(per_entry * 2),
                         "--gc"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        left = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert left == ["c", "d"]

    def test_gc_without_bound_fails(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX", raising=False)
        with pytest.raises(SystemExit) as err:
            cli_main(["cache", "--cache-dir", str(tmp_path), "--gc"])
        assert "max-bytes" in str(err.value)


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    notes = []
    cache = ResultCache(tmp_path, on_warning=notes.append)
    cache.put("good", {"v": 1})
    cache.path_for("bad").write_text("{truncated")
    assert cache.get("bad") is None
    assert cache.get("good") == {"v": 1}
    assert any("corrupt" in note for note in notes)


def test_round_trip_preserves_payload(tmp_path):
    cache = ResultCache(tmp_path)
    payload = {"ipc": 1.25, "nested": {"a": [1, 2, 3]}}
    cache.put("k", payload)
    assert json.dumps(cache.get("k"), sort_keys=True) == \
        json.dumps(payload, sort_keys=True)
