"""Unit tests for the statistics counters and derived metrics."""

import json

import pytest

from repro.sim.stats import CoreStats, SystemStats


def test_derived_percentages():
    stats = CoreStats(retired_instructions=1000, retired_loads=240,
                      slf_loads=37, gate_stall_events=11,
                      gate_stall_cycles=220, reexecuted_instructions=5)
    assert stats.loads_pct == 24.0
    assert stats.forwarded_pct == 3.7
    assert stats.gate_stalls_pct == 1.1
    assert stats.avg_gate_stall_cycles == 20.0
    assert stats.reexecuted_pct == 0.5


def test_zero_denominators_are_safe():
    stats = CoreStats()
    assert stats.loads_pct == 0.0
    assert stats.forwarded_pct == 0.0
    assert stats.avg_gate_stall_cycles == 0.0
    assert stats.stall_pct == {"ROB": 0.0, "LQ": 0.0, "SQ/SB": 0.0}


def test_stall_percentages():
    stats = CoreStats(cycles=1000, stall_cycles_rob=100,
                      stall_cycles_lq=50, stall_cycles_sq=250)
    assert stats.stall_pct == {"ROB": 10.0, "LQ": 5.0, "SQ/SB": 25.0}


def test_merge_sums_everything():
    a = CoreStats(cycles=100, retired_instructions=10, slf_loads=1)
    b = CoreStats(cycles=200, retired_instructions=30, slf_loads=2)
    a.merge(b)
    assert a.cycles == 300
    assert a.retired_instructions == 40
    assert a.slf_loads == 3


def test_system_total_aggregates_cores():
    system = SystemStats()
    system.per_core[0] = CoreStats(cycles=100, retired_instructions=50)
    system.per_core[1] = CoreStats(cycles=120, retired_instructions=70)
    system.execution_cycles = 120
    total = system.total
    assert total.retired_instructions == 120
    assert total.cycles == 220          # summed: per-core-cycle ratios
    assert system.execution_cycles == 120  # wall clock kept separately


def test_stall_pct_bounded_by_100_per_core():
    stats = CoreStats(cycles=1000, stall_cycles_rob=1000)
    assert stats.stall_pct["ROB"] == 100.0


def test_merge_sums_lock_breakdown_keywise():
    a = CoreStats(gate_lock_cycles=30,
                  gate_lock_by_key={0x2A: 10, 0x2B: 20})
    b = CoreStats(gate_lock_cycles=25,
                  gate_lock_by_key={0x2B: 5, 0x2C: 20})
    a.merge(b)
    assert a.gate_lock_cycles == 55
    assert a.gate_lock_by_key == {0x2A: 10, 0x2B: 25, 0x2C: 20}


def test_core_stats_json_round_trip_with_lock_keys():
    stats = CoreStats(retired_instructions=5, gate_closes=2, gate_opens=2,
                      gate_lock_cycles=12,
                      gate_lock_by_key={0x2A: 7, 0x100: 5})
    blob = json.dumps(stats.to_dict())
    back = CoreStats.from_dict(json.loads(blob))
    assert back == stats
    # JSON forces string keys; from_dict must restore the ints.
    assert back.gate_lock_by_key == {0x2A: 7, 0x100: 5}


def test_from_dict_defaults_missing_lock_breakdown():
    # Payloads written before the breakdown existed must still load.
    data = CoreStats(retired_instructions=3).to_dict()
    del data["gate_lock_by_key"]
    assert CoreStats.from_dict(data).gate_lock_by_key == {}


def _system():
    system = SystemStats(execution_cycles=500)
    system.per_core[0] = CoreStats(
        cycles=500, retired_instructions=50, gate_closes=2, gate_opens=2,
        gate_lock_cycles=40, gate_stall_cycles=10,
        gate_lock_by_key={1: 15, 2: 25})
    return system


def test_to_json_round_trips():
    system = _system()
    back = SystemStats.from_dict(json.loads(system.to_json()))
    assert back == system
    assert back.per_core[0].gate_lock_by_key == {1: 15, 2: 25}


def test_validate_accepts_consistent_gate_counters():
    _system().validate()


def test_validate_rejects_unbalanced_closes():
    system = _system()
    system.per_core[0].gate_opens = 1
    with pytest.raises(AssertionError, match="gate_closes"):
        system.validate()


def test_validate_rejects_stall_exceeding_lock():
    system = _system()
    system.per_core[0].gate_stall_cycles = 41
    with pytest.raises(AssertionError, match="gate_stall_cycles"):
        system.validate()


def test_validate_rejects_breakdown_mismatch():
    system = _system()
    system.per_core[0].gate_lock_by_key = {1: 15}
    with pytest.raises(AssertionError, match="per-key"):
        system.validate()


def test_validate_accepts_balanced_squash_reasons():
    system = _system()
    system.per_core[0].squashes = 7
    system.per_core[0].squashes_inval = 3
    system.per_core[0].squashes_evict = 1
    system.per_core[0].squashes_memdep = 2
    system.per_core[0].squashes_fault = 1
    system.validate()


def test_validate_rejects_squash_reason_mismatch():
    system = _system()
    system.per_core[0].squashes = 3
    system.per_core[0].squashes_inval = 1
    system.per_core[0].squashes_fault = 1
    with pytest.raises(AssertionError, match="per-reason squashes"):
        system.validate()


def test_leakage_key_absent_when_empty():
    system = _system()
    assert "leakage" not in system.to_dict()
    system.leakage = {"gadget": "g", "leaks": 1}
    data = json.loads(system.to_json())
    assert data["leakage"] == {"gadget": "g", "leaks": 1}
    back = SystemStats.from_dict(data)
    assert back.leakage == system.leakage
    # Pre-leakage payloads (no key) must still load.
    del data["leakage"]
    assert SystemStats.from_dict(data).leakage == {}
