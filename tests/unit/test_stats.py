"""Unit tests for the statistics counters and derived metrics."""

from repro.sim.stats import CoreStats, SystemStats


def test_derived_percentages():
    stats = CoreStats(retired_instructions=1000, retired_loads=240,
                      slf_loads=37, gate_stall_events=11,
                      gate_stall_cycles=220, reexecuted_instructions=5)
    assert stats.loads_pct == 24.0
    assert stats.forwarded_pct == 3.7
    assert stats.gate_stalls_pct == 1.1
    assert stats.avg_gate_stall_cycles == 20.0
    assert stats.reexecuted_pct == 0.5


def test_zero_denominators_are_safe():
    stats = CoreStats()
    assert stats.loads_pct == 0.0
    assert stats.forwarded_pct == 0.0
    assert stats.avg_gate_stall_cycles == 0.0
    assert stats.stall_pct == {"ROB": 0.0, "LQ": 0.0, "SQ/SB": 0.0}


def test_stall_percentages():
    stats = CoreStats(cycles=1000, stall_cycles_rob=100,
                      stall_cycles_lq=50, stall_cycles_sq=250)
    assert stats.stall_pct == {"ROB": 10.0, "LQ": 5.0, "SQ/SB": 25.0}


def test_merge_sums_everything():
    a = CoreStats(cycles=100, retired_instructions=10, slf_loads=1)
    b = CoreStats(cycles=200, retired_instructions=30, slf_loads=2)
    a.merge(b)
    assert a.cycles == 300
    assert a.retired_instructions == 40
    assert a.slf_loads == 3


def test_system_total_aggregates_cores():
    system = SystemStats()
    system.per_core[0] = CoreStats(cycles=100, retired_instructions=50)
    system.per_core[1] = CoreStats(cycles=120, retired_instructions=70)
    system.execution_cycles = 120
    total = system.total
    assert total.retired_instructions == 120
    assert total.cycles == 220          # summed: per-core-cycle ratios
    assert system.execution_cycles == 120  # wall clock kept separately


def test_stall_pct_bounded_by_100_per_core():
    stats = CoreStats(cycles=1000, stall_cycles_rob=1000)
    assert stats.stall_pct["ROB"] == 100.0
