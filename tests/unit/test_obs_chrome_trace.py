"""Unit tests for the Chrome trace exporter and its schema validator."""

import json

import pytest

from repro.cpu.isa import Trace, alu, load, store
from repro.obs.chrome_trace import (GATE_TID, _assign_lanes,
                                    build_chrome_trace, write_chrome_trace)
from repro.obs.session import observe_run
from repro.obs.validate import (TraceValidationError, validate_chrome_trace,
                                validate_chrome_trace_file)
from repro.sim.config import TINY


def _observed(policy="370-SLFSoS-key", cores=1):
    ops = []
    for i in range(15):
        addr = 0x1000 + 64 * i
        ops.append(store(addr, pc=0x30, value=i))
        ops.append(load(addr, pc=0x40))
        ops.append(alu())
    traces = [Trace.from_ops(ops) for _ in range(cores)]
    return observe_run(traces, policy, TINY, warm_caches=False,
                       trace_pipeline=True, sample_interval=16)


class TestLaneAssignment:
    def test_disjoint_spans_share_a_lane(self):
        assert _assign_lanes([(0, 5), (5, 9), (10, 12)]) == [0, 0, 0]

    def test_overlapping_spans_split(self):
        assert _assign_lanes([(0, 10), (2, 4), (5, 8)]) == [0, 1, 1]

    def test_lanes_never_overlap(self):
        spans = [(i, i + 7) for i in range(0, 40, 2)]
        lanes = _assign_lanes(spans)
        busy = {}
        for (start, end), lane in zip(spans, lanes):
            for prev_start, prev_end in busy.get(lane, ()):
                assert end <= prev_start or start >= prev_end
            busy.setdefault(lane, []).append((start, end))


class TestBuildTrace:
    def test_valid_and_gate_slices_match_stats(self):
        """The PR's acceptance criterion: gate-closed slice count equals
        CoreStats.gate_closes exactly, enforced by the validator."""
        stats, report, system = _observed()
        trace = build_chrome_trace(system, report, stats)
        counts = validate_chrome_trace(trace)
        assert counts["gate_slices"] == stats.total.gate_closes > 0
        assert trace["otherData"]["gate_closes"] == stats.total.gate_closes

    def test_every_retired_instruction_has_a_slice(self):
        stats, report, system = _observed()
        trace = build_chrome_trace(system, report, stats)
        insn = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and "insn" in e.get("cat", "")]
        assert len(insn) >= stats.total.retired_instructions

    def test_instruction_lanes_do_not_overlap(self):
        stats, report, system = _observed()
        trace = build_chrome_trace(system, report, stats)
        by_track = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "X" and "insn" in e.get("cat", ""):
                by_track.setdefault((e["pid"], e["tid"]), []).append(
                    (e["ts"], e["ts"] + e["dur"]))
        assert by_track, "expected instruction slices"
        for spans in by_track.values():
            spans.sort()
            for (_, prev_end), (start, _) in zip(spans, spans[1:]):
                assert start >= prev_end

    def test_gate_track_reserved(self):
        stats, report, system = _observed()
        trace = build_chrome_trace(system, report, stats)
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                if e.get("cat") == "gate":
                    assert e["tid"] == GATE_TID
                else:
                    assert e["tid"] > GATE_TID

    def test_counters_emitted_from_samples(self):
        stats, report, system = _observed()
        trace = build_chrome_trace(system, report, stats)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        # occupancy + gate_closed per sample
        assert len(counters) == 2 * sum(len(s)
                                        for s in report.samples.values())

    def test_multicore_pids(self):
        stats, report, system = _observed(cores=2)
        trace = build_chrome_trace(system, report, stats)
        assert {e["pid"] for e in trace["traceEvents"]} == {0, 1}
        validate_chrome_trace(trace)

    def test_trace_is_json_serializable(self):
        stats, report, system = _observed()
        blob = json.dumps(build_chrome_trace(system, report, stats))
        validate_chrome_trace(json.loads(blob))

    def test_write_and_validate_file(self, tmp_path):
        stats, report, system = _observed()
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, system, report, stats)
        counts = validate_chrome_trace_file(str(path))
        assert counts["X"] > 0 and counts["M"] > 0


class TestValidatorRejections:
    def _minimal(self):
        return {"traceEvents": [], "otherData": {}}

    def test_rejects_non_dict(self):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace([])

    def test_rejects_missing_events(self):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"otherData": {}})

    def test_rejects_bad_phase(self):
        trace = self._minimal()
        trace["traceEvents"].append(
            {"ph": "B", "name": "x", "pid": 0, "tid": 0, "ts": 0})
        with pytest.raises(TraceValidationError, match="bad phase"):
            validate_chrome_trace(trace)

    def test_rejects_zero_duration_slice(self):
        trace = self._minimal()
        trace["traceEvents"].append(
            {"ph": "X", "name": "x", "pid": 0, "tid": 1, "ts": 0,
             "dur": 0})
        with pytest.raises(TraceValidationError, match="dur"):
            validate_chrome_trace(trace)

    def test_rejects_non_numeric_counter(self):
        trace = self._minimal()
        trace["traceEvents"].append(
            {"ph": "C", "name": "occupancy", "pid": 0, "tid": 0,
             "ts": 0, "args": {"rob": "three"}})
        with pytest.raises(TraceValidationError, match="numeric"):
            validate_chrome_trace(trace)

    def test_rejects_gate_count_mismatch(self):
        trace = self._minimal()
        trace["otherData"]["gate_closes"] = 2
        trace["traceEvents"].append(
            {"ph": "X", "name": "gate closed", "cat": "gate",
             "pid": 0, "tid": 0, "ts": 0, "dur": 3})
        with pytest.raises(TraceValidationError, match="gate"):
            validate_chrome_trace(trace)
