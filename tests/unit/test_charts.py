"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, figure10_chart, stacked_bar_chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        line_a, line_b = text.splitlines()
        assert line_b.count("#") == 2 * line_a.count("#")

    def test_baseline_marker(self):
        text = bar_chart(["slow"], [2.0], width=10, baseline=1.0)
        assert "|" in text.split("|", 1)[1]  # marker inside the bar area

    def test_values_printed(self):
        text = bar_chart(["x"], [1.234], unit="x")
        assert "1.234x" in text

    def test_title(self):
        assert bar_chart(["x"], [1.0], title="T").startswith("T")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="T") == "T"

    def test_zero_values_safe(self):
        text = bar_chart(["a"], [0.0])
        assert "0.000" in text


class TestStackedBarChart:
    def test_stacks_and_legend(self):
        text = stacked_bar_chart(
            ["bench"], {"ROB": [50.0], "LQ": [25.0], "SQ": [10.0]},
            width=20, total=100.0)
        assert "#=ROB" in text
        assert "#" * 10 in text      # 50% of 20
        assert "ROB=50.0" in text

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["a", "b"], {"ROB": [1.0]})

    def test_too_many_series_rejected(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["a"], {str(i): [1.0] for i in range(4)})


def test_figure10_chart_contains_all_groups():
    norms = {"barnes": {"NoSpec": 2.0, "key": 1.02},
             "fft": {"NoSpec": 1.0, "key": 1.0}}
    text = figure10_chart(norms, ["NoSpec", "key"], title="Fig10")
    assert text.startswith("Fig10")
    assert "barnes:NoSpec" in text
    assert "fft:key" in text
