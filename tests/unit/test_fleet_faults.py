"""FleetFaultPlan: seeded determinism, partition windows, spec gating."""

from repro.resilience.fleet import (DEFAULT_FLEET_CHAOS, FleetFaultPlan,
                                    FleetFaultSpec)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_spec_enabled_flags():
    assert not FleetFaultSpec().enabled
    assert FleetFaultSpec(heartbeat_drop_p=0.1).enabled
    assert FleetFaultSpec(partition_period_s=5.0,
                          partition_duration_s=1.0).enabled
    # A period without a duration (or vice versa) injects nothing.
    assert not FleetFaultSpec(partition_period_s=5.0).enabled
    assert not FleetFaultSpec(partition_duration_s=5.0).enabled
    assert DEFAULT_FLEET_CHAOS.enabled


def test_disabled_plan_never_fires():
    plan = FleetFaultPlan(FleetFaultSpec(), seed=7, clock=FakeClock())
    for _ in range(200):
        assert not plan.drop_heartbeat("w0")
        assert not plan.partitioned("w0")
    assert plan.injected == {"heartbeat_drop": 0, "partition": 0}


def test_heartbeat_drops_are_seed_deterministic():
    spec = FleetFaultSpec(heartbeat_drop_p=0.4)

    def trace(seed):
        plan = FleetFaultPlan(spec, seed=seed, clock=FakeClock())
        return [plan.drop_heartbeat("w0") for _ in range(100)]

    first = trace(3)
    assert trace(3) == first
    assert any(first) and not all(first)
    assert trace(4) != first


def test_partition_opens_and_closes_a_window():
    clock = FakeClock()
    spec = FleetFaultSpec(partition_period_s=5.0,
                          partition_duration_s=2.0)
    plan = FleetFaultPlan(spec, seed=0, clock=clock)
    # Nothing partitioned before the first period elapses.
    assert not plan.partitioned("w0")
    clock.advance(5.5)
    assert plan.partitioned("w0")  # sole known node → must be the victim
    assert plan.injected["partition"] == 1
    clock.advance(1.0)
    assert plan.partitioned("w0")  # still inside the 2 s window
    clock.advance(1.5)
    assert not plan.partitioned("w0")  # window closed


def test_partitioned_node_also_drops_heartbeats():
    clock = FakeClock()
    spec = FleetFaultSpec(partition_period_s=1.0,
                          partition_duration_s=10.0)
    plan = FleetFaultPlan(spec, seed=0, clock=clock)
    plan.partitioned("w0")
    clock.advance(1.5)
    assert plan.partitioned("w0")
    # The cut is bidirectional: heartbeats vanish too, even with
    # heartbeat_drop_p == 0.
    assert plan.drop_heartbeat("w0")


def test_partition_picks_only_known_nodes():
    clock = FakeClock()
    spec = FleetFaultSpec(partition_period_s=2.0,
                          partition_duration_s=1.0)
    plan = FleetFaultPlan(spec, seed=1, clock=clock)
    nodes = ["w0", "w1", "w2"]
    victims = set()
    for _ in range(40):
        clock.advance(2.1)
        for node in nodes:
            if plan.partitioned(node):
                victims.add(node)
    assert victims and victims <= set(nodes)


def test_to_dict_reports_seed_spec_and_counts():
    plan = FleetFaultPlan(FleetFaultSpec(heartbeat_drop_p=1.0), seed=9,
                          clock=FakeClock())
    assert plan.drop_heartbeat("w0")
    doc = plan.to_dict()
    assert doc["seed"] == 9
    assert doc["spec"]["heartbeat_drop_p"] == 1.0
    assert doc["injected"]["heartbeat_drop"] == 1
