"""The extended event vocabulary, end to end.

Every new instruction kind — acquire loads, release stores, the
lightweight fence, ``xchg`` and ``cas`` — must round-trip through the
parser, keep a stable canonical form, sample to legal outcomes on
every machine, and produce exact three-way oracle agreement, both on
hand-picked programs and on a seeded random population.
"""

import random

import pytest

from repro.litmus.checker import random_program
from repro.litmus.operational import MODELS, enumerate_outcomes
from repro.litmus.parser import parse_litmus, render_litmus
from repro.litmus.program import (Cas, Fence, Ld, Rmw, St, canonical_form,
                                  canonical_key, make_program)
from repro.litmus.sampler import sample
from repro.synth.oracle import triple_check

VOCAB = make_program(
    "vocab",
    [
        [Ld("x", "r0", acquire=True), St("y", 1, release=True),
         Fence("lw")],
        [Rmw("y", 2, "r0"), Fence(), Cas("x", 0, 3, "r1")],
    ])

SMALL_PROGRAMS = [
    VOCAB,
    make_program("acq", [[Ld("x", "r0", acquire=True), Ld("y", "r1")],
                         [St("y", 1), St("x", 1, release=True)]]),
    make_program("lw", [[St("x", 1), Fence("lw"), Ld("y", "r0")],
                        [St("y", 1), Fence("lw"), Ld("x", "r0")]]),
    make_program("cas", [[Cas("x", 0, 1, "r0")],
                         [Cas("x", 0, 2, "r0")]]),
    make_program("xchg", [[Rmw("x", 1, "r0"), Ld("y", "r1")],
                          [St("y", 1), Ld("x", "r0")]]),
]
_IDS = [p.name for p in SMALL_PROGRAMS]


class TestParserRoundTrip:
    @pytest.mark.parametrize("program", SMALL_PROGRAMS, ids=_IDS)
    def test_render_parse_identity(self, program):
        parsed = parse_litmus(render_litmus(program))
        assert parsed.program.threads == program.threads
        assert parsed.program.initial == program.initial

    @pytest.mark.parametrize("program", SMALL_PROGRAMS, ids=_IDS)
    def test_canonical_form_survives_roundtrip(self, program):
        clone = parse_litmus(render_litmus(program)).program
        assert canonical_form(clone) == canonical_form(program)
        assert canonical_key(clone) == canonical_key(program)

    def test_annotations_are_canonical_not_cosmetic(self):
        plain = make_program("p", [[Ld("x", "r0")], [St("x", 1)]])
        acq = make_program("p", [[Ld("x", "r0", acquire=True)],
                                 [St("x", 1)]])
        rel = make_program("p", [[Ld("x", "r0")],
                                 [St("x", 1, release=True)]])
        keys = {canonical_key(plain), canonical_key(acq),
                canonical_key(rel)}
        assert len(keys) == 3


class TestSamplerRoundTrip:
    @pytest.mark.parametrize("program", SMALL_PROGRAMS, ids=_IDS)
    def test_sampled_outcomes_legal_on_every_machine(self, program):
        for model in MODELS:
            report = sample(program, model, runs=200, seed=4)
            legal = enumerate_outcomes(program, model)
            assert set(report.histogram) <= legal, (program.name, model)

    def test_sampler_covers_the_wmm_outcome_set(self):
        program = SMALL_PROGRAMS[1]     # acq: small enough to saturate
        report = sample(program, "WMM", runs=3000, seed=5)
        assert set(report.histogram) == \
            set(enumerate_outcomes(program, "WMM"))


class TestOracleAgreement:
    @pytest.mark.parametrize("program", SMALL_PROGRAMS, ids=_IDS)
    def test_hand_programs_agree_exactly(self, program):
        report = triple_check(program)
        assert report.agree, "\n".join(report.mismatches)

    def test_random_population_agrees_exactly(self):
        rng = random.Random(11)
        saw_locked = saw_annotated = 0
        for i in range(40):
            program = random_program(rng, name=f"rt-{i}",
                                     allow_fences=True, allow_rmws=True,
                                     allow_acqrel=True)
            ops = [op for th in program.threads for op in th]
            saw_locked += any(isinstance(op, (Rmw, Cas)) for op in ops)
            saw_annotated += any(
                getattr(op, "acquire", False) or
                getattr(op, "release", False) or
                (isinstance(op, Fence) and op.kind == "lw")
                for op in ops)
            report = triple_check(program)
            assert report.agree, "\n".join(report.mismatches)
        # The population must actually exercise the new vocabulary.
        assert saw_locked >= 5
        assert saw_annotated >= 5
