"""Engine-level tests for ``repro.lint``: fixtures, suppressions,
scoping, rule selection, and report rendering."""

import json
import os
import textwrap

import pytest

from repro.lint import (registered_rules, render_human, render_json,
                        run_lint)
from repro.lint.engine import package_of

FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "fixtures", "lint")


def _fixture(*parts):
    return os.path.join(FIXTURES, "repro", *parts)


def _rules_tripped(path):
    return {v.rule for v in run_lint([path]).violations}


# ----------------------------------------------------------------------
# Meta-test: every registered rule has at least one positive and one
# negative fixture, and they behave as labelled.
# ----------------------------------------------------------------------

def _fixture_files(suffix):
    found = {}
    for dirpath, _, filenames in os.walk(FIXTURES):
        for name in filenames:
            if not name.endswith(".py"):
                continue
            stem = name[:-3]
            marker = f"_{suffix}"
            if marker in stem:
                slug = stem.split(marker)[0]
                found.setdefault(slug, []).append(
                    os.path.join(dirpath, name))
    return found


def test_every_rule_has_positive_and_negative_fixtures():
    bad = _fixture_files("bad")
    ok = _fixture_files("ok")
    for rule_id in registered_rules():
        slug = rule_id.replace("-", "_")
        assert bad.get(slug), f"no positive fixture for {rule_id}"
        assert ok.get(slug), f"no negative fixture for {rule_id}"


@pytest.mark.parametrize("rule_id", sorted(registered_rules()))
def test_positive_fixtures_trip_exactly_their_rule(rule_id):
    slug = rule_id.replace("-", "_")
    for path in _fixture_files("bad")[slug]:
        assert _rules_tripped(path) == {rule_id}, path


@pytest.mark.parametrize("rule_id", sorted(registered_rules()))
def test_negative_fixtures_are_clean(rule_id):
    slug = rule_id.replace("-", "_")
    for path in _fixture_files("ok")[slug]:
        assert rule_id not in _rules_tripped(path), path


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_line_suppression_hides_and_counts():
    report = run_lint([_fixture("sim", "suppressed_line.py")])
    assert report.violations == []
    assert report.suppressed_count == 1
    assert len(report.suppressions) == 1
    assert report.suppressions[0].rules == {"det-wallclock"}
    assert not report.suppressions[0].file_level


def test_file_suppression_covers_every_hit():
    report = run_lint([_fixture("sim", "suppressed_file.py")])
    assert report.violations == []
    assert report.suppressed_count == 2
    assert any(s.file_level for s in report.suppressions)


def test_bare_ignore_suppresses_all_rules(tmp_path):
    hot = tmp_path / "repro" / "sim"
    hot.mkdir(parents=True)
    target = hot / "mixed.py"
    target.write_text(textwrap.dedent("""\
        import time


        def stamp():
            return time.time()  # lint: ignore
    """))
    report = run_lint([str(target)])
    assert report.violations == []
    assert report.suppressed_count == 1


def test_suppression_only_covers_named_rule(tmp_path):
    hot = tmp_path / "repro" / "sim"
    hot.mkdir(parents=True)
    target = hot / "mixed.py"
    target.write_text(textwrap.dedent("""\
        import time
        import random


        def stamp():
            return time.time()  # lint: ignore[det-rng]
    """))
    report = run_lint([str(target)])
    assert [v.rule for v in report.violations] == ["det-wallclock"]
    assert report.suppressed_count == 0


def test_suppressions_in_reports_hot_packages():
    report = run_lint([_fixture("sim")])
    inside = report.suppressions_in(("sim", "cpu", "core"))
    assert len(inside) == 2           # suppressed_line + suppressed_file
    assert report.suppressions_in(("noc",)) == []


# ----------------------------------------------------------------------
# Scoping, rule selection, --changed restriction
# ----------------------------------------------------------------------

def test_hot_rules_do_not_apply_outside_hot_packages():
    report = run_lint([_fixture("tools", "det_wallclock_ok_scope.py")])
    assert report.violations == []


def test_obs_rules_reach_the_leakage_package():
    # leakage/ is not a hot package (hot-slots etc. stay off), but the
    # probe-discipline rules are obs-scoped and apply there.
    tripped = _rules_tripped(
        _fixture("leakage", "obs_guarded_fire_bad_watcher.py"))
    assert tripped == {"obs-guarded-fire"}


def test_probe_registered_names_bad_probe_in_message():
    report = run_lint([_fixture("obs", "obs_probe_registered_bad.py")])
    assert {v.rule for v in report.violations} == {"obs-probe-registered"}
    messages = "\n".join(v.message for v in report.violations)
    assert "'cache.fil'" in messages
    assert "'laod.perform'" in messages
    assert "matches nothing" in messages       # the dead wildcard


def test_resolve_helper_functions_are_exempt(tmp_path):
    # resolve_* helpers (attach-time machinery, e.g.
    # resolve_squash_probes) may call bus.resolve outside __init__.
    hot = tmp_path / "repro" / "obs"
    hot.mkdir(parents=True)
    target = hot / "helpers.py"
    target.write_text(textwrap.dedent("""\
        def resolve_squash_probes(bus):
            return {r: bus.resolve("squash." + r)
                    for r in ("inval", "evict")}
    """))
    report = run_lint([str(target)], rules=["obs-resolve-once"])
    assert report.violations == []


def test_package_of_keys_on_last_repro_component():
    assert package_of("src/repro/cpu/pipeline.py") == "cpu"
    assert package_of(_fixture("sim", "hot_slots_bad.py")) == "sim"
    assert package_of("src/repro/cli.py") == ""
    assert package_of("/somewhere/else/module.py") is None


def test_rule_selection_runs_only_named_rules():
    path = _fixture("sim", "det_wallclock_bad.py")
    report = run_lint([path], rules=["hot-slots"])
    assert report.violations == []
    assert report.rules_run == ["hot-slots"]


def test_unknown_rule_id_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint([FIXTURES], rules=["no-such-rule"])


def test_only_files_restricts_scan():
    everything = _fixture("sim")
    target = os.path.abspath(_fixture("sim", "hot_slots_bad.py"))
    report = run_lint([everything], only_files={target})
    assert report.files_scanned == 1
    assert {v.rule for v in report.violations} == {"hot-slots"}


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = run_lint([str(bad)])
    assert not report.ok
    assert len(report.parse_errors) == 1
    assert "broken.py" in report.parse_errors[0]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_render_json_schema():
    report = run_lint([_fixture("sim", "hot_slots_bad.py")])
    payload = json.loads(render_json(report))
    assert payload["ok"] is False
    assert payload["files_scanned"] == 1
    assert payload["suppressed"] == 0
    assert sorted(payload["rules_run"]) == sorted(registered_rules())
    [violation] = payload["violations"]
    assert violation["rule"] == "hot-slots"
    assert violation["line"] >= 1 and violation["col"] >= 1
    assert violation["path"].endswith("hot_slots_bad.py")


def test_render_human_lists_location_and_summary():
    report = run_lint([_fixture("sim", "hot_slots_bad.py")])
    text = render_human(report)
    assert "hot_slots_bad.py" in text
    assert "hot-slots" in text
    assert "1 violation" in text


def test_clean_run_renders_zero_summary():
    report = run_lint([_fixture("sim", "hot_slots_ok.py")])
    assert report.ok
    assert "0 violations" in render_human(report)


def test_rule_listing_has_docs_for_every_rule():
    for rule_id, rule in registered_rules().items():
        assert rule.summary, rule_id
        assert rule.rationale, rule_id
        assert rule.scope in ("hot", "obs", "all")
