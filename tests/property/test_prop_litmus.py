"""Property-based tests of the memory-model engines.

The two independent implementations — the operational abstract machines
and the axiomatic happens-before checker — must agree on *every*
program; and the model hierarchy SC ⊆ 370 ⊆ x86 must hold everywhere.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.litmus.axiomatic import enumerate_axiomatic
from repro.litmus.operational import M370, PC, SC, X86, enumerate_outcomes
from repro.litmus.program import Fence, Ld, Program, St

ADDRESSES = ("x", "y")


@st.composite
def small_programs(draw, max_threads=2, max_ops=3, fences=False):
    n_threads = draw(st.integers(1, max_threads))
    value = [1]
    threads = []
    for tid in range(n_threads):
        n_ops = draw(st.integers(1, max_ops))
        ops = []
        regs = 0
        for _ in range(n_ops):
            choices = ["ld", "st"] + (["fence"] if fences else [])
            kind = draw(st.sampled_from(choices))
            addr = draw(st.sampled_from(ADDRESSES))
            if kind == "ld":
                ops.append(Ld(addr, f"r{regs}"))
                regs += 1
            elif kind == "st":
                ops.append(St(addr, value[0]))
                value[0] += 1
            else:
                ops.append(Fence())
        threads.append(tuple(ops))
    return Program(name="prop", threads=tuple(threads))


@settings(max_examples=60, deadline=None)
@given(small_programs())
def test_operational_equals_axiomatic_all_models(program):
    """The abstract machine and the axiom system are two formalizations
    of the same three models — they must agree exactly."""
    for model in (SC, M370, X86):
        assert enumerate_outcomes(program, model) \
            == enumerate_axiomatic(program, model), model


@settings(max_examples=60, deadline=None)
@given(small_programs())
def test_model_hierarchy(program):
    """Relaxation only adds behaviours: SC ⊆ 370 ⊆ x86 ⊆ PC."""
    sc = enumerate_outcomes(program, SC)
    m370 = enumerate_outcomes(program, M370)
    x86 = enumerate_outcomes(program, X86)
    pc = enumerate_outcomes(program, PC)
    assert sc <= m370 <= x86 <= pc
    assert len(sc) >= 1


@settings(max_examples=60, deadline=None)
@given(small_programs(fences=True))
def test_hierarchy_holds_with_fences(program):
    sc = enumerate_outcomes(program, SC)
    m370 = enumerate_outcomes(program, M370)
    x86 = enumerate_outcomes(program, X86)
    assert sc <= m370 <= x86


@settings(max_examples=60, deadline=None)
@given(small_programs())
def test_370_equals_x86_without_forwarding_opportunity(program):
    """If no thread loads an address it also stores, store-to-load
    forwarding can never occur — and then x86 and the store-atomic 370
    are indistinguishable (the paper's §III: forwarding is the *only*
    source of the difference under a write-atomic memory system)."""
    for thread in program.threads:
        st_addrs = {op.addr for op in thread if isinstance(op, St)}
        ld_addrs = {op.addr for op in thread if isinstance(op, Ld)}
        if st_addrs & ld_addrs:
            return  # forwarding possible: models may differ
    assert enumerate_outcomes(program, M370) \
        == enumerate_outcomes(program, X86)


@settings(max_examples=60, deadline=None)
@given(small_programs())
def test_single_assignment_registers_and_final_memory(program):
    """Every outcome binds each register exactly once and reports a
    final value for every address."""
    addresses = set(program.addresses)
    n_loads = sum(1 for _ in program.loads())
    for model in (SC, M370, X86):
        for outcome in enumerate_outcomes(program, model):
            assert len(outcome.registers) == n_loads
            assert {addr for addr, _ in outcome.memory} == addresses


@settings(max_examples=40, deadline=None)
@given(small_programs(max_threads=1, max_ops=4))
def test_single_thread_is_sequential_in_every_model(program):
    """One thread, no races: every model yields exactly the sequential
    semantics (one outcome, loads see the latest program-order store)."""
    results = [enumerate_outcomes(program, model)
               for model in (SC, M370, X86)]
    assert results[0] == results[1] == results[2]
    assert len(results[0]) == 1
    (outcome,) = results[0]
    memory = {addr: program.initial_value(addr)
              for addr in program.addresses}
    for op in program.threads[0]:
        if isinstance(op, St):
            memory[op.addr] = op.value
        elif isinstance(op, Ld):
            assert outcome.reg(0, op.reg) == memory[op.addr]
    for addr, value in memory.items():
        assert outcome.mem(addr) == value
