"""Property-based tests of the whole performance model.

Random traces on a small configuration: every policy must complete every
trace (no deadlock, §IV-C), retire exactly the trace, never witness a
store-atomicity violation under a store-atomic policy, and keep all
derived statistics within their domains.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.policies import POLICY_ORDER
from repro.cpu.isa import Trace, alu, branch, fence, load, store
from repro.sim.config import (CacheConfig, CoreConfig, MemoryConfig,
                              SystemConfig)
from repro.sim.system import simulate

SMALL = SystemConfig(
    cores=2,
    core=CoreConfig(rob_entries=16, lq_entries=6, sq_sb_entries=4, mshrs=2),
    memory=MemoryConfig(
        l1=CacheConfig(1024, 2, 4),
        l2=CacheConfig(4096, 2, 12),
        l3_bank=CacheConfig(16 * 1024, 4, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)

# A handful of addresses, some shared between cores, line-colliding.
ADDRESSES = [0x1000, 0x1008, 0x1040, 0x2000, 0x2008, 0x3000]


@st.composite
def random_trace(draw, max_len=40):
    n = draw(st.integers(1, max_len))
    trace = Trace()
    for i in range(n):
        kind = draw(st.sampled_from(
            ["alu", "alu", "load", "load", "store", "branch", "fence"]))
        deps = ()
        if i > 0 and draw(st.booleans()):
            deps = (draw(st.integers(0, i - 1)),)
        if kind == "alu":
            trace.append(alu(deps=deps,
                             latency=draw(st.integers(1, 3))))
        elif kind == "load":
            trace.append(load(draw(st.sampled_from(ADDRESSES)), deps=deps,
                              pc=draw(st.integers(0, 7))))
        elif kind == "store":
            trace.append(store(draw(st.sampled_from(ADDRESSES)), deps=deps,
                               pc=draw(st.integers(8, 15))))
        elif kind == "branch":
            trace.append(branch(deps=deps,
                                mispredict=draw(st.booleans())))
        else:
            trace.append(fence())
    trace.validate()
    return trace


@settings(max_examples=30, deadline=None)
@given(random_trace(), random_trace(), st.sampled_from(POLICY_ORDER))
def test_every_policy_completes_every_trace(trace_a, trace_b, policy):
    """No-deadlock (paper §IV-C) and exact retirement, for all five
    configurations on shared, contended, fenced random traces."""
    stats = simulate([trace_a, trace_b], policy, config=SMALL,
                     detect_violations=True)
    total = stats.total
    assert total.retired_instructions == len(trace_a) + len(trace_b)
    assert stats.execution_cycles > 0
    # Statistic domains.
    assert 0 <= total.retired_loads <= total.retired_instructions
    assert 0 <= total.slf_loads <= total.retired_loads
    for pct in total.stall_pct.values():
        assert 0.0 <= pct <= 100.0
    # NoSpec never forwards.
    if policy == "370-NoSpec":
        assert total.slf_loads == 0
    # Store-atomic policies never witness a violation.
    if policy != "x86":
        assert total.store_atomicity_violations == 0


@settings(max_examples=20, deadline=None)
@given(random_trace())
def test_single_core_determinism(trace):
    for policy in POLICY_ORDER:
        a = simulate([trace], policy, config=SMALL).execution_cycles
        b = simulate([trace], policy, config=SMALL).execution_cycles
        assert a == b


@settings(max_examples=20, deadline=None)
@given(random_trace(max_len=30))
def test_nospec_not_meaningfully_faster_on_single_core(trace):
    """With one core, blanket enforcement can wait for stores but never
    helps.  (A small tolerance absorbs second-order effects: eviction
    squashes can hit x86's earlier-performed loads in tiny caches.)"""
    x86 = simulate([trace], "x86", config=SMALL).execution_cycles
    nospec = simulate([trace], "370-NoSpec", config=SMALL).execution_cycles
    assert nospec >= x86 * 0.95


@settings(max_examples=20, deadline=None)
@given(random_trace(max_len=30))
def test_retired_loads_match_trace(trace):
    from repro.cpu import isa
    expected_loads = sum(1 for op in trace.ops if op.kind == isa.LOAD)
    expected_stores = sum(1 for op in trace.ops if op.kind == isa.STORE)
    for policy in ("x86", "370-SLFSoS-key"):
        total = simulate([trace], policy, config=SMALL).total
        assert total.retired_loads == expected_loads
        assert total.retired_stores == expected_stores
