"""Property tests of the functional value layer.

Single-core ground truth: whatever the policy, timing, speculation,
squashes and forwarding do, a single core must observe exactly the
sequential semantics of its trace — every load value and the final
memory image must match a simple reference interpreter.  This exercises
store-to-load forwarding correctness (the youngest matching store wins),
memory-dependence squash/replay, NoSpec's wait-for-write path, and the
fence issue barrier, all at once.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.policies import POLICY_ORDER
from repro.cpu import isa
from repro.cpu.isa import Trace, alu, branch, fence, load, store
from repro.sim.config import (CacheConfig, CoreConfig, MemoryConfig,
                              SystemConfig)
from repro.sim.system import System

SMALL = SystemConfig(
    cores=1,
    core=CoreConfig(rob_entries=16, lq_entries=6, sq_sb_entries=4, mshrs=2),
    memory=MemoryConfig(
        l1=CacheConfig(1024, 2, 4),
        l2=CacheConfig(4096, 2, 12),
        l3_bank=CacheConfig(16 * 1024, 4, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)

ADDRESSES = [0x1000, 0x1008, 0x1040, 0x2000]


@st.composite
def valued_trace(draw, max_len=30):
    n = draw(st.integers(1, max_len))
    trace = Trace()
    next_value = 1
    for i in range(n):
        kind = draw(st.sampled_from(
            ["alu", "load", "load", "store", "store", "branch", "fence"]))
        deps = ()
        if i > 0 and draw(st.booleans()):
            deps = (draw(st.integers(0, i - 1)),)
        if kind == "alu":
            trace.append(alu(deps=deps, latency=draw(st.integers(1, 3))))
        elif kind == "load":
            trace.append(load(draw(st.sampled_from(ADDRESSES)), deps=deps,
                              pc=draw(st.integers(0, 7))))
        elif kind == "store":
            trace.append(store(draw(st.sampled_from(ADDRESSES)), deps=deps,
                               pc=draw(st.integers(8, 15)),
                               value=next_value))
            next_value += 1
        elif kind == "branch":
            trace.append(branch(deps=deps, taken=draw(st.booleans()),
                                pc=0x40))
        else:
            trace.append(fence())
    trace.validate()
    return trace


def reference_execution(trace):
    """Sequential interpreter: (load values by seq, final memory)."""
    memory = {}
    load_values = {}
    for seq, op in enumerate(trace.ops):
        if op.kind == isa.LOAD:
            load_values[seq] = memory.get(op.addr, 0)
        elif op.kind == isa.STORE:
            memory[op.addr] = op.value
    return load_values, memory


@settings(max_examples=25, deadline=None)
@given(valued_trace(), st.sampled_from(POLICY_ORDER))
def test_single_core_sequential_semantics(trace, policy):
    system = System([trace], policy, SMALL, warm_caches=False)
    system.run()
    expected_loads, expected_memory = reference_execution(trace)
    assert system.cores[0].retired_load_values == expected_loads
    for addr, value in expected_memory.items():
        assert system.memory_data.get(addr, 0) == value


@settings(max_examples=15, deadline=None)
@given(valued_trace())
def test_all_policies_agree_on_single_core_values(trace):
    results = []
    for policy in POLICY_ORDER:
        system = System([trace], policy, SMALL, warm_caches=False)
        system.run()
        results.append((dict(system.cores[0].retired_load_values),
                        dict(system.memory_data)))
    assert all(r == results[0] for r in results[1:])


@settings(max_examples=15, deadline=None)
@given(valued_trace(max_len=20), valued_trace(max_len=20))
def test_two_core_final_memory_is_some_store_value(trace_a, trace_b):
    """Cross-core sanity: the final value of every location is a value
    some store actually wrote (no corruption or lost updates to values
    never written)."""
    config = SystemConfig(
        cores=2, core=SMALL.core, memory=SMALL.memory)
    # Give core B distinct values to tell writers apart.
    ops_b = [op if op.kind != isa.STORE else
             store(op.addr, deps=op.deps, pc=op.pc, value=op.value + 1000)
             for op in trace_b.ops]
    trace_b2 = Trace(ops_b, memdep_hints=list(trace_b.memdep_hints))
    system = System([trace_a, trace_b2], "370-SLFSoS-key", config,
                    warm_caches=False)
    system.run()
    legal = {}
    for trace in (trace_a, trace_b2):
        for op in trace.ops:
            if op.kind == isa.STORE:
                legal.setdefault(op.addr, set()).add(op.value)
    for addr, value in system.memory_data.items():
        assert value in legal.get(addr, set()), hex(addr)
