"""Property-based tests of the SQ/SB circular buffer (model-based)."""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.cpu.store_buffer import StoreBuffer


class StoreBufferMachine(RuleBasedStateMachine):
    """Model-based test: the circular buffer against a plain list."""

    def __init__(self):
        super().__init__()
        self.sb = StoreBuffer(8)
        self.model = []              # list of entries, oldest first
        self.next_seq = 0
        self.dead_keys = []          # keys of deallocated stores

    @rule()
    @precondition(lambda self: not self.sb.full)
    def allocate(self):
        entry = self.sb.allocate(self.next_seq)
        self.sb.resolve_store(entry, 8 * (self.next_seq % 5))
        self.model.append(entry)
        self.next_seq += 3

    @rule()
    @precondition(lambda self: self.model and not self.model[0].retired)
    def retire_oldest_unretired(self):
        for entry in self.model:
            if not entry.retired:
                entry.retired = True
                break

    @rule()
    @precondition(lambda self: self.model and self.model[0].retired)
    def write_and_pop_head(self):
        head = self.model[0]
        head.written = True
        popped = self.sb.pop_head()
        assert popped is head
        self.dead_keys.append(head.key)
        self.model.pop(0)

    @rule(offset=st.integers(0, 30))
    def squash(self, offset):
        target = self.next_seq - offset
        retired_young = [e for e in self.model
                         if e.seq >= target and e.retired]
        if retired_young:
            return  # squashing retired stores is illegal; skip
        removed = self.sb.squash_from(target)
        expected = [e for e in reversed(self.model) if e.seq >= target]
        assert removed == expected
        for entry in removed:
            self.dead_keys.append(entry.key)
        self.model = [e for e in self.model if e.seq < target]

    @invariant()
    def contents_match_model(self):
        assert list(self.sb) == self.model
        assert len(self.sb) == len(self.model)

    @invariant()
    def live_keys_unique_and_resolvable(self):
        keys = [e.key for e in self.model]
        assert len(keys) == len(set(keys))
        for entry in self.model:
            assert self.sb.holds_key(entry.key)
            assert self.sb.entry_for_key(entry.key) is entry

    @invariant()
    def freshest_dead_key_per_slot_never_matches(self):
        """The 1-bit sorting bit (Section IV-B-2) distinguishes adjacent
        generations of a slot: the most recently deallocated key of each
        slot can never match the slot's current occupant.  (Keys two or
        more generations stale may alias — no load can legitimately hold
        one, since the intervening deallocations imply the load's own
        squash or retirement.)"""
        freshest = {}
        for key in self.dead_keys:
            freshest[key & 0x7FFFFFFF] = key
        for key in freshest.values():
            assert not self.sb.holds_key(key)

    @invariant()
    def retired_entries_form_a_prefix(self):
        seen_unretired = False
        for entry in self.model:
            if not entry.retired:
                seen_unretired = True
            else:
                assert not seen_unretired, "retired store after unretired"

    @invariant()
    def forwarding_match_is_youngest_older(self):
        probe_seq = self.next_seq + 1
        for addr in {e.addr for e in self.model}:
            expected = None
            for entry in self.model:
                if entry.seq < probe_seq and entry.addr == addr:
                    expected = entry
            assert self.sb.forwarding_match(addr, probe_seq) is expected


TestStoreBufferMachine = StoreBufferMachine.TestCase
TestStoreBufferMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
