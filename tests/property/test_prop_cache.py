"""Property-based tests of the cache arrays against a reference model."""

from collections import OrderedDict

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.coherence.cache import CacheArray
from repro.sim.config import CacheConfig


def _reference_insert(sets, ways, line_bytes, ops):
    """Dict-of-OrderedDict LRU reference; returns resident set."""
    arrays = [OrderedDict() for _ in range(sets)]
    for op, line in ops:
        bucket = arrays[(line // line_bytes) % sets]
        if op == "insert":
            if line in bucket:
                bucket.move_to_end(line)
            else:
                if len(bucket) >= ways:
                    bucket.popitem(last=False)
                bucket[line] = None
        elif op == "lookup":
            if line in bucket:
                bucket.move_to_end(line)
        elif op == "remove":
            bucket.pop(line, None)
    return {line for bucket in arrays for line in bucket}


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "remove"]),
              st.integers(0, 31).map(lambda i: i * 64)),
    max_size=120)


@settings(max_examples=100, deadline=None)
@given(ops_strategy)
def test_cache_matches_reference_lru(ops):
    config = CacheConfig(4 * 64 * 2, 2, 4)  # 4 sets, 2 ways
    cache = CacheArray(config)
    for op, line in ops:
        if op == "insert":
            cache.insert(line)
        elif op == "lookup":
            cache.lookup(line)
        else:
            cache.remove(line)
    expected = _reference_insert(config.sets, config.ways, 64, ops)
    assert set(cache.resident_lines()) == expected


@settings(max_examples=100, deadline=None)
@given(ops_strategy)
def test_occupancy_never_exceeds_capacity(ops):
    config = CacheConfig(4 * 64 * 2, 2, 4)
    cache = CacheArray(config)
    for op, line in ops:
        if op == "insert":
            cache.insert(line)
        elif op == "lookup":
            cache.lookup(line)
        else:
            cache.remove(line)
        assert cache.occupancy() <= config.sets * config.ways
        per_set = {}
        for resident in cache.resident_lines():
            key = (resident // 64) % config.sets
            per_set[key] = per_set.get(key, 0) + 1
        assert all(count <= config.ways for count in per_set.values())


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 63).map(lambda i: i * 64), min_size=1,
                max_size=200))
def test_insert_evicts_exactly_when_set_full(lines):
    config = CacheConfig(2 * 64 * 2, 2, 4)  # 2 sets, 2 ways
    cache = CacheArray(config)
    for line in lines:
        resident_before = cache.contains(line)
        bucket_size = sum(
            1 for resident in cache.resident_lines()
            if (resident // 64) % config.sets == (line // 64) % config.sets)
        victim = cache.insert(line)
        if resident_before or bucket_size < config.ways:
            assert victim is None
        else:
            assert victim is not None and victim != line
