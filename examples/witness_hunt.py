#!/usr/bin/env python3
"""Witness hunt: catching the x86 pipeline violating store atomicity.

The paper observed the n6 witness on real Intel hardware "at a rate of
about one in a million" with litmus7.  This example runs the same hunt
on the reproduction's cycle-level pipeline: the n6 litmus test is
compiled to micro-op traces with randomized timing (padding ALUs and
cold padding *stores* that keep the forwarding store in limbo — the
window of vulnerability), executed many times under each configuration,
and the witness outcome is tallied.

Expected: the x86 pipeline gets caught; every 370 configuration never
does — the retire gate closes the window.

Run:  python examples/witness_hunt.py [runs]
"""

import sys

from repro.core.policies import POLICY_ORDER
from repro.litmus.operational import _matches, enumerate_outcomes
from repro.litmus.pipeline_runner import run_once
from repro.litmus.tests import N6

WITNESS = dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)


def hunt(policy, runs):
    hits = 0
    outcomes = set()
    for seed in range(runs):
        outcome = run_once(N6, policy, seed)
        outcomes.add(outcome)
        if _matches(outcome, WITNESS):
            hits += 1
    return hits, outcomes


def main(runs=400):
    print(__doc__.split("\n\n")[0])
    print(f"\nn6:  T0: st x,1 ; ld x -> rx ; ld y -> ry")
    print(f"     T1: st y,2 ; st x,2")
    print(f"witness: rx==1, ry==0, [x]==1, [y]==2 "
          f"(forbidden under store atomicity)\n")
    print(f"{'config':17s}{'runs':>7s}{'witnessed':>11s}{'rate':>9s}"
          f"{'distinct outcomes':>19s}")
    print("-" * 63)
    for policy in POLICY_ORDER:
        hits, outcomes = hunt(policy, runs)
        print(f"{policy:17s}{runs:7d}{hits:11d}{hits / runs:9.4f}"
              f"{len(outcomes):19d}")
    allowed_370 = enumerate_outcomes(N6, "370")
    allowed_x86 = enumerate_outcomes(N6, "x86")
    print(f"\nmodel ground truth: 370 allows {len(allowed_370)} outcomes, "
          f"x86 allows {len(allowed_x86)} (the witness is the extra one).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
