#!/usr/bin/env python3
"""Litmus gallery: every figure of the paper's Sections II-III.

Enumerates mp (Fig. 1), n6 (Fig. 2), iriw (Fig. 3), the Figure 4
observer outcomes, and the Figure 5 / Table II construction under the
SC, IBM-370 and x86-TSO operational models, and cross-checks each
verdict against the axiomatic happens-before formulation.

Run:  python examples/litmus_gallery.py
"""

from repro.litmus import (ALL_CASES, FIG5, M370, SC, X86,
                          enumerate_axiomatic, enumerate_outcomes)
from repro.litmus.operational import _matches
from repro.litmus.program import Ld, St, make_program


def show_case(case):
    program = case.program
    print(f"--- {program.name} ---")
    for tid, thread in enumerate(program.threads):
        body = " ; ".join(str(op) for op in thread)
        print(f"  T{tid}: {body}")
    witness = ", ".join(f"{k}={v}" for k, v in case.witness)
    print(f"  witness: {witness}")
    for model in (SC, M370, X86):
        outcomes = enumerate_outcomes(program, model)
        seen = any(_matches(o, case.witness_dict()) for o in outcomes)
        axioms = enumerate_axiomatic(program, model)
        agree = "axioms agree" if outcomes == axioms else "AXIOM MISMATCH"
        print(f"    {model:>4}: {'ALLOWED  ' if seen else 'forbidden'}"
              f" ({len(outcomes)} outcomes, {agree})")
    print(f"  {case.description}\n")


def figure4():
    print("--- Figure 4: observing two independent stores ---")
    program = make_program("fig4", [
        [Ld("y", "ry"), Ld("x", "rx")],
        [St("x", 1)],
        [St("y", 1)],
    ])
    outcomes = enumerate_outcomes(program, M370)
    for y, x in sorted({(o.reg(0, "ry"), o.reg(0, "rx"))
                        for o in outcomes}):
        tag = {(1, 0): "st y before st x  <-- the only ordering witness",
               (0, 1): "no order derivable",
               (0, 0): "neither store performed yet",
               (1, 1): "both performed; order unknown"}[(y, x)]
        print(f"  ld y={y}, ld x={x}: {tag}")
    print()


def table2():
    print("--- Table II: all outcomes of the Figure 5 code ---")
    m370 = enumerate_outcomes(FIG5, M370)
    x86 = enumerate_outcomes(FIG5, X86)
    for outcome in sorted(x86, key=str):
        where = "370+x86" if outcome in m370 else "x86 ONLY (case 1)"
        print(f"  {outcome}   [{where}]")
    print()


if __name__ == "__main__":
    for case in ALL_CASES:
        show_case(case)
    figure4()
    table2()
