#!/usr/bin/env python3
"""Full evaluation sweep over a chosen benchmark (paper Figures 9/10).

Runs one Table IV benchmark under all five configurations and prints
the per-configuration execution time, dispatch-stall breakdown and the
370-SLFSoS-key characterization row — the paper's evaluation for one
workload, end to end.

Run:  python examples/store_atomicity_cost.py [benchmark] [cores]
      python examples/store_atomicity_cost.py barnes 8
      python examples/store_atomicity_cost.py 505.mcf
"""

import sys

from repro.core.policies import POLICY_ORDER
from repro.workloads import get_profile
from repro.workloads.runner import normalized_times, run_policy_sweep


def main(name="water_spatial", cores=4):
    profile = get_profile(name)
    print(f"benchmark: {name} ({profile.suite}); paper Table IV row: "
          f"loads {profile.paper.loads_pct}%, "
          f"forwarded {profile.paper.forwarded_pct}%, "
          f"gate stalls {profile.paper.gate_stalls_pct}%\n")

    results = run_policy_sweep(name, cores=cores)
    norm = normalized_times(results)

    header = (f"{'config':17s}{'cycles':>9s}{'norm':>7s}"
              f"{'ROB%':>7s}{'LQ%':>7s}{'SQ%':>7s}"
              f"{'fwd%':>7s}{'gate%':>7s}{'reexec%':>9s}")
    print(header)
    print("-" * len(header))
    for policy in POLICY_ORDER:
        total = results[policy].stats.total
        stalls = total.stall_pct
        print(f"{policy:17s}{results[policy].cycles:9d}"
              f"{norm[policy]:7.3f}"
              f"{stalls['ROB']:7.1f}{stalls['LQ']:7.1f}"
              f"{stalls['SQ/SB']:7.1f}"
              f"{total.forwarded_pct:7.2f}{total.gate_stalls_pct:7.2f}"
              f"{total.reexecuted_pct:9.3f}")

    key = results["370-SLFSoS-key"].stats.total
    print(f"""
370-SLFSoS-key detail (Table IV row, measured vs paper):
  forwarded loads:       {key.forwarded_pct:6.2f}%  (paper {profile.paper.forwarded_pct}%)
  gate stalls:           {key.gate_stalls_pct:6.2f}%  (paper {profile.paper.gate_stalls_pct}%)
  cycles per gate stall: {key.avg_gate_stall_cycles:6.1f}   (paper {profile.paper.avg_stall_cycles})
  re-executed:           {key.reexecuted_pct:6.3f}% (paper {profile.paper.reexecuted_pct}%)""")


if __name__ == "__main__":
    bench = sys.argv[1] if len(sys.argv) > 1 else "water_spatial"
    n_cores = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(bench, n_cores)
