#!/usr/bin/env python3
"""Quickstart: the paper in two minutes.

1. Show the memory-model difference with the n6 litmus test: x86 allows
   a non-store-atomic outcome that the IBM-370 model forbids.
2. Run a forwarding-heavy workload on the cycle-level multicore under
   all five configurations and print the cost of store atomicity.

Run:  python examples/quickstart.py
"""

from repro import POLICY_ORDER, simulate
from repro.litmus import M370, N6, SC, X86, allows
from repro.workloads import generate_warmup, generate_workload, get_profile


def litmus_demo():
    print("=" * 72)
    print("Part 1 — the n6 litmus test (paper Figure 2)")
    print("=" * 72)
    print("""
  Core1: st x,1 ; ld x -> rx ; ld y -> ry
  Core2: st y,2 ; st x,2

  Witness: rx==1, ry==0, [x]==1, [y]==2
  (Core1 saw its own store to x early, but read y *before* Core2's
  older store — observable only without store atomicity.)
""")
    witness = dict(r0_rx=1, r0_ry=0, mem_x=1, mem_y=2)
    for model in (SC, M370, X86):
        verdict = "ALLOWED" if allows(N6, model, **witness) else "forbidden"
        print(f"  {model:>4}: {verdict}")
    print()


def performance_demo():
    print("=" * 72)
    print("Part 2 — the cost of enforcing store atomicity (paper Fig. 10)")
    print("=" * 72)
    profile = get_profile("barnes")  # the forwarding-heaviest benchmark
    print(f"\n  workload: {profile.name} "
          f"(forwarded loads: {profile.forwarded_pct}% of instructions)\n")
    traces = generate_workload(profile, cores=4, length_per_core=2500)
    warm = generate_warmup(profile, cores=4, length_per_core=2500)

    baseline = None
    for policy in POLICY_ORDER:
        stats = simulate(traces, policy, warm_caches=warm)
        cycles = stats.execution_cycles
        if baseline is None:
            baseline = cycles
        total = stats.total
        print(f"  {policy:16s} {cycles:8d} cycles "
              f"({cycles / baseline:5.3f}x)  "
              f"SLF loads: {total.slf_loads:5d}  "
              f"gate closes: {total.gate_closes:5d}")
    print("""
  370-NoSpec pays heavily for blanket enforcement; the paper's
  370-SLFSoS-key keeps the stricter 370 memory model at a few percent
  over x86 by closing a retire gate only when a violation could
  actually be observed.""")


if __name__ == "__main__":
    litmus_demo()
    performance_demo()
