#!/usr/bin/env python3
"""The x264 story: forwarding on a contended synchronization variable.

The paper singles out x264's `pthread_cond_wait`: store-to-load
forwarding on a highly contended variable puts younger loads inside the
invalidation window of vulnerability again and again.  On x86 the
violations are real (witnessed by the detector); the SoS configurations
squash the vulnerable loads instead (re-execution), keeping the 370
model intact.

This example builds that scenario directly: every core spins on a hot
"lock word" with a store->load forwarding idiom, then reads shared data.

Run:  python examples/contended_lock.py
"""

from repro import POLICY_ORDER, simulate
from repro.cpu.isa import Trace, alu, load, store

HOT = 0x6000_0000_0000          # the contended lock word
DATA = 0x5000_0000_0000         # shared data, read under the lock


def lock_trace(core_id, rounds=120):
    trace = Trace()
    for i in range(rounds):
        # 'acquire': write the lock word, read it right back (forwarded)
        trace.append(store(HOT, pc=0x10))
        trace.append(load(HOT, pc=0x20))
        # read shared state while the lock store may still be in limbo —
        # this is the load inside the window of vulnerability
        slot = DATA + 64 * ((i + core_id) % 16)
        trace.append(load(slot, pc=0x30))
        prev = trace.append(alu(deps=(len(trace) - 1,)))
        # occasionally update a shared slot (the writes that land
        # invalidations in the other cores' windows)
        if i % 4 == core_id % 4:
            trace.append(store(DATA + 64 * ((i + core_id + 5) % 16),
                               pc=0x40))
        # private work between critical sections
        for _ in range(4):
            prev = trace.append(alu(deps=(prev,)))
    trace.memdep_hints = [(0x20, 0x10)]
    return trace


def main():
    cores = 4
    traces = [lock_trace(core_id) for core_id in range(cores)]
    print(f"{cores} cores x {len(traces[0])} instructions, all "
          f"contending on one lock word\n")
    header = (f"{'config':17s}{'cycles':>9s}{'norm':>7s}{'SLF':>6s}"
              f"{'squash':>8s}{'reexec%':>9s}{'viol.witnessed':>15s}")
    print(header)
    print("-" * len(header))
    baseline = None
    for policy in POLICY_ORDER:
        stats = simulate(traces, policy, detect_violations=True)
        total = stats.total
        cycles = stats.execution_cycles
        if baseline is None:
            baseline = cycles
        print(f"{policy:17s}{cycles:9d}{cycles / baseline:7.3f}"
              f"{total.slf_loads:6d}{total.squashes:8d}"
              f"{total.reexecuted_pct:9.2f}"
              f"{total.store_atomicity_violations:15d}")
    print("""
Only x86 witnesses store-atomicity violations (counted per vulnerable
line per invalidation, so heavy contention produces many witnesses).
The 370 configurations convert every would-be violation into a squash
or avoid the window entirely; note how the SoS variants stay close to
x86 while blanket enforcement and SC-like speculation collapse under
contention.""")


if __name__ == "__main__":
    main()
