#!/usr/bin/env python3
"""Dekker's flag protocol on the pipeline: why TSO needs locked ops.

Classic mutual-exclusion entry: each thread raises its flag, then reads
the other's flag; if both read 0, both enter the critical section —
broken.  Under every TSO flavour (370 included!) plain stores+loads can
both read 0 (the st->ld relaxation, the `sb` litmus test).  The fixes:
an mfence after the store, or a locked exchange — both restore the
order, on the abstract models and on the cycle-level pipeline alike.

Run:  python examples/dekker_lock.py
"""

from repro.litmus import M370, X86, allows
from repro.litmus.battery import SB_BOTH_RMW
from repro.litmus.operational import _matches
from repro.litmus.pipeline_runner import observed_outcomes
from repro.litmus.tests import SB, SB_FENCED

BOTH_ZERO = dict(r0_ry=0, r1_rx=0)


def model_view():
    print("=" * 72)
    print("Abstract models: can both threads read 0 (mutual exclusion "
          "broken)?")
    print("=" * 72)
    for name, program in (("plain stores (sb)", SB),
                          ("with mfence (sb+mfences)", SB_FENCED),
                          ("with lock xchg (sb+rmw-both)", SB_BOTH_RMW)):
        x86 = "BROKEN" if allows(program, X86, **BOTH_ZERO) else "safe"
        m370 = "BROKEN" if allows(program, M370, **BOTH_ZERO) else "safe"
        print(f"  {name:30s} x86: {x86:7s} 370: {m370}")
    print("""
  Note: the store-atomic 370 model does NOT fix Dekker — store
  atomicity and the st->ld relaxation are different properties, which
  is exactly why the paper's 370 configurations still need no fences
  removed or added relative to x86 programs.""")


def pipeline_view():
    print("=" * 72)
    print("The same three programs, executed on the cycle-level "
          "pipeline (timing-perturbed)")
    print("=" * 72)
    for name, program in (("plain stores", SB),
                          ("with mfence", SB_FENCED),
                          ("with lock xchg", SB_BOTH_RMW)):
        for policy in ("x86", "370-SLFSoS-key"):
            outcomes = observed_outcomes(program, policy, seeds=range(60))
            broken = any(_matches(o, BOTH_ZERO) for o in outcomes)
            print(f"  {name:16s} {policy:16s} "
                  f"{'BROKEN (both read 0 observed)' if broken else 'safe'}")
    print()


if __name__ == "__main__":
    model_view()
    pipeline_view()
