#!/usr/bin/env python3
"""ConsistencyChecker — the paper's footnote-1 tool, reimplemented.

Compares the complete outcome sets of litmus programs under the 370 and
x86 memory models; the behaviours allowed by x86 but not by 370 are the
observable store-atomicity violations.  Also runs the discovery mode:
random small programs are generated and checked until non-store-atomic
behaviours turn up.

Run:  python examples/consistency_checker.py [trials]
"""

import sys

from repro.litmus import (FIG5, MP, N6, SB, compare,
                          find_violating_programs)


def check_known_tests():
    print("=" * 72)
    print("Known litmus tests: 370 vs x86 outcome sets")
    print("=" * 72)
    for program in (MP, SB, N6, FIG5):
        report = compare(program)
        print()
        print(report.summary())
        if report.equivalent:
            print("    -> store atomicity cannot be observed violated "
                  "by this test")
        else:
            print("    -> x86 exhibits non-store-atomic behaviour here")


def discovery_mode(trials):
    print()
    print("=" * 72)
    print(f"Discovery mode: {trials} random programs")
    print("=" * 72)
    reports = find_violating_programs(seed=2026, trials=trials,
                                      threads=2, max_ops=4)
    print(f"\nfound {len(reports)} programs with x86-only behaviours; "
          "first three:\n")
    for report in reports[:3]:
        for tid, thread in enumerate(report.program.threads):
            print(f"  T{tid}: " + " ; ".join(str(op) for op in thread))
        for outcome in sorted(report.only_in_b, key=str):
            print(f"    x86-only: {outcome}")
        print()


if __name__ == "__main__":
    n_trials = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    check_known_tests()
    discovery_mode(n_trials)
