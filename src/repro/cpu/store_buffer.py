"""The combined store queue / store buffer (SQ/SB).

As in Intel implementations (paper Section II-A), the SQ (non-retired
stores, still in the ROB) and the SB (retired stores, not yet written to
the L1) are one physical circular buffer; the boundary is simply each
entry's ``retired`` flag.

Each slot carries a **sorting bit** that flips every time the slot is
reallocated (Buyuktosunoglu et al., used by the paper in Section
IV-B-2).  A store's **key** is its slot index plus the sorting bit, so
"is the store with key K still in the buffer?" is a single indexed
compare — this is the check a retiring SLF load performs, and the match
a draining store performs against the retire gate.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional


class StoreEntry:
    """One store in the SQ/SB."""

    __slots__ = ("seq", "addr", "resolved", "retired", "issued", "written",
                 "slot", "sorting_bit", "waiters", "pc", "rfo_sent",
                 "value", "retired_at")

    def __init__(self, seq: int, slot: int, sorting_bit: int,
                 pc: int = 0, value: int = 0) -> None:
        self.seq = seq                # program-order sequence number
        self.addr: int = -1           # unresolved until address generation
        self.value = value            # data (functional layer)
        self.resolved = False
        self.retired = False          # True = in the SB portion
        self.issued = False           # write to L1 in flight
        self.written = False          # inserted in memory order
        self.slot = slot
        self.sorting_bit = sorting_bit
        self.pc = pc
        self.rfo_sent = False
        self.retired_at = -1          # cycle stamped only when observed
        # 370-NoSpec loads blocked on this store's L1 write.
        self.waiters: List[Callable[[], None]] = []

    @property
    def key(self) -> int:
        """The (slot, sorting-bit) identity used by the retire gate."""
        return self.slot | (self.sorting_bit << 31)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stage = "SB" if self.retired else "SQ"
        return (f"<st seq={self.seq} addr={self.addr:#x} {stage}"
                f" key={self.key:#x}>")


class StoreBuffer:
    """Circular SQ/SB with program-order allocation and head deallocation.

    Invariants:
      * entries between head and tail are in ascending ``seq`` order;
      * retired entries form a prefix (you cannot retire out of order);
      * only the head entry may be written to the L1 (TSO store order);
      * a key matches at most one live entry, ever (sorting bits flip on
        every deallocation, including squashes).
    """

    __slots__ = ("capacity", "_slots", "_bits", "_head", "_tail", "_count",
                 "_by_addr")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: List[Optional[StoreEntry]] = [None] * capacity
        self._bits = [0] * capacity
        self._head = 0     # oldest entry
        self._tail = 0     # next free slot
        self._count = 0
        # Resolved live entries per address, seq-ascending: the
        # forwarding search is an O(1) dict probe plus a scan over the
        # (tiny) per-address list instead of a walk of the whole buffer.
        # Maintained by resolve_store() / pop_head() / squash_from().
        self._by_addr: Dict[int, List[StoreEntry]] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    @property
    def empty(self) -> bool:
        return self._count == 0

    def __iter__(self) -> Iterator[StoreEntry]:
        """Oldest-to-youngest iteration over live entries.

        Iterates a snapshot of the occupied slots: two list slices
        instead of a per-entry generator resume with a modulo — this is
        on the per-tick hot path (drain scans, forwarding searches)."""
        head = self._head
        end = head + self._count
        slots = self._slots
        if end <= self.capacity:
            return iter(slots[head:end])
        return iter(slots[head:] + slots[:end - self.capacity])

    # ------------------------------------------------------------------

    def allocate(self, seq: int, pc: int = 0,
                 value: int = 0) -> StoreEntry:
        """Allocate a store at dispatch.  Raises if full."""
        if self.full:
            raise RuntimeError("store buffer full")
        slot = self._tail
        entry = StoreEntry(seq, slot, self._bits[slot], pc, value)
        self._slots[slot] = entry
        self._tail = (slot + 1) % self.capacity
        self._count += 1
        return entry

    def head(self) -> Optional[StoreEntry]:
        return self._slots[self._head] if self._count else None

    def entry_at(self, index: int) -> Optional[StoreEntry]:
        """The ``index``-th oldest live entry (0 = head), or None past
        the tail — O(1) positional access into the circular buffer."""
        if index >= self._count or index < 0:
            return None
        return self._slots[(self._head + index) % self.capacity]

    def resolve_store(self, entry: StoreEntry, addr: int) -> None:
        """Address generation finished: record the store's address and
        index it for forwarding searches.  All resolutions must go
        through here so ``forwarding_match`` stays coherent."""
        entry.addr = addr
        entry.resolved = True
        lst = self._by_addr.get(addr)
        if lst is None:
            self._by_addr[addr] = [entry]
            return
        # Stores resolve out of order; keep the list seq-ascending.
        # The common case appends (an older store usually resolved
        # earlier), so scan from the tail.
        i = len(lst)
        while i > 0 and lst[i - 1].seq > entry.seq:
            i -= 1
        lst.insert(i, entry)

    def _unindex(self, entry: StoreEntry) -> None:
        lst = self._by_addr.get(entry.addr)
        if lst is None:
            return
        try:
            lst.remove(entry)
        except ValueError:
            return
        if not lst:
            del self._by_addr[entry.addr]

    def pop_head(self) -> StoreEntry:
        """Deallocate the head entry (after its L1 write completed)."""
        entry = self._slots[self._head]
        if entry is None:
            raise RuntimeError("store buffer empty")
        if not entry.written:
            raise RuntimeError("head store not yet written to L1")
        self._slots[self._head] = None
        self._bits[self._head] ^= 1
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        if entry.resolved:
            self._unindex(entry)
        return entry

    def squash_from(self, seq: int) -> List[StoreEntry]:
        """Remove all *non-retired* stores with ``seq >= seq`` (they are in
        the flushed portion of the ROB).  Returns the removed entries,
        youngest first.  Retired stores are never squashable."""
        removed: List[StoreEntry] = []
        while self._count:
            tail_idx = (self._tail - 1) % self.capacity
            entry = self._slots[tail_idx]
            assert entry is not None
            if entry.seq < seq:
                break
            if entry.retired:
                raise RuntimeError(
                    f"attempt to squash retired store seq={entry.seq}")
            self._slots[tail_idx] = None
            self._bits[tail_idx] ^= 1
            self._tail = tail_idx
            self._count -= 1
            if entry.resolved:
                self._unindex(entry)
            removed.append(entry)
        return removed

    # ------------------------------------------------------------------
    # Queries used by loads and the retire gate
    # ------------------------------------------------------------------

    def forwarding_match(self, addr: int, load_seq: int) \
            -> Optional[StoreEntry]:
        """The *youngest* store older than ``load_seq`` with a resolved
        matching address — the store-to-load forwarding source.

        Answered from the per-address index (kept seq-ascending by
        :meth:`resolve`): youngest-first scan for the first entry older
        than the load."""
        lst = self._by_addr.get(addr)
        if not lst:
            return None
        for i in range(len(lst) - 1, -1, -1):
            entry = lst[i]
            if entry.seq < load_seq:
                return entry
        return None

    def unresolved_older(self, load_seq: int) -> List[StoreEntry]:
        """Stores older than the load whose address is not yet known."""
        out: List[StoreEntry] = []
        for entry in self:
            if entry.seq >= load_seq:
                break  # entries are seq-ascending
            if not entry.resolved:
                out.append(entry)
        return out

    def has_unwritten_older(self, seq: int) -> bool:
        """True if any store older than ``seq`` has not written to L1."""
        for entry in self:
            if entry.seq >= seq:
                break
            if not entry.written:
                return True
        return False

    def holds_key(self, key: int) -> bool:
        """True iff the store identified by ``key`` is still live — the
        sorting-bit compare of Section IV-B-2."""
        slot = key & 0x7FFFFFFF
        bit = key >> 31
        entry = self._slots[slot]
        return (entry is not None and entry.sorting_bit == bit
                and not entry.written)

    def entry_for_key(self, key: int) -> Optional[StoreEntry]:
        slot = key & 0x7FFFFFFF
        bit = key >> 31
        entry = self._slots[slot]
        if entry is not None and entry.sorting_bit == bit:
            return entry
        return None
