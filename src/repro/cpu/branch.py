"""TAGE-style branch predictor (Table III lists Seznec's L-TAGE).

A faithful-in-spirit, reduced-size TAGE: a bimodal base predictor plus
``N`` tagged tables indexed by geometrically longer global-history
folds.  The longest-history hit provides the prediction; allocation on
mispredict picks a not-useful entry in a longer-history table; useful
counters age periodically.

The pipeline consults the predictor at dispatch and trains it when the
branch resolves; a wrong prediction raises the front-end barrier and
pays the redirect penalty.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class _TaggedEntry:
    __slots__ = ("tag", "counter", "useful")

    def __init__(self) -> None:
        self.tag = 0
        self.counter = 0     # signed 3-bit: -4..3, taken when >= 0
        self.useful = 0      # 2-bit useful counter


class TagePredictor:
    """Bimodal base + geometric tagged tables."""

    HISTORY_LENGTHS = (4, 8, 16, 32)

    __slots__ = ("base_size", "tagged_size", "tag_mask", "base", "tables",
                 "history", "useful_reset_interval", "_updates",
                 "predictions", "mispredictions", "_folds")

    def __init__(self, base_bits: int = 12, tagged_bits: int = 9,
                 tag_bits: int = 8, useful_reset_interval: int = 18_000):
        self.base_size = 1 << base_bits
        self.tagged_size = 1 << tagged_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.base = [1] * self.base_size      # 2-bit counters, 0..3
        self.tables: List[List[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(self.tagged_size)]
            for _ in self.HISTORY_LENGTHS]
        self.history = 0
        self.useful_reset_interval = useful_reset_interval
        self._updates = 0
        self.predictions = 0
        self.mispredictions = 0
        # History folds are a pure function of ``history``; they are
        # recomputed once per update (the only place history changes)
        # instead of twice per table per lookup.
        self._folds = self._refold()

    # ------------------------------------------------------------------

    def _fold(self, bits: int) -> int:
        """Fold the youngest ``bits`` of global history into 16 bits."""
        h = self.history & ((1 << bits) - 1)
        folded = 0
        while h:
            folded ^= h & 0xFFFF
            h >>= 16
        return folded

    def _refold(self) -> Tuple[int, ...]:
        return tuple(self._fold(bits) for bits in self.HISTORY_LENGTHS)

    def _index(self, pc: int, table: int) -> int:
        fold = self._folds[table]
        return (pc ^ (pc >> 7) ^ fold ^ (fold << (table + 1))) \
            % self.tagged_size

    def _tag(self, pc: int, table: int) -> int:
        fold = self._folds[table]
        return ((pc >> 3) ^ (fold * 3) ^ table) & self.tag_mask

    def _base_index(self, pc: int) -> int:
        return (pc ^ (pc >> 5)) % self.base_size

    # ------------------------------------------------------------------

    def _lookup(self, pc: int) -> Tuple[Optional[int], bool]:
        """(provider table index or None for bimodal, prediction).

        The index/tag hash math of :meth:`_index` / :meth:`_tag` is
        inlined here with the pc-derived terms hoisted — this runs once
        per predicted branch and twice per resolved one, making it the
        predictor's hot path.  Results are identical to the method
        forms.
        """
        folds = self._folds
        tables = self.tables
        size = self.tagged_size
        tag_mask = self.tag_mask
        px = pc ^ (pc >> 7)
        pt = pc >> 3
        for table in range(len(tables) - 1, -1, -1):
            fold = folds[table]
            entry = tables[table][
                (px ^ fold ^ (fold << (table + 1))) % size]
            if entry.tag == ((pt ^ (fold * 3) ^ table) & tag_mask):
                return table, entry.counter >= 0
        return None, self.base[(pc ^ (pc >> 5)) % self.base_size] >= 2

    def predict(self, pc: int) -> bool:
        self.predictions += 1
        return self._lookup(pc)[1]

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome and shift global history."""
        provider, prediction = self._lookup(pc)
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1

        if provider is None:
            idx = self._base_index(pc)
            self.base[idx] = min(3, self.base[idx] + 1) if taken \
                else max(0, self.base[idx] - 1)
        else:
            entry = self.tables[provider][self._index(pc, provider)]
            entry.counter = min(3, entry.counter + 1) if taken \
                else max(-4, entry.counter - 1)
            if correct:
                entry.useful = min(3, entry.useful + 1)
            elif entry.useful > 0:
                entry.useful -= 1

        # Allocate in a longer-history table on a mispredict.
        if not correct:
            start = 0 if provider is None else provider + 1
            for table in range(start, len(self.tables)):
                entry = self.tables[table][self._index(pc, table)]
                if entry.useful == 0:
                    entry.tag = self._tag(pc, table)
                    entry.counter = 0 if taken else -1
                    break

        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << 64) - 1)
        self._folds = self._refold()
        self._updates += 1
        if self._updates >= self.useful_reset_interval:
            self._updates = 0
            for table in self.tables:
                for entry in table:
                    entry.useful >>= 1

    @property
    def mispredict_rate(self) -> float:
        if self.mispredictions == 0:
            return 0.0
        return self.mispredictions / max(1, self.predictions)
