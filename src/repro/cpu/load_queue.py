"""The load queue (LQ).

Each LQ entry is extended (paper Section IV-B-1) with an **SLF bit**
and a copy of the forwarding store's **key** — 8 bits per entry for the
paper's 56-entry SQ/SB.  Loads live in the LQ from dispatch to
retirement; while a performed load is still in the LQ it can be squashed
by an invalidation or eviction of its cache line.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional


# Load lifecycle states.
WAITING = 0     # dispatched, dependences or memory-order checks pending
ISSUED = 1      # access in flight (cache or forwarding bypass)
PERFORMED = 2   # value bound; retirement eligibility is policy-dependent


class LoadEntry:
    """One load in the LQ."""

    __slots__ = ("seq", "addr", "line", "state", "slf", "key",
                 "store_seq", "pc", "issue_epoch", "deferred",
                 "gate_blocked_since", "blocked_reason", "performed_at",
                 "memdep_wait", "value")

    def __init__(self, seq: int, pc: int = 0) -> None:
        self.seq = seq
        self.addr: int = -1
        self.line: int = -1
        self.state = WAITING
        self.slf = False              # performed via store-to-load forwarding
        self.key: Optional[int] = None  # forwarding store's key
        self.store_seq: Optional[int] = None  # forwarding store's seq
        self.pc = pc
        self.issue_epoch = 0          # bumped on squash to drop stale callbacks
        self.deferred = False         # waiting on memory-dependence prediction
        self.gate_blocked_since: Optional[int] = None
        self.blocked_reason: Optional[str] = None
        self.performed_at: int = -1
        # StoreSet prediction captured at dispatch: the seq of the store
        # this load must wait for (None = issue freely).
        self.memdep_wait: Optional[int] = None
        # Observed data (functional layer).
        self.value: int = 0

    @property
    def performed(self) -> bool:
        return self.state == PERFORMED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " SLF" if self.slf else ""
        return f"<ld seq={self.seq} addr={self.addr:#x} st={self.state}{tag}>"


class LoadQueue:
    """Program-ordered queue of in-flight loads."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[LoadEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def __iter__(self) -> Iterator[LoadEntry]:
        return iter(self._entries)

    def allocate(self, seq: int, pc: int = 0) -> LoadEntry:
        if self.full:
            raise RuntimeError("load queue full")
        if self._entries and self._entries[-1].seq >= seq:
            raise RuntimeError("loads must be allocated in program order")
        entry = LoadEntry(seq, pc)
        self._entries.append(entry)
        return entry

    def head(self) -> Optional[LoadEntry]:
        return self._entries[0] if self._entries else None

    def retire_head(self, seq: int) -> LoadEntry:
        head = self.head()
        if head is None or head.seq != seq:
            raise RuntimeError(f"LQ head mismatch for seq {seq}")
        return self._entries.popleft()

    def squash_from(self, seq: int) -> List[LoadEntry]:
        """Remove all loads with ``seq >= seq``; returns them, youngest
        first.  Their ``issue_epoch`` is bumped so in-flight completion
        callbacks for the squashed incarnation are ignored."""
        removed: List[LoadEntry] = []
        while self._entries and self._entries[-1].seq >= seq:
            entry = self._entries.pop()
            entry.issue_epoch += 1
            removed.append(entry)
        return removed

    def matching_performed(self, line: int) -> List[LoadEntry]:
        """Performed, unretired loads whose address falls in ``line`` —
        the squash candidates when an invalidation/eviction arrives."""
        return [e for e in self._entries
                if e.state == PERFORMED and e.line == line]

    def memdep_violators(self, addr: int, store_seq: int) -> List[LoadEntry]:
        """Loads younger than the store at ``store_seq`` to exactly
        ``addr`` that already went to memory (or forwarded from an even
        older store) — the memory-dependence violation candidates when
        that store resolves.  Scans youngest-first and stops at
        ``store_seq`` (entries are seq-ascending), so the common no-hit
        case does not walk the whole queue.  Returned youngest-first."""
        out: List[LoadEntry] = []
        for entry in reversed(self._entries):
            if entry.seq <= store_seq:
                break
            if (entry.addr == addr
                    and entry.state in (ISSUED, PERFORMED)
                    and (entry.store_seq is None
                         or entry.store_seq < store_seq)):
                out.append(entry)
        return out

    def issued_or_performed_matching(self, addr: int,
                                     after_seq: int) -> List[LoadEntry]:
        """Loads younger than ``after_seq`` to exactly ``addr`` that have
        already gone to memory — memory-dependence violation candidates
        when an older store resolves to ``addr``."""
        return [e for e in self._entries
                if e.seq > after_seq and e.addr == addr
                and e.state in (ISSUED, PERFORMED)]
