"""Out-of-order core substrate: micro-op ISA, ROB, LQ, SQ/SB, pipeline."""

from repro.cpu.isa import (ALU, BRANCH, FENCE, LOAD, STORE, Op, Trace, alu,
                           branch, fence, load, store)
from repro.cpu.load_queue import LoadEntry, LoadQueue
from repro.cpu.pipeline import Core
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.store_buffer import StoreBuffer, StoreEntry
from repro.cpu.storeset import StoreSetPredictor

__all__ = ["Op", "Trace", "load", "store", "alu", "branch", "fence",
           "ALU", "LOAD", "STORE", "BRANCH", "FENCE",
           "LoadQueue", "LoadEntry", "ReorderBuffer", "RobEntry",
           "StoreBuffer", "StoreEntry", "StoreSetPredictor", "Core"]
