"""The out-of-order core pipeline.

A trace-driven cycle-level model of a Skylake-like core (paper Table
III): width-limited dispatch into ROB/LQ/SQ, dependence-driven issue,
memory access through the coherent hierarchy, in-order retirement, and
full squash/re-execute support.  The consistency policy (one of the five
configurations of Section V) is consulted exactly where the paper's
implementations differ:

* at load issue — may the load take its value from an in-limbo store?
* at load retirement — is the head load blocked (closed retire gate,
  SC-like SLF speculation)?
* at store write-back — reopen the retire gate (key match or SB drain);
* at invalidation/eviction — which performed loads are speculative and
  must be squashed?

For efficiency the core deregisters its per-cycle tick whenever it is
completely stalled and is woken by the event that unblocks it
(memory responses, execution completions, gate reopenings); stall cycles
are accounted in bulk on wake-up.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.reasons import GATE, SLF_SB
from repro.cpu.branch import TagePredictor
from repro.core.violation import ViolationDetector
from repro.cpu import isa
from repro.cpu.isa import Op, Trace
from repro.cpu.load_queue import (ISSUED, PERFORMED, WAITING, LoadEntry,
                                  LoadQueue)
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.store_buffer import StoreBuffer, StoreEntry
from repro.cpu.storeset import StoreSetPredictor
from repro.memory.prefetch import StridePrefetcher
from repro.obs.bus import NULL_BUS, resolve_squash_probes
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.stats import CoreStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policies import ConsistencyPolicy

# Dispatch-stall attribution (Figure 9 categories).
_STALL_NONE = 0
_STALL_ROB = 1
_STALL_LQ = 2
_STALL_SQ = 3

# Hot-loop bindings of the op-kind discriminators: the fused tick tests
# these once or twice per in-flight instruction, and a module global is
# cheaper than an attribute load on ``isa`` each time.
_LOAD = isa.LOAD
_STORE = isa.STORE
_FENCE = isa.FENCE
_RMW = isa.RMW
_BRANCH = isa.BRANCH


class Core:
    """One out-of-order core executing a micro-op trace."""

    __slots__ = (
        "engine", "core_id", "config", "trace", "_trace_ops", "_trace_len",
        "_issue_width", "_retire_width", "controller", "policy", "on_finish",
        "probe_bus", "_p_slf_forward", "_p_sb_write", "_p_gate_stall",
        "_p_squash", "_p_load_perform", "stats", "rob", "lq", "sb",
        "storeset", "detector",
        "prefetcher", "branch_predictor", "tracer", "memory_data",
        "retired_load_values", "fetch_idx", "done", "load_of", "store_of",
        "consumers", "ready", "deferred_on_store", "pending_fences",
        "deferred_on_fence", "barrier_seq", "_sb_inflight",
        "_sb_miss_inflight", "_rfo_pending", "finished", "_sleeping",
        "_sleep_since", "_sleep_stall", "_tick_scheduled",
        "dispatch_paused",
    )

    def __init__(self, engine: Engine, core_id: int, config: SystemConfig,
                 trace: Trace, controller, policy: "ConsistencyPolicy",
                 on_finish: Optional[Callable[["Core"], None]] = None,
                 detect_violations: bool = True,
                 memory_data: Optional[Dict[int, int]] = None,
                 tracer=None, probes=None) -> None:
        self.engine = engine
        self.core_id = core_id
        self.config = config.core
        self.trace = trace
        # Hot-loop bindings: the dispatch loop runs every cycle, so the
        # trace's op list / length and the pipeline widths are cached as
        # plain attributes instead of going through Trace.__getitem__ /
        # __len__ and the frozen config dataclass each iteration.
        self._trace_ops = trace.ops
        self._trace_len = len(trace.ops)
        self._issue_width = self.config.issue_width
        self._retire_width = self.config.retire_width
        self.controller = controller
        self.policy = policy
        self.on_finish = on_finish
        # Probe resolution happens once, here; each site fires behind an
        # ``is not None`` guard, so an unobserved run pays one pointer
        # compare per site (the same contract as ``tracer`` below).  The
        # bus must be in place before the policy attaches — _SoSBase
        # resolves its gate probes from ``core.probe_bus`` in attach().
        self.probe_bus = probes if probes is not None else NULL_BUS
        self._p_slf_forward = self.probe_bus.resolve("slf.forward")
        self._p_sb_write = self.probe_bus.resolve("sb.write_l1")
        self._p_gate_stall = self.probe_bus.resolve("gate.stall")
        self._p_squash = resolve_squash_probes(self.probe_bus)
        self._p_load_perform = self.probe_bus.resolve("load.perform")
        policy.attach(self)
        controller.removal_listener = self._on_line_removed

        self.stats = CoreStats()
        self.rob = ReorderBuffer(self.config.rob_entries)
        self.lq = LoadQueue(self.config.lq_entries)
        self.sb = StoreBuffer(self.config.sq_sb_entries)
        self.storeset = StoreSetPredictor(self.config.storeset_size,
                                          self.config.storeset_lfst)
        for load_pc, store_pc in getattr(trace, "memdep_hints", ()):
            self.storeset.train_violation(load_pc, store_pc)
        self.storeset.violations_trained = 0
        self.detector = ViolationDetector(
            line_bytes=config.memory.l1.line_bytes) \
            if detect_violations else None
        self.prefetcher = StridePrefetcher(
            controller.prefetch,
            line_bytes=config.memory.l1.line_bytes,
            degree=config.memory.prefetch_degree) \
            if config.memory.prefetcher else None
        self.branch_predictor = TagePredictor() \
            if self.config.branch_predictor else None
        self.tracer = tracer  # optional PipeTracer

        # Functional value layer: global word-granular memory image,
        # shared by all cores of the system.  Stores update it at their
        # memory-order insertion (the L1 write); loads read it at
        # perform time unless forwarded.
        self.memory_data = memory_data if memory_data is not None else {}
        # Architectural load results, recorded at retirement.
        self.retired_load_values: Dict[int, int] = {}

        self.fetch_idx = 0
        self.done = bytearray(len(trace))
        self.load_of: Dict[int, LoadEntry] = {}
        self.store_of: Dict[int, StoreEntry] = {}
        self.consumers: Dict[int, List[Tuple[RobEntry, int]]] = {}
        self.ready: List[Tuple[int, int, RobEntry]] = []  # (seq, epoch, e)
        self.deferred_on_store: Dict[int, List[Tuple[RobEntry, int]]] = {}
        # mfence serialization: loads younger than an unretired fence
        # cannot issue (program-ordered list of in-flight fence seqs).
        self.pending_fences: List[int] = []
        self.deferred_on_fence: Dict[int, List[Tuple[RobEntry, int]]] = {}
        self.barrier_seq: Optional[int] = None

        self._sb_inflight = 0
        self._sb_miss_inflight = False
        # Stores whose ownership prefetch was dropped for lack of an
        # MSHR (resolved, rfo_sent still False): the drain-ahead scan
        # only needs to run while this is non-zero.
        self._rfo_pending = 0
        self.finished = False
        self._sleeping = False
        self._sleep_since = 0
        self._sleep_stall = _STALL_NONE
        self._tick_scheduled = False
        # Checkpoint support (repro.snapshot): while True, dispatch
        # fetches nothing, so the pipeline drains to a quiescent point.
        self.dispatch_paused = False

    # ------------------------------------------------------------------
    # Scheduling / sleep management
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._schedule_tick(0)

    def _schedule_tick(self, delay: int) -> None:
        if not self._tick_scheduled and not self.finished:
            self._tick_scheduled = True
            self.engine.schedule(delay, self._tick)

    def _wake(self) -> None:
        if self.finished:
            return
        if self._sleeping:
            slept = max(0, self.engine.now - self._sleep_since)
            self._account_stall(self._sleep_stall, slept)
            self._sleeping = False
        self._schedule_tick(0)

    def _account_stall(self, kind: int, cycles: int) -> None:
        if kind == _STALL_ROB:
            self.stats.stall_cycles_rob += cycles
        elif kind == _STALL_LQ:
            self.stats.stall_cycles_lq += cycles
        elif kind == _STALL_SQ:
            self.stats.stall_cycles_sq += cycles

    # ------------------------------------------------------------------
    # Main per-cycle tick
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        """One pipeline cycle: retire, drain the SB, issue, dispatch.

        This is the simulator's single hottest function, so the four
        stages are *fused* here — their bodies inlined with locals
        hoisted out of the per-instruction loops and the ROB accessed
        through its deque directly.  The standalone stage methods below
        (:meth:`_retire`, :meth:`_drain_sb`, :meth:`_issue`,
        :meth:`_dispatch`, :meth:`_dispatch_one`) are the readable
        reference implementations of exactly this logic, kept callable
        for tests and for the kernel-speed benchmark's legacy swap; any
        semantic change must be made in both places.
        """
        self._tick_scheduled = False
        if self.finished:
            return
        engine = self.engine
        schedule = engine.schedule
        now = engine.now
        # Next-cycle events dominate this method's scheduling; when the
        # engine is the stock one (not a test double), append to its
        # delay-1 bucket directly instead of calling schedule() — the
        # bodies below mirror Engine.schedule exactly for delay == 1.
        fast = engine.__class__ is Engine
        bucket_next = engine._bucket_next if fast else None
        tracer = self.tracer
        stats = self.stats
        sb = self.sb
        rob_entries = self.rob._entries
        work = False

        # ---- retire stage (reference: _retire) ----
        retired = 0
        retire_width = self._retire_width
        while retired < retire_width:
            head = rob_entries[0] if rob_entries else None
            if head is None or not head.completed:
                if (head is not None and head.op.kind == _RMW
                        and not head.issued and head.deps_left == 0
                        and not sb._count):
                    head.issued = True
                    if tracer is not None:
                        tracer.on_issue(head.seq, now)
                    self._start_rmw(head)
                break
            op = head.op
            kind = op.kind
            if kind == _LOAD:
                if not self._try_retire_load(head):
                    break
            elif kind == _FENCE or kind == _RMW:
                if sb.has_unwritten_older(head.seq):
                    break
                rob_entries.popleft()
                self._release_fence(head.seq)
            elif kind == _STORE:
                rob_entries.popleft()
                entry = self.store_of.pop(head.seq)
                entry.retired = True
                if self._p_sb_write is not None:
                    entry.retired_at = now
                stats.retired_stores += 1
            else:
                rob_entries.popleft()
            if tracer is not None and kind != _LOAD:
                tracer.on_retire(head.seq, now)
            stats.retired_instructions += 1
            retired += 1
        work = retired > 0

        # ---- store-buffer drain (reference: _drain_sb) ----
        controller = self.controller
        if self._rfo_pending:
            scanned = 0
            rfo_ahead = self.RFO_AHEAD
            for entry in sb:
                if scanned >= rfo_ahead:
                    break
                if entry.resolved and not entry.rfo_sent:
                    if controller.prefetch_exclusive(entry.addr):
                        entry.rfo_sent = True
                        self._rfo_pending -= 1
                scanned += 1
        inflight = self._sb_inflight
        candidate = (sb._slots[(sb._head + inflight) % sb.capacity]
                     if inflight < sb._count else None)
        if candidate is not None and candidate.retired:
            owned = controller.peek_state(candidate.addr) in ("M", "E")
            if inflight == 0 or (owned and not self._sb_miss_inflight):
                candidate.issued = True
                self._sb_inflight = inflight + 1
                hit = controller.store(
                    candidate.addr,
                    lambda: self._store_written(candidate))
                if not hit:
                    self._sb_miss_inflight = True
                work = True

        # ---- issue stage (reference: _issue) ----
        issued = 0
        issue_width = self._issue_width
        ready = self.ready
        heappop = heapq.heappop
        while issued < issue_width and ready:
            seq, epoch, entry = heappop(ready)
            if entry.issue_epoch != epoch or entry.issued:
                continue  # squashed incarnation or duplicate
            entry.issued = True
            if tracer is not None:
                tracer.on_issue(entry.seq, now)
            op = entry.op
            kind = op.kind
            if kind == _LOAD:
                self._issue_load(entry)
            elif kind == _STORE:
                if fast:
                    engine._seq = s = engine._seq + 1
                    bucket_next.append((now + 1, s, self._complete_store,
                                        (entry, entry.issue_epoch)))
                else:
                    schedule(1, self._complete_store, entry,
                             entry.issue_epoch)
            elif kind == _FENCE:
                schedule(1, self._complete, entry, entry.issue_epoch)
            else:  # ALU / BRANCH
                latency = op.latency
                if latency > 1:
                    schedule(latency, self._complete, entry,
                             entry.issue_epoch)
                elif fast:
                    engine._seq = s = engine._seq + 1
                    bucket_next.append((now + 1, s, self._complete,
                                        (entry, entry.issue_epoch)))
                else:
                    schedule(1, self._complete, entry, entry.issue_epoch)
            issued += 1
        work |= issued > 0

        # ---- dispatch stage (reference: _dispatch / _dispatch_one) ----
        dispatched = 0
        stall = _STALL_NONE
        ops = self._trace_ops
        trace_len = self._trace_len
        rob_capacity = self.rob.capacity
        fetch_idx = self.fetch_idx
        done = self.done
        consumers = self.consumers
        heappush = heapq.heappush
        while dispatched < issue_width:
            if fetch_idx >= trace_len:
                break
            if self.barrier_seq is not None or self.dispatch_paused:
                break
            op = ops[fetch_idx]
            kind = op.kind
            if len(rob_entries) >= rob_capacity:
                stall = _STALL_ROB
                break
            if kind == _LOAD:
                lq = self.lq
                if len(lq._entries) >= lq.capacity:
                    stall = _STALL_LQ
                    break
            elif kind == _STORE:
                if sb._count == sb.capacity:
                    stall = _STALL_SQ
                    break
            seq = fetch_idx
            fetch_idx += 1
            entry = RobEntry(seq, op)
            rob_entries.append(entry)
            if tracer is not None:
                tracer.on_dispatch(seq, kind, now)
            if kind == _LOAD:
                lentry = self.lq.allocate(seq, op.pc)
                lentry.memdep_wait = self.storeset.predicted_store(op.pc)
                self.load_of[seq] = lentry
            elif kind == _STORE:
                store = sb.allocate(seq, op.pc, op.value)
                self.store_of[seq] = store
                self.storeset.store_dispatched(op.pc, seq)
            elif kind == _FENCE or kind == _RMW:
                self.pending_fences.append(seq)
            elif kind == _BRANCH:
                mispredicted = op.mispredict
                if not mispredicted and self.branch_predictor is not None:
                    mispredicted = (self.branch_predictor.predict(op.pc)
                                    != op.taken)
                if mispredicted:
                    self.barrier_seq = seq
            deps_left = 0
            epoch = entry.issue_epoch
            for dep in op.deps:
                if not done[dep]:
                    consumers.setdefault(dep, []).append((entry, epoch))
                    deps_left += 1
            entry.deps_left = deps_left
            if deps_left == 0 and kind != _RMW:
                heappush(ready, (seq, epoch, entry))
            dispatched += 1
        self.fetch_idx = fetch_idx
        work |= dispatched > 0
        if stall != _STALL_NONE:
            self._account_stall(stall, 1)

        # ---- next-cycle scheduling ----
        if fetch_idx >= trace_len and not rob_entries and not sb._count:
            self._finish()
            return
        if work:
            if not self._tick_scheduled and not self.finished:
                self._tick_scheduled = True
                if fast:
                    engine._seq = s = engine._seq + 1
                    bucket_next.append((now + 1, s, self._tick, ()))
                else:
                    schedule(1, self._tick)
        else:
            # Fully stalled: every possible state change is event-driven
            # (memory response, execution completion, barrier release),
            # and each of those calls _wake().  This cycle's stall was
            # already counted above, so bulk accounting starts at now+1.
            self._sleeping = True
            self._sleep_since = now + 1
            self._sleep_stall = stall

    def _finish(self) -> None:
        self.finished = True
        self.stats.cycles = self.engine.now
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------
    # Retire stage
    # ------------------------------------------------------------------

    def _release_fence(self, seq: int) -> None:
        """A fence (or locked RMW) left the ROB: release deferred loads."""
        if self.pending_fences and self.pending_fences[0] == seq:
            self.pending_fences.pop(0)
        for consumer, cepoch in self.deferred_on_fence.pop(seq, ()):
            if consumer.issue_epoch == cepoch and not consumer.issued:
                self._push_ready(consumer)

    def _retire(self) -> bool:
        retired = 0
        while retired < self._retire_width:
            head = self.rob.head()
            if head is None or not head.completed:
                # A locked RMW executes only at the ROB head with the SB
                # drained (x86 locked-instruction semantics).
                if (head is not None and head.op.kind == isa.RMW
                        and not head.issued and head.deps_left == 0
                        and self.sb.empty):
                    head.issued = True
                    if self.tracer is not None:
                        self.tracer.on_issue(head.seq, self.engine.now)
                    self._start_rmw(head)
                break
            op = head.op
            if op.kind == isa.LOAD:
                if not self._try_retire_load(head):
                    break
            elif op.kind in (isa.FENCE, isa.RMW):
                if self.sb.has_unwritten_older(head.seq):
                    break
                self.rob.retire_head()
                self._release_fence(head.seq)
            elif op.kind == isa.STORE:
                self.rob.retire_head()
                entry = self.store_of.pop(head.seq)
                entry.retired = True
                if self._p_sb_write is not None:
                    entry.retired_at = self.engine.now
                self.stats.retired_stores += 1
            else:
                self.rob.retire_head()
            if self.tracer is not None and op.kind != isa.LOAD:
                self.tracer.on_retire(head.seq, self.engine.now)
            self.stats.retired_instructions += 1
            retired += 1
        return retired > 0

    def _try_retire_load(self, head: RobEntry) -> bool:
        lentry = self.load_of[head.seq]
        reason = self.policy.load_retire_block(lentry)
        if reason is not None:
            if lentry.gate_blocked_since is None:
                lentry.gate_blocked_since = self.engine.now
                lentry.blocked_reason = reason
                if reason == GATE:
                    self.stats.gate_stall_events += 1
                elif reason == SLF_SB:
                    self.stats.slf_retire_stall_events += 1
            return False
        if lentry.gate_blocked_since is not None:
            blocked = self.engine.now - lentry.gate_blocked_since
            if lentry.blocked_reason == GATE:
                self.stats.gate_stall_cycles += blocked
            elif lentry.blocked_reason == SLF_SB:
                self.stats.slf_retire_stall_cycles += blocked
            if self._p_gate_stall is not None:
                self._p_gate_stall(self.core_id, self.engine.now,
                                   lentry.seq, blocked,
                                   lentry.blocked_reason)
        # ``head`` is the completed ROB head (checked by the caller), so
        # the retire_head() guards are redundant here — pop directly.
        self.rob._entries.popleft()
        self.lq.retire_head(head.seq)
        del self.load_of[head.seq]
        self.retired_load_values[head.seq] = lentry.value
        if self.tracer is not None:
            blocked = 0
            if lentry.gate_blocked_since is not None:
                blocked = self.engine.now - lentry.gate_blocked_since
            self.tracer.on_retire(head.seq, self.engine.now, blocked)
        self.stats.retired_loads += 1
        if lentry.slf:
            self.stats.slf_loads += 1
        self.policy.on_load_retire(lentry)
        if self.detector is not None:
            self.detector.on_load_retired(lentry)
        return True

    # ------------------------------------------------------------------
    # Store-buffer drain (insertion in memory order)
    # ------------------------------------------------------------------

    #: How deep into the SQ/SB drain-ahead ownership prefetches look
    #: (effectively the whole SQ/SB; actual concurrency is MSHR-bound).
    RFO_AHEAD = 64

    def _drain_sb(self) -> bool:
        """Issue SB writes to the (pipelined) L1.

        Table III's L1 is pipelined: owned-line stores stream out at one
        per cycle with the hit latency each, completing in order.  A
        store whose line is not yet owned issues only once it is alone
        at the head (its completion time is unbounded, so nothing may
        pipeline behind it — TSO requires in-order memory-order
        insertion)."""
        # Drain-ahead RFOs: overlap the coherence latency of upcoming
        # stores with the current writes.  Only stores whose earlier
        # prefetch attempt was dropped need a retry, so the scan is
        # skipped entirely while none are pending.
        if self._rfo_pending:
            scanned = 0
            for entry in self.sb:
                if scanned >= self.RFO_AHEAD:
                    break
                if entry.resolved and not entry.rfo_sent:
                    if self.controller.prefetch_exclusive(entry.addr):
                        entry.rfo_sent = True
                        self._rfo_pending -= 1
                scanned += 1

        # Issued live entries are exactly the first ``_sb_inflight``
        # (stores issue strictly in order from the head and completions
        # pop the head), so the drain candidate sits right behind them.
        candidate = self.sb.entry_at(self._sb_inflight)
        if candidate is None or not candidate.retired:
            return False
        owned = self.controller.peek_state(candidate.addr) in ("M", "E")
        if self._sb_inflight > 0 and (not owned or self._sb_miss_inflight):
            return False
        candidate.issued = True
        self._sb_inflight += 1
        hit = self.controller.store(
            candidate.addr, lambda: self._store_written(candidate))
        if not hit:
            self._sb_miss_inflight = True
        return True

    def _store_written(self, entry: StoreEntry) -> None:
        """The head store wrote to the L1: it is now in memory order."""
        entry.written = True
        if not entry.rfo_sent:
            self._rfo_pending -= 1
        self.memory_data[entry.addr] = entry.value
        self._sb_inflight -= 1
        self._sb_miss_inflight = False
        self.sb.pop_head()
        if self._p_sb_write is not None:
            now = self.engine.now
            drain = now - entry.retired_at if entry.retired_at >= 0 else 0
            self._p_sb_write(self.core_id, now, entry.seq, entry.addr,
                             drain, entry.key)
        self.policy.on_store_written(entry)
        if self.detector is not None:
            self.detector.on_store_written(entry)
        for waiter in entry.waiters:
            waiter()
        entry.waiters.clear()
        head = self.sb.head()
        if head is None or not head.retired:
            self.policy.on_sb_drained()
        # Inlined _wake() (see _complete).
        if not self.finished:
            if self._sleeping:
                slept = self.engine.now - self._sleep_since
                if slept > 0:
                    self._account_stall(self._sleep_stall, slept)
                self._sleeping = False
            if not self._tick_scheduled:
                self._tick_scheduled = True
                engine = self.engine
                if engine.__class__ is Engine:
                    engine._seq = s = engine._seq + 1
                    engine._bucket_now.append((engine.now, s, self._tick,
                                               ()))
                else:
                    engine.schedule(0, self._tick)

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _push_ready(self, entry: RobEntry) -> None:
        heapq.heappush(self.ready, (entry.seq, entry.issue_epoch, entry))

    def _issue(self) -> bool:
        issued = 0
        ready = self.ready
        heappop = heapq.heappop
        while issued < self._issue_width and ready:
            seq, epoch, entry = heappop(ready)
            if entry.issue_epoch != epoch or entry.issued:
                continue  # squashed incarnation or duplicate
            entry.issued = True
            if self.tracer is not None:
                self.tracer.on_issue(entry.seq, self.engine.now)
            op = entry.op
            if op.kind == isa.LOAD:
                self._issue_load(entry)
            elif op.kind == isa.STORE:
                # Address generation: one cycle, then the SQ entry resolves.
                self.engine.schedule(
                    1, self._complete_store, entry, entry.issue_epoch)
            elif op.kind == isa.FENCE:
                self.engine.schedule(
                    1, self._complete, entry, entry.issue_epoch)
            else:  # ALU / BRANCH
                self.engine.schedule(
                    max(1, op.latency), self._complete, entry,
                    entry.issue_epoch)
            issued += 1
        return issued > 0

    def _issue_load(self, entry: RobEntry) -> None:
        op = entry.op
        seq = entry.seq
        addr = op.addr
        lentry = self.load_of[seq]
        lentry.addr = addr
        lentry.line = self.controller.line_of(addr)

        # mfence: a load may not execute past an unretired older fence.
        for fence_seq in self.pending_fences:
            if fence_seq < seq:
                entry.issued = False
                self.deferred_on_fence.setdefault(fence_seq, []).append(
                    (entry, entry.issue_epoch))
                return

        # Memory-dependence prediction past older unresolved stores (the
        # prediction was captured at dispatch, as in real rename stages).
        # ``store_of`` holds exactly the non-retired stores and a retired
        # store is always resolved, so the predicted store is unresolved
        # iff it is in ``store_of`` with ``resolved`` still False — no
        # buffer scan needed.
        predicted = lentry.memdep_wait
        if predicted is not None and predicted < seq:
            pstore = self.store_of.get(predicted)
            if pstore is not None and not pstore.resolved:
                entry.issued = False
                lentry.deferred = True
                self.deferred_on_store.setdefault(predicted, []).append(
                    (entry, entry.issue_epoch))
                return

        match = self.sb.forwarding_match(addr, seq)
        if match is not None:
            if self.policy.allows_forwarding:
                self._forward(entry, lentry, match)
            else:
                self._wait_for_store_write(entry, lentry, match)
            return
        # Inlined _access_cache() — the common (no-forward) case.
        lentry.state = ISSUED
        self.stats.loads_issued += 1
        if self.prefetcher is not None:
            self.prefetcher.observe(op.pc, addr)
        epoch = entry.issue_epoch
        hit = self.controller.load(
            addr, lambda: self._perform_load(entry, epoch))
        if hit:
            self.stats.l1_load_hits += 1

    def _forward(self, entry: RobEntry, lentry: LoadEntry,
                 store: StoreEntry) -> None:
        """Store-to-load forwarding: the load becomes an SLF load and
        copies the store's key (paper Fig. 8, step (a))."""
        lentry.state = ISSUED
        lentry.value = store.value
        self.policy.on_forward(lentry, store)
        if self._p_slf_forward is not None:
            self._p_slf_forward(self.core_id, self.engine.now, lentry.seq,
                                store.seq, store.key)
        if self.detector is not None:
            self.detector.on_forward(lentry, store)
        self.engine.schedule(self.config.forward_latency,
                             self._perform_load, entry, entry.issue_epoch)

    def _wait_for_store_write(self, entry: RobEntry, lentry: LoadEntry,
                              store: StoreEntry) -> None:
        """370-NoSpec: the load is not performed until the matched store
        is inserted in memory order (written to the L1)."""
        self.stats.sb_wait_events += 1
        start = self.engine.now
        epoch = entry.issue_epoch
        lentry.state = WAITING

        def resume() -> None:
            if entry.issue_epoch != epoch:
                return
            self.stats.sb_wait_cycles += self.engine.now - start
            # Re-run the full issue logic: another (younger) matching
            # store may have resolved in the meantime.
            self._issue_load(entry)
            self._wake()

        store.waiters.append(resume)

    def _access_cache(self, entry: RobEntry, lentry: LoadEntry) -> None:
        lentry.state = ISSUED
        self.stats.loads_issued += 1
        op = entry.op
        if self.prefetcher is not None:
            self.prefetcher.observe(op.pc, op.addr)
        epoch = entry.issue_epoch
        hit = self.controller.load(
            op.addr, lambda: self._perform_load(entry, epoch))
        if hit:
            self.stats.l1_load_hits += 1

    def _perform_load(self, entry: RobEntry, epoch: int) -> None:
        if entry.issue_epoch != epoch:
            return
        lentry = self.load_of.get(entry.seq)
        if lentry is None:
            return
        if not lentry.slf:
            # Read the globally ordered value as of perform time; a
            # later conflicting write squashes this load while it is
            # still speculative in the LQ, re-reading the fresh value.
            lentry.value = self.memory_data.get(entry.op.addr, 0)
        lentry.state = PERFORMED
        lentry.performed_at = self.engine.now
        if self._p_load_perform is not None:
            # Speculation status at perform time, mirroring the squash
            # criteria of _on_line_removed: bit 1 = performed past an
            # older unperformed load (M-speculation), bit 2 = past the
            # policy's SA-speculation floor.  Computed only under an
            # attached observer — the unobserved run never scans.
            spec = 0
            for older in self.lq:
                if older.seq >= entry.seq:
                    break
                if older.state != PERFORMED:
                    spec |= 1
                    break
            p_floor, inclusive = self.policy.speculative_floor()
            if p_floor is not None and (entry.seq >= p_floor if inclusive
                                        else entry.seq > p_floor):
                spec |= 2
            self._p_load_perform(self.core_id, self.engine.now, entry.seq,
                                 lentry.addr, lentry.line, lentry.slf,
                                 spec)
        self._complete(entry, epoch)

    def _complete(self, entry: RobEntry, epoch: int) -> None:
        if entry.issue_epoch != epoch:
            return
        entry.completed = True
        self.done[entry.seq] = 1
        if self.tracer is not None:
            lentry = self.load_of.get(entry.seq)
            self.tracer.on_complete(entry.seq, self.engine.now,
                                    slf=bool(lentry and lentry.slf))
        waiters = self.consumers.pop(entry.seq, None)
        if waiters:
            ready = self.ready
            heappush = heapq.heappush
            for consumer, cepoch in waiters:
                if consumer.issue_epoch != cepoch or consumer.issued:
                    continue
                deps_left = consumer.deps_left - 1
                consumer.deps_left = deps_left
                if deps_left == 0 and consumer.op.kind != _RMW:
                    heappush(ready, (consumer.seq, cepoch, consumer))
        op = entry.op
        if op.kind == _BRANCH:
            if self.branch_predictor is not None:
                self.branch_predictor.update(op.pc, op.taken)
            if self.barrier_seq == entry.seq:
                self.engine.schedule(self.config.mispredict_penalty,
                                     self._release_barrier, entry.seq)
        # Inlined _wake() — completion is the most frequent wake source.
        if not self.finished:
            if self._sleeping:
                slept = self.engine.now - self._sleep_since
                if slept > 0:
                    self._account_stall(self._sleep_stall, slept)
                self._sleeping = False
            if not self._tick_scheduled:
                self._tick_scheduled = True
                engine = self.engine
                if engine.__class__ is Engine:
                    engine._seq = s = engine._seq + 1
                    engine._bucket_now.append((engine.now, s, self._tick,
                                               ()))
                else:
                    engine.schedule(0, self._tick)

    def _start_rmw(self, entry: RobEntry) -> None:
        """Execute an atomic exchange: acquire ownership, then read and
        write the global memory image in one indivisible step."""
        op = entry.op
        epoch = entry.issue_epoch

        def done() -> None:
            if entry.issue_epoch != epoch:
                return
            old = self.memory_data.get(op.addr, 0)
            self.memory_data[op.addr] = op.value
            self.retired_load_values[entry.seq] = old
            self._complete(entry, epoch)

        self.controller.store(op.addr, done)

    def _complete_store(self, entry: RobEntry, epoch: int) -> None:
        """Store address generation finished: resolve the SQ entry, check
        for memory-dependence violations, release predicted loads."""
        if entry.issue_epoch != epoch:
            return
        store = self.store_of.get(entry.seq)
        if store is None:  # pragma: no cover - defensive
            return
        self.sb.resolve_store(store, entry.op.addr)
        self.storeset.store_resolved(entry.op.pc, entry.seq)

        # Ownership prefetch: overlap the write's coherence latency with
        # the store's remaining time in the window/SB (retried by the
        # drain-ahead scan if dropped for lack of an MSHR).
        if not store.rfo_sent:
            store.rfo_sent = self.controller.prefetch_exclusive(store.addr)
            if not store.rfo_sent:
                self._rfo_pending += 1

        self._check_memdep_violation(entry, store)
        for consumer, cepoch in self.deferred_on_store.pop(entry.seq, ()):
            if consumer.issue_epoch != cepoch or consumer.issued:
                continue
            lentry = self.load_of.get(consumer.seq)
            if lentry is not None:
                lentry.deferred = False
            self._push_ready(consumer)
        self._complete(entry, epoch)

    def _check_memdep_violation(self, entry: RobEntry,
                                store: StoreEntry) -> None:
        """An older store resolved to ``addr``: any younger load that
        already went to memory (or forwarded from an even older store)
        read a stale value — squash at the oldest such load."""
        violators = self.lq.memdep_violators(store.addr, entry.seq)
        if not violators:
            return
        oldest = violators[-1]  # youngest-first scan: last is oldest
        self.storeset.train_violation(oldest.pc, entry.op.pc)
        self._squash(oldest.seq, "memdep")

    def _release_barrier(self, seq: int) -> None:
        if self.barrier_seq == seq:
            self.barrier_seq = None
            self._wake()

    # ------------------------------------------------------------------
    # Dispatch stage
    # ------------------------------------------------------------------

    def _dispatch(self) -> Tuple[bool, int]:
        dispatched = 0
        stall = _STALL_NONE
        ops = self._trace_ops
        trace_len = self._trace_len
        rob = self.rob
        while dispatched < self._issue_width:
            if self.fetch_idx >= trace_len:
                break
            if self.barrier_seq is not None or self.dispatch_paused:
                break
            op = ops[self.fetch_idx]
            if rob.full:
                stall = _STALL_ROB
                break
            if op.kind == isa.LOAD and self.lq.full:
                stall = _STALL_LQ
                break
            if op.kind == isa.STORE and self.sb.full:
                stall = _STALL_SQ
                break
            self._dispatch_one(op)
            dispatched += 1
        return dispatched > 0, stall

    def _dispatch_one(self, op: Op) -> None:
        seq = self.fetch_idx
        self.fetch_idx += 1
        entry = self.rob.allocate(seq, op)
        if self.tracer is not None:
            self.tracer.on_dispatch(seq, op.kind, self.engine.now)
        if op.kind == isa.LOAD:
            lentry = self.lq.allocate(seq, op.pc)
            lentry.memdep_wait = self.storeset.predicted_store(op.pc)
            self.load_of[seq] = lentry
        elif op.kind == isa.STORE:
            store = self.sb.allocate(seq, op.pc, op.value)
            self.store_of[seq] = store
            self.storeset.store_dispatched(op.pc, seq)
        elif op.kind in (isa.FENCE, isa.RMW):
            # Both serialize younger loads until they leave the ROB.
            self.pending_fences.append(seq)
        elif op.kind == isa.BRANCH:
            mispredicted = op.mispredict
            if not mispredicted and self.branch_predictor is not None:
                mispredicted = (self.branch_predictor.predict(op.pc)
                                != op.taken)
            if mispredicted:
                self.barrier_seq = seq

        deps_left = 0
        done = self.done
        consumers = self.consumers
        epoch = entry.issue_epoch
        for dep in op.deps:
            if not done[dep]:
                consumers.setdefault(dep, []).append((entry, epoch))
                deps_left += 1
        entry.deps_left = deps_left
        if deps_left == 0 and op.kind != isa.RMW:
            # RMWs never enter the ready pool: the retire stage launches
            # them once they reach the ROB head with an empty SB.
            self._push_ready(entry)

    # ------------------------------------------------------------------
    # Squash / re-execute
    # ------------------------------------------------------------------

    def _squash(self, seq: int, reason: str) -> None:
        """Flush everything from ``seq`` (inclusive) to the ROB tail and
        re-dispatch from the trace — the paper's accounting counts all
        flushed instructions as re-executed (Table IV col 7)."""
        removed = self.rob.squash_from(seq)
        if not removed:
            return
        if self.tracer is not None:
            self.tracer.on_squash(seq, self.engine.now, reason)
        probe = self._p_squash.get(reason)
        if probe is not None:
            probe(self.core_id, self.engine.now, seq, len(removed))
        self.stats.squashes += 1
        if reason == "inval":
            self.stats.squashes_inval += 1
        elif reason == "evict":
            self.stats.squashes_evict += 1
        elif reason == "fault":
            # Injected spurious squash (repro.resilience.faults).
            self.stats.squashes_fault += 1
        else:
            self.stats.squashes_memdep += 1
        self.stats.reexecuted_instructions += len(removed)

        for lentry in self.lq.squash_from(seq):
            self.load_of.pop(lentry.seq, None)
        for store in self.sb.squash_from(seq):
            self.store_of.pop(store.seq, None)
            self.storeset.store_squashed(store.pc, store.seq)
            if store.resolved and not store.rfo_sent:
                self._rfo_pending -= 1
        for rentry in removed:
            self.done[rentry.seq] = 0
        self.fetch_idx = seq
        self.pending_fences = [f for f in self.pending_fences if f < seq]
        if self.barrier_seq is not None and self.barrier_seq >= seq:
            self.barrier_seq = None
        if hasattr(self.policy, "on_squash"):
            self.policy.on_squash(seq)
        if self.detector is not None:
            self.detector.on_squash(seq)
        self._wake()

    # ------------------------------------------------------------------
    # Coherence events (invalidations and evictions)
    # ------------------------------------------------------------------

    def _on_line_removed(self, line: int, kind: str) -> None:
        """An invalidation or a private-hierarchy eviction removed a
        line: squash any speculative performed load on that line (the
        paper treats evictions exactly like invalidations)."""
        if self.detector is not None:
            victims = self.detector
            victims.on_line_removed(line)
            self.stats.store_atomicity_violations = victims.violations
        matching = self.lq.matching_performed(line)
        if not matching:
            return
        m_floor: Optional[int] = None
        for lentry in self.lq:
            if lentry.state != PERFORMED:
                m_floor = lentry.seq
                break
        p_floor, inclusive = self.policy.speculative_floor()

        def speculative(lentry: LoadEntry) -> bool:
            if m_floor is not None and lentry.seq > m_floor:
                return True  # performed past an older unperformed load
            if p_floor is not None:
                if inclusive and lentry.seq >= p_floor:
                    return True
                if not inclusive and lentry.seq > p_floor:
                    return True
            return False

        squashable = [l for l in matching if speculative(l)]
        if squashable:
            self._squash(min(l.seq for l in squashable), kind)
