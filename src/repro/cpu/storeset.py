"""StoreSet memory-dependence predictor (Chrysos & Emer, ISCA 1998).

Used by the core (paper Table III) to decide whether a load may issue
past an older store whose address is still unknown.  A load and the
stores it has conflicted with in the past are assigned to the same
*store set*; a load predicted to depend on an in-flight store of its set
waits for that store's address instead of issuing speculatively.

The classic two-table organization:

* SSIT (store-set ID table), indexed by PC, maps loads and stores to a
  store-set ID (SSID).
* LFST (last fetched store table), indexed by SSID, tracks the most
  recent in-flight store of that set.

On a memory-order violation (an older store resolves to the address of
a load that already went to memory), the load and store PCs are merged
into one set, so the next dynamic instance synchronizes instead of
squashing.
"""

from __future__ import annotations

from typing import Dict, Optional


class StoreSetPredictor:
    """Two-table StoreSet predictor with periodic clearing."""

    __slots__ = ("ssit_size", "lfst_size", "clear_interval", "_ssit",
                 "_lfst", "_next_ssid", "_accesses", "violations_trained")

    def __init__(self, ssit_size: int = 4096, lfst_size: int = 128,
                 clear_interval: int = 30000) -> None:
        self.ssit_size = ssit_size
        self.lfst_size = lfst_size
        self.clear_interval = clear_interval
        self._ssit: Dict[int, int] = {}          # pc-index -> SSID
        self._lfst: Dict[int, int] = {}          # SSID -> store seq
        self._next_ssid = 0
        self._accesses = 0
        self.violations_trained = 0

    # ------------------------------------------------------------------

    def _index(self, pc: int) -> int:
        return pc % self.ssit_size

    def _maybe_clear(self) -> None:
        """Periodic invalidation keeps stale sets from over-serializing
        (the cyclic-clearing scheme from the original paper)."""
        self._accesses += 1
        if self._accesses >= self.clear_interval:
            self._ssit.clear()
            self._lfst.clear()
            self._accesses = 0

    # ------------------------------------------------------------------

    # The three per-instruction entry points below inline
    # :meth:`_maybe_clear` and :meth:`_index` — they run for every
    # dynamic load and store, and the method-call overhead dominates the
    # table lookups themselves.  Results are identical to the method
    # forms (which remain above as the readable reference).

    def store_dispatched(self, pc: int, seq: int) -> None:
        """A store enters the window: becomes its set's last fetched store."""
        accesses = self._accesses + 1
        if accesses >= self.clear_interval:
            self._ssit.clear()
            self._lfst.clear()
            accesses = 0
        self._accesses = accesses
        ssid = self._ssit.get(pc % self.ssit_size)
        if ssid is not None:
            self._lfst[ssid] = seq

    def store_resolved(self, pc: int, seq: int) -> None:
        """A store's address resolved: clear it from the LFST if it is
        still the set's last fetched store."""
        ssid = self._ssit.get(pc % self.ssit_size)
        if ssid is not None and self._lfst.get(ssid) == seq:
            del self._lfst[ssid]

    def predicted_store(self, load_pc: int) -> Optional[int]:
        """The seq of the in-flight store this load should wait for, or
        None if the load is free to issue speculatively."""
        accesses = self._accesses + 1
        if accesses >= self.clear_interval:
            self._ssit.clear()
            self._lfst.clear()
            accesses = 0
        self._accesses = accesses
        ssid = self._ssit.get(load_pc % self.ssit_size)
        if ssid is None:
            return None
        return self._lfst.get(ssid)

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the load and store into one store set after a
        memory-order violation."""
        self.violations_trained += 1
        load_idx = self._index(load_pc)
        store_idx = self._index(store_pc)
        load_ssid = self._ssit.get(load_idx)
        store_ssid = self._ssit.get(store_idx)
        if load_ssid is None and store_ssid is None:
            ssid = self._next_ssid % self.lfst_size
            self._next_ssid += 1
            self._ssit[load_idx] = ssid
            self._ssit[store_idx] = ssid
        elif load_ssid is not None and store_ssid is None:
            self._ssit[store_idx] = load_ssid
        elif load_ssid is None and store_ssid is not None:
            self._ssit[load_idx] = store_ssid
        else:
            # Both assigned: converge on the smaller SSID (the paper's
            # declarative merge rule).
            winner = min(load_ssid, store_ssid)
            self._ssit[load_idx] = winner
            self._ssit[store_idx] = winner

    def store_squashed(self, pc: int, seq: int) -> None:
        """A store was flushed: remove it from the LFST."""
        self.store_resolved(pc, seq)
