"""Micro-operation ISA for the trace-driven out-of-order core.

A workload is a per-core sequence of :class:`Op` micro-operations with
explicit register dependences (indices of older ops in the same trace).
This is the interface between the workload generators and the core
model: the generators decide *what* executes, the core decides *when*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

# Op kinds --------------------------------------------------------------

ALU = 0
LOAD = 1
STORE = 2
BRANCH = 3
FENCE = 4
RMW = 5

KIND_NAMES = {ALU: "alu", LOAD: "load", STORE: "store",
              BRANCH: "branch", FENCE: "fence", RMW: "rmw"}


@dataclass(frozen=True, slots=True)
class Op:
    """One micro-operation of a trace.

    Attributes:
        kind: one of ALU, LOAD, STORE, BRANCH, FENCE.
        addr: byte address for LOAD/STORE (word aligned); -1 otherwise.
        deps: trace indices of older ops whose results this op consumes.
            For LOAD/STORE the deps gate *address generation* (the op
            cannot issue before its deps complete).
        latency: execution latency for ALU/BRANCH ops.
        mispredict: for BRANCH — *force* a misprediction regardless of
            the branch predictor (directed-test hook).
        taken: for BRANCH — the actual outcome, predicted by the core's
            TAGE predictor; a wrong prediction redirects the front end
            (dispatch barrier + penalty).
        pc: synthetic program counter, used by the stride prefetcher,
            the StoreSet predictor, and the branch predictor.
    """

    kind: int
    addr: int = -1
    deps: Tuple[int, ...] = ()
    latency: int = 1
    mispredict: bool = False
    taken: bool = True
    pc: int = 0
    # Functional value layer (used by the litmus-on-pipeline runner):
    # the data a STORE writes.  Loads observe values at runtime — from
    # the forwarding store or from global memory at perform time.
    value: int = 0

    def __post_init__(self) -> None:
        if self.kind in (LOAD, STORE, RMW) and self.addr < 0:
            raise ValueError("memory op requires an address")
        if self.kind not in KIND_NAMES:
            raise ValueError(f"unknown op kind {self.kind}")

    @property
    def is_mem(self) -> bool:
        return self.kind in (LOAD, STORE, RMW)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" @0x{self.addr:x}" if self.is_mem else ""
        return f"<{KIND_NAMES[self.kind]}{extra} deps={self.deps}>"


# Convenience constructors ----------------------------------------------

def load(addr: int, deps: Iterable[int] = (), pc: int = 0) -> Op:
    return Op(LOAD, addr=addr, deps=tuple(deps), pc=pc)


def store(addr: int, deps: Iterable[int] = (), pc: int = 0,
          value: int = 0) -> Op:
    return Op(STORE, addr=addr, deps=tuple(deps), pc=pc, value=value)


def alu(deps: Iterable[int] = (), latency: int = 1, pc: int = 0) -> Op:
    return Op(ALU, deps=tuple(deps), latency=latency, pc=pc)


def branch(deps: Iterable[int] = (), mispredict: bool = False,
           taken: bool = True, pc: int = 0) -> Op:
    return Op(BRANCH, deps=tuple(deps), mispredict=mispredict,
              taken=taken, pc=pc)


def fence(pc: int = 0) -> Op:
    return Op(FENCE, pc=pc)


def rmw(addr: int, deps: Iterable[int] = (), pc: int = 0,
        value: int = 0) -> Op:
    """Atomic exchange (a locked x86 instruction): read the old value,
    write ``value``, globally ordered — drains the SB and fences both
    directions, like ``lock xchg``."""
    return Op(RMW, addr=addr, deps=tuple(deps), pc=pc, value=value)


@dataclass(slots=True)
class Trace:
    """A per-core instruction stream.

    ``ops[i].deps`` must only reference indices ``< i``; :meth:`validate`
    enforces this plus address alignment.

    ``memdep_hints`` are (load_pc, store_pc) pairs of statically known
    store→load dependences (e.g. the argument-passing idiom); the core
    pre-trains its StoreSet predictor with them, modelling the warmed-up
    predictor state of the paper's measurement window (which starts
    after a warm-up phase).
    """

    ops: List[Op] = field(default_factory=list)
    memdep_hints: List[Tuple[int, int]] = field(default_factory=list)

    def append(self, op: Op) -> int:
        """Append an op, returning its trace index."""
        self.ops.append(op)
        return len(self.ops) - 1

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, i: int) -> Op:
        return self.ops[i]

    def validate(self, word_bytes: int = 8) -> None:
        """Raise ValueError if the trace is malformed."""
        for i, op in enumerate(self.ops):
            for dep in op.deps:
                if not 0 <= dep < i:
                    raise ValueError(
                        f"op {i} depends on {dep}, not an older op")
            if op.is_mem and op.addr % word_bytes:
                raise ValueError(
                    f"op {i} address 0x{op.addr:x} not {word_bytes}-aligned")

    @classmethod
    def from_ops(cls, ops: Sequence[Op]) -> "Trace":
        trace = cls(list(ops))
        trace.validate()
        return trace
