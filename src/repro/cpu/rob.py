"""The reorder buffer (ROB).

Holds every in-flight instruction in program order from dispatch to
retirement.  Completion is tracked per entry; retirement is strictly
in-order from the head, gated by the consistency policy for loads and by
store-buffer state for fences.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.cpu.isa import Op


class RobEntry:
    """One instruction in flight."""

    __slots__ = ("seq", "op", "completed", "issued", "deps_left",
                 "issue_epoch")

    def __init__(self, seq: int, op: Op) -> None:
        self.seq = seq
        self.op = op
        self.completed = False
        self.issued = False
        self.deps_left = 0
        self.issue_epoch = 0

    def __lt__(self, other: "RobEntry") -> bool:
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "+" if self.completed else ("~" if self.issued else "-")
        return f"<rob {self.seq}{flag}>"


class ReorderBuffer:
    """Program-ordered window of in-flight instructions."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[RobEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def __iter__(self) -> Iterator[RobEntry]:
        return iter(self._entries)

    def allocate(self, seq: int, op: Op) -> RobEntry:
        if self.full:
            raise RuntimeError("ROB full")
        if self._entries and self._entries[-1].seq >= seq:
            raise RuntimeError("ROB allocation out of program order")
        entry = RobEntry(seq, op)
        self._entries.append(entry)
        return entry

    def head(self) -> Optional[RobEntry]:
        return self._entries[0] if self._entries else None

    def tail_seq(self) -> Optional[int]:
        return self._entries[-1].seq if self._entries else None

    def retire_head(self) -> RobEntry:
        head = self.head()
        if head is None or not head.completed:
            raise RuntimeError("ROB head not retirable")
        return self._entries.popleft()

    def squash_from(self, seq: int) -> List[RobEntry]:
        """Remove all entries with ``seq >= seq``, youngest first."""
        removed: List[RobEntry] = []
        while self._entries and self._entries[-1].seq >= seq:
            entry = self._entries.pop()
            entry.issue_epoch += 1
            removed.append(entry)
        return removed
