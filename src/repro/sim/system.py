"""Multicore system assembly and simulation driver.

:func:`simulate` is the main entry point of the performance model: give
it per-core traces and a consistency-model name, get back a
:class:`~repro.sim.stats.SystemStats` with the paper's metrics.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.sim.config import SKYLAKE_LIKE, SystemConfig
from repro.sim.engine import Engine
from repro.sim.stats import SystemStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.isa import Trace
    from repro.cpu.pipeline import Core


class System:
    """A simulated multicore: N cores + coherent memory hierarchy."""

    __slots__ = ("config", "policy_name", "engine", "_use_stop",
                 "probe_bus", "memory", "cores", "memory_data",
                 "_unfinished", "faults")

    def __init__(self, traces: Sequence["Trace"], policy_name: str,
                 config: Optional[SystemConfig] = None,
                 detect_violations: bool = False,
                 warm_caches: object = True,
                 initial_memory: Optional[Dict[int, int]] = None,
                 trace_pipeline: bool = False,
                 engine: Optional[Engine] = None,
                 probes=None, faults=None) -> None:
        from repro.coherence.mesi import CoherentMemorySystem
        from repro.coherence.warmup import warm_from_traces
        from repro.core.policies import make_policy
        from repro.cpu.pipeline import Core

        if not traces:
            raise ValueError("need at least one trace")
        base = config or SKYLAKE_LIKE
        if len(traces) > base.cores:
            raise ValueError(
                f"{len(traces)} traces but only {base.cores} cores")
        self.config = base.with_cores(max(len(traces), 1))
        self.policy_name = policy_name
        # An injected engine (e.g. a reference implementation in a
        # benchmark) may lack the stop-sentinel fast path; fall back to
        # predicate-polled termination for those.
        self.engine = engine if engine is not None else Engine()
        self._use_stop = getattr(self.engine, "supports_stop", False)
        self.probe_bus = probes  # None => every component uses NULL_BUS
        self.memory = CoherentMemorySystem(self.engine, self.config,
                                           probes=probes)
        if warm_caches:
            # The paper measures after a warm-up phase; install working
            # sets functionally before the cores exist (so no squash
            # listeners fire).  Pass a list of traces to warm from a
            # separate warm-up workload, or True to self-warm.
            warm = traces if warm_caches is True else warm_caches
            warm_from_traces(self.memory, warm)
        self.cores: List["Core"] = []
        # Shared functional memory image (value layer).
        self.memory_data: Dict[int, int] = dict(initial_memory or {})
        self._unfinished = 0
        for core_id, trace in enumerate(traces):
            policy = make_policy(policy_name)
            tracer = None
            if trace_pipeline:
                from repro.sim.pipetrace import PipeTracer
                tracer = PipeTracer()
            core = Core(self.engine, core_id, self.config, trace,
                        self.memory.controller(core_id), policy,
                        on_finish=self._core_finished,
                        detect_violations=detect_violations,
                        memory_data=self.memory_data, tracer=tracer,
                        probes=probes)
            self.cores.append(core)
            self._unfinished += 1
        # Deterministic fault injection (repro.resilience.faults): wire
        # the plan's hooks last, once every component exists.  None (the
        # default) leaves every hook site on its zero-cost path.
        self.faults = faults
        if faults is not None:
            faults.install(self)

    def _core_finished(self, core: "Core") -> None:
        self._unfinished -= 1
        if self._unfinished == 0 and self._use_stop:
            self.engine.stop()

    @staticmethod
    def _describe_core(core: "Core") -> str:
        ctrl = core.controller
        return (f"  core {core.core_id}: finished={core.finished} "
                f"sleeping={core._sleeping} fetch={core.fetch_idx}/"
                f"{len(core.trace)} rob={len(core.rob)} lq={len(core.lq)} "
                f"sb={len(core.sb)} ready={len(core.ready)} "
                f"barrier={core.barrier_seq} txns={list(ctrl.txns)} "
                f"txn_queue={len(ctrl.txn_queue)} "
                f"rob_head={core.rob.head()!r}")

    @property
    def done(self) -> bool:
        return self._unfinished == 0

    def _resume_after_checkpoint(self) -> None:
        """Unpause dispatch and wake every unfinished core.

        Called in exactly two places — after an in-process checkpoint
        capture and at the end of :func:`repro.snapshot.restore` — so a
        resumed run and a restored run issue the same wakes in the same
        order with the same engine seq numbers.

        Also purges squash residue: a squash leaves epoch-dead entries
        behind in ``ready`` / ``consumers`` / ``deferred_on_store`` /
        ``deferred_on_fence`` that the pipeline only discards lazily.
        With the ROB empty (guaranteed at a quiescent point) every such
        entry is dead, and a *restored* system starts without them —
        clearing them here keeps the continuing run bit-identical to a
        run resumed from the snapshot just captured.
        """
        for core in self.cores:
            core.dispatch_paused = False
            if core.rob.empty:
                core.ready.clear()
                core.consumers.clear()
                core.deferred_on_store.clear()
                core.deferred_on_fence.clear()
            if not core.finished:
                core._wake()

    def _run_checkpointed(self, max_cycles: int, checkpoint_every: int,
                          on_checkpoint) -> None:
        """Segmented run: every ``checkpoint_every`` cycles, pause
        dispatch, drain to a quiescent point, hand a snapshot to
        ``on_checkpoint``, resume.

        The drains perturb timing (a few bubble cycles per segment), so
        a checkpointed run is its *own* deterministic mode: two runs
        with the same ``checkpoint_every`` are byte-identical, and a
        crash resumed from any of the snapshots finishes with exactly
        the stats the uninterrupted checkpointed run produces — but the
        stats differ (slightly) from a ``checkpoint_every=None`` run.
        """
        from repro.snapshot import capture, is_quiescent
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        engine = self.engine
        deadline = engine.now + max_cycles
        while not self.done and engine.now < deadline:
            budget = min(checkpoint_every, deadline - engine.now)
            if self._use_stop:
                engine.run(max_cycles=budget)
            else:
                engine.run(until=lambda: self.done, max_cycles=budget)
            if self.done or engine.now >= deadline:
                break
            for core in self.cores:
                core.dispatch_paused = True
            engine.run(until=lambda: is_quiescent(self),
                       max_cycles=deadline - engine.now)
            if not self.done and is_quiescent(self):
                if on_checkpoint is not None:
                    on_checkpoint(capture(self))
                self._resume_after_checkpoint()
            else:
                for core in self.cores:
                    core.dispatch_paused = False

    def run(self, max_cycles: int = 500_000_000,
            checkpoint_every: Optional[int] = None,
            on_checkpoint=None) -> SystemStats:
        """Run to completion (every core retired its whole trace and
        drained its SB).  Raises on deadlock or cycle-budget overrun.

        With ``checkpoint_every=N``, the run drains to a quiescent
        point every ~N cycles and passes a
        :class:`~repro.snapshot.state.Snapshot` to ``on_checkpoint``
        (see :meth:`_run_checkpointed` for the determinism contract).
        """
        for core in self.cores:
            core.start()
        if checkpoint_every is not None:
            self._run_checkpointed(max_cycles, checkpoint_every,
                                   on_checkpoint)
        elif self._use_stop:
            self.engine.run(max_cycles=max_cycles)
        else:
            self.engine.run(until=lambda: self.done, max_cycles=max_cycles)
        if not self.done:
            if self.engine.pending == 0:
                raise RuntimeError(
                    f"deadlock: no pending events but "
                    f"{self._unfinished} cores unfinished "
                    f"(policy={self.policy_name})\n"
                    + "\n".join(self._describe_core(c) for c in self.cores))
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles "
                f"(policy={self.policy_name})")
        stats = SystemStats()
        stats.execution_cycles = max(c.stats.cycles for c in self.cores)
        for core in self.cores:
            stats.per_core[core.core_id] = core.stats
            gate = getattr(core.policy, "gate", None)
            if gate is not None:
                # Surface the RetireGate's own bookkeeping into the
                # core's stats and cross-check the pipeline-side count.
                if gate.closes != core.stats.gate_closes:
                    raise RuntimeError(
                        f"core {core.core_id}: RetireGate.closes="
                        f"{gate.closes} disagrees with stats.gate_closes="
                        f"{core.stats.gate_closes}")
                core.stats.gate_opens = gate.opens
                core.stats.gate_lock_cycles = gate.lock_cycles
                core.stats.gate_lock_by_key = dict(gate.lock_cycles_by_key)
        stats.invalidations_sent = self.memory.stats_invalidations
        stats.evictions = self.memory.stats_evictions
        stats.network_messages = dict(self.memory.network.stats.messages)
        if self.config.strict or \
                os.environ.get("REPRO_STRICT", "0") not in ("", "0"):
            # Strict mode: a full runtime invariant sweep at end of run
            # (the test suite's conftest enables it globally).
            from repro.resilience.invariants import check_system
            check_system(self)
        stats.validate()
        return stats


def simulate(traces: Sequence["Trace"], policy: str,
             config: Optional[SystemConfig] = None,
             detect_violations: bool = False,
             warm_caches: object = True,
             max_cycles: int = 500_000_000) -> SystemStats:
    """Build a system, run the traces under ``policy``, return stats.

    Args:
        traces: one instruction trace per core.
        policy: a configuration name from
            :data:`repro.core.policies.POLICY_ORDER`.
        config: system parameters (defaults to the paper's Table III).
        detect_violations: enable the store-atomicity violation witness
            (Section III); useful for x86 vs 370 comparisons.
        warm_caches: functionally pre-install the traces' working sets
            (models the paper's post-warm-up measurement window).
        max_cycles: safety bound.
    """
    return System(traces, policy, config, detect_violations,
                  warm_caches).run(max_cycles)


def compare_policies(traces: Sequence["Trace"],
                     policies: Optional[Sequence[str]] = None,
                     config: Optional[SystemConfig] = None
                     ) -> Dict[str, SystemStats]:
    """Run the same traces under several policies (default: all five of
    the paper) and return ``{policy_name: stats}``."""
    from repro.core.policies import POLICY_ORDER
    results: Dict[str, SystemStats] = {}
    for name in (policies or POLICY_ORDER):
        results[name] = simulate(traces, name, config)
    return results
