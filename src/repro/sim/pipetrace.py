"""Pipeline tracing: per-instruction timelines (a classic "pipetrace").

Attach a :class:`PipeTracer` to a core to record when each dynamic
instruction was dispatched, issued, completed, and retired — including
re-executed incarnations after squashes.  The text renderer prints a
compact timeline useful for debugging gate stalls, forwarding windows,
and squash storms:

    seq kind    D      I      C      R    notes
      0 store   0      1      3      5
      1 load    0      1      5      6    SLF
      2 load    0      2      7     42    gate-blocked 30
      ...

Enable via ``Core(..., tracer=PipeTracer())`` or
``System(..., trace_pipeline=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cpu.isa import KIND_NAMES


@dataclass(slots=True)
class InstructionRecord:
    """One dynamic incarnation of a trace instruction."""

    seq: int
    kind: str
    incarnation: int = 0
    dispatched: Optional[int] = None
    issued: Optional[int] = None
    completed: Optional[int] = None
    retired: Optional[int] = None
    squashed: Optional[int] = None
    squash_reason: str = ""
    slf: bool = False
    gate_blocked_cycles: int = 0

    @property
    def alive(self) -> bool:
        return self.squashed is None and self.retired is None


class PipeTracer:
    """Records instruction lifecycles for one core."""

    __slots__ = ("records", "_live", "_incarnations", "limit")

    def __init__(self, limit: int = 100_000) -> None:
        self.records: List[InstructionRecord] = []
        self._live: Dict[int, InstructionRecord] = {}  # seq -> record
        self._incarnations: Dict[int, int] = {}
        self.limit = limit

    # -- hooks called by the pipeline -----------------------------------

    def on_dispatch(self, seq: int, kind: int, cycle: int) -> None:
        if len(self.records) >= self.limit:
            return
        incarnation = self._incarnations.get(seq, 0)
        record = InstructionRecord(seq=seq, kind=KIND_NAMES[kind],
                                   incarnation=incarnation,
                                   dispatched=cycle)
        self.records.append(record)
        self._live[seq] = record

    def on_issue(self, seq: int, cycle: int) -> None:
        record = self._live.get(seq)
        if record is not None and record.issued is None:
            record.issued = cycle

    def on_complete(self, seq: int, cycle: int, slf: bool = False) -> None:
        record = self._live.get(seq)
        if record is not None:
            record.completed = cycle
            record.slf = record.slf or slf

    def on_retire(self, seq: int, cycle: int,
                  gate_blocked: int = 0) -> None:
        record = self._live.pop(seq, None)
        if record is not None:
            record.retired = cycle
            record.gate_blocked_cycles = gate_blocked

    def on_squash(self, from_seq: int, cycle: int, reason: str) -> None:
        for seq, record in list(self._live.items()):
            if seq >= from_seq:
                record.squashed = cycle
                record.squash_reason = reason
                self._incarnations[seq] = record.incarnation + 1
                del self._live[seq]

    # -- queries / rendering ---------------------------------------------

    def retired_records(self) -> List[InstructionRecord]:
        return [r for r in self.records if r.retired is not None]

    def squashed_records(self) -> List[InstructionRecord]:
        return [r for r in self.records if r.squashed is not None]

    def record_for(self, seq: int,
                   incarnation: int = -1) -> Optional[InstructionRecord]:
        matches = [r for r in self.records if r.seq == seq]
        if not matches:
            return None
        return matches[incarnation]

    def render(self, start: int = 0, count: int = 50) -> str:
        header = (f"{'seq':>5} {'inc':>3} {'kind':6} {'D':>7} {'I':>7} "
                  f"{'C':>7} {'R':>7}  notes")
        lines = [header, "-" * len(header)]

        def fmt(value: Optional[int]) -> str:
            return str(value) if value is not None else "-"

        for record in self.records[start:start + count]:
            notes = []
            if record.slf:
                notes.append("SLF")
            if record.gate_blocked_cycles:
                notes.append(f"gate-blocked {record.gate_blocked_cycles}")
            if record.squashed is not None:
                notes.append(f"squashed@{record.squashed}"
                             f"({record.squash_reason})")
            lines.append(
                f"{record.seq:>5} {record.incarnation:>3} "
                f"{record.kind:6} {fmt(record.dispatched):>7} "
                f"{fmt(record.issued):>7} {fmt(record.completed):>7} "
                f"{fmt(record.retired):>7}  {' '.join(notes)}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        retired = self.retired_records()
        if not retired:
            return {"retired": 0, "squashed": len(self.squashed_records()),
                    "avg_latency": 0.0}
        latency = [r.retired - r.dispatched for r in retired
                   if r.dispatched is not None]
        return {
            "retired": len(retired),
            "squashed": len(self.squashed_records()),
            "avg_latency": sum(latency) / len(latency) if latency else 0.0,
        }
