"""Per-core and system-wide statistics.

These counters implement the exact metrics reported in the paper:

* Table IV columns: retired instructions, retired loads, forwarded (SLF)
  loads, gate-stall episodes and cycles, re-executed instructions.
* Figure 9: cycles in which dispatch cannot make progress because the
  ROB, LQ, or SQ/SB is full.
* Figure 10: execution time (cycles of the slowest core).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass(slots=True)
class CoreStats:
    """Counters collected by one core during a run."""

    cycles: int = 0
    retired_instructions: int = 0
    retired_loads: int = 0
    retired_stores: int = 0
    slf_loads: int = 0                 # loads performed via forwarding
    gate_closes: int = 0               # times the retire gate was closed
    gate_opens: int = 0                # times it reopened (== closes at EOR)
    gate_lock_cycles: int = 0          # total cycles the gate was closed
    gate_stall_events: int = 0         # instructions that stalled at ROB head
    gate_stall_cycles: int = 0         # total cycles the head was gate-blocked
    sb_wait_events: int = 0            # 370-NoSpec: loads made to wait for L1 write
    sb_wait_cycles: int = 0
    slf_retire_stall_events: int = 0   # SLFSpec: SLF loads blocked at head
    slf_retire_stall_cycles: int = 0
    squashes: int = 0                  # squash episodes (all causes)
    squashes_inval: int = 0
    squashes_evict: int = 0
    squashes_memdep: int = 0
    squashes_fault: int = 0            # injected (repro.resilience.faults)
    reexecuted_instructions: int = 0   # instrs flushed & re-dispatched
    stall_cycles_rob: int = 0          # dispatch blocked: ROB full
    stall_cycles_lq: int = 0           # dispatch blocked: LQ full
    stall_cycles_sq: int = 0           # dispatch blocked: SQ/SB full
    loads_issued: int = 0
    l1_load_hits: int = 0
    store_atomicity_violations: int = 0  # x86 only: detected would-be violations
    # Cycles the gate was held closed, broken down by locking SB key —
    # the per-key lock durations of the RetireGate, surfaced post-run.
    gate_lock_by_key: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics (Table IV / Section VI-A)
    # ------------------------------------------------------------------

    @property
    def loads_pct(self) -> float:
        """Retired loads as a percentage of retired instructions."""
        return _pct(self.retired_loads, self.retired_instructions)

    @property
    def forwarded_pct(self) -> float:
        """SLF loads as a percentage of retired instructions."""
        return _pct(self.slf_loads, self.retired_instructions)

    @property
    def gate_stalls_pct(self) -> float:
        """Instructions that stalled at ROB head behind a closed gate (%)."""
        return _pct(self.gate_stall_events, self.retired_instructions)

    @property
    def avg_gate_stall_cycles(self) -> float:
        """Average cycles per gate-stall episode (Table IV col 6)."""
        if self.gate_stall_events == 0:
            return 0.0
        return self.gate_stall_cycles / self.gate_stall_events

    @property
    def reexecuted_pct(self) -> float:
        """Re-executed instructions as % of retired instructions."""
        return _pct(self.reexecuted_instructions, self.retired_instructions)

    @property
    def stall_pct(self) -> Dict[str, float]:
        """Figure 9: percentage of cycles stalled on each full structure."""
        return {
            "ROB": _pct(self.stall_cycles_rob, self.cycles),
            "LQ": _pct(self.stall_cycles_lq, self.cycles),
            "SQ/SB": _pct(self.stall_cycles_sq, self.cycles),
        }

    def merge(self, other: "CoreStats") -> None:
        """Accumulate another core's counters into this one (everything
        sums, including cycles, so ratio metrics like stall percentages
        become per-core-cycle averages) — used for whole-system totals.
        The per-key lock breakdown sums key-wise."""
        for f in fields(other):
            name = f.name
            value = getattr(other, name)
            if name == "gate_lock_by_key":
                mine = self.gate_lock_by_key
                for key, cycles in value.items():
                    mine[key] = mine.get(key, 0) + cycles
            else:
                setattr(self, name, getattr(self, name) + value)

    def to_dict(self) -> Dict:
        """All counters as a plain dict.  Every scalar is an int and the
        one mapping gets string keys, so the JSON round-trip through
        :meth:`from_dict` is exact — the sweep result cache relies on
        this."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["gate_lock_by_key"] = {
            str(k): v for k, v in sorted(self.gate_lock_by_key.items())}
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "CoreStats":
        data = dict(data)
        data["gate_lock_by_key"] = {
            int(k): v
            for k, v in data.get("gate_lock_by_key", {}).items()}
        return cls(**data)


@dataclass(slots=True)
class SystemStats:
    """Aggregated statistics for one simulation run."""

    per_core: Dict[int, CoreStats] = field(default_factory=dict)
    execution_cycles: int = 0          # cycle the last core finished
    invalidations_sent: int = 0
    evictions: int = 0
    # Interconnect traffic (message counts by class) — used to check the
    # paper's Section VI claim that the proposal adds no extra snoops.
    network_messages: Dict[str, int] = field(default_factory=dict)
    # Leakage report attached by repro.leakage.leak_run (empty — and
    # absent from to_dict() — on every unobserved run, so existing
    # serialized stats stay byte-identical).
    leakage: Dict = field(default_factory=dict)

    @property
    def network_total(self) -> int:
        return sum(self.network_messages.values())

    @property
    def total(self) -> CoreStats:
        """Sum of all per-core counters (``cycles`` is the sum of core
        cycles; use :attr:`execution_cycles` for wall-clock time)."""
        agg = CoreStats()
        for stats in self.per_core.values():
            agg.merge(stats)
        return agg

    def to_dict(self) -> Dict:
        """JSON-serializable form; exact under round-trip (all counters
        are ints).  Core ids become string keys, as JSON requires."""
        out = {
            "per_core": {str(cid): stats.to_dict()
                         for cid, stats in self.per_core.items()},
            "execution_cycles": self.execution_cycles,
            "invalidations_sent": self.invalidations_sent,
            "evictions": self.evictions,
            "network_messages": dict(self.network_messages),
        }
        if self.leakage:
            out["leakage"] = dict(self.leakage)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SystemStats":
        return cls(
            per_core={int(cid): CoreStats.from_dict(stats)
                      for cid, stats in data["per_core"].items()},
            execution_cycles=data["execution_cycles"],
            invalidations_sent=data["invalidations_sent"],
            evictions=data["evictions"],
            network_messages=dict(data["network_messages"]),
            leakage=dict(data.get("leakage", {})),
        )

    def to_json(self, indent: int = None) -> str:
        """The :meth:`to_dict` form as a JSON string (``repro bench
        --json`` / ``repro replay --json``)."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def validate(self) -> None:
        """Cross-check the gate counters for internal consistency.

        For each core, at end of run:

        * every close was matched by an open (the gate cannot outlive
          the run: the SB must drain before a core finishes);
        * the head cannot have been gate-blocked for longer than the
          gate was actually held closed (in-order retirement means the
          blocked head retires the same cycle the gate opens);
        * the per-key lock breakdown sums to the lock total;
        * squash episodes sum across the per-reason counters (inval,
          evict, memdep, fault) — every squash has exactly one cause.

        Raises ``AssertionError`` with the offending core on violation.
        """
        for cid, stats in self.per_core.items():
            by_reason = (stats.squashes_inval + stats.squashes_evict
                         + stats.squashes_memdep + stats.squashes_fault)
            if by_reason != stats.squashes:
                raise AssertionError(
                    f"core {cid}: per-reason squashes {by_reason} != "
                    f"squashes={stats.squashes}")
            if stats.gate_closes != stats.gate_opens:
                raise AssertionError(
                    f"core {cid}: gate_closes={stats.gate_closes} != "
                    f"gate_opens={stats.gate_opens}")
            if stats.gate_stall_cycles > stats.gate_lock_cycles:
                raise AssertionError(
                    f"core {cid}: gate_stall_cycles="
                    f"{stats.gate_stall_cycles} exceeds gate_lock_cycles="
                    f"{stats.gate_lock_cycles}")
            by_key = sum(stats.gate_lock_by_key.values())
            if by_key != stats.gate_lock_cycles:
                raise AssertionError(
                    f"core {cid}: per-key lock cycles {by_key} != "
                    f"gate_lock_cycles={stats.gate_lock_cycles}")


def _pct(num: int, den: int) -> float:
    return 100.0 * num / den if den else 0.0


def partial_stats(per_core: Dict[int, CoreStats], cycle: int,
                  unfinished: int) -> Dict:
    """A JSON-safe progress document for a run still in flight.

    Emitted at every checkpoint of a ``checkpoint_every`` run
    (:meth:`repro.sim.system.System.run`) and streamed to clients
    through the serve API's long-poll as the ``progress`` field of a
    running job.  Deliberately *not* a :class:`SystemStats`: mid-run
    counters do not satisfy :meth:`SystemStats.validate` (cycles are
    still 0 on unfinished cores, stall attribution is mid-episode), so
    partial progress gets its own shape instead of a relaxed variant of
    the final one.
    """
    retired = sum(s.retired_instructions for s in per_core.values())
    return {
        "cycle": cycle,
        "cores": len(per_core),
        "unfinished": unfinished,
        "retired_instructions": retired,
        "per_core_retired": {str(cid): s.retired_instructions
                             for cid, s in sorted(per_core.items())},
    }
