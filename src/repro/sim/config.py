"""System configuration (paper Table III).

The default :data:`SKYLAKE_LIKE` configuration mirrors the simulated
system of the paper: 8 Skylake-like out-of-order cores, private L1/L2,
a shared banked L3 with a full-map directory, and a fully-connected
interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Out-of-order core parameters (paper Table III, 'Processor')."""

    issue_width: int = 5
    retire_width: int = 5
    rob_entries: int = 224
    lq_entries: int = 72
    sq_sb_entries: int = 56          # combined store queue + store buffer
    mispredict_penalty: int = 14     # front-end redirect cycles
    branch_predictor: bool = True    # TAGE (L-TAGE-style) predictor
    mshrs: int = 16                  # outstanding load misses per core
    forward_latency: int = 4         # store-to-load forward, ~= L1 hit
    storeset_size: int = 4096        # StoreSet SSIT entries [Chrysos & Emer]
    storeset_lfst: int = 128
    # Squash speculative loads on L1 castouts too (not just hierarchy
    # evictions).  The paper's eviction rule (Section IV) needs only the
    # coherence-visibility level; L1-level squashing is provided as an
    # ablation (see benchmarks/bench_ablations.py).
    l1_evict_squash: bool = False


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """A single set-associative cache level."""

    size_bytes: int
    ways: int
    hit_latency: int
    line_bytes: int = 64

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass(frozen=True, slots=True)
class MemoryConfig:
    """Memory hierarchy parameters (paper Table III, 'Memory')."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, 8, 12))
    l3_bank: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 8, 35))
    l3_banks: int = 8
    memory_latency: int = 160
    # SB-drain bandwidth: cycles to commit a store whose line is already
    # owned (M/E) — one L1 write access, as in the paper's GEMS model.
    # Coherence misses still pay the full protocol latency on top.
    store_commit_latency: int = 4
    prefetcher: bool = True          # stride L1 prefetcher
    prefetch_degree: int = 2


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Interconnect parameters (paper Table III, 'Network').

    The topology is fully connected, so a message is one switch-to-switch
    hop plus serialization of its flits.
    """

    switch_latency: int = 6
    data_flits: int = 5
    control_flits: int = 1

    @property
    def control_latency(self) -> int:
        return self.switch_latency + self.control_flits

    @property
    def data_latency(self) -> int:
        return self.switch_latency + self.data_flits


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Complete simulated-system configuration."""

    cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    # Strict mode: every System.run() ends with a full runtime invariant
    # sweep (repro.resilience.invariants.check_system) on top of the
    # always-on stats validation.  Also switchable globally with the
    # REPRO_STRICT environment variable (the test suite sets it).
    strict: bool = False

    def with_cores(self, n: int) -> "SystemConfig":
        return replace(self, cores=n)


#: The paper's simulated system (Table III).
SKYLAKE_LIKE = SystemConfig()

#: A small configuration for fast unit tests.
TINY = SystemConfig(
    cores=2,
    core=CoreConfig(rob_entries=32, lq_entries=12, sq_sb_entries=8,
                    mshrs=4),
    memory=MemoryConfig(
        l1=CacheConfig(4 * 1024, 2, 4),
        l2=CacheConfig(16 * 1024, 4, 12),
        l3_bank=CacheConfig(64 * 1024, 8, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)
