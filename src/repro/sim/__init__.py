"""Simulation kernel: event engine, system configuration, statistics."""

from repro.sim.config import SKYLAKE_LIKE, TINY, SystemConfig
from repro.sim.engine import Engine
from repro.sim.pipetrace import PipeTracer
from repro.sim.stats import CoreStats, SystemStats
from repro.sim.system import System, compare_policies, simulate

__all__ = ["Engine", "PipeTracer", "SystemConfig", "SKYLAKE_LIKE", "TINY", "CoreStats",
           "SystemStats", "System", "simulate", "compare_policies"]
