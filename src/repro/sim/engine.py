"""Discrete-event simulation kernel.

The whole performance model (out-of-order cores, coherence protocol,
interconnect) is driven by a single :class:`Engine`: a monotonically
increasing cycle counter plus a set of scheduled callbacks.

Cores tick cycle-by-cycle while they have work; a core that is fully
stalled (e.g. waiting for a cache miss or for the store buffer to drain)
deregisters its tick and is woken by the event that unblocks it.  This
keeps long memory stalls cheap to simulate while preserving exact cycle
accounting.

Fast path
---------

Every event is totally ordered by ``(time, seq)`` where ``seq`` is a
global insertion counter — that order is the determinism contract and
is never violated.  Three structures hold pending events:

* ``_bucket_now``  — events at the current cycle (delay-0 schedules);
* ``_bucket_next`` — events at the next cycle (delay-1 schedules, i.e.
  the per-cycle core ticks — the hottest class of event);
* ``_heap``        — everything further out (cache fills, network
  deliveries, execution latencies).

Appending to / popping from the two deques is O(1), so the per-cycle
core ticks never touch the heap; within each deque, FIFO order *is*
``seq`` order, and any heap event landing on the same cycle necessarily
carries an older ``seq`` (it was pushed at least two cycles earlier), so
a cheap head comparison reproduces the exact global order a pure heap
would produce.

Termination uses a stop sentinel (:meth:`stop`) instead of polling an
``until()`` closure on every event; the legacy ``until=`` argument is
still honoured for callers that need predicate-based termination.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

_Event = Tuple[int, int, Callable[..., Any], tuple]


class Engine:
    """A deterministic discrete-event engine with integer cycle time."""

    #: Signals callers (e.g. :class:`repro.sim.system.System`) that this
    #: engine supports :meth:`stop`-based termination, avoiding the
    #: per-event ``until()`` predicate call.
    supports_stop = True

    __slots__ = ("now", "_queue", "_bucket_now", "_bucket_next", "_seq",
                 "_stopped", "events_dispatched", "event_hook")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[_Event] = []
        self._bucket_now: Deque[_Event] = deque()
        self._bucket_next: Deque[_Event] = deque()
        self._seq: int = 0  # tie-breaker for deterministic ordering
        self._stopped = False
        self.events_dispatched: int = 0  # lifetime dispatch counter
        # Optional no-arg callable invoked after every dispatched event
        # (the per-event mode of the resilience watchdog).  Bound once at
        # the top of :meth:`run`, so it must be set before running; when
        # None, each event pays one local truthiness test.
        self.event_hook: Optional[Callable[[], None]] = None

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` cycles from now (delay may be 0)."""
        self._seq += 1
        if delay == 1:
            self._bucket_next.append((self.now + 1, self._seq, fn, args))
        elif delay == 0:
            self._bucket_now.append((self.now, self._seq, fn, args))
        elif delay > 1:
            heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))
        else:
            raise ValueError(f"negative delay: {delay}")

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event at cycle {time}: the engine "
                f"is already at cycle {self.now}")
        self.schedule(time - self.now, fn, *args)

    def stop(self) -> None:
        """Request termination: :meth:`run` returns before dispatching
        the next event.  The flag is sticky (a later :meth:`run` on a
        stopped engine returns immediately), mirroring a terminal
        ``until()`` predicate."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return (len(self._queue) + len(self._bucket_now)
                + len(self._bucket_next))

    # ------------------------------------------------------------------
    # Snapshot support (repro.snapshot)
    # ------------------------------------------------------------------

    def pending_events(self) -> List[_Event]:
        """Every undispatched ``(time, seq, fn, args)`` in global
        ``(time, seq)`` order — the queue residue a snapshot captures at
        a quiescent point."""
        events = (list(self._bucket_now) + list(self._bucket_next)
                  + list(self._queue))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    def restore_queue(self, now: int, seq: int,
                      events: List[_Event]) -> None:
        """Reinstall a captured clock, seq counter, and queue residue.

        Events are re-routed by distance (``now`` → bucket_now,
        ``now + 1`` → bucket_next, further out → heap) in seq order.
        That re-establishes the ordering invariant the run loop relies
        on: FIFO order inside each bucket is seq order, and every heap
        event is at least two cycles out, so any event the heap later
        surfaces on the current or next cycle carries a smaller seq than
        anything scheduled there since the restore.
        """
        for event in events:
            if event[0] < now:
                raise ValueError(
                    f"cannot restore an event at cycle {event[0]}: the "
                    f"restored clock is {now}")
            if event[1] > seq:
                raise ValueError(
                    f"restored event seq {event[1]} is ahead of the "
                    f"restored seq counter {seq}")
        self.now = now
        self._seq = seq
        self._stopped = False
        self._bucket_now = deque()
        self._bucket_next = deque()
        self._queue = []
        for event in sorted(events, key=lambda e: (e[0], e[1])):
            if event[0] == now:
                self._bucket_now.append(event)
            elif event[0] == now + 1:
                self._bucket_next.append(event)
            else:
                self._queue.append(event)
        heapq.heapify(self._queue)

    # ------------------------------------------------------------------

    def _advance(self, time: int) -> None:
        """Move the clock to ``time`` (> now), rolling the next-cycle
        bucket over.  If ``_bucket_next`` is non-empty the earliest
        pending event is at ``now + 1``, so ``time`` can only be
        ``now + 1`` and the rollover is a plain swap."""
        self.now = time
        if self._bucket_next:
            self._bucket_now, self._bucket_next = (self._bucket_next,
                                                   self._bucket_now)

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue empty."""
        queue = self._queue
        best: Optional[_Event] = queue[0] if queue else None
        bucket = None
        for candidate_bucket in (self._bucket_now, self._bucket_next):
            if candidate_bucket and (best is None
                                     or candidate_bucket[0][:2] < best[:2]):
                best = candidate_bucket[0]
                bucket = candidate_bucket
        if best is None:
            return False
        if bucket is None:
            heapq.heappop(queue)
        else:
            bucket.popleft()
        time, _, fn, args = best
        if time < self.now:  # pragma: no cover - invariant guard
            raise RuntimeError(
                f"event scheduled in the past (event at {time}, "
                f"now {self.now})")
        if time > self.now:
            self._advance(time)
        self.events_dispatched += 1
        fn(*args)
        if self.event_hook is not None:
            self.event_hook()
        return True

    def run(self, until: Callable[[], bool] = None,
            max_cycles: int = None) -> int:
        """Run events until :meth:`stop` is called, the queue drains,
        ``until()`` becomes true, or ``max_cycles`` is exceeded.
        Returns the final cycle count.

        When the cycle budget is exhausted the clock is left at the
        deadline and every still-queued event strictly after it remains
        queued; the engine stays consistent and can be reused (more
        events scheduled, ``run`` called again) without ever seeing an
        event in the past.
        """
        deadline = None if max_cycles is None else self.now + max_cycles
        queue = self._queue
        heappop = heapq.heappop
        now = self.now
        hook = self.event_hook
        dispatched = 0
        try:
            while True:
                if self._stopped:
                    break
                if until is not None and until():
                    break
                bucket_now = self._bucket_now
                if bucket_now:
                    # Same-cycle events: a heap event on this cycle was
                    # necessarily pushed >= 2 cycles ago and so precedes
                    # (smaller seq) everything in the bucket.
                    if queue and queue[0][0] == now:
                        event = heappop(queue)
                    else:
                        event = bucket_now.popleft()
                    dispatched += 1
                    event[2](*event[3])
                    if hook is not None:
                        hook()
                    continue
                # Advance-the-clock path: find the earliest next event.
                bucket_next = self._bucket_next
                if bucket_next:
                    # Heap events on cycle now+1 were pushed earlier and
                    # precede the bucket; on cycle now they precede it
                    # trivially.  Otherwise the bucket head is next.
                    if queue and queue[0][0] <= now + 1:
                        from_heap = True
                        next_time = queue[0][0]
                    else:
                        from_heap = False
                        next_time = now + 1
                    if deadline is not None and next_time > deadline:
                        if deadline > now:
                            self.now = now = deadline
                        break
                    event = heappop(queue) if from_heap \
                        else bucket_next.popleft()
                    if next_time > now:
                        self._advance(next_time)
                        now = next_time
                    dispatched += 1
                    event[2](*event[3])
                    if hook is not None:
                        hook()
                elif queue:
                    # Fused quiescent stretch: both buckets are empty, so
                    # every core is asleep and only far-out events remain
                    # (periodic ticks, long memory latencies).  Dispatch
                    # straight off the heap in a tight loop — one fused
                    # superevent per stretch, batch-advancing the clock —
                    # until an event schedules something near (a bucket
                    # fills) or a stop condition fires.  Check order per
                    # event matches the outer loop exactly, so dispatch
                    # order and counts are byte-identical.
                    bucket_now = self._bucket_now
                    next_time = queue[0][0]
                    if deadline is not None and next_time > deadline:
                        if deadline > now:
                            self.now = now = deadline
                        break
                    halted = False
                    while True:
                        event = heappop(queue)
                        if next_time > now:
                            # No bucket rollover needed: both buckets
                            # were empty when this stretch began.
                            self.now = now = next_time
                        dispatched += 1
                        event[2](*event[3])
                        if hook is not None:
                            hook()
                        if self._stopped or (until is not None
                                             and until()):
                            halted = True
                            break
                        if bucket_now or bucket_next or not queue:
                            break
                        next_time = queue[0][0]
                        if deadline is not None and next_time > deadline:
                            if deadline > now:
                                self.now = now = deadline
                            halted = True
                            break
                    if halted:
                        break
                else:
                    break  # drained
        finally:
            self.events_dispatched += dispatched
        return self.now
