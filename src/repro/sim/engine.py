"""Discrete-event simulation kernel.

The whole performance model (out-of-order cores, coherence protocol,
interconnect) is driven by a single :class:`Engine`: a monotonically
increasing cycle counter plus a priority queue of scheduled callbacks.

Cores tick cycle-by-cycle while they have work; a core that is fully
stalled (e.g. waiting for a cache miss or for the store buffer to drain)
deregisters its tick and is woken by the event that unblocks it.  This
keeps long memory stalls cheap to simulate while preserving exact cycle
accounting.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple


class Engine:
    """A deterministic discrete-event engine with integer cycle time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._seq: int = 0  # tie-breaker for deterministic ordering

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` cycles from now (delay may be 0)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        self.schedule(time - self.now, fn, *args)

    @property
    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._queue)

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue empty."""
        if not self._queue:
            return False
        time, _, fn, args = heapq.heappop(self._queue)
        if time < self.now:
            raise RuntimeError("event scheduled in the past")
        self.now = time
        fn(*args)
        return True

    def run(self, until: Callable[[], bool] = None, max_cycles: int = None) -> int:
        """Run events until the queue drains, ``until()`` becomes true, or
        ``max_cycles`` is exceeded.  Returns the final cycle count."""
        deadline = None if max_cycles is None else self.now + max_cycles
        while self._queue:
            if until is not None and until():
                break
            if deadline is not None and self._queue[0][0] > deadline:
                self.now = deadline
                break
            self.step()
        return self.now
