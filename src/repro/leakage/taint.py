"""Static taint propagation over micro-op traces.

A trace's dependence graph is known up front (``Op.deps`` are indices of
older ops), so secret-dependence is a single forward pass — no per-cycle
bookkeeping in the pipeline, which is what keeps leakage tracking
zero-overhead when off and timing-neutral when on.

Rules, in program order:

* a LOAD or RMW whose address is in the SECRET set produces a tainted
  value (it *reads* the secret) — its own seq becomes the provenance;
* any op with a value-tainted dependence produces a tainted value,
  inheriting the provenance of its first tainted dep;
* a memory op with any tainted dependence has a **tainted address**:
  deps gate address generation (see :class:`~repro.cpu.isa.Op`), so a
  tainted operand means the access pattern encodes the secret.

Address-tainted loads are the leak candidates: if one performs under an
open speculation window and the window later squashes, the line it
touched is a persistent, secret-dependent side effect — a transient
leak (Spectre).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.cpu import isa
from repro.cpu.isa import Trace

#: Provenance value for "not tainted".
UNTAINTED = -1


class TaintMap:
    """Per-op taint of one trace: value taint, address taint, and the
    seq of the originating secret read (provenance)."""

    __slots__ = ("value_tainted", "addr_tainted", "source")

    def __init__(self, trace: Trace, secret: Iterable[int]) -> None:
        secret_addrs = frozenset(secret)
        n = len(trace.ops)
        value_tainted: List[bool] = [False] * n
        addr_tainted: List[bool] = [False] * n
        source: List[int] = [UNTAINTED] * n
        for seq, op in enumerate(trace.ops):
            vt = False
            src = UNTAINTED
            for dep in op.deps:
                if value_tainted[dep]:
                    vt = True
                    src = source[dep]
                    break
            if op.is_mem and vt:
                addr_tainted[seq] = True
            if op.kind in (isa.LOAD, isa.RMW) and op.addr in secret_addrs:
                # Reading the secret dominates any dep-inherited taint:
                # this op *is* the provenance of everything downstream.
                vt = True
                src = seq
            value_tainted[seq] = vt
            source[seq] = src
        self.value_tainted = value_tainted
        self.addr_tainted = addr_tainted
        self.source = source

    def __len__(self) -> int:
        return len(self.value_tainted)

    @property
    def any_tainted(self) -> bool:
        return any(self.value_tainted)

    def tainted_loads(self) -> List[int]:
        """Seqs of address-tainted loads (the leak candidates)."""
        return [seq for seq, at in enumerate(self.addr_tainted) if at]
