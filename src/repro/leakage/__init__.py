"""Speculative-leakage observability (docs/LEAKAGE.md).

The pipeline knows exactly which loads are speculative and when they
squash; this package observes what those loads *leave behind* in the
cache hierarchy and the NoC — the transient-execution side channel.  It
is a pure observability layer on the ProbeBus: nothing here perturbs
simulation timing, and with no watcher attached every new probe site
costs one pointer compare (the bus's zero-overhead contract), so stats
stay byte-identical when leakage tracking is off.

Three pieces:

* :class:`~repro.leakage.taint.TaintMap` — static taint propagation
  over a trace's dependence graph from a set of SECRET addresses;
* :class:`~repro.leakage.watcher.LeakWatcher` — correlates
  ``load.perform`` / ``squash.*`` / ``slf.forward`` / ``sb.write_l1`` /
  ``cache.fill`` / ``prefetch.issue`` / ``noc.msg`` probes into leak
  candidates, confirmed transient leaks, and window histograms;
* :mod:`~repro.leakage.gadgets` — Spectre-style gadget workloads
  (bounds-check bypass and SLF-forwarding variants) that exercise the
  five policies' different speculation windows.

Entry point: :func:`~repro.leakage.watcher.leak_run`.
"""

from repro.leakage.gadgets import GADGET_CONFIG, GADGETS, Gadget
from repro.leakage.taint import TaintMap
from repro.leakage.watcher import (LeakCandidate, LeakReport, LeakSession,
                                   LeakWatcher, leak_observe_run, leak_run)

__all__ = [
    "GADGET_CONFIG", "GADGETS", "Gadget", "TaintMap", "LeakCandidate",
    "LeakReport", "LeakSession", "LeakWatcher", "leak_observe_run",
    "leak_run",
]
