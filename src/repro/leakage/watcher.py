"""The leakage watcher: probes → candidates → confirmed transient leaks.

Correlation model (docs/LEAKAGE.md):

* ``load.perform`` with a **tainted address** under an open speculation
  window (``spec != 0``) records a *leak candidate*: a secret-dependent
  line was touched before the machine knew the access was safe.
* A later ``squash.*`` on the same core flushing that seq **confirms**
  the candidate: the access never architecturally happened, yet its
  line is resident — a transient leak, histogrammed by its window width
  (perform → squash distance).
* Candidates never squashed are *exposed* accesses: secret-dependent,
  speculatively performed, but architecturally committed — visible in
  the report, not counted as transient leakage.

The watcher also measures the ambient channel: SLF-window width
(``slf.forward`` → ``sb.write_l1``), every squash-terminated
speculative perform (``spec_window``), and the persistent side effects
— cache fills, prefetches, NoC messages — that land while an SLF
window is open, with fills on secret-dependent lines counted
separately.  Everything here is subscriber-side; an unobserved run
never executes any of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, TYPE_CHECKING

from repro.leakage.gadgets import GADGET_CONFIG, Gadget
from repro.leakage.taint import TaintMap
from repro.obs.bus import SQUASH_REASONS, ProbeBus
from repro.obs.samplers import LogHistogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.stats import SystemStats
    from repro.sim.system import System


@dataclass
class LeakCandidate:
    """One secret-dependent speculative access."""

    core_id: int
    seq: int
    addr: int
    line: int
    cycle: int                  # perform cycle
    source: int                 # seq of the originating secret load
    spec: int                   # 1 = M-spec, 2 = SA-spec, 3 = both
    slf: bool
    confirmed: bool = False
    squash_cycle: int = -1
    squash_reason: str = ""

    @property
    def window(self) -> int:
        return (self.squash_cycle - self.cycle) if self.confirmed else -1

    def to_dict(self) -> Dict:
        return {
            "core": self.core_id, "seq": self.seq, "addr": self.addr,
            "line": self.line, "cycle": self.cycle, "source": self.source,
            "spec": self.spec, "slf": self.slf,
            "confirmed": self.confirmed, "squash_cycle": self.squash_cycle,
            "squash_reason": self.squash_reason, "window": self.window,
        }


class LeakWatcher:
    """Subscribes the full leakage probe set and correlates it."""

    def __init__(self, bus: ProbeBus, taints: Dict[int, TaintMap],
                 limit: int = 100_000) -> None:
        self.taints = taints
        self.limit = limit
        # core -> seq -> live candidate (a re-executed incarnation of
        # the same seq overwrites the previous, un-squashed one).
        self._pending: Dict[int, Dict[int, LeakCandidate]] = {}
        self.confirmed: List[LeakCandidate] = []
        #: Lines any candidate (live or confirmed) touched, per core —
        #: fills on these are secret-dependent side effects.
        self._tainted_lines: Dict[int, Set[int]] = {}
        # core -> seq -> perform cycle of *any* speculative perform,
        # bounded; squash resolution turns these into spec_window.
        self._spec_performs: Dict[int, Dict[int, int]] = {}
        self._spec_seen = 0
        self.hist_leak_window = LogHistogram()
        self.hist_spec_window = LogHistogram()
        self.hist_slf_window = LogHistogram()
        # (core, key) -> forward cycles of the open SLF window.
        self._slf_open: Dict[tuple, List[int]] = {}
        self.speculative_performs = 0
        self.tainted_performs = 0
        self.fills_in_window = 0
        self.prefetches_in_window = 0
        self.noc_msgs_in_window = 0
        self.tainted_fills = 0
        bus.subscribe("load.perform", self._on_perform)
        for reason in SQUASH_REASONS:
            bus.subscribe(f"squash.{reason}", self._squash_handler(reason))
        bus.subscribe("slf.forward", self._on_forward)
        bus.subscribe("sb.write_l1", self._on_write)
        bus.subscribe("cache.fill", self._on_fill)
        bus.subscribe("prefetch.issue", self._on_prefetch)
        bus.subscribe("noc.msg", self._on_noc)

    # -- speculation-window accounting ---------------------------------

    def _on_perform(self, core_id: int, cycle: int, seq: int, addr: int,
                    line: int, slf: bool, spec: int) -> None:
        if not spec:
            return
        self.speculative_performs += 1
        if self._spec_seen < self.limit:
            self._spec_seen += 1
            self._spec_performs.setdefault(core_id, {})[seq] = cycle
        taint = self.taints.get(core_id)
        if taint is None or seq >= len(taint) or not taint.addr_tainted[seq]:
            return
        self.tainted_performs += 1
        candidate = LeakCandidate(core_id, seq, addr, line, cycle,
                                  taint.source[seq], spec, slf)
        self._pending.setdefault(core_id, {})[seq] = candidate
        self._tainted_lines.setdefault(core_id, set()).add(line)

    def _squash_handler(self, reason: str):
        def handler(core_id: int, cycle: int, from_seq: int,
                    flushed: int) -> None:
            performs = self._spec_performs.get(core_id)
            if performs:
                for seq in [s for s in performs if s >= from_seq]:
                    self.hist_spec_window.add(cycle - performs.pop(seq))
            pending = self._pending.get(core_id)
            if not pending:
                return
            for seq in sorted(s for s in pending if s >= from_seq):
                candidate = pending.pop(seq)
                candidate.confirmed = True
                candidate.squash_cycle = cycle
                candidate.squash_reason = reason
                self.hist_leak_window.add(candidate.window)
                if len(self.confirmed) < self.limit:
                    self.confirmed.append(candidate)
        return handler

    # -- SLF windows and side effects under them -----------------------

    def _on_forward(self, core_id: int, cycle: int, load_seq: int,
                    store_seq: int, key: int) -> None:
        self._slf_open.setdefault((core_id, key), []).append(cycle)

    def _on_write(self, core_id: int, cycle: int, store_seq: int,
                  addr: int, drain: int, key: int) -> None:
        for start in self._slf_open.pop((core_id, key), ()):
            self.hist_slf_window.add(cycle - start)

    def _on_fill(self, core_id: int, cycle: int, line: int) -> None:
        if self._slf_open:
            self.fills_in_window += 1
        lines = self._tainted_lines.get(core_id)
        if lines is not None and line in lines:
            self.tainted_fills += 1

    def _on_prefetch(self, core_id: int, cycle: int, line: int) -> None:
        if self._slf_open:
            self.prefetches_in_window += 1

    def _on_noc(self, cycle: int, msg_class: str) -> None:
        if self._slf_open:
            self.noc_msgs_in_window += 1

    # -- folding -------------------------------------------------------

    def finalize(self) -> "LeakReport":
        exposed = [candidate
                   for per_core in self._pending.values()
                   for candidate in per_core.values()]
        exposed.sort(key=lambda c: (c.core_id, c.seq))
        return LeakReport(
            confirmed=list(self.confirmed),
            exposed=exposed,
            speculative_performs=self.speculative_performs,
            tainted_performs=self.tainted_performs,
            fills_in_window=self.fills_in_window,
            prefetches_in_window=self.prefetches_in_window,
            noc_msgs_in_window=self.noc_msgs_in_window,
            tainted_fills=self.tainted_fills,
            histograms={
                "leak_window": self.hist_leak_window,
                "spec_window": self.hist_spec_window,
                "slf_window": self.hist_slf_window,
            },
        )


@dataclass
class LeakReport:
    """Everything one observed run leaked, ready to serialize."""

    confirmed: List[LeakCandidate]
    exposed: List[LeakCandidate]
    speculative_performs: int
    tainted_performs: int
    fills_in_window: int
    prefetches_in_window: int
    noc_msgs_in_window: int
    tainted_fills: int
    histograms: Dict[str, LogHistogram]

    @property
    def leaked_lines(self) -> List[int]:
        """Distinct lines of squash-confirmed transient leaks — the
        gadget's measure of how much secret reached the cache state."""
        return sorted({c.line for c in self.confirmed})

    def to_dict(self) -> Dict:
        return {
            "leaked_lines": self.leaked_lines,
            "leaks": len(self.confirmed),
            "exposed": len(self.exposed),
            "speculative_performs": self.speculative_performs,
            "tainted_performs": self.tainted_performs,
            "side_effects": {
                "fills_in_window": self.fills_in_window,
                "prefetches_in_window": self.prefetches_in_window,
                "noc_msgs_in_window": self.noc_msgs_in_window,
                "tainted_fills": self.tainted_fills,
            },
            "histograms": {name: hist.to_dict()
                           for name, hist in self.histograms.items()},
            "events": [c.to_dict() for c in self.confirmed],
            "exposed_events": [c.to_dict() for c in self.exposed],
        }

    def publish(self, metrics: "MetricsRegistry",
                prefix: str = "leak") -> None:
        """Fold this report into a service metrics registry."""
        metrics.inc(f"{prefix}.confirmed", len(self.confirmed))
        metrics.inc(f"{prefix}.exposed", len(self.exposed))
        metrics.inc(f"{prefix}.leaked_lines", len(self.leaked_lines))
        metrics.inc(f"{prefix}.tainted_fills", self.tainted_fills)
        for name, hist in self.histograms.items():
            metrics.histogram(f"{prefix}.{name}").merge(hist)


class LeakSession:
    """One observed run of a leakage workload: bus + watcher.

    Watchers subscribe before the system is built (the ProbeBus
    resolve-at-attach contract), so construct the session first and
    pass ``session.bus`` as the system's ``probes``.
    """

    def __init__(self, traces: Sequence, secret: Sequence[int],
                 event_limit: int = 100_000) -> None:
        self.bus = ProbeBus()
        self.taints = {core_id: TaintMap(trace, secret)
                       for core_id, trace in enumerate(traces)}
        self.watcher = LeakWatcher(self.bus, self.taints, event_limit)

    def report(self) -> LeakReport:
        return self.watcher.finalize()


def leak_run(gadget: Gadget, policy: str, config=None,
             max_cycles: int = 5_000_000, faults=None):
    """Run one gadget under one policy with leakage tracking attached.

    Returns ``(stats, report, system)``.  ``stats.leakage`` carries the
    report's dict form (plus gadget/policy identity), so a serialized
    ``SystemStats`` is the complete leakage record.
    """
    from repro.sim.system import System

    session = LeakSession(gadget.traces, gadget.secret)
    system = System(list(gadget.traces), policy,
                    config or GADGET_CONFIG,
                    warm_caches=list(gadget.warm),
                    initial_memory=dict(gadget.initial_memory),
                    probes=session.bus, faults=faults)
    stats = system.run(max_cycles)
    report = session.report()
    stats.leakage = {"gadget": gadget.name, "policy": policy,
                     **report.to_dict()}
    return stats, report, system


def leak_observe_run(gadget: Gadget, policy: str, config=None,
                     max_cycles: int = 5_000_000,
                     sample_interval: int = 16):
    """Like :func:`leak_run`, but with the full standard observability
    session sharing the bus, so the run can feed the Chrome trace
    exporter's gate/squash/leakage tracks together.

    Returns ``(stats, obs_report, leak_report, system)``.
    """
    from repro.obs.session import ObsSession
    from repro.sim.system import System

    obs = ObsSession(sample_interval=sample_interval)
    taints = {core_id: TaintMap(trace, gadget.secret)
              for core_id, trace in enumerate(gadget.traces)}
    watcher = LeakWatcher(obs.bus, taints)
    system = System(list(gadget.traces), policy,
                    config or GADGET_CONFIG,
                    warm_caches=list(gadget.warm),
                    initial_memory=dict(gadget.initial_memory),
                    trace_pipeline=True, probes=obs.bus)
    obs.install(system)
    stats = system.run(max_cycles)
    leak_report = watcher.finalize()
    stats.leakage = {"gadget": gadget.name, "policy": policy,
                     **leak_report.to_dict()}
    return stats, obs.report(stats), leak_report, system
