"""Spectre-style gadget workloads for the leakage instrument.

Two transient-execution gadgets, hand-built as pipeline traces so the
dependence graph carries taint (compiled litmus programs flatten their
register dataflow into ``deps=()``; the litmus battery carries matching
*architectural* programs under the same names — see docs/LEAKAGE.md):

``spectre-bcb``
    Bounds-check bypass.  A slow "bounds" load keeps retirement parked
    while a fast secret load and a secret-indexed probe load perform
    M-speculatively behind it; the victim thread then overwrites the
    secret, invalidating the secret line and squashing both — but the
    probe line the transient load touched stays resident.  Pure
    load-load speculation: every one of the five policies is
    vulnerable, which makes this the baseline gadget.

``spectre-slf``
    Store-to-load-forwarding variant (the paper's SA-speculation
    window).  A store to the secret address opens a long SLF window (the
    line is cold, so the SB drain crawls); the forwarded secret value
    feeds a probe load that performs deep in the window.  Under ``x86``
    nothing blocks the window's younger loads and the probe access is
    squash-confirmed leakage; the 370 variants close the window — the
    retire gate (SoS), SLF retire-blocking (SLFSpec) or forwarding
    refusal (NoSpec) keeps the probe load from performing transiently
    at all, so the leaked-line count drops to zero.

Addresses use distinct cache lines with distinct set indices in both
private levels of :data:`GADGET_CONFIG`, so no gadget line aliases
another (conflict evictions would blur the windows being measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cpu import isa
from repro.cpu.isa import Trace
from repro.sim.config import (CacheConfig, CoreConfig, MemoryConfig,
                              SystemConfig)

#: Two small cores; LQ deliberately shallow (8) so a closed retire gate
#: back-pressures dispatch before the probe load enters the window.
GADGET_CONFIG = SystemConfig(
    cores=2,
    core=CoreConfig(rob_entries=32, lq_entries=8, sq_sb_entries=8,
                    mshrs=4),
    memory=MemoryConfig(
        l1=CacheConfig(4 * 1024, 2, 4),
        l2=CacheConfig(16 * 1024, 4, 12),
        l3_bank=CacheConfig(64 * 1024, 8, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)

_LINE = 64
#: Gadget address map: line indices 1..16, all distinct modulo both
#: private cache set counts (32 and 64 sets).
SECRET_ADDR = 1 * _LINE          # S: the secret word
BOUNDS_ADDR = 2 * _LINE          # A: the slow "bounds" load (never warm)
_PAD_BASE = 3 * _LINE            # D1..D10: retire-pressure pad loads
_PAD_COUNT = 10
PROBE_BASE = 13 * _LINE          # P0..P3: the probe array
_PROBE_WAYS = 4

#: The architectural secret value; the probe access pattern encodes it.
SECRET_VALUE = 1


@dataclass(frozen=True)
class Gadget:
    """One leakage workload: traces + warm-up + the SECRET set."""

    name: str
    description: str
    traces: Tuple[Trace, ...]
    warm: Tuple[Trace, ...]
    initial_memory: Dict[int, int] = field(default_factory=dict)
    secret: Tuple[int, ...] = (SECRET_ADDR,)

    @property
    def probe_line(self) -> int:
        return PROBE_BASE + SECRET_VALUE * _LINE


def _delay_chain(trace: Trace, length: int = 5, latency: int = 8) -> int:
    """A serial ALU chain: delays the attacker's stores so the victim's
    transient accesses perform first.  Returns the last op's index."""
    prev = trace.append(isa.alu(latency=latency, pc=0x900))
    for _ in range(length - 1):
        prev = trace.append(isa.alu(deps=(prev,), latency=latency,
                                    pc=0x900))
    return prev


def spectre_bcb() -> Gadget:
    """Bounds-check bypass: M-speculation past a slow bounds load."""
    victim = Trace()
    bounds = victim.append(isa.load(BOUNDS_ADDR, pc=0x100))
    secret = victim.append(isa.load(SECRET_ADDR, pc=0x104))
    victim.append(isa.load(PROBE_BASE + SECRET_VALUE * _LINE,
                           deps=(secret,), pc=0x108))
    del bounds  # seq 0: unperformed for ~200 cycles, parks retirement
    victim.validate()

    attacker = Trace()
    last = _delay_chain(attacker)
    attacker.append(isa.store(SECRET_ADDR, deps=(last,), pc=0x910,
                              value=0))
    attacker.validate()

    warm_victim = Trace([isa.load(SECRET_ADDR)]
                        + [isa.load(PROBE_BASE + i * _LINE)
                           for i in range(_PROBE_WAYS)])
    return Gadget(
        name="spectre-bcb",
        description="bounds-check bypass: secret + probe loads perform "
                    "M-speculatively behind a slow bounds load; the "
                    "victim's secret line is invalidated, squashing "
                    "them after the probe line is resident",
        traces=(victim, attacker),
        warm=(warm_victim, Trace()),
        initial_memory={SECRET_ADDR: SECRET_VALUE},
    )


def spectre_slf() -> Gadget:
    """SLF forwarding: SA-speculation in a long store-buffer window."""
    victim = Trace()
    st = victim.append(isa.store(SECRET_ADDR, pc=0x200,
                                 value=SECRET_VALUE))
    # deps=(st,): issue only once the store's address has resolved, so
    # the load forwards instead of racing it to the (cold) cache.
    secret = victim.append(isa.load(SECRET_ADDR, deps=(st,), pc=0x204))
    for i in range(_PAD_COUNT):
        victim.append(isa.load(_PAD_BASE + i * _LINE, pc=0x210 + 4 * i))
    victim.append(isa.load(BOUNDS_ADDR, pc=0x240))
    victim.append(isa.load(PROBE_BASE + SECRET_VALUE * _LINE,
                           deps=(secret,), pc=0x244))
    victim.validate()

    attacker = Trace()
    last = _delay_chain(attacker)
    for i in range(_PROBE_WAYS):
        attacker.append(isa.store(PROBE_BASE + i * _LINE, deps=(last,),
                                  pc=0x920 + 4 * i, value=7))
    attacker.validate()

    warm_victim = Trace([isa.load(_PAD_BASE + i * _LINE)
                         for i in range(_PAD_COUNT)]
                        + [isa.load(PROBE_BASE + i * _LINE)
                           for i in range(_PROBE_WAYS)])
    return Gadget(
        name="spectre-slf",
        description="SLF window: a cold-line store forwards the secret; "
                    "the probe load performs inside the SA-speculation "
                    "window and the attacker's probe-array stores "
                    "invalidate it into a squash — x86 alone confirms "
                    "the leak; the 370 variants close the window first",
        traces=(victim, attacker),
        warm=(warm_victim, Trace()),
        initial_memory={},
    )


#: Registry, in report order.
GADGETS: Dict[str, Gadget] = {
    gadget.name: gadget for gadget in (spectre_bcb(), spectre_slf())
}
