"""Exhaustive per-model outcome profiling — the synthesis judge.

One pass over a program's candidate executions (the rf × co cross
product from :class:`repro.lint.memory_model.RelationAnalysis`) judges
every candidate under *all* requested models at once: the uniproc
(sc-per-location) axiom is model-independent, so its cycle check runs
once per candidate, and only the per-model ghb edge sets differ.  The
result is the program's complete allowed-outcome set per model — the
total function the paper's authors sampled hardware to approximate,
computed statically.

This replaces "classify() once per model" (which re-enumerates the
candidate space per model) for the synthesis hot path; the two are
cross-checked against each other, the independent enumerator in
:mod:`repro.litmus.axiomatic`, and the operational machines by
:mod:`repro.synth.oracle`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.lint.memory_model import RelationAnalysis, find_cycle
from repro.litmus.program import Outcome, Program
from repro.synth.space import LATTICE

#: model name -> complete allowed outcome set
Profile = Dict[str, FrozenSet[Outcome]]


def outcome_profile(program: Program,
                    models: Sequence[str] = LATTICE) -> Profile:
    """The complete allowed-outcome set of ``program`` per model.

    Agrees with ``classify(program, m).allowed`` for every model ``m``
    (asserted by the oracle layer and the unit tests) while enumerating
    the candidate space exactly once.
    """
    analysis = RelationAnalysis(program)
    allowed: Dict[str, set] = {model: set() for model in models}
    for candidate in analysis.candidates():
        # uniproc and RMW atomicity are model-independent: once each.
        if candidate.universal_witness() is not None:
            continue
        outcome = candidate.outcome()
        remaining = [model for model in models
                     if outcome not in allowed[model]]
        if not remaining:
            continue
        for model in remaining:
            if find_cycle(candidate.ghb_edges(model)) is None:
                allowed[model].add(outcome)
    return {model: frozenset(found) for model, found in allowed.items()}


def lattice_violations(profile: Profile) -> List[str]:
    """The SC ⊆ 370 ⊆ x86 ⊆ WMM containment, checked.

    Every outcome a stronger model allows, every weaker model must
    allow too; a violation here means a bug in the ghb engine, not an
    interesting program — the synthesis loop treats it as fatal.
    """
    problems: List[str] = []
    ordered = [model for model in LATTICE if model in profile]
    for strong, weak in zip(ordered, ordered[1:]):
        escaped = profile[strong] - profile[weak]
        if escaped:
            problems.append(
                f"{strong} allows {len(escaped)} outcome(s) that "
                f"{weak} forbids: "
                + "; ".join(str(o) for o in sorted(escaped, key=str)))
    return problems


def profile_diff(profile: Profile, pair: Tuple[str, str]
                 ) -> Tuple[Outcome, ...]:
    """Outcomes the weak model admits that the strong model forbids,
    sorted — empty iff the pair's outcome sets coincide."""
    strong, weak = pair
    return tuple(sorted(profile[weak] - profile[strong], key=str))
