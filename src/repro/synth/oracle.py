"""Triple cross-checking of synthesized tests.

A synthesized distinguisher earns promotion only when three independent
implementations of the memory-model lattice agree *exactly* on its
outcome sets:

1. the lint relation analyzer's exhaustive candidate judging
   (:func:`repro.synth.profile.outcome_profile`, plus the slower
   ``classify`` path it must match),
2. the axiomatic enumerator (:func:`repro.litmus.axiomatic
   .enumerate_axiomatic`) — an independent rf/co/fr/ghb implementation,
3. the operational machines (:func:`repro.litmus.operational
   .enumerate_outcomes`) — state-space exploration, no relations at all.

Any disagreement is rendered through :func:`repro.litmus.explain
.explain_chain` so the offending happens-before cycle (or its absence)
is visible, not just the outcome diff.  :func:`pipeline_check` adds a
budgeted fourth leg: timed pipeline runs must stay *within* the model
(conformance, not equality — a pipeline may be stricter than its spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.lint.memory_model import classify
from repro.litmus.axiomatic import enumerate_axiomatic
from repro.litmus.explain import explain_chain
from repro.litmus.operational import enumerate_outcomes
from repro.litmus.program import Outcome, Program
from repro.synth.profile import outcome_profile
from repro.synth.space import LATTICE


def outcome_conditions(outcome: Outcome) -> Dict[str, int]:
    """An :class:`Outcome` as the ``r{tid}_{reg}`` / ``mem_{addr}``
    condition dict the ``allows``/``exists:`` machinery speaks."""
    conditions: Dict[str, int] = {}
    for (tid, reg), value in outcome.registers:
        conditions[f"r{tid}_{reg}"] = value
    for addr, value in outcome.memory:
        conditions[f"mem_{addr}"] = value
    return conditions


def _render_disagreement(program: Program, model: str, outcome: Outcome,
                         verdict: str) -> str:
    lines = [f"  {model}: outcome [{outcome}] {verdict}"]
    chain = explain_chain(program, model, **outcome_conditions(outcome))
    if chain:
        lines.append(chain)
    return "\n".join(lines)


@dataclass
class OracleReport:
    """Per-program verdict of the three-way cross-check."""

    program: Program
    models: Tuple[str, ...]
    counts: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def agree(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict:
        return {"name": self.program.name,
                "models": list(self.models),
                "counts": dict(sorted(self.counts.items())),
                "agree": self.agree,
                "mismatches": list(self.mismatches)}


def triple_check(program: Program,
                 models: Sequence[str] = LATTICE) -> OracleReport:
    """Exact three-way agreement on ``program``'s outcome sets.

    The lint relation analyzer is consulted twice — the synthesis fast
    path (one enumeration, all models) and the per-model ``classify``
    path — so an optimization bug in either shows up as a mismatch too.
    """
    report = OracleReport(program=program, models=tuple(models))
    profile = outcome_profile(program, models=models)
    for model in models:
        lint_fast = profile[model]
        lint_slow = frozenset(classify(program, model).allowed)
        axiomatic = enumerate_axiomatic(program, model)
        operational = enumerate_outcomes(program, model)
        report.counts[model] = len(lint_fast)
        for other_name, other in (("lint/classify", lint_slow),
                                  ("axiomatic", axiomatic),
                                  ("operational", operational)):
            for outcome in sorted(lint_fast - other, key=str):
                report.mismatches.append(
                    f"{program.name}: lint/profile allows what "
                    f"{other_name} forbids under {model}\n"
                    + _render_disagreement(program, model, outcome,
                                           f"missing from {other_name}"))
            for outcome in sorted(other - lint_fast, key=str):
                report.mismatches.append(
                    f"{program.name}: {other_name} allows what "
                    f"lint/profile forbids under {model}\n"
                    + _render_disagreement(program, model, outcome,
                                           f"extra in {other_name}"))
    return report


def triple_check_many(programs: Sequence[Program],
                      models: Sequence[str] = LATTICE
                      ) -> Tuple[bool, List[OracleReport]]:
    """Cross-check a batch; True iff every program agrees."""
    reports = [triple_check(program, models) for program in programs]
    return all(report.agree for report in reports), reports


def pipeline_check(program: Program,
                   policies: Sequence[str] = ("x86", "370-SLFSoS"),
                   seeds: Sequence[int] = range(8)
                   ) -> Dict[str, bool]:
    """Budgeted fourth oracle: timed pipeline runs must observe only
    model-allowed outcomes (containment, not equality — the pipeline
    under-approximates its model by construction)."""
    from repro.litmus.pipeline_runner import check_conformance
    verdicts: Dict[str, bool] = {}
    for policy in policies:
        conforms, _, _ = check_conformance(program, policy, seeds=seeds)
        verdicts[policy] = conforms
    return verdicts
