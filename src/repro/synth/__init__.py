"""``repro.synth``: static litmus-test synthesis.

The generative layer over the PR 4 relation machinery: enumerate every
small program inside a bounded shape, compute each program's *complete*
per-model outcome sets by exhaustive candidate-execution judging
(:mod:`repro.synth.profile`), keep the programs whose sets differ
between a model pair (:mod:`repro.synth.search`), minimize and
canonically de-duplicate the witnesses, cross-check every survivor
against three independent oracles (:mod:`repro.synth.oracle`), and
promote the keepers into the battery as a generated registry module
(:mod:`repro.synth.promote`).  ``repro synth`` drives it from the CLI;
the ``synth`` job kind runs enumeration chunks through ``repro serve``
and ``repro fleet``.  See docs/SYNTHESIS.md.
"""

from repro.synth.oracle import (OracleReport, outcome_conditions,
                                pipeline_check, triple_check,
                                triple_check_many)
from repro.synth.profile import lattice_violations, outcome_profile
from repro.synth.promote import (battery_duplicates, case_name,
                                 render_generated_module,
                                 write_generated_module)
from repro.synth.search import (MODEL_PAIRS, Distinguisher, SynthResult,
                                distinguishing_outcomes, merge_results,
                                minimize_program, pool_distinguishers,
                                search)
from repro.synth.space import (SynthBounds, count_programs,
                               enumerate_programs, may_distinguish)

__all__ = [
    "SynthBounds", "enumerate_programs", "count_programs",
    "may_distinguish",
    "outcome_profile", "lattice_violations",
    "MODEL_PAIRS", "Distinguisher", "SynthResult", "search",
    "merge_results", "pool_distinguishers",
    "distinguishing_outcomes", "minimize_program",
    "OracleReport", "triple_check", "triple_check_many", "pipeline_check",
    "outcome_conditions",
    "render_generated_module", "write_generated_module",
    "battery_duplicates", "case_name",
]
