"""The bounded program space: every small litmus program, in order.

A :class:`SynthBounds` names a finite shape — thread count, events per
thread, address pool, fences or not — and :func:`enumerate_programs`
streams every program inside it in a fixed deterministic order, so the
space can be partitioned into ``chunks`` congruence classes that
different service workers (or processes, or fleet nodes) enumerate
independently: chunk ``i`` judges exactly the programs whose index is
``i (mod chunks)``, and the union over chunks is the whole space.

Store values are globally unique in enumeration order — the canonical
relabeling (:func:`repro.litmus.program.canonical_form`) collapses the
naming anyway, and unique values keep every rf edge unambiguous, the
same invariant :func:`repro.litmus.checker.random_program` maintains.

:func:`may_distinguish` is the sound prefilter: necessary structural
conditions for a program to *possibly* tell a model pair apart (a
st→ld program-order pair for SC-vs-TSO relaxations; a same-address
st→ld pair — the only source of an ``rfi`` edge — for 370-vs-x86; a
program-order pair the strong model's ppo keeps and WMM's drops, for
pairs against WMM).  Programs that fail it are counted but never
judged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.litmus.axiomatic import M370, SC, WMM, X86
from repro.litmus.program import (Cas, Fence, Instruction, Ld, Program,
                                  Rmw, St)

#: The model lattice, strongest first (SC ⊆ 370 ⊆ x86 ⊆ WMM outcome
#: sets — PC is operational-only and not judged by the synth profiler).
LATTICE = (SC, M370, X86, WMM)

#: Address pool (bounds.addresses says how many are in play).
_ADDRESSES = ("x", "y", "z", "w")

#: Per-event kinds: ("ld"|"st"|"ld.acq"|"st.rel"|"xchg", addr) or
#: ("fence"|"lwfence", None)
_EventKind = Tuple[str, object]


@dataclass(frozen=True)
class SynthBounds:
    """A finite program shape.

    ``threads`` × up to ``max_ops`` events each, over ``addresses``
    distinct locations, optionally with fences; ``max_total`` caps the
    event count across all threads (useful for 3-thread spaces, where
    the full ``max_ops``-per-thread cube explodes).

    The opt-in vocabulary extensions (each one widens the per-slot kind
    pool, so existing spaces keep their indices):

    * ``rmws`` — locked atomic exchanges (``xchg``);
    * ``acqrel`` — the WMM-visible events: acquire loads, release
      stores and the lightweight fence.
    """

    threads: int = 2
    max_ops: int = 3
    addresses: int = 2
    fences: bool = False
    max_total: int = 0          # 0 = no cross-thread cap
    rmws: bool = False
    acqrel: bool = False

    def __post_init__(self) -> None:
        if not (1 <= self.threads <= 4):
            raise ValueError("threads must be in [1, 4]")
        if not (1 <= self.max_ops <= 4):
            raise ValueError("max_ops must be in [1, 4]")
        if not (1 <= self.addresses <= len(_ADDRESSES)):
            raise ValueError(f"addresses must be in "
                             f"[1, {len(_ADDRESSES)}]")
        if self.max_total < 0:
            raise ValueError("max_total must be >= 0")

    def to_dict(self) -> Dict:
        return {"threads": self.threads, "max_ops": self.max_ops,
                "addresses": self.addresses, "fences": self.fences,
                "max_total": self.max_total, "rmws": self.rmws,
                "acqrel": self.acqrel}

    @classmethod
    def from_dict(cls, data: Dict) -> "SynthBounds":
        return cls(**{key: data[key] for key in
                      ("threads", "max_ops", "addresses", "fences",
                       "max_total", "rmws", "acqrel") if key in data})

    def describe(self) -> str:
        cap = f", <={self.max_total} total" if self.max_total else ""
        return (f"{self.threads} threads x <={self.max_ops} events, "
                f"{self.addresses} addrs"
                + (", fences" if self.fences else "")
                + (", rmws" if self.rmws else "")
                + (", acq/rel" if self.acqrel else "") + cap)


def _event_kinds(bounds: SynthBounds) -> List[_EventKind]:
    kinds: List[_EventKind] = []
    for addr in _ADDRESSES[:bounds.addresses]:
        kinds.append(("ld", addr))
        kinds.append(("st", addr))
        if bounds.acqrel:
            kinds.append(("ld.acq", addr))
            kinds.append(("st.rel", addr))
        if bounds.rmws:
            kinds.append(("xchg", addr))
    if bounds.fences:
        kinds.append(("fence", None))
    if bounds.acqrel:
        kinds.append(("lwfence", None))
    return kinds


def _thread_shapes(bounds: SynthBounds) -> List[Tuple[_EventKind, ...]]:
    """Every per-thread event sequence, shortest first, fixed order."""
    kinds = _event_kinds(bounds)
    shapes: List[Tuple[_EventKind, ...]] = []
    for length in range(1, bounds.max_ops + 1):
        shapes.extend(itertools.product(kinds, repeat=length))
    return shapes


def count_programs(bounds: SynthBounds) -> int:
    """The size of the space (before prefilters and dedupe)."""
    shapes = _thread_shapes(bounds)
    if not bounds.max_total:
        return len(shapes) ** bounds.threads
    lengths = [len(s) for s in shapes]
    total = 0
    for combo in itertools.product(lengths, repeat=bounds.threads):
        if sum(combo) <= bounds.max_total:
            total += 1
    return total


def _build(index: int, shape_combo: Sequence[Tuple[_EventKind, ...]]
           ) -> Program:
    threads: List[List[Instruction]] = []
    next_value = 1
    for events in shape_combo:
        ops: List[Instruction] = []
        regs = 0
        for kind, addr in events:
            if kind == "ld":
                ops.append(Ld(addr, f"r{regs}"))
                regs += 1
            elif kind == "ld.acq":
                ops.append(Ld(addr, f"r{regs}", acquire=True))
                regs += 1
            elif kind == "st":
                ops.append(St(addr, next_value))
                next_value += 1
            elif kind == "st.rel":
                ops.append(St(addr, next_value, release=True))
                next_value += 1
            elif kind == "xchg":
                ops.append(Rmw(addr, next_value, f"r{regs}"))
                next_value += 1
                regs += 1
            elif kind == "lwfence":
                ops.append(Fence("lw"))
            else:
                ops.append(Fence())
        threads.append(ops)
    return Program(name=f"synth-{index}",
                   threads=tuple(tuple(t) for t in threads))


def enumerate_programs(bounds: SynthBounds, chunk: int = 0,
                       chunks: int = 1) -> Iterator[Tuple[int, Program]]:
    """Yield ``(index, program)`` for the space, deterministically.

    With ``chunks > 1`` only indices congruent to ``chunk`` are built
    (the index sequence itself is global, so a program keeps its index
    no matter how the space is partitioned).
    """
    if chunks < 1 or not (0 <= chunk < chunks):
        raise ValueError(f"bad chunk {chunk}/{chunks}")
    shapes = _thread_shapes(bounds)
    index = 0
    for combo in itertools.product(shapes, repeat=bounds.threads):
        if bounds.max_total and \
                sum(len(events) for events in combo) > bounds.max_total:
            continue
        if index % chunks == chunk:
            yield index, _build(index, combo)
        index += 1


def may_distinguish(program: Program, pair: Tuple[str, str]) -> bool:
    """Sound structural prefilter for "could ``pair`` tell this program
    apart?".  Necessary conditions only — a True can still profile to
    identical outcome sets, but a False never distinguishes:

    * any pair of SC against a TSO-family model needs a (plain) store
      program-ordered before a later load (the st→ld relaxation is the
      only SC-vs-TSO difference; an mfence or locked op between them
      re-orders the pair under both models, a lightweight fence does
      not);
    * (370, x86) needs a store program-ordered before a later load *of
      the same address* (an ``rfi`` edge — the only relation the two
      models treat differently — requires exactly that shape);
    * a pair against WMM needs a program-order pair the strong model's
      ppo keeps and WMM's drops (their grf only differs for 370, whose
      rfi condition is the same forwarding shape as above) — evaluated
      directly on the registry predicates, so the filter stays sound as
      the vocabulary grows.
    """
    if WMM in pair:
        strong = pair[0] if pair[1] == WMM else pair[1]
        from repro.models import get_model, po_access_pairs
        strong_ax = get_model(strong).axiomatic
        wmm_ax = get_model(WMM).axiomatic
        for po_pair in po_access_pairs(program):
            if strong_ax.ppo(po_pair) and not wmm_ax.ppo(po_pair):
                return True
        if strong == M370:
            return may_distinguish(program, (M370, X86))
        return False
    need_same_addr = SC not in pair
    for thread in program.threads:
        pending: List[Tuple[int, str]] = []    # (fence epoch, addr)
        epoch = 0
        for op in thread:
            if isinstance(op, Fence) and op.kind == "mf":
                epoch += 1
            elif isinstance(op, (Rmw, Cas)):
                epoch += 1                     # locked: full fence
            elif isinstance(op, St):
                pending.append((epoch, op.addr))
            elif isinstance(op, Ld):
                for st_epoch, st_addr in pending:
                    if st_epoch != epoch:
                        continue               # fenced: ordered anyway
                    if not need_same_addr or st_addr == op.addr:
                        return True
    return False
