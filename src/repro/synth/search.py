"""Distinguisher search: enumerate, judge, minimize, de-duplicate.

:func:`search` walks a chunk of a bounded program space
(:mod:`repro.synth.space`), computes each surviving program's complete
per-model outcome sets (:mod:`repro.synth.profile`), and keeps the
programs whose sets differ between a requested model pair.  Each hit is
**minimized** by greedy event deletion (delete any event whose removal
preserves the distinction, to a local minimum) and **de-duplicated** by
canonical form (:func:`repro.litmus.program.canonical_key`), so the
result holds one witness per structural identity per pair.

Results are JSON-round-trippable (:class:`SynthResult`) and mergeable
across chunks (:func:`merge_results`) — the unit of work the ``synth``
service job executes and the fleet scatters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.litmus.axiomatic import M370, SC, WMM, X86
from repro.litmus.parser import parse_litmus, render_litmus
from repro.litmus.program import Outcome, Program, canonical_key
from repro.synth.profile import (lattice_violations, outcome_profile,
                                 profile_diff)
from repro.synth.space import SynthBounds, enumerate_programs, may_distinguish

#: The (strong, weak) pairs worth distinguishing, lattice order.
MODEL_PAIRS = ((SC, M370), (SC, X86), (M370, X86),
               (X86, WMM), (M370, WMM), (SC, WMM))


def distinguishing_outcomes(program: Program, pair: Tuple[str, str]
                            ) -> Tuple[Outcome, ...]:
    """Outcomes the weak model of ``pair`` allows and the strong model
    forbids — non-empty iff ``program`` distinguishes the pair."""
    return profile_diff(outcome_profile(program, models=pair), pair)


def _delete_event(program: Program, tid: int, idx: int,
                  name: str) -> Optional[Program]:
    """``program`` minus one event (empty threads dropped); None when
    the deletion would leave no threads at all."""
    threads = [list(thread) for thread in program.threads]
    del threads[tid][idx]
    kept = [tuple(thread) for thread in threads if thread]
    if not kept:
        return None
    return Program(name=name, threads=tuple(kept),
                   initial=program.initial, secret=program.secret)


def minimize_program(program: Program, pair: Tuple[str, str]) -> Program:
    """Greedy local minimization: repeatedly delete any single event
    whose removal keeps the program distinguishing ``pair``, until no
    single deletion does.  The result is a local minimum — every event
    left is necessary for the distinction."""
    current = program
    shrunk = True
    while shrunk:
        shrunk = False
        for tid in range(len(current.threads)):
            for idx in range(len(current.threads[tid])):
                smaller = _delete_event(current, tid, idx, current.name)
                if smaller is not None and \
                        distinguishing_outcomes(smaller, pair):
                    current = smaller
                    shrunk = True
                    break
            if shrunk:
                break
    return current


@dataclass(frozen=True)
class Distinguisher:
    """One minimized, canonically unique witness for a model pair."""

    key: str                        # canonical_key of the minimized program
    pair: Tuple[str, str]           # (strong, weak)
    program: Program                # minimized
    index: int                      # global index of the discovering program
    events_before: int              # event count before minimization
    weak_only: Tuple[str, ...]      # str(outcome) allowed only by weak
    profile: Dict[str, Tuple[str, ...]]  # model -> sorted outcome strings

    @property
    def events(self) -> int:
        return sum(len(thread) for thread in self.program.threads)

    def to_dict(self) -> Dict:
        return {"key": self.key, "pair": list(self.pair),
                "index": self.index,
                "events": self.events,
                "events_before": self.events_before,
                "litmus": render_litmus(self.program),
                "weak_only": list(self.weak_only),
                "profile": {model: list(outs)
                            for model, outs in sorted(self.profile.items())}}

    @classmethod
    def from_dict(cls, data: Dict) -> "Distinguisher":
        return cls(key=data["key"], pair=tuple(data["pair"]),
                   program=parse_litmus(data["litmus"]).program,
                   index=data["index"],
                   events_before=data["events_before"],
                   weak_only=tuple(data["weak_only"]),
                   profile={model: tuple(outs) for model, outs
                            in data["profile"].items()})


@dataclass
class SynthResult:
    """One chunk's worth of synthesis — JSON-safe and mergeable."""

    bounds: SynthBounds
    pairs: Tuple[Tuple[str, str], ...]
    chunk: int = 0
    chunks: int = 1
    enumerated: int = 0             # programs built in this chunk
    judged: int = 0                 # programs that survived the prefilter
    hits: int = 0                   # (program, pair) distinctions pre-dedupe
    distinguishers: Dict[Tuple[Tuple[str, str], str], Distinguisher] = \
        field(default_factory=dict)
    lattice_errors: List[str] = field(default_factory=list)

    @property
    def distinct(self) -> int:
        return len(self.distinguishers)

    @property
    def dedupe_ratio(self) -> float:
        """distinct / hits — 1.0 means every hit was structurally new."""
        return self.distinct / self.hits if self.hits else 1.0

    def by_pair(self, pair: Tuple[str, str]) -> List[Distinguisher]:
        found = [d for (p, _), d in self.distinguishers.items()
                 if p == pair]
        return sorted(found, key=lambda d: (d.index, d.key))

    def to_dict(self) -> Dict:
        return {
            "bounds": self.bounds.to_dict(),
            "pairs": [list(pair) for pair in self.pairs],
            "chunk": self.chunk, "chunks": self.chunks,
            "enumerated": self.enumerated, "judged": self.judged,
            "hits": self.hits, "distinct": self.distinct,
            "dedupe_ratio": round(self.dedupe_ratio, 4),
            "lattice_errors": list(self.lattice_errors),
            "distinguishers": [
                d.to_dict() for _, d in sorted(
                    self.distinguishers.items(),
                    key=lambda item: (item[0][0], item[1].index,
                                      item[0][1]))],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SynthResult":
        result = cls(
            bounds=SynthBounds.from_dict(data["bounds"]),
            pairs=tuple(tuple(pair) for pair in data["pairs"]),
            chunk=data.get("chunk", 0), chunks=data.get("chunks", 1),
            enumerated=data["enumerated"], judged=data["judged"],
            hits=data["hits"],
            lattice_errors=list(data.get("lattice_errors", ())))
        for entry in data.get("distinguishers", ()):
            dist = Distinguisher.from_dict(entry)
            result.distinguishers[(dist.pair, dist.key)] = dist
        return result


def _record(result: SynthResult, dist: Distinguisher) -> None:
    slot = (dist.pair, dist.key)
    held = result.distinguishers.get(slot)
    if held is None or dist.index < held.index:
        result.distinguishers[slot] = dist


def search(bounds: SynthBounds,
           pairs: Sequence[Tuple[str, str]] = MODEL_PAIRS,
           chunk: int = 0, chunks: int = 1,
           known: FrozenSet[str] = frozenset(),
           limit: int = 0) -> SynthResult:
    """Search one chunk of ``bounds`` for model-pair distinguishers.

    ``known`` is a set of canonical keys to skip (already-promoted or
    battery tests); ``limit`` stops after that many *distinct* new
    witnesses (0 = exhaust the chunk).  Chunks partition the space by
    ``index % chunks``, so merging every chunk's result covers it all.
    """
    pairs = tuple(tuple(pair) for pair in pairs)
    result = SynthResult(bounds=bounds, pairs=pairs,
                         chunk=chunk, chunks=chunks)
    for index, program in enumerate_programs(bounds, chunk=chunk,
                                             chunks=chunks):
        result.enumerated += 1
        live = [pair for pair in pairs if may_distinguish(program, pair)]
        if not live:
            continue
        result.judged += 1
        profile = outcome_profile(program)
        result.lattice_errors.extend(
            f"{program.name}: {problem}"
            for problem in lattice_violations(profile))
        for pair in live:
            weak_only = profile_diff(profile, pair)
            if not weak_only:
                continue
            result.hits += 1
            small = minimize_program(program, pair)
            key = canonical_key(small)
            if key in known:
                continue
            small_profile = outcome_profile(small)
            _record(result, Distinguisher(
                key=key, pair=pair, program=small, index=index,
                events_before=sum(len(t) for t in program.threads),
                weak_only=tuple(str(o) for o in
                                profile_diff(small_profile, pair)),
                profile={model: tuple(str(o) for o in
                                      sorted(outs, key=str))
                         for model, outs in small_profile.items()}))
        if limit and result.distinct >= limit:
            break
    return result


def pool_distinguishers(results: Sequence[SynthResult]
                        ) -> List[Distinguisher]:
    """Union witnesses across results of *different* bounds (unlike
    :func:`merge_results`, which merges chunks of one space): dedupe by
    (pair, canonical key), keeping the smallest witness — deterministic
    order by pair then key."""
    best: Dict[Tuple[Tuple[str, str], str], Distinguisher] = {}
    for result in results:
        for dist in result.distinguishers.values():
            slot = (dist.pair, dist.key)
            held = best.get(slot)
            if held is None or \
                    (dist.events, dist.index) < (held.events, held.index):
                best[slot] = dist
    return [best[slot] for slot in sorted(best)]


def merge_results(results: Sequence[SynthResult]) -> SynthResult:
    """Union chunk results into one (counters summed, witnesses deduped
    by canonical key with the lowest discovering index kept)."""
    if not results:
        raise ValueError("nothing to merge")
    merged = SynthResult(bounds=results[0].bounds, pairs=results[0].pairs,
                         chunk=0, chunks=1)
    for result in results:
        if result.bounds != merged.bounds:
            raise ValueError("cannot merge results across bounds")
        merged.enumerated += result.enumerated
        merged.judged += result.judged
        merged.hits += result.hits
        merged.lattice_errors.extend(result.lattice_errors)
        for dist in result.distinguishers.values():
            _record(merged, dist)
    return merged
