"""Consistent hashing for the fleet's content-key namespace.

The coordinator places every node at a fixed set of points on a 2^64
ring (``VNODES`` SHA-256-derived virtual nodes each, so load stays even
with a handful of physical nodes), and a result key — already a SHA-256
hex digest (see :func:`repro.serve.jobs.request_key`) — maps to the
first nodes clockwise from its own point.  Two properties matter here:

* **Stability**: a node joining or leaving moves only ~1/N of the key
  space; every key that *doesn't* move keeps hitting the node whose
  local sweep cache already holds its result, so the fleet's
  memoization survives membership churn.
* **Determinism**: placement is a pure function of the node-id strings,
  with no RNG and no insertion-order dependence — the same membership
  set always yields the same ring, so a restarted coordinator routes
  exactly like its predecessor.

``owners(key, k)`` is the replication set: the first ``k`` *distinct*
nodes clockwise, which the coordinator writes results through to and
read-repairs from.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional

#: Virtual nodes per physical node; 64 keeps the max/min key-share
#: ratio within a few percent for small fleets.
VNODES = 64

#: Width of the ring coordinate space (first 16 hex chars = 64 bits).
_POINT_HEX = 16


def _point(label: str) -> int:
    digest = hashlib.sha256(label.encode()).hexdigest()
    return int(digest[:_POINT_HEX], 16)


def key_point(key: str) -> int:
    """Ring coordinate of a result key.  Keys are already uniform
    SHA-256 hex, so their own leading bits are the coordinate; anything
    else (tests, synthetic keys) gets hashed first."""
    if len(key) >= _POINT_HEX:
        try:
            return int(key[:_POINT_HEX], 16)
        except ValueError:
            pass
    return _point(key)


class HashRing:
    """A consistent-hash ring of node-id strings."""

    def __init__(self, vnodes: int = VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []       # sorted vnode coordinates
        self._owners: List[str] = []       # node id at each coordinate
        self._nodes: Dict[str, List[int]] = {}  # id -> its coordinates

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add(self, node_id: str) -> None:
        """Place a node; re-adding an existing id is a no-op."""
        if node_id in self._nodes:
            return
        points = []
        for i in range(self.vnodes):
            point = _point(f"{node_id}#{i}")
            idx = bisect.bisect_left(self._points, point)
            # A full SHA-256 collision between distinct labels is not a
            # practical concern; ties on the truncated coordinate are —
            # break them deterministically by owner id.
            while (idx < len(self._points) and self._points[idx] == point
                   and self._owners[idx] < node_id):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node_id)
            points.append(point)
        self._nodes[node_id] = points

    def remove(self, node_id: str) -> None:
        """Withdraw a node; unknown ids are a no-op."""
        if node_id not in self._nodes:
            return
        del self._nodes[node_id]
        keep_points: List[int] = []
        keep_owners: List[str] = []
        for point, owner in zip(self._points, self._owners):
            if owner != node_id:
                keep_points.append(point)
                keep_owners.append(owner)
        self._points = keep_points
        self._owners = keep_owners

    def owners(self, key: str, k: int = 2) -> List[str]:
        """The first ``min(k, len(ring))`` distinct nodes clockwise from
        ``key`` — owner first, then its replica successors."""
        if not self._points or k < 1:
            return []
        found: List[str] = []
        start = bisect.bisect_right(self._points, key_point(key))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in found:
                found.append(owner)
                if len(found) == k or len(found) == len(self._nodes):
                    break
        return found

    def primary(self, key: str) -> Optional[str]:
        """The single preferred executor for ``key`` (routing identical
        keys to one node lets its single-flight dedup collapse them)."""
        owners = self.owners(key, 1)
        return owners[0] if owners else None
