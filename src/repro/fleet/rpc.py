"""The coordinator's async HTTP client for talking to nodes.

The wire format is exactly what :class:`~repro.serve.api.HttpServerBase`
speaks and :class:`~repro.serve.client.ServeClient` already sends —
HTTP/1.1, JSON bodies, Content-Length framing — but written on
``asyncio.open_connection`` so one coordinator task per in-flight job
can block on a long-poll without holding a thread.  One connection per
request, ``Connection: close``: at fleet scale (tens of nodes, seconds
per simulation) connection reuse buys nothing, and a half-dead node
can then only wedge the one request that touched it.

Every transport failure — refused, reset, timed out, garbage bytes —
collapses into :class:`NodeUnreachable`.  The coordinator treats them
all identically (exclude the node, requeue elsewhere), so a finer
taxonomy would only grow the failover matrix.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

#: Cap on a node response body (a full metrics snapshot fits easily).
MAX_RESPONSE_BYTES = 64 * 1024 * 1024


class NodeUnreachable(Exception):
    """The node did not produce a well-formed HTTP response in time."""


class AsyncNodeClient:
    """JSON-over-HTTP requests to one node's base URL."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        parts = urlsplit(self.url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ValueError(f"node URL must be http://host:port, "
                             f"got {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    async def request(self, method: str, path: str,
                      body: Optional[object] = None,
                      timeout: Optional[float] = None
                      ) -> Tuple[int, Dict]:
        """One request → ``(status, payload)``; :class:`NodeUnreachable`
        on any transport- or framing-level failure."""
        try:
            return await asyncio.wait_for(
                self._request(method, path, body),
                timeout if timeout is not None else self.timeout)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                ValueError, UnicodeDecodeError) as exc:
            raise NodeUnreachable(
                f"{method} {self.url}{path}: "
                f"{type(exc).__name__}: {exc}") from exc

    async def _request(self, method: str, path: str,
                       body: Optional[object]) -> Tuple[int, Dict]:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split()
            if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
                raise ValueError(f"malformed status line: {status_line!r}")
            status = int(parts[1])
            length: Optional[int] = None
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length is None or length > MAX_RESPONSE_BYTES:
                raise ValueError(f"bad Content-Length: {length}")
            data = await reader.readexactly(length)
            doc = json.loads(data.decode()) if length else {}
            if not isinstance(doc, dict):
                raise ValueError("response body is not a JSON object")
            return status, doc
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- node endpoints ------------------------------------------------

    async def healthz(self) -> Tuple[int, Dict]:
        return await self.request("GET", "/v1/healthz")

    async def submit(self, job: Dict) -> Tuple[int, Dict]:
        return await self.request("POST", "/v1/jobs", job)

    async def poll(self, job_id: str,
                   wait: Optional[float] = None) -> Tuple[int, Dict]:
        path = f"/v1/jobs/{job_id}"
        extra = 0.0
        if wait is not None:
            path += f"?wait={wait:g}"
            extra = wait  # the long-poll itself must not trip the timeout
        return await self.request("GET", path,
                                  timeout=self.timeout + extra)

    async def store_manifest(self) -> List[str]:
        status, doc = await self.request("GET", "/v1/store")
        keys = doc.get("keys") if status == 200 else None
        return keys if isinstance(keys, list) else []

    async def store_get(self, key: str) -> Optional[Dict]:
        status, doc = await self.request("GET", f"/v1/store/{key}")
        if status != 200:
            return None
        result = doc.get("result")
        return result if isinstance(result, dict) else None

    async def store_put(self, key: str, payload: Dict) -> bool:
        status, _doc = await self.request("PUT", f"/v1/store/{key}",
                                          payload)
        return status == 200
