"""A fleet worker node: a whole serve stack plus a heartbeat.

A worker *is* the single-node service — the same
:class:`~repro.serve.api.ServeService` (sharded pool, admission,
watchdog, store) behind the same :class:`~repro.serve.api.HttpApi` —
wrapped with the two things membership needs:

* **registration**: on startup (and whenever the coordinator answers a
  heartbeat with 404, which is how a restarted coordinator says "I
  don't know you"), POST ``/v1/fleet/register`` with this node's id and
  advertised base URL, retrying forever — a worker that outlives a
  coordinator restart rejoins by itself;
* **heartbeats**: every ``interval`` seconds, POST the node's full
  ``healthz`` document to ``/v1/fleet/heartbeat``.  Carrying the real
  health document (not just "I'm alive") is what lets the coordinator
  distinguish a degraded node (watchdog recycle, broken pool, drain in
  progress) from a dead one and steer new work accordingly.

An unreachable coordinator is never fatal to the worker: it keeps
serving its HTTP surface (direct clients still work) and keeps trying
to phone home.  The fleet heals from either side.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.fleet.rpc import AsyncNodeClient, NodeUnreachable
from repro.serve.api import HttpApi, ServeService

#: Seconds between heartbeats; the coordinator's default death timeout
#: is several multiples of this, so one lost beat never kills a node.
DEFAULT_HEARTBEAT_INTERVAL = 1.0


class FleetWorker:
    """One node: a ServeService + HttpApi + the membership loop."""

    def __init__(self, service: ServeService, coordinator_url: str,
                 node_id: str,
                 host: str = "127.0.0.1", port: int = 0,
                 advertise_host: Optional[str] = None,
                 interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 timeout: float = 10.0) -> None:
        self.service = service
        self.api = HttpApi(service, host=host, port=port)
        self.node_id = node_id
        self.interval = interval
        self.advertise_host = advertise_host or host
        self.coordinator = AsyncNodeClient(coordinator_url,
                                           timeout=timeout)

    @property
    def url(self) -> str:
        """This node's advertised base URL (valid once listening)."""
        return f"http://{self.advertise_host}:{self.api.port}"

    # -- membership ----------------------------------------------------

    async def _register(self) -> bool:
        try:
            status, _doc = await self.coordinator.request(
                "POST", "/v1/fleet/register",
                {"id": self.node_id, "url": self.url})
        except NodeUnreachable:
            return False
        if status == 200:
            self.service.metrics.inc("fleet_registrations")
            return True
        return False

    async def _heartbeat_loop(self) -> None:
        registered = await self._register()
        while True:
            try:
                status, _doc = await self.coordinator.request(
                    "POST", "/v1/fleet/heartbeat",
                    {"id": self.node_id, "url": self.url,
                     "healthz": self.service.healthz()})
            except NodeUnreachable:
                status = None  # coordinator away; keep beating
            if status == 200:
                registered = True
                self.service.metrics.inc("fleet_heartbeats")
            elif status == 404 or not registered:
                # The coordinator does not know us (restart, or it
                # declared us dead during a partition): rejoin.
                registered = await self._register()
            await asyncio.sleep(self.interval)

    # -- lifecycle -----------------------------------------------------

    async def run(self, ready=None,
                  drain_timeout: Optional[float] = None,
                  install_signals: bool = True) -> None:
        """Serve + heartbeat until shutdown; same contract as
        :meth:`HttpApi.run` (``ready`` gets the bound port)."""
        heartbeat: Optional[asyncio.Task] = None

        def on_ready(port: int) -> None:
            nonlocal heartbeat
            heartbeat = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name=f"heartbeat-{self.node_id}")
            if ready is not None:
                ready(port)

        try:
            await self.api.run(ready=on_ready,
                               drain_timeout=drain_timeout,
                               install_signals=install_signals)
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
                try:
                    await heartbeat
                except (asyncio.CancelledError, Exception):
                    pass

    def request_shutdown(self) -> None:
        self.api.request_shutdown()
