"""``repro.fleet`` — the fault-tolerant distributed serve fleet.

Scales :mod:`repro.serve` from one node to many: a **coordinator**
consistent-hashes the content-key namespace across **worker nodes**
(each a full serve stack), tracks their liveness by heartbeat, fails
jobs over from dead nodes onto survivors, and replicates every result
to K ring owners with read repair and anti-entropy resync.  All on the
same stdlib HTTP wire format the single-node service speaks, so
:class:`~repro.serve.client.ServeClient` talks to a coordinator and a
lone node interchangeably — and results are byte-identical either way.

The layers:

* :mod:`~repro.fleet.ring` — consistent hashing (virtual nodes) over
  the SHA-256 result-key namespace;
* :mod:`~repro.fleet.rpc` — the coordinator's asyncio HTTP client,
  collapsing every transport failure into ``NodeUnreachable``;
* :mod:`~repro.fleet.admission` — per-client token-bucket quotas with
  structured 429s;
* :mod:`~repro.fleet.coordinator` — :class:`FleetService` (routing,
  heartbeat liveness, failover requeue, replication) and its HTTP
  face :class:`CoordinatorApi`;
* :mod:`~repro.fleet.worker` — :class:`FleetWorker`, a serve node plus
  the register/heartbeat membership loop.

Chaos coverage lives in :mod:`repro.resilience.fleet`.  See
``docs/SERVICE.md`` ("Distributed fleet") for topology and guarantees.
"""

from repro.fleet.admission import ClientQuotas
from repro.fleet.coordinator import (CoordinatorApi, FleetService,
                                     NodeInfo)
from repro.fleet.ring import HashRing
from repro.fleet.rpc import AsyncNodeClient, NodeUnreachable
from repro.fleet.worker import FleetWorker

__all__ = [
    "AsyncNodeClient",
    "ClientQuotas",
    "CoordinatorApi",
    "FleetService",
    "FleetWorker",
    "HashRing",
    "NodeInfo",
    "NodeUnreachable",
]
