"""The fleet coordinator: routing, liveness, failover, replication.

:class:`FleetService` is the coordinator's brain.  It keeps the node
table and the consistent-hash ring (:mod:`repro.fleet.ring`), admits
jobs through per-client quotas (:mod:`repro.fleet.admission`) and a
fleet-wide queue bound, and runs one asyncio *dispatch task* per
in-flight job:

1. pick the key's ring owner among live, non-draining nodes (identical
   keys land on one node, so node-side single-flight dedup still
   collapses duplicates);
2. POST the job over :class:`~repro.fleet.rpc.AsyncNodeClient` and
   long-poll it to a terminal state, **racing the node's death event**
   — the instant the liveness monitor declares the node dead, every
   dispatch task parked on it wakes and requeues onto a survivor
   (mirroring the sweep runner's ``excluded``/retry/backoff shape);
3. on completion, write the result through to the key's K ring owners
   (*replication*), then finish the job and its deduped followers.

Reads are replicated too: a submit that misses the coordinator's local
store asks the ring owners (*read repair* pushes the payload back to
owners that missed), and a node that (re)registers gets an
*anti-entropy* pass diffing its store manifest against the
coordinator's — so a node that was dead while results were produced
converges back to holding everything it owns.

Liveness is heartbeat-driven: workers POST ``/v1/fleet/heartbeat``
every second or so carrying their ``healthz`` document, which lets the
coordinator distinguish *sick* (degraded: recent watchdog recycle,
broken pool, drain in progress — stop routing new work there) from
*dead* (no heartbeat for ``heartbeat_timeout`` — failover everything).
A heartbeat from an unknown or previously-dead node gets a 404, which
tells the worker to re-register; re-registration triggers the
anti-entropy sync.

:class:`CoordinatorApi` is the HTTP face — the same
``POST /v1/jobs`` / ``GET /v1/jobs/<id>?wait=`` dialect a single serve
node speaks (so :class:`~repro.serve.client.ServeClient` works against
either, unchanged) plus the fleet control plane under ``/v1/fleet/``.

Chaos hooks: an optional ``faults`` object (duck-typed; see
:class:`repro.resilience.fleet.FleetFaultPlan`) may drop heartbeats or
partition nodes at the coordinator's edge, which is how the chaos gate
exercises failover without real packet loss.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fleet.admission import ClientQuotas
from repro.fleet.ring import HashRing
from repro.fleet.rpc import AsyncNodeClient, NodeUnreachable
from repro.obs.metrics import MetricsRegistry
from repro.serve.api import HttpServerBase
from repro.serve.jobs import (DONE, FAILED, QUEUED, REJECTED, RUNNING,
                              Job, JobValidationError, next_job_id,
                              parse_request, request_key, spec_to_dict)
from repro.serve.store import ResultStore
from repro.serve.workers import NoteFn

#: Replication factor: each result is written through to this many
#: ring owners.
DEFAULT_REPLICAS = 2
#: Seconds without a heartbeat before a node is declared dead.
DEFAULT_HEARTBEAT_TIMEOUT = 3.0
#: Fleet-wide bound on concurrently dispatched jobs.
DEFAULT_QUEUE_LIMIT = 256
#: How long one node-side long-poll waits per round trip.
DEFAULT_POLL_WAIT = 5.0
#: Give up on a job that has no live node to run on after this long.
NO_NODES_TIMEOUT = 30.0
#: Base backoff between dispatch rounds once every node was excluded.
DISPATCH_BACKOFF = 0.2


@dataclass
class NodeInfo:
    """One worker node as the coordinator sees it."""

    id: str
    url: str
    client: AsyncNodeClient
    registered_at: float
    last_heartbeat: float
    health: Dict = field(default_factory=dict)
    inflight: Set[str] = field(default_factory=set)   # coordinator job ids
    requeues: int = 0          # jobs failed over *off* this node
    completed: int = 0
    draining: bool = False
    dead: bool = False
    dead_event: asyncio.Event = field(default_factory=asyncio.Event)

    def age_s(self, now: float) -> float:
        return round(now - self.last_heartbeat, 3)

    def status_doc(self, now: float) -> Dict:
        return {
            "url": self.url,
            "alive": not self.dead,
            "draining": self.draining,
            "heartbeat_age_s": self.age_s(now),
            "inflight": len(self.inflight),
            "requeues": self.requeues,
            "completed": self.completed,
            "state": self.health.get("state", "unknown"),
            "degraded": self.health.get("degraded", []),
        }


class FleetService:
    """Coordinator state machine; see the module docstring."""

    def __init__(self,
                 replicas: int = DEFAULT_REPLICAS,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 quota_rate: float = 0.0,
                 quota_burst: int = 0,
                 node_timeout: float = 30.0,
                 poll_wait: float = DEFAULT_POLL_WAIT,
                 no_nodes_timeout: float = NO_NODES_TIMEOUT,
                 cache_dir=None,
                 persistent: bool = False,
                 faults=None,
                 on_note: Optional[NoteFn] = None) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.heartbeat_timeout = heartbeat_timeout
        self.queue_limit = queue_limit
        self.node_timeout = node_timeout
        self.poll_wait = poll_wait
        self.no_nodes_timeout = no_nodes_timeout
        self.faults = faults
        self.on_note = on_note
        self.metrics = MetricsRegistry()
        self.quotas = ClientQuotas(rate=quota_rate, burst=quota_burst or 1)
        # The coordinator's own store is the job registry + a fast
        # local tier; durable replicas live on the nodes (persistent
        # only when the operator points the coordinator at a cache dir).
        self.store = ResultStore(cache_dir=cache_dir,
                                 persistent=persistent,
                                 on_warning=on_note)
        self.ring = HashRing()
        self.nodes: Dict[str, NodeInfo] = {}
        self.started_at = time.monotonic()
        self.draining = False
        self._primaries: Dict[str, Job] = {}
        self._followers: Dict[str, List[Job]] = {}
        self._live_dispatches = 0
        self._tasks: Set[asyncio.Task] = set()
        self._topology = asyncio.Event()
        self._monitor_task: Optional[asyncio.Task] = None
        self._register_gauges()

    def _note(self, msg: str) -> None:
        if self.on_note is not None:
            self.on_note(msg)

    def _register_gauges(self) -> None:
        m = self.metrics
        m.gauge("uptime_s",
                lambda: round(time.monotonic() - self.started_at, 3))
        m.gauge("draining", lambda: self.draining)
        m.gauge("nodes_live", lambda: sum(
            not n.dead for n in self.nodes.values()))
        m.gauge("nodes_dead", lambda: sum(
            n.dead for n in self.nodes.values()))
        m.gauge("jobs_inflight", lambda: self._live_dispatches)
        m.gauge("jobs_tracked", lambda: self.store.jobs_tracked)
        m.gauge("quota_clients", lambda: len(
            self.quotas.snapshot().get("clients", {})))
        # The structured per-node liveness map — one gauge, sampled
        # fresh at every /v1/metrics scrape.
        m.gauge("fleet_nodes", self._nodes_gauge)

    def _nodes_gauge(self) -> Dict:
        now = time.monotonic()
        return {node_id: node.status_doc(now)
                for node_id, node in sorted(self.nodes.items())}

    # -- membership ----------------------------------------------------

    def _signal_topology(self) -> None:
        self._topology.set()
        self._topology = asyncio.Event()

    def register_node(self, node_id: str, url: str) -> Dict:
        """(Re-)register a worker; idempotent for a live node at the
        same URL, replacement for anything else."""
        now = time.monotonic()
        existing = self.nodes.get(node_id)
        if existing is not None and not existing.dead:
            if existing.url == url:
                existing.last_heartbeat = now
                return {"registered": True, "id": node_id,
                        "nodes": len(self.ring)}
            # Same id at a new address: the old incarnation is gone.
            self._mark_dead(existing, f"replaced by {url}")
        node = NodeInfo(id=node_id, url=url,
                        client=AsyncNodeClient(url,
                                               timeout=self.node_timeout),
                        registered_at=now, last_heartbeat=now)
        self.nodes[node_id] = node
        self.ring.add(node_id)
        self.metrics.inc("node_registrations")
        self._note(f"fleet: node {node_id} registered at {url} "
                   f"({len(self.ring)} live)")
        self._spawn(self._sync_node(node), name=f"sync-{node_id}")
        self._signal_topology()
        return {"registered": True, "id": node_id,
                "nodes": len(self.ring)}

    def heartbeat(self, node_id: str, health: Dict) -> Tuple[int, Dict]:
        """Record a heartbeat; 404 tells the worker to re-register."""
        if self.faults is not None and self.faults.drop_heartbeat(node_id):
            # Simulated loss: the packet "never arrived", but the
            # worker sees a normal 200 — exactly like a drop on the
            # return path.
            self.metrics.inc("heartbeats_dropped")
            return 200, {"ok": True}
        node = self.nodes.get(node_id)
        if node is None or node.dead:
            return 404, {"error": "unknown-node", "status": 404,
                         "id": node_id}
        node.last_heartbeat = time.monotonic()
        node.health = health if isinstance(health, dict) else {}
        degraded = node.health.get("degraded")
        node.draining = (isinstance(degraded, list)
                         and "drain-in-progress" in degraded)
        self.metrics.inc("heartbeats")
        return 200, {"ok": True}

    def _mark_dead(self, node: NodeInfo, reason: str) -> None:
        if node.dead:
            return
        node.dead = True
        node.dead_event.set()
        self.ring.remove(node.id)
        self.metrics.inc("node_deaths")
        self._note(f"fleet: node {node.id} dead ({reason}); "
                   f"{len(node.inflight)} job(s) to fail over, "
                   f"{len(self.ring)} node(s) left")
        self._signal_topology()

    async def _monitor(self) -> None:
        interval = max(self.heartbeat_timeout / 4, 0.05)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for node in list(self.nodes.values()):
                if (not node.dead and
                        now - node.last_heartbeat > self.heartbeat_timeout):
                    self._mark_dead(node, "heartbeat timeout")

    # -- replication ---------------------------------------------------

    async def _node_rpc(self, node: NodeInfo, method: str, path: str,
                        body=None, timeout: Optional[float] = None
                        ) -> Tuple[int, Dict]:
        if self.faults is not None and self.faults.partitioned(node.id):
            self.metrics.inc("rpcs_partitioned")
            raise NodeUnreachable(f"{node.id}: partitioned (injected)")
        return await node.client.request(method, path, body,
                                         timeout=timeout)

    def _owner_nodes(self, key: str) -> List[NodeInfo]:
        out = []
        for node_id in self.ring.owners(key, self.replicas):
            node = self.nodes.get(node_id)
            if node is not None and not node.dead:
                out.append(node)
        return out

    async def replicated_get(self, key: str) -> Optional[Dict]:
        """Local tier, then the ring owners; a hit found remotely is
        read-repaired onto the owners that missed (and cached locally)."""
        payload = self.store.peek(key)
        if payload is not None:
            return payload
        missed: List[NodeInfo] = []
        for node in self._owner_nodes(key):
            try:
                status, doc = await self._node_rpc(
                    node, "GET", f"/v1/store/{key}")
            except NodeUnreachable:
                continue
            result = doc.get("result") if status == 200 else None
            if isinstance(result, dict):
                self.store.put(key, result)
                self.metrics.inc("replica_reads")
                for behind in missed:
                    if await self._push_replica(behind, key, result):
                        self.metrics.inc("read_repairs")
                return result
            missed.append(node)
        return None

    async def _push_replica(self, node: NodeInfo, key: str,
                            payload: Dict) -> bool:
        try:
            status, _doc = await self._node_rpc(
                node, "PUT", f"/v1/store/{key}", payload)
        except NodeUnreachable:
            self.metrics.inc("replication_put_failures")
            return False
        if status != 200:
            self.metrics.inc("replication_put_failures")
            return False
        return True

    async def _replicate(self, key: str, payload: Dict,
                         completed_at: float) -> None:
        """Write-through: local tier + the K ring owners.  Failures are
        counted, never fatal — anti-entropy heals them on rejoin."""
        self.store.put(key, payload)
        for node in self._owner_nodes(key):
            if await self._push_replica(node, key, payload):
                self.metrics.inc("replication_puts")
        self.metrics.observe(
            "replication_lag_ms",
            max(int((time.monotonic() - completed_at) * 1000), 0))

    async def _sync_node(self, node: NodeInfo) -> None:
        """Anti-entropy on (re)join: diff manifests both ways — pull
        results we lost track of, push results the node should own."""
        try:
            status, doc = await self._node_rpc(node, "GET", "/v1/store")
        except NodeUnreachable:
            return
        manifest = doc.get("keys") if status == 200 else None
        if not isinstance(manifest, list):
            return
        theirs = {k for k in manifest if isinstance(k, str)}
        ours = set(self.store.keys())
        pulled = pushed = 0
        for key in sorted(theirs - ours):
            try:
                status, doc = await self._node_rpc(
                    node, "GET", f"/v1/store/{key}")
            except NodeUnreachable:
                return
            result = doc.get("result") if status == 200 else None
            if isinstance(result, dict):
                self.store.put(key, result)
                pulled += 1
        for key in sorted(ours - theirs):
            if node.id not in self.ring.owners(key, self.replicas):
                continue
            payload = self.store.peek(key)
            if payload is None:
                continue
            if await self._push_replica(node, key, payload):
                pushed += 1
        if pulled or pushed:
            self.metrics.inc("anti_entropy_pulls", pulled)
            self.metrics.inc("anti_entropy_pushes", pushed)
            self._note(f"fleet: anti-entropy with {node.id}: "
                       f"pulled {pulled}, pushed {pushed}")

    # -- submission ----------------------------------------------------

    def _terminal(self, job: Job, state: str, result: Optional[Dict] = None,
                  error: Optional[Dict] = None,
                  rejection: Optional[Dict] = None) -> None:
        job.state = state
        job.result = result
        job.error = error
        job.rejection = rejection
        job.finished_at = time.monotonic()
        self.store.finished(job)
        event = job._done_event
        if event is not None:
            event.set()

    def _finish_with_followers(self, job: Job, state: str,
                               result: Optional[Dict] = None,
                               error: Optional[Dict] = None) -> None:
        followers = self._followers.pop(job.key, [])
        if self._primaries.get(job.key) is job:
            del self._primaries[job.key]
        self._terminal(job, state, result=result, error=error)
        for follower in followers:
            self._terminal(follower, state, result=result, error=error)

    async def submit_one(self, data: object,
                         client_id: str = "anonymous") -> Job:
        """Parse, quota-check, dedupe, and dispatch one request; always
        returns a registered Job (possibly already terminal).  Raises
        :class:`JobValidationError` for malformed requests."""
        kind, spec, priority = parse_request(data)
        job = Job(id=next_job_id(), kind=kind, spec=spec,
                  key=request_key(spec), priority=priority,
                  submitted_at=time.monotonic())
        job._done_event = asyncio.Event()
        self.metrics.inc("jobs_submitted")
        self.store.register(job)

        rejection = None
        if self.draining:
            rejection = {"error": "draining", "status": 503,
                         "retry_after_s": 5.0}
        if rejection is None:
            rejection = self.quotas.admit(client_id)
        if rejection is None and self._live_dispatches >= self.queue_limit:
            rejection = {"error": "queue-full", "status": 429,
                         "queue_limit": self.queue_limit,
                         "retry_after_s": 1.0}
        if rejection is not None:
            self.metrics.inc("jobs_rejected")
            self._terminal(job, REJECTED, rejection=rejection)
            return job

        cached = self.store.get(job.key)
        if cached is None:
            cached = await self.replicated_get(job.key)
        if cached is not None:
            job.cache_hit = True
            self.metrics.inc("jobs_cache_hit")
            self._terminal(job, DONE, result=cached)
            return job

        primary = self._primaries.get(job.key)
        if primary is not None and primary.state in (QUEUED, RUNNING):
            job.deduped = True
            self._followers.setdefault(job.key, []).append(job)
            self.metrics.inc("jobs_deduped")
            return job

        self._primaries[job.key] = job
        self._followers[job.key] = []
        self._live_dispatches += 1
        self._spawn(self._dispatch(job), name=f"dispatch-{job.id}")
        return job

    async def submit_batch(self, items: List[object],
                           client_id: str = "anonymous") -> List[Dict]:
        docs: List[Dict] = []
        for item in items:
            try:
                job = await self.submit_one(item, client_id)
            except JobValidationError as exc:
                self.metrics.inc("jobs_invalid")
                docs.append({"state": "invalid", "error": exc.payload})
                continue
            docs.append(job.to_dict())
        return docs

    async def wait_for(self, job: Job, timeout: float) -> None:
        event = job._done_event
        if event is None or job.state in (DONE, REJECTED, FAILED):
            return
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    # -- dispatch ------------------------------------------------------

    def _spawn(self, coro, name: str) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _pick_node(self, key: str,
                   excluded: Set[str]) -> Optional[NodeInfo]:
        """The key's preferred live node: ring owners in order, then any
        other live node — skipping excluded and draining ones."""
        candidates = self.ring.owners(key, len(self.ring) or 1)
        for node_id in candidates:
            node = self.nodes.get(node_id)
            if (node is not None and not node.dead
                    and not node.draining and node_id not in excluded):
                return node
        return None

    async def _dispatch(self, job: Job) -> None:
        try:
            await self._dispatch_inner(job)
        except Exception as exc:  # a dispatch bug must not lose the job
            self.metrics.inc("dispatch_errors")
            self._finish_with_followers(job, FAILED, error={
                "type": "dispatch-error",
                "message": f"{type(exc).__name__}: {exc}"})
        finally:
            self._live_dispatches -= 1

    async def _dispatch_inner(self, job: Job) -> None:
        excluded: Set[str] = set()
        no_nodes_since: Optional[float] = None
        round_trips = 0
        while True:
            node = self._pick_node(job.key, excluded)
            if node is None:
                if excluded:
                    # Everything live was excluded this round (busy or
                    # freshly failed); widen again after a backoff.
                    excluded.clear()
                    round_trips += 1
                    await asyncio.sleep(min(
                        DISPATCH_BACKOFF * (2 ** min(round_trips, 5)),
                        5.0))
                    continue
                # No live nodes at all: wait for one to register.
                now = time.monotonic()
                if no_nodes_since is None:
                    no_nodes_since = now
                    self._note(f"fleet: {job.id} waiting — no live nodes")
                if now - no_nodes_since > self.no_nodes_timeout:
                    self._finish_with_followers(job, FAILED, error={
                        "type": "no-live-nodes",
                        "message": f"no worker node became available in "
                                   f"{self.no_nodes_timeout:g}s"})
                    return
                topology = self._topology
                try:
                    await asyncio.wait_for(topology.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
                continue
            no_nodes_since = None

            job.state = RUNNING
            job.attempts += 1
            node.inflight.add(job.id)
            try:
                outcome, payload = await self._run_on(node, job)
            except NodeUnreachable as exc:
                excluded.add(node.id)
                node.requeues += 1
                self.metrics.inc("fleet_requeues")
                self._note(f"fleet: requeueing {job.id} off {node.id} "
                           f"({exc})")
                continue
            finally:
                node.inflight.discard(job.id)

            if outcome == "busy":
                # The node's own admission said no; try a sibling.
                excluded.add(node.id)
                continue
            if outcome == "done":
                completed_at = time.monotonic()
                node.completed += 1
                self.metrics.inc("jobs_executed")
                self.metrics.observe("job_latency_ms", max(int(
                    (completed_at - job.submitted_at) * 1000), 0))
                await self._replicate(job.key, payload, completed_at)
                self._finish_with_followers(job, DONE, result=payload)
                return
            # "failed" / "error" / "skew": deterministic outcomes a
            # different node would reproduce — do not requeue.
            self.metrics.inc("jobs_failed")
            self._finish_with_followers(job, FAILED, error=payload)
            return

    async def _run_on(self, node: NodeInfo,
                      job: Job) -> Tuple[str, Optional[Dict]]:
        """Run one job on one node to a terminal outcome, racing the
        node's death event so failover does not wait out a long poll.

        Returns ``(outcome, payload)`` with outcome one of ``done`` /
        ``failed`` / ``error`` / ``skew`` / ``busy``; raises
        :class:`NodeUnreachable` when the node vanished mid-job."""
        wire = spec_to_dict(job.kind, job.spec)
        wire["priority"] = job.priority
        status, doc = await self._node_rpc(node, "POST", "/v1/jobs", wire)
        if status in (429, 503):
            return "busy", doc
        if status not in (200, 202):
            return "error", {"type": "node-rejected",
                             "status": status, "detail": doc}
        remote_key = doc.get("key")
        if remote_key != job.key:
            # The node hashed the same spec to a different key: its
            # source tree differs from ours, and its "result" would not
            # be byte-identical to what this coordinator promises.
            self.metrics.inc("key_mismatches")
            self._note(f"fleet: {node.id} computed key "
                       f"{str(remote_key)[:12]}… for {job.id} "
                       f"(coordinator: {job.key[:12]}…) — version skew")
            return "skew", {"type": "code-version-skew",
                            "node": node.id,
                            "message": "worker and coordinator disagree "
                                       "on the job's content key; "
                                       "results would not be comparable"}
        if doc.get("state") == DONE:
            return "done", doc.get("result")
        if doc.get("state") == FAILED:
            return "failed", doc.get("error")
        remote_id = doc.get("id")
        if not isinstance(remote_id, str):
            return "error", {"type": "bad-node-response", "detail": doc}

        while True:
            if node.dead:
                raise NodeUnreachable(f"{node.id} declared dead")
            poll = self._spawn(
                self._node_rpc(node, "GET",
                               f"/v1/jobs/{remote_id}?wait={self.poll_wait:g}",
                               timeout=self.node_timeout + self.poll_wait),
                name=f"poll-{job.id}")
            death = self._spawn(node.dead_event.wait(),
                                name=f"death-{node.id}")
            done, _pending = await asyncio.wait(
                {poll, death}, return_when=asyncio.FIRST_COMPLETED)
            death.cancel()
            if poll not in done:
                poll.cancel()
                raise NodeUnreachable(f"{node.id} died mid-job")
            status, doc = poll.result()  # re-raises NodeUnreachable
            if status != 200:
                return "error", {"type": "bad-node-response",
                                 "status": status, "detail": doc}
            state = doc.get("state")
            if state == DONE:
                return "done", doc.get("result")
            if state == FAILED:
                return "failed", doc.get("error")
            if state == REJECTED:
                return "busy", doc.get("rejection")
            # queued / running: poll again.

    # -- documents -----------------------------------------------------

    def healthz(self) -> Dict:
        live = sum(not n.dead for n in self.nodes.values())
        reasons: List[str] = []
        if self.draining:
            reasons.append("drain-in-progress")
        if not live:
            reasons.append("no-live-nodes")
        return {
            "ok": True,
            "state": "degraded" if reasons else "ok",
            "degraded": reasons,
            "draining": self.draining,
            "role": "coordinator",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "nodes_live": live,
            "nodes_dead": len(self.nodes) - live,
            "jobs_inflight": self._live_dispatches,
        }

    def fleet_status(self) -> Dict:
        now = time.monotonic()
        return {
            "nodes": {node_id: node.status_doc(now)
                      for node_id, node in sorted(self.nodes.items())},
            "ring": self.ring.nodes(),
            "replicas": self.replicas,
            "heartbeat_timeout_s": self.heartbeat_timeout,
            "jobs": {
                "submitted": self.metrics.counter("jobs_submitted"),
                "executed": self.metrics.counter("jobs_executed"),
                "cache_hit": self.metrics.counter("jobs_cache_hit"),
                "deduped": self.metrics.counter("jobs_deduped"),
                "rejected": self.metrics.counter("jobs_rejected"),
                "failed": self.metrics.counter("jobs_failed"),
                "requeues": self.metrics.counter("fleet_requeues"),
                "inflight": self._live_dispatches,
            },
            "replication": {
                "puts": self.metrics.counter("replication_puts"),
                "put_failures": self.metrics.counter(
                    "replication_put_failures"),
                "replica_reads": self.metrics.counter("replica_reads"),
                "read_repairs": self.metrics.counter("read_repairs"),
                "anti_entropy_pulls": self.metrics.counter(
                    "anti_entropy_pulls"),
                "anti_entropy_pushes": self.metrics.counter(
                    "anti_entropy_pushes"),
            },
            "quotas": self.quotas.snapshot(),
        }

    def metrics_snapshot(self) -> Dict:
        snap = self.metrics.snapshot()
        snap["store"] = {
            "hits": self.store.hits,
            "misses": self.store.misses,
            "puts": self.store.puts,
            "hit_rate": round(self.store.hit_rate(), 4),
        }
        return snap

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Attach loop-bound machinery (call from inside the loop)."""
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor(), name="fleet-monitor")

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, let in-flight dispatches finish, flush."""
        self.draining = True
        self._note("fleet: draining (admission closed)")
        pending = [t for t in self._tasks
                   if t.get_name().startswith("dispatch-")]
        drained = True
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=timeout)
            drained = not not_done
            for task in not_done:
                task.cancel()
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        self.store.flush()
        outcome = "complete" if drained else "timed out"
        self._note(f"fleet: drain {outcome}; store flushed")
        return drained


class CoordinatorApi(HttpServerBase):
    """The coordinator's HTTP face: the serve job dialect plus the
    ``/v1/fleet/`` control plane."""

    def __init__(self, service: FleetService,
                 host: str = "127.0.0.1", port: int = 8378) -> None:
        super().__init__(host=host, port=port)
        self.service = service
        self.metrics = service.metrics

    def _on_start(self) -> None:
        self.service.start()

    async def _drain(self, timeout: Optional[float] = None) -> bool:
        return await self.service.drain(timeout)

    # -- routes --------------------------------------------------------

    async def _route(self, method: str, target: str, headers: Dict,
                     body: bytes) -> Tuple[int, Dict]:
        from urllib.parse import parse_qs, urlsplit
        import json as _json
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)

        def parsed_body():
            try:
                return _json.loads(body.decode() or "null"), None
            except (ValueError, UnicodeDecodeError) as exc:
                return None, (400, {"error": "bad-json", "status": 400,
                                    "message": str(exc)})

        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["POST"]}
            data, err = parsed_body()
            if err is not None:
                return err
            client_id = headers.get("x-client-id", "anonymous")
            return await self._post_jobs(data, client_id)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["GET"]}
            return await self._get_job(path[len("/v1/jobs/"):], query)
        if path == "/v1/fleet/register":
            if method != "POST":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["POST"]}
            data, err = parsed_body()
            if err is not None:
                return err
            return self._register(data)
        if path == "/v1/fleet/heartbeat":
            if method != "POST":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["POST"]}
            data, err = parsed_body()
            if err is not None:
                return err
            if not isinstance(data, dict) or not isinstance(
                    data.get("id"), str):
                return 400, {"error": "bad-heartbeat", "status": 400,
                             "message": "heartbeats are {'id': ..., "
                                        "'healthz': {...}}"}
            return self.service.heartbeat(data["id"],
                                          data.get("healthz") or {})
        if path == "/v1/fleet/status":
            return 200, self.service.fleet_status()
        if path == "/v1/store":
            return 200, {"keys": self.service.store.keys()}
        if path.startswith("/v1/store/"):
            key = path[len("/v1/store/"):]
            payload = await self.service.replicated_get(key)
            if payload is None:
                return 404, {"error": "unknown-key", "status": 404,
                             "key": key}
            return 200, {"key": key, "result": payload}
        if path == "/v1/healthz":
            return 200, self.service.healthz()
        if path == "/v1/metrics":
            return 200, self.service.metrics_snapshot()
        return 404, {"error": "not-found", "status": 404, "path": path}

    def _register(self, data: object) -> Tuple[int, Dict]:
        if not isinstance(data, dict):
            return 400, {"error": "bad-register", "status": 400,
                         "message": "registrations are {'id': ..., "
                                    "'url': ...}"}
        node_id, url = data.get("id"), data.get("url")
        if not isinstance(node_id, str) or not node_id:
            return 400, {"error": "bad-register", "status": 400,
                         "message": "'id' must be a non-empty string"}
        if not isinstance(url, str) or not url.startswith("http://"):
            return 400, {"error": "bad-register", "status": 400,
                         "message": "'url' must be an http:// base URL"}
        try:
            return 200, self.service.register_node(node_id, url)
        except ValueError as exc:
            return 400, {"error": "bad-register", "status": 400,
                         "message": str(exc)}

    async def _post_jobs(self, data: object,
                         client_id: str) -> Tuple[int, Dict]:
        if isinstance(data, dict) and "jobs" in data:
            items = data["jobs"]
            if not isinstance(items, list):
                return 400, {"error": "bad-batch", "status": 400,
                             "message": "'jobs' must be a list"}
        elif isinstance(data, list):
            items = data
        elif isinstance(data, dict):
            try:
                job = await self.service.submit_one(data, client_id)
            except JobValidationError as exc:
                self.service.metrics.inc("jobs_invalid")
                return 400, exc.payload
            doc = job.to_dict()
            if job.state == REJECTED:
                return job.rejection.get("status", 429), doc
            return (200 if job.state == DONE else 202), doc
        else:
            return 400, {"error": "bad-request", "status": 400,
                         "message": "expected a job object, a list, or "
                                    "{'jobs': [...]}"}
        docs = await self.service.submit_batch(items, client_id)
        states = [d.get("state") for d in docs]
        return 200, {
            "jobs": docs,
            "accepted": sum(s in ("queued", "running", "done")
                            for s in states),
            "rejected": states.count("rejected"),
            "invalid": states.count("invalid"),
        }

    async def _get_job(self, job_id: str,
                       query: Dict) -> Tuple[int, Dict]:
        job = self.service.store.job(job_id)
        if job is None:
            return 404, {"error": "unknown-job", "status": 404,
                         "id": job_id}
        wait = query.get("wait")
        if wait:
            try:
                seconds = min(float(wait[0]), 60.0)
            except ValueError:
                return 400, {"error": "bad-wait", "status": 400,
                             "message": f"wait={wait[0]!r} is not a "
                                        f"number"}
            await self.service.wait_for(job, seconds)
        return 200, job.to_dict()
