"""Per-client admission quotas for the fleet coordinator.

A classic token bucket per client id (the ``X-Client-Id`` request
header; absent means ``"anonymous"``): each client accrues ``rate``
tokens per second up to a ``burst`` cap, one job submission costs one
token, and an empty bucket yields a structured 429 whose
``retry_after_s`` says exactly when the next token lands — which the
HTTP layer surfaces as a real ``Retry-After`` header and
:class:`~repro.serve.client.ServeClient` honours when retrying.

The quota protects the *fleet* from one noisy client, not the node
queues — those have their own admission control
(:meth:`~repro.serve.workers.ShardedWorkerPool.try_admit`).  Both
rejections speak the same payload dialect (``status`` / ``error`` /
``retry_after_s``) so clients need one retry path.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

#: Default steady-state submissions per second per client.
DEFAULT_RATE = 50.0
#: Default bucket capacity (burst tolerance).
DEFAULT_BURST = 100
#: Buckets tracked before idle (full) ones are pruned.
MAX_CLIENTS = 1024


class ClientQuotas:
    """Token buckets keyed by client id.

    ``rate <= 0`` disables quotas entirely — every ``admit`` returns
    None and nothing is tracked (the single-tenant default for tests
    and benchmarks that measure the pipeline, not the limiter).
    """

    def __init__(self,
                 rate: float = DEFAULT_RATE,
                 burst: int = DEFAULT_BURST,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate > 0 and burst < 1:
            raise ValueError("burst must be >= 1 when quotas are on")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._buckets: Dict[str, Tuple[float, float]] = {}  # id -> (tokens, at)
        self.admitted = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def _refill(self, client_id: str, now: float) -> float:
        tokens, at = self._buckets.get(client_id, (float(self.burst), now))
        return min(float(self.burst), tokens + (now - at) * self.rate)

    def admit(self, client_id: str) -> Optional[Dict]:
        """Charge one token; None when admitted, else the structured
        429 rejection payload."""
        if not self.enabled:
            return None
        now = self.clock()
        tokens = self._refill(client_id, now)
        if tokens >= 1.0:
            self._buckets[client_id] = (tokens - 1.0, now)
            self.admitted += 1
            self._prune(now)
            return None
        self._buckets[client_id] = (tokens, now)
        self.rejected += 1
        return {
            "error": "quota-exceeded",
            "status": 429,
            "client": client_id,
            "retry_after_s": round((1.0 - tokens) / self.rate, 3),
            "rate": self.rate,
            "burst": self.burst,
        }

    def _prune(self, now: float) -> None:
        # An idle client's bucket refills to the cap and then carries no
        # information; dropping it reconstructs identically on return.
        if len(self._buckets) <= MAX_CLIENTS:
            return
        for client_id in [cid for cid in self._buckets
                          if self._refill(cid, now) >= self.burst]:
            del self._buckets[client_id]

    def snapshot(self) -> Dict:
        """JSON-safe state for ``/v1/fleet/status`` and metrics."""
        now = self.clock()
        return {
            "enabled": self.enabled,
            "rate": self.rate,
            "burst": self.burst,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "clients": {cid: round(self._refill(cid, now), 2)
                        for cid in sorted(self._buckets)},
        }
