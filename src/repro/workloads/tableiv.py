"""Paper Table IV, transcribed verbatim.

Per-benchmark characterization of store-atomicity speculation under
370-SLFSoS-key: retired instructions, retired loads (% of instructions),
forwarded (SLF) loads (% of instructions), gate stalls (% of
instructions), average stall cycles per gate stall, and re-executed
instructions (% of instructions).

These rows serve two purposes: they *calibrate* the synthetic workload
generators (loads % and forwarded % are generation targets), and they
are the paper-side reference the characterization benchmark prints next
to the measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

PARALLEL = "parallel"
SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class PaperRow:
    """One row of Table IV."""

    name: str
    suite: str
    instructions: int
    loads_pct: float
    forwarded_pct: float
    gate_stalls_pct: float
    avg_stall_cycles: float
    reexecuted_pct: float


def _row(suite: str, name: str, instructions: int, loads: float,
         forwarded: float, gate: float, stall_cycles: float,
         reexec: float) -> Tuple[str, PaperRow]:
    return name, PaperRow(name, suite, instructions, loads, forwarded,
                          gate, stall_cycles, reexec)


#: SPLASH-3 + PARSEC 3.0 parallel applications (Table IV, top).
PARALLEL_ROWS: Dict[str, PaperRow] = dict([
    _row(PARALLEL, "barnes", 2230309927, 31.780, 18.336, 5.929, 6.460, 0.194),
    _row(PARALLEL, "blackscholes", 1053954449, 19.745, 7.272, 2.208, 4.428, 0.001),
    _row(PARALLEL, "bodytrack", 3871819525, 17.915, 4.119, 1.028, 4.375, 0.292),
    _row(PARALLEL, "canneal", 911238793, 24.259, 2.755, 0.730, 5.226, 0.035),
    _row(PARALLEL, "cholesky", 873398060, 26.320, 1.604, 0.406, 6.188, 0.027),
    _row(PARALLEL, "dedup", 852338767, 13.762, 6.481, 1.467, 3.183, 0.012),
    _row(PARALLEL, "ferret", 843881294, 20.542, 3.527, 1.411, 11.112, 0.147),
    _row(PARALLEL, "fft", 2305314837, 17.282, 0.010, 0.006, 6.113, 0.000),
    _row(PARALLEL, "fluidanimate", 3439523371, 25.233, 1.044, 0.316, 8.459, 0.035),
    _row(PARALLEL, "fmm", 1391062359, 15.439, 0.294, 0.118, 19.345, 0.013),
    _row(PARALLEL, "freqmine", 2594696106, 26.120, 2.584, 1.185, 5.960, 0.167),
    _row(PARALLEL, "lu_cb", 4160074138, 22.165, 0.230, 0.124, 4.850, 0.015),
    _row(PARALLEL, "lu_ncb", 4331579576, 24.261, 1.352, 0.636, 16.362, 0.048),
    _row(PARALLEL, "ocean_cp", 958925716, 30.497, 0.031, 0.017, 94.560, 0.002),
    _row(PARALLEL, "ocean_ncp", 876550467, 27.233, 0.064, 0.033, 52.584, 0.007),
    _row(PARALLEL, "radiosity", 1071130503, 29.947, 4.201, 0.628, 7.783, 0.106),
    _row(PARALLEL, "radix", 160864073, 28.182, 1.411, 0.790, 98.644, 0.235),
    _row(PARALLEL, "raytrace", 1582601968, 28.501, 5.625, 2.045, 8.151, 0.145),
    _row(PARALLEL, "streamcluster", 1352721745, 29.899, 0.031, 0.020, 53.851, 0.000),
    _row(PARALLEL, "swaptions", 2086529095, 24.576, 4.498, 2.184, 5.284, 0.245),
    _row(PARALLEL, "vips", 4360543980, 18.061, 1.962, 0.534, 5.000, 0.005),
    _row(PARALLEL, "volrend", 801497112, 24.514, 5.097, 1.353, 5.484, 0.184),
    _row(PARALLEL, "water_nsquared", 276836113, 26.834, 7.687, 1.680, 6.181, 0.145),
    _row(PARALLEL, "water_spatial", 2259979795, 27.851, 8.669, 1.608, 6.292, 0.045),
    _row(PARALLEL, "x264", 1368542748, 26.209, 3.314, 1.432, 13.723, 10.191),
])

#: Paper-reported parallel averages (Table IV, "Average" row).
PARALLEL_AVERAGE = PaperRow("Average", PARALLEL, 1840636580, 24.285, 3.688,
                            1.115, 18.384, 0.492)

#: SPECrate CPU2017 sequential applications (Table IV, bottom).
SEQUENTIAL_ROWS: Dict[str, PaperRow] = dict([
    _row(SEQUENTIAL, "500.perlbench_1", 964505810, 23.866, 7.527, 2.686, 6.967, 0.146),
    _row(SEQUENTIAL, "500.perlbench_2", 973276968, 29.159, 11.192, 3.969, 4.979, 0.038),
    _row(SEQUENTIAL, "500.perlbench_3", 929430787, 7.889, 1.075, 0.378, 4.979, 0.020),
    _row(SEQUENTIAL, "502.gcc_1", 980611000, 24.143, 8.032, 2.094, 9.263, 1.152),
    _row(SEQUENTIAL, "502.gcc_2", 980660274, 24.132, 8.027, 2.090, 9.293, 1.156),
    _row(SEQUENTIAL, "502.gcc_3", 984563265, 24.955, 8.300, 2.183, 9.568, 0.987),
    _row(SEQUENTIAL, "502.gcc_4", 983294223, 25.847, 8.044, 2.188, 9.900, 1.054),
    _row(SEQUENTIAL, "502.gcc_5", 983293143, 25.847, 8.043, 2.187, 9.896, 1.063),
    _row(SEQUENTIAL, "503.bwaves_1", 973162848, 30.147, 1.722, 0.782, 17.455, 0.032),
    _row(SEQUENTIAL, "503.bwaves_2", 973162943, 30.147, 1.722, 0.782, 17.450, 0.034),
    _row(SEQUENTIAL, "503.bwaves_3", 1013214128, 33.200, 2.094, 0.814, 29.580, 0.044),
    _row(SEQUENTIAL, "503.bwaves_4", 980379698, 30.310, 1.765, 0.855, 35.334, 0.040),
    _row(SEQUENTIAL, "505.mcf", 1033168380, 29.973, 4.958, 2.411, 13.084, 11.722),
    _row(SEQUENTIAL, "507.cactuBSSN", 988799146, 31.857, 5.593, 1.479, 18.801, 0.014),
    _row(SEQUENTIAL, "508.namd", 957464484, 23.369, 2.448, 1.316, 3.973, 0.008),
    _row(SEQUENTIAL, "510.parest", 977387085, 33.230, 1.852, 0.530, 6.907, 0.067),
    _row(SEQUENTIAL, "511.povray", 1047422921, 30.513, 10.185, 2.911, 5.772, 0.003),
    _row(SEQUENTIAL, "519.lbm", 939699615, 20.561, 7.695, 3.074, 74.749, 0.440),
    _row(SEQUENTIAL, "520.omnetpp", 1011815225, 27.695, 7.978, 2.437, 15.927, 0.329),
    _row(SEQUENTIAL, "521.wrf", 1006331121, 25.615, 2.004, 0.730, 11.495, 0.016),
    _row(SEQUENTIAL, "523.xalancbmk", 1036626285, 26.679, 2.804, 0.700, 8.810, 0.167),
    _row(SEQUENTIAL, "525.x264_1", 910390076, 22.529, 3.381, 0.607, 6.611, 0.012),
    _row(SEQUENTIAL, "525.x264_2", 911740169, 23.605, 1.397, 0.303, 8.870, 0.015),
    _row(SEQUENTIAL, "525.x264_3", 909357540, 22.722, 2.841, 0.520, 6.546, 0.006),
    _row(SEQUENTIAL, "526.blender", 982134804, 23.531, 6.116, 1.752, 5.680, 0.139),
    _row(SEQUENTIAL, "527.cam4", 900052617, 22.683, 0.001, 0.000, 0.000, 0.000),
    _row(SEQUENTIAL, "531.deepsjeng", 1005818672, 22.159, 6.743, 2.632, 5.926, 0.960),
    _row(SEQUENTIAL, "538.imagick", 901182035, 18.552, 0.103, 0.023, 6.798, 0.001),
    _row(SEQUENTIAL, "541.leela", 1013351926, 23.706, 5.085, 2.031, 6.795, 0.393),
    _row(SEQUENTIAL, "544.nab", 966696584, 22.047, 4.176, 1.426, 5.726, 0.126),
    _row(SEQUENTIAL, "548.exchange2", 1212408138, 24.982, 4.140, 1.289, 6.112, 0.032),
    _row(SEQUENTIAL, "549.fotonik3d", 1000196710, 20.950, 7.703, 2.800, 6.293, 0.012),
    _row(SEQUENTIAL, "554.roms", 1034743008, 25.549, 3.700, 1.037, 10.122, 0.016),
    _row(SEQUENTIAL, "557.xz_1", 925428657, 14.427, 3.312, 1.913, 4.493, 0.092),
    _row(SEQUENTIAL, "557.xz_2", 930899613, 10.098, 1.064, 0.181, 5.094, 0.002),
    _row(SEQUENTIAL, "557.xz_3", 928391278, 12.466, 0.981, 0.167, 5.096, 0.002),
])

#: Paper-reported sequential averages (Table IV, "Average" row).
SEQUENTIAL_AVERAGE = PaperRow("Average", SEQUENTIAL, 979196144, 24.143,
                              4.550, 1.480, 11.510, 0.565)

#: Figure 10 paper results: geomean execution time normalized to x86.
FIGURE10_GEOMEAN = {
    PARALLEL: {"x86": 1.0, "370-NoSpec": 1.27, "370-SLFSpec": 1.07,
               "370-SLFSoS": 1.05, "370-SLFSoS-key": 1.025},
    SEQUENTIAL: {"x86": 1.0, "370-NoSpec": 1.23, "370-SLFSpec": 1.14,
                 "370-SLFSoS": 1.12, "370-SLFSoS-key": 1.027},
}


def all_rows() -> Dict[str, PaperRow]:
    rows = dict(PARALLEL_ROWS)
    rows.update(SEQUENTIAL_ROWS)
    return rows
