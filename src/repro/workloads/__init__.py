"""Synthetic workloads calibrated to the paper's Table IV."""

from repro.workloads.profiles import (PARALLEL_PROFILES, PROFILES,
                                      SEQUENTIAL_PROFILES, BenchmarkProfile,
                                      get_profile)
from repro.workloads.runner import (BenchmarkResult, geomean,
                                    normalized_times, run_benchmark,
                                    run_policy_sweep, suite_names)
from repro.workloads.synthetic import (generate_trace, generate_warmup,
                                       generate_workload)
from repro.workloads.tracefile import (TraceFileError, load_workload,
                                       save_workload)
from repro.workloads.tableiv import (FIGURE10_GEOMEAN, PARALLEL_AVERAGE,
                                     PARALLEL_ROWS, SEQUENTIAL_AVERAGE,
                                     SEQUENTIAL_ROWS, PaperRow, all_rows)

__all__ = ["BenchmarkProfile", "get_profile", "PROFILES",
           "PARALLEL_PROFILES", "SEQUENTIAL_PROFILES", "generate_trace",
           "generate_workload", "generate_warmup", "run_benchmark",
           "run_policy_sweep", "normalized_times", "geomean",
           "suite_names", "BenchmarkResult",
           "save_workload", "load_workload", "TraceFileError",
           "PaperRow", "all_rows", "PARALLEL_ROWS",
           "SEQUENTIAL_ROWS", "PARALLEL_AVERAGE", "SEQUENTIAL_AVERAGE",
           "FIGURE10_GEOMEAN"]
