"""Trace serialization: save and replay micro-op workloads.

A workload (one trace per core plus its warm-up) is stored as a single
JSON document, so experiments can be archived, diffed, and replayed
bit-identically — useful for regression-pinning a measured result or
shipping a failing case.

Format (version 1)::

    {
      "format": "repro-trace",
      "version": 1,
      "meta": {...},                      # free-form provenance
      "cores": [
        {"memdep_hints": [[lpc, spc]...],
         "ops": [[kind, addr, deps, latency, mispredict, taken, pc,
                  value], ...]},
        ...
      ],
      "warmup": [ ...same shape... ]      # optional
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.cpu.isa import Op, Trace

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


class TraceFileError(ValueError):
    """Malformed trace file."""


def _op_to_list(op: Op) -> list:
    return [op.kind, op.addr, list(op.deps), op.latency,
            int(op.mispredict), int(op.taken), op.pc, op.value]


def _op_from_list(fields: list, index: int) -> Op:
    try:
        kind, addr, deps, latency, mispredict, taken, pc, value = fields
        return Op(kind=kind, addr=addr, deps=tuple(deps), latency=latency,
                  mispredict=bool(mispredict), taken=bool(taken), pc=pc,
                  value=value)
    except (ValueError, TypeError) as exc:
        raise TraceFileError(f"bad op record at index {index}: {exc}") \
            from None


def trace_to_dict(trace: Trace) -> dict:
    return {
        "memdep_hints": [list(pair) for pair in trace.memdep_hints],
        "ops": [_op_to_list(op) for op in trace.ops],
    }


def trace_from_dict(data: dict) -> Trace:
    ops = [_op_from_list(fields, i)
           for i, fields in enumerate(data.get("ops", []))]
    trace = Trace(ops=ops,
                  memdep_hints=[tuple(pair)
                                for pair in data.get("memdep_hints", [])])
    trace.validate()
    return trace


def save_workload(path: Union[str, Path], traces: Sequence[Trace],
                  warmup: Optional[Sequence[Trace]] = None,
                  meta: Optional[Dict[str, object]] = None) -> None:
    """Write a workload (and optionally its warm-up) to ``path``."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": dict(meta or {}),
        "cores": [trace_to_dict(trace) for trace in traces],
    }
    if warmup is not None:
        document["warmup"] = [trace_to_dict(trace) for trace in warmup]
    Path(path).write_text(json.dumps(document, separators=(",", ":")),
                          encoding="utf-8")


def load_workload(path: Union[str, Path]
                  ) -> tuple:
    """Read (traces, warmup_or_None, meta) from ``path``."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceFileError(f"not valid JSON: {exc}") from None
    if document.get("format") != FORMAT_NAME:
        raise TraceFileError("not a repro-trace file")
    if document.get("version") != FORMAT_VERSION:
        raise TraceFileError(
            f"unsupported version {document.get('version')!r}")
    traces = [trace_from_dict(core) for core in document.get("cores", [])]
    if not traces:
        raise TraceFileError("workload has no cores")
    warmup = None
    if "warmup" in document:
        warmup = [trace_from_dict(core) for core in document["warmup"]]
    return traces, warmup, document.get("meta", {})
