"""Synthetic trace generation calibrated to Table IV.

The generator emits micro-op traces whose *rates* match a benchmark
profile: share of loads, share of forwarded (SLF) loads, store/branch
mix, plus behavioural patterns (stack-frame forwarding idiom, streaming
stores, strided loads, shared-heap accesses, a contended hot line).
A simple deficit controller keeps each category on target, so even short
traces land close to the Table IV percentages.

Address space layout (all word-aligned, per core):

=================  ====================================================
stack              private, tiny, write-then-read (forwarding source)
heap               private, ``footprint_bytes`` working set
stream             private, cold lines written once (streaming stores)
shared heap        one region common to all cores (parallel suites)
hot line           one contended line common to all cores (x264 idiom)
=================  ====================================================
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional

from repro.cpu.isa import Op, Trace, alu, branch, load, store
from repro.workloads.profiles import BenchmarkProfile

WORD = 8
LINE = 64

_STACK_BASE = 0x7F00_0000_0000
_HEAP_BASE = 0x1000_0000_0000
_STREAM_BASE = 0x2000_0000_0000
_SHARED_BASE = 0x5000_0000_0000
_HOT_LINE = 0x6000_0000_0000
_SHARED_BYTES = 256 * 1024
_CORE_STRIDE = 0x0010_0000_0000

# Stable synthetic PCs per code "site" so the StoreSet predictor and the
# stride prefetcher see recurring instructions.
_PC_FWD_STORE = 0x100
_PC_FWD_LOAD = 0x200
_PC_HEAP_LOAD = 0x300
_PC_STRIDE_LOAD = 0x400
_PC_SHARED_LOAD = 0x500
_PC_STORE = 0x600
_PC_STREAM_STORE = 0x700
_PC_BRANCH = 0x800
_N_SITES = 8


class _TraceBuilder:
    """Stateful generator for one core's trace."""

    def __init__(self, profile: BenchmarkProfile, core_id: int,
                 rng: random.Random, stream_epoch: int = 0) -> None:
        self.stream_epoch = stream_epoch
        self.profile = profile
        self.core_id = core_id
        self.rng = rng
        self.trace = Trace()
        self.recent: Deque[int] = deque(maxlen=8)   # recent producers
        self.n_loads = 0
        self.n_stores = 0
        self.n_forwarded = 0
        self.n_branches = 0
        self.stack_base = _STACK_BASE + core_id * _CORE_STRIDE
        self.heap_base = _HEAP_BASE + core_id * _CORE_STRIDE
        # Each epoch streams through fresh lines: a warm-up trace must
        # not pre-own the lines the measured trace will stream into.
        self.stream_ptr = (_STREAM_BASE + core_id * _CORE_STRIDE
                           + stream_epoch * (_CORE_STRIDE // 2))
        self.frame_off = 0
        self.stride_ptrs = [self.heap_base + i * 4096
                            for i in range(_N_SITES)]

    # -- address helpers -------------------------------------------------

    def _stack_addr(self) -> int:
        """A slot in the current 'call frame' (high reuse)."""
        words = self.profile.stack_bytes // WORD
        slot = (self.frame_off + self.rng.randrange(8)) % words
        return self.stack_base + slot * WORD

    def _heap_addr(self) -> int:
        words = max(1, self.profile.footprint_bytes // WORD)
        return self.heap_base + self.rng.randrange(words) * WORD

    def _heap_store_addr(self) -> int:
        """Stores have more temporal locality than loads (hot structure
        fields get rewritten): 80% land in a hot eighth of the heap."""
        words = max(1, self.profile.footprint_bytes // WORD)
        if self.rng.random() < 0.8:
            words = max(1, words // 8)
        return self.heap_base + self.rng.randrange(words) * WORD

    def _shared_addr(self) -> int:
        words = _SHARED_BYTES // WORD
        return _SHARED_BASE + self.rng.randrange(words) * WORD

    def _strided_addr(self, site: int) -> int:
        addr = self.stride_ptrs[site]
        self.stride_ptrs[site] += WORD
        span = max(LINE, self.profile.footprint_bytes // _N_SITES)
        if self.stride_ptrs[site] >= self.heap_base + (site + 1) * span:
            self.stride_ptrs[site] = self.heap_base + site * span
        return addr

    def _stream_addr(self) -> int:
        self.stream_ptr += LINE  # a fresh line every time
        return self.stream_ptr

    # -- dependence helpers ----------------------------------------------

    def _deps(self, prob: Optional[float] = None, count: int = 1) -> tuple:
        prob = self.profile.ilp_dep_prob if prob is None else prob
        if not self.recent or self.rng.random() >= prob:
            return ()
        picks = self.rng.sample(list(self.recent),
                                k=min(count, len(self.recent)))
        return tuple(picks)

    def _emit(self, op: Op, producer: bool = False) -> int:
        idx = self.trace.append(op)
        if producer:
            self.recent.append(idx)
        return idx

    # -- op emitters -------------------------------------------------------

    def emit_forward_pair(self) -> None:
        """The stack write-then-read idiom (argument passing): one or
        more stores to call-frame slots, a short "call", then loads of
        the same slots inside the callee.

        With several arguments the oldest load forwards from the oldest
        store while *younger* stores are still older than that load in
        program order — exactly the pattern where 370-SLFSpec (wait for
        the whole SB) and 370-SLFSoS (reopen on SB drain) pay more than
        370-SLFSoS-key (reopen when the forwarding store itself writes).
        """
        profile = self.profile
        if (profile.contended_fraction
                and self.rng.random() < profile.contended_fraction):
            addrs = [_HOT_LINE]  # the shared synchronization variable
            sites = [0]
        else:
            n_args = self.rng.randint(1, 3)
            addrs, sites = [], []
            base_site = self.rng.randrange(_N_SITES)
            for arg in range(n_args):
                addr = self._stack_addr()
                if addr in addrs:
                    continue
                addrs.append(addr)
                sites.append((base_site + arg) % _N_SITES)
        for addr, site in zip(addrs, sites):
            self._emit(store(addr, deps=self._deps(0.6),
                             pc=_PC_FWD_STORE + site))
            self.n_stores += 1
        lo, hi = profile.fwd_filler
        for _ in range(self.rng.randint(lo, hi)):
            self._emit(alu(deps=self._deps(), latency=1), producer=True)
        idx = 0
        for addr, site in zip(addrs, sites):
            idx = self._emit(load(addr, pc=_PC_FWD_LOAD + site),
                             producer=True)
            self.n_loads += 1
            self.n_forwarded += 1
        for _ in range(profile.store_burst):
            self._emit(store(self._stack_addr(), deps=(idx,),
                             pc=_PC_STORE + self.rng.randrange(_N_SITES)))
            self.n_stores += 1
        if self.rng.random() < 0.2:
            self.frame_off += 8  # "return": move to a fresh frame window

    def emit_load(self) -> None:
        profile = self.profile
        roll = self.rng.random()
        if profile.shared_fraction and roll < profile.shared_fraction:
            addr, pc = self._shared_addr(), _PC_SHARED_LOAD
        elif roll < profile.shared_fraction + profile.strided_loads:
            site = self.rng.randrange(_N_SITES)
            addr, pc = self._strided_addr(site), _PC_STRIDE_LOAD + site
        else:
            addr, pc = self._heap_addr(), _PC_HEAP_LOAD
        self._emit(load(addr, deps=self._deps(0.35),
                        pc=pc + self.rng.randrange(_N_SITES)
                        if pc == _PC_HEAP_LOAD else pc),
                   producer=True)
        self.n_loads += 1

    def emit_store(self) -> None:
        profile = self.profile
        roll = self.rng.random()
        if profile.streaming_stores and roll < profile.streaming_stores:
            addr, pc = self._stream_addr(), _PC_STREAM_STORE
        elif (profile.shared_fraction
              and roll < profile.streaming_stores + profile.shared_fraction):
            addr, pc = self._shared_addr(), _PC_STORE
        else:
            addr, pc = self._heap_store_addr(), _PC_STORE
        self._emit(store(addr, deps=self._deps(0.5),
                         pc=pc + self.rng.randrange(_N_SITES)))
        self.n_stores += 1

    def emit_branch(self) -> None:
        """Two kinds of branch sites: loop back-edges (strongly biased,
        the TAGE predictor learns them) and data-dependent branches
        (coin flips, mispredicted ~half the time).  The profile's
        mispredict_rate sets the share of data-dependent sites so the
        *effective* mispredict rate lands near the target."""
        data_dependent = self.rng.random() < 2 * self.profile.mispredict_rate
        if data_dependent:
            taken = self.rng.random() < 0.5
            pc = _PC_BRANCH + 16 + self.rng.randrange(_N_SITES)
        else:
            taken = self.rng.random() < 0.94  # loop back-edge bias
            pc = _PC_BRANCH + self.rng.randrange(_N_SITES)
        self._emit(branch(deps=self._deps(0.5), taken=taken, pc=pc))
        self.n_branches += 1

    def emit_alu(self) -> None:
        self._emit(alu(deps=self._deps(count=2),
                       latency=self.rng.choice((1, 1, 1, 2, 3))),
                   producer=True)

    # -- the deficit controller -------------------------------------------

    def build(self, length: int) -> Trace:
        profile = self.profile
        fwd_target = profile.forwarded_pct / 100.0
        load_target = profile.loads_pct / 100.0
        store_target = profile.stores_pct / 100.0
        branch_target = profile.branch_pct / 100.0
        while len(self.trace) < length:
            n = max(1, len(self.trace))
            if self.n_forwarded / n < fwd_target:
                self.emit_forward_pair()
            elif self.n_loads / n < load_target:
                self.emit_load()
            elif self.n_stores / n < store_target:
                self.emit_store()
            elif self.n_branches / n < branch_target:
                self.emit_branch()
            else:
                self.emit_alu()
        # Static store->load dependences (the forwarding sites): the core
        # pre-trains its StoreSet with these, as a warmed-up predictor
        # would be in the paper's post-warm-up measurement window.
        self.trace.memdep_hints = [
            (_PC_FWD_LOAD + site, _PC_FWD_STORE + site)
            for site in range(_N_SITES)]
        self.trace.validate()
        return self.trace


def generate_trace(profile: BenchmarkProfile, core_id: int = 0,
                   length: int = 10_000, seed: int = 0,
                   stream_epoch: int = 0) -> Trace:
    """Generate one core's trace for ``profile``."""
    rng = random.Random((seed * 1_000_003 + core_id * 7919
                         + stream_epoch * 0x5A5A5A) & 0xFFFFFFFF)
    return _TraceBuilder(profile, core_id, rng, stream_epoch).build(length)


def generate_workload(profile: BenchmarkProfile, cores: int = 8,
                      length_per_core: int = 10_000,
                      seed: int = 0, stream_epoch: int = 0) -> List[Trace]:
    """Per-core traces: ``cores`` traces for a parallel profile, a single
    trace for a sequential one."""
    n = 1 if profile.suite == "sequential" else cores
    return [generate_trace(profile, core_id, length_per_core, seed,
                           stream_epoch)
            for core_id in range(n)]


def generate_warmup(profile: BenchmarkProfile, cores: int = 8,
                    length_per_core: int = 10_000,
                    seed: int = 0) -> List[Trace]:
    """A warm-up workload drawn from the same distribution as
    :func:`generate_workload` but with different random picks and a
    disjoint streaming region — functionally walked before measurement
    (the paper's warm-up phase)."""
    return generate_workload(profile, cores, length_per_core,
                             seed=seed + 7_777_777, stream_epoch=1)
