"""Benchmark runner: the evaluation-section driver.

Runs Table IV / Figure 9 / Figure 10 style experiments: a named
benchmark profile under one or all five consistency configurations, with
a warm-up workload installed first.  Instruction counts scale with the
``REPRO_SCALE`` environment variable (1.0 = the defaults used in
EXPERIMENTS.md; smaller for quick runs).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.policies import POLICY_ORDER
from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats
from repro.sim.system import simulate
from repro.workloads.profiles import (PARALLEL_PROFILES, SEQUENTIAL_PROFILES,
                                      BenchmarkProfile, get_profile)
from repro.workloads.synthetic import generate_warmup, generate_workload

#: Default measured instructions per core (scaled by REPRO_SCALE).
DEFAULT_LENGTH_PARALLEL = 3_000
DEFAULT_LENGTH_SEQUENTIAL = 12_000
DEFAULT_CORES = 8


def scale() -> float:
    """Global scale factor for benchmark instruction counts."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def _length_for(profile: BenchmarkProfile,
                length: Optional[int]) -> int:
    if length is not None:
        return length
    base = (DEFAULT_LENGTH_SEQUENTIAL if profile.suite == "sequential"
            else DEFAULT_LENGTH_PARALLEL)
    return max(500, int(base * scale()))


def resolved_length(name: str, length: Optional[int] = None) -> int:
    """The per-core instruction count a job with ``length`` actually
    runs — the suite default scaled by ``REPRO_SCALE`` when ``length``
    is None.  The sweep cache keys on this resolved value, so the same
    workload is shared across ways of naming it."""
    return _length_for(get_profile(name), length)


@dataclass
class BenchmarkResult:
    """One (benchmark, policy) measurement."""

    name: str
    suite: str
    policy: str
    stats: SystemStats

    @property
    def cycles(self) -> int:
        return self.stats.execution_cycles


def run_benchmark(name: str, policy: str = "370-SLFSoS-key",
                  cores: int = DEFAULT_CORES,
                  length: Optional[int] = None, seed: int = 0,
                  config: Optional[SystemConfig] = None,
                  detect_violations: bool = False) -> BenchmarkResult:
    """Run one benchmark profile under one policy (with warm-up)."""
    profile = get_profile(name)
    n = _length_for(profile, length)
    traces = generate_workload(profile, cores, n, seed)
    warm = generate_warmup(profile, cores, n, seed)
    stats = simulate(traces, policy, config=config, warm_caches=warm,
                     detect_violations=detect_violations)
    return BenchmarkResult(name, profile.suite, policy, stats)


def observe_benchmark(name: str, policy: str = "370-SLFSoS-key",
                      cores: int = DEFAULT_CORES,
                      length: Optional[int] = None, seed: int = 0,
                      config: Optional[SystemConfig] = None,
                      trace_pipeline: bool = False,
                      sample_interval: int = 64):
    """Run one benchmark with the observability layer attached.

    Returns ``(result, report, system)``: the usual
    :class:`BenchmarkResult`, the :class:`repro.obs.session.ObsReport`,
    and the finished system (whose tracers feed the Chrome exporter when
    ``trace_pipeline`` is on).
    """
    from repro.obs.session import observe_run

    profile = get_profile(name)
    n = _length_for(profile, length)
    traces = generate_workload(profile, cores, n, seed)
    warm = generate_warmup(profile, cores, n, seed)
    stats, report, system = observe_run(
        traces, policy, config=config, warm_caches=warm,
        trace_pipeline=trace_pipeline, sample_interval=sample_interval)
    return (BenchmarkResult(name, profile.suite, policy, stats),
            report, system)


def run_policy_sweep(name: str, policies: Sequence[str] = POLICY_ORDER,
                     cores: int = DEFAULT_CORES,
                     length: Optional[int] = None, seed: int = 0,
                     config: Optional[SystemConfig] = None
                     ) -> Dict[str, BenchmarkResult]:
    """Run one benchmark under several policies on identical traces."""
    profile = get_profile(name)
    n = _length_for(profile, length)
    traces = generate_workload(profile, cores, n, seed)
    warm = generate_warmup(profile, cores, n, seed)
    results: Dict[str, BenchmarkResult] = {}
    for policy in policies:
        stats = simulate(traces, policy, config=config, warm_caches=warm)
        results[policy] = BenchmarkResult(name, profile.suite, policy, stats)
    return results


def run_policy_sweep_forked(name: str,
                            policies: Sequence[str] = POLICY_ORDER,
                            cores: int = DEFAULT_CORES,
                            length: Optional[int] = None, seed: int = 0,
                            config: Optional[SystemConfig] = None
                            ) -> Dict[str, BenchmarkResult]:
    """The Fig. 9/10 five-policy sweep with a single shared warm-up.

    :func:`run_policy_sweep` regenerates nothing but re-*warms*
    everything: each policy cell walks the warm-up workload through the
    cache hierarchy again, although cache warm-up is policy-independent
    (it runs functionally, before any core exists).  Here the system is
    built and warmed **once**, captured as a pristine cycle-0 snapshot
    (:func:`repro.snapshot.capture`), and forked into every policy cell
    (:func:`repro.snapshot.fork`) — per-cell stats are byte-identical
    to the re-warmed path (``BENCH_kernel.json`` enforces this via its
    ``identical_stats`` field).
    """
    from repro.sim.system import System
    from repro.snapshot import capture, fork

    profile = get_profile(name)
    n = _length_for(profile, length)
    traces = generate_workload(profile, cores, n, seed)
    warm = generate_warmup(profile, cores, n, seed)
    base = System(traces, policies[0], config=config, warm_caches=warm)
    snap = capture(base)
    results: Dict[str, BenchmarkResult] = {}
    for policy in policies:
        system = fork(snap, traces, policy, config=config)
        stats = system.run()
        results[policy] = BenchmarkResult(name, profile.suite, policy,
                                          stats)
    return results


def normalized_times(results: Dict[str, BenchmarkResult],
                     baseline: str = "x86") -> Dict[str, float]:
    """Execution time of each policy normalized to the baseline."""
    base = results[baseline].cycles
    return {policy: result.cycles / base
            for policy, result in results.items()}


def geomean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def suite_names(suite: str) -> List[str]:
    if suite == "parallel":
        return list(PARALLEL_PROFILES)
    if suite == "sequential":
        return list(SEQUENTIAL_PROFILES)
    raise ValueError(f"unknown suite {suite!r}")
