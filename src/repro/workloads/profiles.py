"""Per-benchmark synthetic workload profiles.

Each profile drives the trace generator
(:mod:`repro.workloads.synthetic`) with targets calibrated from paper
Table IV (loads %, forwarded %) plus behavioural knobs taken from the
paper's per-benchmark discussion:

* **barnes** — very high forwarding (18.3%) from recursive calls that
  pass parameters through the stack ("walksub"); small footprint.
* **x264** (parallel) — forwarding on a *highly contended*
  synchronization variable (`pthread_cond_wait`), giving 10.2%
  re-executed instructions from invalidations in the vulnerability
  window.
* **505.mcf** — 11.7% re-execution from *cache evictions* that hit
  SA-speculative loads: a working set far beyond the private hierarchy.
* **radix / ocean / streamcluster / 519.lbm** — dominated by
  long-latency streaming writes that stress the SQ/SB (the paper's
  explanation for radix's 99-cycle average gate stall).

All remaining parameters (store ratio, branch ratio, ILP shape,
footprints) are plausible defaults; the goal is matching the *rates*
that the store-atomicity machinery responds to, not the benchmarks'
absolute IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.workloads.tableiv import (PARALLEL, PARALLEL_ROWS, SEQUENTIAL,
                                     SEQUENTIAL_ROWS, PaperRow, all_rows)

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation parameters for one synthetic benchmark."""

    name: str
    suite: str
    loads_pct: float              # target retired-load share (Table IV)
    forwarded_pct: float          # target SLF-load share (Table IV)
    stores_pct: float             # plain + forwarding stores
    branch_pct: float = 8.0
    mispredict_rate: float = 0.03
    footprint_bytes: int = 96 * KB       # private heap working set
    stack_bytes: int = 4 * KB            # forwarding region (call frames)
    shared_fraction: float = 0.0         # parallel: accesses to shared heap
    contended_fraction: float = 0.0      # forwarding pairs on the hot line
    streaming_stores: float = 0.0        # stores to fresh (cold) lines
    strided_loads: float = 0.0           # loads with a regular stride
    fwd_filler: Tuple[int, int] = (0, 2)  # ALU ops between store and load
    store_burst: int = 0                 # extra stores after a fwd pair
    ilp_dep_prob: float = 0.45           # chance an op consumes a recent reg
    paper: Optional[PaperRow] = None

    def scaled(self, **overrides) -> "BenchmarkProfile":
        return replace(self, **overrides)


def _stores_for(forwarded_pct: float) -> float:
    """Stores must at least cover the forwarding stores; add a plausible
    base of ordinary stores (SPEC/PARSEC average ~10-12%)."""
    return round(min(30.0, max(8.0, forwarded_pct * 1.05 + 6.0)), 2)


# Behavioural overrides keyed by benchmark name.  Everything not listed
# uses the defaults above with Table IV loads/forwarded targets.
_OVERRIDES: Dict[str, Dict[str, object]] = {
    # SPLASH-3 / PARSEC
    "barnes": dict(footprint_bytes=32 * KB, stack_bytes=8 * KB,
                   fwd_filler=(0, 1), store_burst=1),
    "canneal": dict(footprint_bytes=4 * MB, shared_fraction=0.25),
    "fft": dict(streaming_stores=0.6, footprint_bytes=1 * MB),
    "ocean_cp": dict(streaming_stores=0.85, footprint_bytes=2 * MB,
                     strided_loads=0.6),
    "ocean_ncp": dict(streaming_stores=0.8, footprint_bytes=2 * MB,
                      strided_loads=0.6),
    "radix": dict(streaming_stores=0.9, footprint_bytes=2 * MB,
                  strided_loads=0.3),
    "streamcluster": dict(streaming_stores=0.7, footprint_bytes=2 * MB,
                          strided_loads=0.7),
    "fluidanimate": dict(shared_fraction=0.10),
    "dedup": dict(shared_fraction=0.10),
    "ferret": dict(shared_fraction=0.12),
    "bodytrack": dict(shared_fraction=0.08),
    "raytrace": dict(footprint_bytes=512 * KB),
    "radiosity": dict(shared_fraction=0.08),
    "volrend": dict(shared_fraction=0.05),
    "water_nsquared": dict(footprint_bytes=48 * KB, store_burst=1),
    "water_spatial": dict(footprint_bytes=48 * KB, store_burst=1),
    "x264": dict(shared_fraction=0.06, contended_fraction=0.04),
    "lu_ncb": dict(footprint_bytes=1 * MB, shared_fraction=0.15),
    "lu_cb": dict(footprint_bytes=512 * KB),
    "cholesky": dict(footprint_bytes=512 * KB),
    "fmm": dict(footprint_bytes=512 * KB),
    "freqmine": dict(footprint_bytes=512 * KB),
    "swaptions": dict(footprint_bytes=64 * KB),
    "blackscholes": dict(footprint_bytes=64 * KB),
    "vips": dict(footprint_bytes=512 * KB),

    # SPECrate CPU2017
    "500.perlbench_1": dict(footprint_bytes=64 * KB, store_burst=1),
    "500.perlbench_2": dict(footprint_bytes=64 * KB, store_burst=1),
    "500.perlbench_3": dict(footprint_bytes=128 * KB),
    "502.gcc_1": dict(footprint_bytes=176 * KB, store_burst=1),
    "502.gcc_2": dict(footprint_bytes=176 * KB, store_burst=1),
    "502.gcc_3": dict(footprint_bytes=176 * KB, store_burst=1),
    "502.gcc_4": dict(footprint_bytes=176 * KB, store_burst=1),
    "502.gcc_5": dict(footprint_bytes=176 * KB, store_burst=1),
    "503.bwaves_1": dict(footprint_bytes=2 * MB, strided_loads=0.7,
                         streaming_stores=0.4),
    "503.bwaves_2": dict(footprint_bytes=2 * MB, strided_loads=0.7,
                         streaming_stores=0.4),
    "503.bwaves_3": dict(footprint_bytes=2 * MB, strided_loads=0.7,
                         streaming_stores=0.5),
    "503.bwaves_4": dict(footprint_bytes=2 * MB, strided_loads=0.7,
                         streaming_stores=0.5),
    "505.mcf": dict(footprint_bytes=8 * MB, strided_loads=0.1),
    "507.cactuBSSN": dict(footprint_bytes=1 * MB, strided_loads=0.5),
    "510.parest": dict(footprint_bytes=512 * KB, strided_loads=0.4),
    "511.povray": dict(footprint_bytes=64 * KB, store_burst=1),
    "519.lbm": dict(footprint_bytes=4 * MB, streaming_stores=0.85,
                    strided_loads=0.6),
    "520.omnetpp": dict(footprint_bytes=1 * MB),
    "523.xalancbmk": dict(footprint_bytes=512 * KB),
    "526.blender": dict(footprint_bytes=256 * KB),
    "527.cam4": dict(footprint_bytes=512 * KB, strided_loads=0.5),
    "531.deepsjeng": dict(footprint_bytes=128 * KB, store_burst=1),
    "538.imagick": dict(footprint_bytes=256 * KB, strided_loads=0.6),
    "541.leela": dict(footprint_bytes=128 * KB),
    "549.fotonik3d": dict(footprint_bytes=1 * MB, strided_loads=0.6),
    "554.roms": dict(footprint_bytes=1 * MB, strided_loads=0.6),
    "557.xz_1": dict(footprint_bytes=1 * MB),
}


def _build(row: PaperRow) -> BenchmarkProfile:
    overrides = _OVERRIDES.get(row.name, {})
    return BenchmarkProfile(
        name=row.name,
        suite=row.suite,
        loads_pct=row.loads_pct,
        forwarded_pct=row.forwarded_pct,
        stores_pct=_stores_for(row.forwarded_pct),
        paper=row,
        **overrides)  # type: ignore[arg-type]


#: All profiles keyed by benchmark name.
PROFILES: Dict[str, BenchmarkProfile] = {
    name: _build(row) for name, row in all_rows().items()}

PARALLEL_PROFILES: Dict[str, BenchmarkProfile] = {
    name: PROFILES[name] for name in PARALLEL_ROWS}

SEQUENTIAL_PROFILES: Dict[str, BenchmarkProfile] = {
    name: PROFILES[name] for name in SEQUENTIAL_ROWS}


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}") from None
