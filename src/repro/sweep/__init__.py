"""Parallel, cached sweep runner for (benchmark × policy) experiments.

The evaluation figures (Fig. 9 / Fig. 10 / Table IV) are grids of
independent simulations: each (profile, policy, config) cell regenerates
its traces from a seed and runs to completion with no shared state.
This package fans those cells across worker processes and memoizes the
resulting :class:`~repro.sim.stats.SystemStats` on disk, keyed by a
content hash of everything that can change the answer — the trace
specification, the system configuration, the policy, and the simulator
source itself.

Entry points:

* :class:`SweepJob` — one cell of the grid.
* :func:`run_sweep` — execute a batch of jobs; returns results in input
  order regardless of completion order (the engine is deterministic, so
  parallel and serial execution are cycle-identical).
* ``python -m repro sweep`` — the CLI front end.
"""

from repro.sweep.cache import ResultCache, code_version
from repro.sweep.runner import (SweepJob, SweepOutcome, job_key, run_sweep,
                                sweep_policies)

__all__ = [
    "ResultCache",
    "SweepJob",
    "SweepOutcome",
    "code_version",
    "job_key",
    "run_sweep",
    "sweep_policies",
]
