"""On-disk result cache for sweep jobs.

One JSON file per result, named by the SHA-256 of the job's canonical
description (see :func:`repro.sweep.runner.job_key`).  The key includes
a hash of the simulator's own source tree, so any code change — an event
reordering, a latency tweak, a new counter — invalidates every cached
result automatically.  Nothing is ever considered stale by age; a cache
directory can be deleted wholesale at any time.

Writes are atomic (``os.replace`` of a per-process temp file), so
concurrent workers racing to store the same key are safe: last writer
wins and both wrote identical bytes anyway.

The cache can be bounded: with ``max_bytes`` set (or the
``REPRO_SWEEP_CACHE_MAX`` environment variable), every ``put`` prunes
least-recently-*used* entries — ``get`` refreshes an entry's mtime, so
recency means reads, not just writes — until the directory fits.
``stats()`` and ``gc()`` back the ``repro cache`` CLI subcommand.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import warnings
from typing import Callable, Optional, Union

#: Default cache location (relative to the current directory); override
#: per call or with the ``REPRO_SWEEP_CACHE`` environment variable.
DEFAULT_CACHE_DIR = ".sweep-cache"

_code_version: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process.  Cached sweep results embed this hash in
    their key, so editing any simulator module orphans old entries
    instead of serving results the current code would not reproduce.
    """
    global _code_version
    if _code_version is None:
        import repro
        pkg = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(pkg.rglob("*.py")):
            digest.update(str(path.relative_to(pkg)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()
    return _code_version


def content_key(payload: dict) -> str:
    """SHA-256 of a JSON-serializable payload, canonically encoded."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """A directory of ``<key>.json`` result files.

    The cache is strictly best-effort: a corrupt, truncated, or
    unreadable entry is a *miss with a warning note*, and a failed write
    is a *note*, never an exception that aborts the sweep.  ``on_warning``
    receives those notes (e.g. the sweep's progress callback); when None
    they go through :mod:`warnings` so they still surface somewhere.
    """

    def __init__(self,
                 directory: Union[str, pathlib.Path, None] = None,
                 on_warning: Optional[Callable[[str], None]] = None,
                 max_bytes: Optional[int] = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_SWEEP_CACHE",
                                       DEFAULT_CACHE_DIR)
        if max_bytes is None:
            env = os.environ.get("REPRO_SWEEP_CACHE_MAX")
            max_bytes = int(env) if env else None
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.directory = pathlib.Path(directory)
        self.on_warning = on_warning
        self.max_bytes = max_bytes

    def _warn(self, message: str) -> None:
        if self.on_warning is not None:
            self.on_warning(message)
        else:
            warnings.warn(message, RuntimeWarning, stacklevel=3)

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or None.  A corrupt or
        truncated file (e.g. from a killed process on a filesystem
        without atomic replace) reads as a miss with a warning note,
        never an error."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None  # the ordinary miss: silent
        except OSError as exc:
            self._warn(f"sweep cache: cannot read {path.name} "
                       f"({exc}); treating as a miss")
            return None
        try:
            payload = json.loads(text)
        except ValueError as exc:
            self._warn(f"sweep cache: corrupt entry {path.name} "
                       f"({exc}); treating as a miss")
            return None
        if not isinstance(payload, dict):
            self._warn(f"sweep cache: entry {path.name} is not a result "
                       f"payload; treating as a miss")
            return None
        try:
            # Refresh the entry's mtime so LRU pruning sees reads as
            # uses, not only writes.  Best-effort: a read-only cache
            # still serves hits.
            os.utime(path)
        except OSError:
            pass
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store a payload; atomic via ``os.replace``.  A failed write
        (full or read-only filesystem) warns instead of raising — the
        sweep's result matters more than its cache."""
        tmp = self.directory / f".{key}.{os.getpid()}.tmp"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self.path_for(key))
        except OSError as exc:
            self._warn(f"sweep cache: could not store {key[:12]}… "
                       f"({exc}); result kept in memory only")
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        if self.max_bytes is not None:
            self.gc(self.max_bytes, keep=key)

    # -- checkpoint blobs and progress ---------------------------------
    #
    # A long checkpointed job keeps two side files next to its result:
    # ``<key>.snap`` (the latest snapshot blob, resumed from on retry)
    # and ``<key>.progress.json`` (a small JSON progress document the
    # service streams to pollers).  Both are best-effort like results —
    # losing one costs a restart from cycle 0, never correctness — and
    # both are cleared when the job finishes.

    def blob_path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.snap"

    def get_blob(self, key: str) -> Optional[bytes]:
        """The checkpoint blob for ``key``, or None.  Unreadable files
        are a miss with a note (the job restarts from scratch)."""
        path = self.blob_path_for(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._warn(f"sweep cache: cannot read {path.name} "
                       f"({exc}); restarting from cycle 0")
            return None

    def put_blob(self, key: str, blob: bytes) -> None:
        """Store a checkpoint blob atomically; failures warn only."""
        tmp = self.directory / f".{key}.{os.getpid()}.snap.tmp"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, self.blob_path_for(key))
        except OSError as exc:
            self._warn(f"sweep cache: could not store checkpoint "
                       f"{key[:12]}… ({exc})")
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear_blob(self, key: str) -> None:
        try:
            self.blob_path_for(key).unlink()
        except OSError:
            pass

    def progress_path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.progress.json"

    def get_progress(self, key: str) -> Optional[dict]:
        """The latest progress document for ``key``, or None."""
        path = self.progress_path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put_progress(self, key: str, payload: dict) -> None:
        tmp = self.directory / f".{key}.{os.getpid()}.progress.tmp"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self.progress_path_for(key))
        except OSError as exc:
            self._warn(f"sweep cache: could not store progress "
                       f"{key[:12]}… ({exc})")
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear_progress(self, key: str) -> None:
        try:
            self.progress_path_for(key).unlink()
        except OSError:
            pass

    def keys(self) -> "list[str]":
        """Sorted keys of every stored *result* entry (progress side
        files excluded) — the manifest the fleet's anti-entropy sync
        diffs between nodes.  Best-effort like every read here: an
        unlistable directory is an empty manifest, not an error."""
        try:
            paths = list(self.directory.glob("*.json"))
        except OSError:
            return []
        return sorted(path.name[:-len(".json")] for path in paths
                      if not path.name.endswith(".progress.json"))

    # -- bounding ------------------------------------------------------

    def _entries(self) -> "list[tuple[float, int, pathlib.Path]]":
        """(mtime, size, path) per entry, oldest first.  Entries that
        vanish mid-scan (a concurrent gc) are simply skipped."""
        entries = []
        try:
            paths = list(self.directory.glob("*.json"))
        except OSError:
            return []
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    def stats(self) -> dict:
        """Entry count / byte total / bounds, for ``repro cache --stats``."""
        entries = self._entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "oldest_mtime": entries[0][0] if entries else None,
            "newest_mtime": entries[-1][0] if entries else None,
        }

    def gc(self, max_bytes: Optional[int] = None,
           keep: Optional[str] = None) -> "tuple[int, int]":
        """Prune least-recently-used entries until the directory holds
        at most ``max_bytes`` (default: the cache's own bound).  The
        entry named by ``keep`` is never pruned — the result just
        stored must survive its own put.  Returns ``(removed entries,
        freed bytes)``; unlink errors are warnings, not failures."""
        limit = self.max_bytes if max_bytes is None else max_bytes
        if limit is None:
            return (0, 0)
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for _, size, path in entries:
            if total <= limit:
                break
            if keep is not None and path.name == f"{keep}.json":
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                total -= size
                continue
            except OSError as exc:
                self._warn(f"sweep cache: gc could not remove "
                           f"{path.name} ({exc})")
                continue
            total -= size
            removed += 1
            freed += size
        return (removed, freed)
