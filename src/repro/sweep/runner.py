"""The sweep runner: fan (profile × policy) simulations across processes.

Every job is self-contained — traces are regenerated inside the worker
from ``(profile, cores, length, seed)``, which is deterministic — so the
pool needs to pickle only the small :class:`SweepJob` description, never
a trace or a simulator.  The engine itself is deterministic, which makes
the merge trivial: results are placed back at their job's input index,
and a parallel sweep is cycle-identical to running the same jobs in a
loop.

Completed results are stored in a :class:`~repro.sweep.cache.ResultCache`
keyed by :func:`job_key`, so re-running a figure after editing only the
plotting code performs zero simulations.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.policies import POLICY_ORDER
from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats
from repro.sim.system import simulate
from repro.sweep.cache import ResultCache, code_version, content_key
from repro.workloads.profiles import get_profile
from repro.workloads.runner import (DEFAULT_CORES, BenchmarkResult,
                                    resolved_length)
from repro.workloads.synthetic import generate_warmup, generate_workload

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepJob:
    """One cell of a sweep grid: a complete simulation specification."""

    name: str                          # benchmark profile name
    policy: str                        # consistency configuration
    cores: int = DEFAULT_CORES
    length: Optional[int] = None       # None = suite default × REPRO_SCALE
    seed: int = 0
    config: Optional[SystemConfig] = None
    detect_violations: bool = False
    # The ablation in benchmarks/bench_ablations.py runs with the
    # profile's memory-dependence hints stripped (cold StoreSet).
    memdep_hints: bool = True
    # Attach the observability layer and carry its per-cell summary
    # (histograms, gate intervals, squash counters) in the result
    # payload.  Part of the cache key: an obs run records strictly more
    # than a plain run, so the two cannot share cache entries.
    obs: bool = False
    obs_sample_interval: int = 64


@dataclass
class SweepOutcome:
    """What a :func:`run_sweep` call did."""

    results: List[BenchmarkResult]     # one per job, in input order
    simulated: int = 0                 # jobs actually executed
    cached: int = 0                    # jobs answered from the cache
    elapsed: float = 0.0               # wall-clock seconds
    workers: int = 1                   # pool size used (1 = in-process)
    keys: List[str] = field(default_factory=list)  # cache key per job
    # Per-job observability summary dicts (None for non-obs jobs), in
    # input order — the ``repro.obs.session.ObsReport.to_dict()`` form.
    obs: List[Optional[Dict]] = field(default_factory=list)


def job_key(job: SweepJob) -> str:
    """Content hash identifying a job's *result*.

    Covers the trace specification (profile, cores, resolved length,
    seed, hint stripping), the system configuration, the policy, the
    violation-detector flag, and the simulator source version — the
    complete input closure of a simulation.
    """
    payload = {
        "schema": 1,
        "name": job.name,
        "policy": job.policy,
        "cores": job.cores,
        "length": resolved_length(job.name, job.length),
        "seed": job.seed,
        "config": (None if job.config is None
                   else dataclasses.asdict(job.config)),
        "detect_violations": job.detect_violations,
        "memdep_hints": job.memdep_hints,
        "obs": job.obs,
        "obs_sample_interval": job.obs_sample_interval if job.obs else None,
        "code": code_version(),
    }
    return content_key(payload)


def execute_job(job: SweepJob) -> Dict:
    """Run one job to completion; returns the stats as a JSON-safe dict.

    Module-level so it pickles for the process pool.  Traces are
    regenerated here — generation is seeded and deterministic, so every
    worker sees byte-identical workloads.
    """
    profile = get_profile(job.name)
    n = resolved_length(job.name, job.length)
    traces = generate_workload(profile, job.cores, n, job.seed)
    warm = generate_warmup(profile, job.cores, n, job.seed)
    if not job.memdep_hints:
        for trace in traces:
            trace.memdep_hints = []
    if job.obs:
        from repro.obs.session import observe_run
        stats, report, _system = observe_run(
            traces, job.policy, config=job.config, warm_caches=warm,
            detect_violations=job.detect_violations,
            sample_interval=job.obs_sample_interval)
        payload = stats.to_dict()
        # Rides inside the cached payload; SystemStats.from_dict ignores
        # keys it does not know, so old readers are unaffected.
        payload["obs"] = report.to_dict()
        return payload
    stats = simulate(traces, job.policy, config=job.config,
                     warm_caches=warm,
                     detect_violations=job.detect_violations)
    return stats.to_dict()


def _result(job: SweepJob, stats: SystemStats) -> BenchmarkResult:
    return BenchmarkResult(job.name, get_profile(job.name).suite,
                           job.policy, stats)


def default_workers() -> int:
    """Pool size when the caller does not choose: ``REPRO_WORKERS`` if
    set, else the machine's CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def run_sweep(jobs: Sequence[SweepJob],
              workers: Optional[int] = None,
              cache: bool = True,
              cache_dir: Union[str, os.PathLike, None] = None,
              progress: Optional[ProgressFn] = None) -> SweepOutcome:
    """Execute a batch of sweep jobs, in parallel where possible.

    ``workers=None`` resolves via :func:`default_workers`; ``workers=1``
    (or a single uncached job) runs in-process with no pool.  With
    ``cache`` enabled (the default), finished results are read from and
    written to ``cache_dir`` (default: ``$REPRO_SWEEP_CACHE`` or
    ``.sweep-cache``).  ``progress`` receives human-readable status
    lines, including an ETA once a completion time is known.

    Results come back in input-job order; identical jobs are simulated
    once and share the result.
    """
    t0 = time.perf_counter()
    jobs = list(jobs)
    store = ResultCache(cache_dir) if cache else None
    keys = [job_key(job) for job in jobs]
    stats_by_key: Dict[str, SystemStats] = {}
    obs_by_key: Dict[str, Optional[Dict]] = {}

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    cached = 0
    if store is not None:
        for key in set(keys):
            payload = store.get(key)
            if payload is not None:
                stats_by_key[key] = SystemStats.from_dict(payload)
                obs_by_key[key] = payload.get("obs")
        cached = sum(1 for key in keys if key in stats_by_key)
        # Cache hits are reported distinctly and *never* enter the ETA
        # clock below: an instant cell says nothing about how long a
        # simulation takes, so mixing them in skews the estimate.
        for idx, key in enumerate(keys):
            if key in stats_by_key:
                note(f"sweep: [cache] {jobs[idx].name}/{jobs[idx].policy}")

    # Deduplicated misses, in first-appearance order.
    todo: List[int] = []
    seen = set(stats_by_key)
    for idx, key in enumerate(keys):
        if key not in seen:
            seen.add(key)
            todo.append(idx)

    nworkers = workers if workers is not None else default_workers()
    nworkers = max(1, min(nworkers, len(todo) or 1))

    if todo:
        note(f"sweep: {len(todo)} of {len(jobs)} jobs to simulate "
             f"({cached} cached), {nworkers} worker(s)")
    elif jobs:
        note(f"sweep: all {len(jobs)} jobs cached, nothing to simulate")
    done = 0
    t_run = time.perf_counter()

    def finished(idx: int, payload: Dict) -> None:
        nonlocal done
        key = keys[idx]
        stats_by_key[key] = SystemStats.from_dict(payload)
        obs_by_key[key] = payload.get("obs")
        if store is not None:
            store.put(key, payload)
        done += 1
        # ETA over simulated cells only (cache hits were answered
        # before t_run and are excluded by construction).
        rate = (time.perf_counter() - t_run) / done
        eta = rate * (len(todo) - done)
        job = jobs[idx]
        note(f"sweep: [{done}/{len(todo)}] {job.name}/{job.policy} "
             f"done, ETA {eta:.0f}s")

    if nworkers <= 1 or len(todo) <= 1:
        for idx in todo:
            finished(idx, execute_job(jobs[idx]))
    else:
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            futures = {pool.submit(execute_job, jobs[idx]): idx
                       for idx in todo}
            for future in as_completed(futures):
                finished(futures[future], future.result())

    results = [_result(job, stats_by_key[key])
               for job, key in zip(jobs, keys)]
    return SweepOutcome(results=results, simulated=len(todo),
                        cached=cached,
                        elapsed=time.perf_counter() - t0,
                        workers=nworkers, keys=keys,
                        obs=[obs_by_key.get(key) for key in keys])


def sweep_policies(name: str,
                   policies: Sequence[str] = POLICY_ORDER,
                   cores: int = DEFAULT_CORES,
                   length: Optional[int] = None, seed: int = 0,
                   config: Optional[SystemConfig] = None,
                   workers: Optional[int] = None,
                   cache: bool = True,
                   cache_dir: Union[str, os.PathLike, None] = None,
                   progress: Optional[ProgressFn] = None
                   ) -> Dict[str, BenchmarkResult]:
    """One benchmark under several policies — the parallel, cached
    equivalent of :func:`repro.workloads.runner.run_policy_sweep`."""
    jobs = [SweepJob(name=name, policy=policy, cores=cores, length=length,
                     seed=seed, config=config) for policy in policies]
    outcome = run_sweep(jobs, workers=workers, cache=cache,
                        cache_dir=cache_dir, progress=progress)
    return {policy: result
            for policy, result in zip(policies, outcome.results)}


def stderr_progress(msg: str) -> None:
    """A ready-made ``progress`` callback for CLI use."""
    print(msg, file=sys.stderr, flush=True)
