"""The sweep runner: fan (profile × policy) simulations across processes.

Every job is self-contained — traces are regenerated inside the worker
from ``(profile, cores, length, seed)``, which is deterministic — so the
pool needs to pickle only the small :class:`SweepJob` description, never
a trace or a simulator.  The engine itself is deterministic, which makes
the merge trivial: results are placed back at their job's input index,
and a parallel sweep is cycle-identical to running the same jobs in a
loop.

Completed results are stored in a :class:`~repro.sweep.cache.ResultCache`
keyed by :func:`job_key`, so re-running a figure after editing only the
plotting code performs zero simulations.

Crash tolerance
---------------

A sweep survives its own cells: a per-job ``timeout`` (enforced with a
SIGALRM timer inside the worker), bounded ``retries`` with exponential
``backoff``, and per-cell structured error payloads.  A cell that keeps
failing becomes ``None`` in ``SweepOutcome.results`` with its error in
``SweepOutcome.errors`` at the same index — the sweep completes with
partial results instead of dying.  A dead worker process (the pool
breaks) fails every in-flight cell retryably; the next retry round gets
a fresh pool.  Ctrl-C cancels outstanding futures, salvages cells that
already finished, and returns (and caches) the partial outcome.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.policies import POLICY_ORDER
from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats
from repro.sim.system import simulate
from repro.sweep.cache import ResultCache, code_version, content_key
from repro.workloads.profiles import get_profile
from repro.workloads.runner import (DEFAULT_CORES, BenchmarkResult,
                                    resolved_length)
from repro.workloads.synthetic import generate_warmup, generate_workload

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepJob:
    """One cell of a sweep grid: a complete simulation specification."""

    name: str                          # benchmark profile name
    policy: str                        # consistency configuration
    cores: int = DEFAULT_CORES
    length: Optional[int] = None       # None = suite default × REPRO_SCALE
    seed: int = 0
    config: Optional[SystemConfig] = None
    detect_violations: bool = False
    # The ablation in benchmarks/bench_ablations.py runs with the
    # profile's memory-dependence hints stripped (cold StoreSet).
    memdep_hints: bool = True
    # Attach the observability layer and carry its per-cell summary
    # (histograms, gate intervals, squash counters) in the result
    # payload.  Part of the cache key: an obs run records strictly more
    # than a plain run, so the two cannot share cache entries.
    obs: bool = False
    obs_sample_interval: int = 64

    def to_dict(self) -> Dict:
        """JSON-safe description; exact under :meth:`from_dict`.

        ``config`` must be None (the default simulated system): a job
        that travels between processes as JSON — the ``repro.serve``
        wire format — keys its result on this payload, and a partial
        config encoding would silently fork the cache namespace.
        """
        if self.config is not None:
            raise ValueError("SweepJob.to_dict: custom SystemConfig is "
                             "not JSON-serializable; use config=None")
        return {
            "name": self.name,
            "policy": self.policy,
            "cores": self.cores,
            "length": self.length,
            "seed": self.seed,
            "detect_violations": self.detect_violations,
            "memdep_hints": self.memdep_hints,
            "obs": self.obs,
            "obs_sample_interval": self.obs_sample_interval,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepJob":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so a
        typo in a job request fails loudly instead of keying a cache
        entry under a spec the simulation ignored."""
        allowed = {"name", "policy", "cores", "length", "seed",
                   "detect_violations", "memdep_hints", "obs",
                   "obs_sample_interval"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"SweepJob.from_dict: unknown field(s) "
                             f"{sorted(unknown)}")
        if "name" not in data or "policy" not in data:
            raise ValueError("SweepJob.from_dict: 'name' and 'policy' "
                             "are required")
        return cls(**data)


@dataclass
class SweepOutcome:
    """What a :func:`run_sweep` call did."""

    # One entry per job, in input order; None = the cell failed (see the
    # matching ``errors`` entry).
    results: List[Optional[BenchmarkResult]]
    simulated: int = 0                 # jobs executed successfully
    cached: int = 0                    # jobs answered from the cache
    elapsed: float = 0.0               # wall-clock seconds
    workers: int = 1                   # pool size used (1 = in-process)
    keys: List[str] = field(default_factory=list)  # cache key per job
    # Per-job observability summary dicts (None for non-obs jobs), in
    # input order — the ``repro.obs.session.ObsReport.to_dict()`` form.
    obs: List[Optional[Dict]] = field(default_factory=list)
    # Per-job structured error payloads (None for successful cells), in
    # input order: name/policy/seed, exception type and message, whether
    # it was a timeout, and the number of attempts made.
    errors: List[Optional[Dict]] = field(default_factory=list)
    failed: int = 0                    # cells without a result
    interrupted: bool = False          # Ctrl-C cut the sweep short


class JobTimeout(RuntimeError):
    """A sweep job exceeded its per-job wall-clock budget."""


def job_key(job: SweepJob) -> str:
    """Content hash identifying a job's *result*.

    Covers the trace specification (profile, cores, resolved length,
    seed, hint stripping), the system configuration, the policy, the
    violation-detector flag, and the simulator source version — the
    complete input closure of a simulation.
    """
    payload = {
        "schema": 1,
        "name": job.name,
        "policy": job.policy,
        "cores": job.cores,
        "length": resolved_length(job.name, job.length),
        "seed": job.seed,
        "config": (None if job.config is None
                   else dataclasses.asdict(job.config)),
        "detect_violations": job.detect_violations,
        "memdep_hints": job.memdep_hints,
        "obs": job.obs,
        "obs_sample_interval": job.obs_sample_interval if job.obs else None,
        "code": code_version(),
    }
    return content_key(payload)


def execute_job(job: SweepJob) -> Dict:
    """Run one job to completion; returns the stats as a JSON-safe dict.

    Module-level so it pickles for the process pool.  Traces are
    regenerated here — generation is seeded and deterministic, so every
    worker sees byte-identical workloads.
    """
    profile = get_profile(job.name)
    n = resolved_length(job.name, job.length)
    traces = generate_workload(profile, job.cores, n, job.seed)
    warm = generate_warmup(profile, job.cores, n, job.seed)
    if not job.memdep_hints:
        for trace in traces:
            trace.memdep_hints = []
    if job.obs:
        from repro.obs.session import observe_run
        stats, report, _system = observe_run(
            traces, job.policy, config=job.config, warm_caches=warm,
            detect_violations=job.detect_violations,
            sample_interval=job.obs_sample_interval)
        payload = stats.to_dict()
        # Rides inside the cached payload; SystemStats.from_dict ignores
        # keys it does not know, so old readers are unaffected.
        payload["obs"] = report.to_dict()
        return payload
    stats = simulate(traces, job.policy, config=job.config,
                     warm_caches=warm,
                     detect_violations=job.detect_violations)
    return stats.to_dict()


def with_deadline(fn: Callable[[], Dict], timeout: Optional[float],
                  label: str) -> Dict:
    """Run ``fn()`` under a wall-clock deadline, raising
    :class:`JobTimeout` (labelled with ``label``) when it blows.

    The deadline uses a SIGALRM interval timer.  On platforms without
    SIGALRM (Windows) the timeout degrades to "no timeout" rather than
    failing.  A previously armed timer (e.g. the test suite's per-test
    deadline when the sweep runs serially in-process) is restored with
    its remaining time on exit, so nesting is safe.
    """
    if not timeout or not hasattr(signal, "SIGALRM"):
        return fn()

    def _on_alarm(signum, frame):
        raise JobTimeout(
            f"job {label} exceeded its {timeout:g}s timeout")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, timeout)
    started = time.monotonic()
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)
        if outer_remaining > 0:
            left = outer_remaining - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(left, 1e-6))


def _execute_job_guarded(job: SweepJob, timeout: Optional[float]) -> Dict:
    """Worker entry point: :func:`execute_job` under a wall-clock
    deadline.  Module-level so it pickles for the process pool."""
    return with_deadline(lambda: execute_job(job), timeout,
                         f"{job.name}/{job.policy}")


def _error_payload(job: SweepJob, exc: BaseException,
                   attempts: int) -> Dict:
    """The structured record of a failed cell (JSON-safe)."""
    cause = getattr(exc, "__cause__", None)
    return {
        "name": job.name,
        "policy": job.policy,
        "cores": job.cores,
        "seed": job.seed,
        "type": type(exc).__name__,
        "message": str(exc),
        "timeout": isinstance(exc, JobTimeout),
        "attempts": attempts,
        "cause": None if cause is None else str(cause),
    }


def _cancel_payload(job: SweepJob) -> Dict:
    return {"name": job.name, "policy": job.policy, "cores": job.cores,
            "seed": job.seed, "type": "Cancelled",
            "message": "sweep interrupted before this job finished",
            "timeout": False, "attempts": 0, "cause": None}


def _result(job: SweepJob, stats: SystemStats) -> BenchmarkResult:
    return BenchmarkResult(job.name, get_profile(job.name).suite,
                           job.policy, stats)


def default_workers() -> int:
    """Pool size when the caller does not choose: ``REPRO_WORKERS`` if
    set, else the machine's CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def run_sweep(jobs: Sequence[SweepJob],
              workers: Optional[int] = None,
              cache: bool = True,
              cache_dir: Union[str, os.PathLike, None] = None,
              progress: Optional[ProgressFn] = None,
              timeout: Optional[float] = None,
              retries: int = 0,
              backoff: float = 0.5) -> SweepOutcome:
    """Execute a batch of sweep jobs, in parallel where possible.

    ``workers=None`` resolves via :func:`default_workers`; ``workers=1``
    (or a single uncached job) runs in-process with no pool.  With
    ``cache`` enabled (the default), finished results are read from and
    written to ``cache_dir`` (default: ``$REPRO_SWEEP_CACHE`` or
    ``.sweep-cache``).  ``progress`` receives human-readable status
    lines, including an ETA once a completion time is known.

    ``timeout`` bounds each job's wall-clock seconds; a cell that blows
    it (or raises, or loses its worker process) is retried up to
    ``retries`` more times with exponential ``backoff`` between rounds,
    then recorded as a structured error payload — the sweep always
    completes and returns the cells it has (see :class:`SweepOutcome`).
    KeyboardInterrupt cancels outstanding work but completed cells are
    kept (and were already cached).

    Results come back in input-job order; identical jobs are simulated
    once and share the result (including a shared error if they fail).
    """
    t0 = time.perf_counter()
    jobs = list(jobs)
    store = ResultCache(cache_dir, on_warning=progress) if cache else None
    keys = [job_key(job) for job in jobs]
    stats_by_key: Dict[str, SystemStats] = {}
    obs_by_key: Dict[str, Optional[Dict]] = {}
    errors_by_key: Dict[str, Dict] = {}

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    cached = 0
    if store is not None:
        for key in set(keys):
            payload = store.get(key)
            if payload is None:
                continue
            try:
                stats_by_key[key] = SystemStats.from_dict(payload)
            except Exception as exc:
                # Valid JSON but not a stats payload (foreign file,
                # schema drift): a miss with a note, never an abort.
                note(f"sweep: cache entry {key[:12]}… unreadable "
                     f"({type(exc).__name__}: {exc}); re-simulating")
                continue
            obs_by_key[key] = payload.get("obs")
        cached = sum(1 for key in keys if key in stats_by_key)
        # Cache hits are reported distinctly and *never* enter the ETA
        # clock below: an instant cell says nothing about how long a
        # simulation takes, so mixing them in skews the estimate.
        for idx, key in enumerate(keys):
            if key in stats_by_key:
                note(f"sweep: [cache] {jobs[idx].name}/{jobs[idx].policy}")

    # Deduplicated misses, in first-appearance order.
    todo: List[int] = []
    seen = set(stats_by_key)
    for idx, key in enumerate(keys):
        if key not in seen:
            seen.add(key)
            todo.append(idx)

    nworkers = workers if workers is not None else default_workers()
    nworkers = max(1, min(nworkers, len(todo) or 1))

    if todo:
        note(f"sweep: {len(todo)} of {len(jobs)} jobs to simulate "
             f"({cached} cached), {nworkers} worker(s)")
    elif jobs:
        note(f"sweep: all {len(jobs)} jobs cached, nothing to simulate")
    done = 0
    t_run = time.perf_counter()

    def finished(idx: int, payload: Dict, quiet: bool = False) -> None:
        nonlocal done
        key = keys[idx]
        stats_by_key[key] = SystemStats.from_dict(payload)
        obs_by_key[key] = payload.get("obs")
        errors_by_key.pop(key, None)  # a retry succeeded
        if store is not None:
            store.put(key, payload)
        done += 1
        if quiet:
            return
        # ETA over simulated cells only (cache hits were answered
        # before t_run and are excluded by construction).
        rate = (time.perf_counter() - t_run) / done
        eta = rate * (len(todo) - done)
        job = jobs[idx]
        note(f"sweep: [{done}/{len(todo)}] {job.name}/{job.policy} "
             f"done, ETA {eta:.0f}s")

    def failed(idx: int, exc: BaseException, attempts: int) -> None:
        job = jobs[idx]
        errors_by_key[keys[idx]] = _error_payload(job, exc, attempts)
        note(f"sweep: [fail] {job.name}/{job.policy}: "
             f"{type(exc).__name__}: {exc}")

    def run_serial(indices: List[int], attempts: int
                   ) -> "tuple[List[int], bool]":
        """In-process execution; returns (retryable indices, interrupted)."""
        retryable: List[int] = []
        for pos, idx in enumerate(indices):
            try:
                finished(idx, _execute_job_guarded(jobs[idx], timeout))
            except KeyboardInterrupt:
                note("sweep: interrupted — keeping completed cells")
                for cancelled in indices[pos:]:
                    errors_by_key.setdefault(
                        keys[cancelled], _cancel_payload(jobs[cancelled]))
                return [], True
            except Exception as exc:
                failed(idx, exc, attempts)
                retryable.append(idx)
        return retryable, False

    def run_pool(indices: List[int], attempts: int
                 ) -> "tuple[List[int], bool]":
        """Process-pool execution; returns (retryable, interrupted).

        A fresh pool per round: a worker that died (OOM, signal) breaks
        the pool, failing every in-flight future with BrokenProcessPool;
        those cells are simply retryable like any other failure, and the
        next round starts with working processes.
        """
        retryable: List[int] = []
        interrupted = False
        pool = ProcessPoolExecutor(max_workers=min(nworkers, len(indices)))
        futures = {pool.submit(_execute_job_guarded, jobs[idx], timeout): idx
                   for idx in indices}
        try:
            for future in as_completed(futures):
                idx = futures[future]
                try:
                    finished(idx, future.result())
                except Exception as exc:
                    failed(idx, exc, attempts)
                    retryable.append(idx)
        except KeyboardInterrupt:
            interrupted = True
            note("sweep: interrupted — cancelling outstanding jobs, "
                 "keeping completed cells")
            for future in futures:
                future.cancel()
            # Salvage cells that finished but were not yet collected.
            for future, idx in futures.items():
                key = keys[idx]
                if key in stats_by_key or key in errors_by_key:
                    continue
                if future.done() and not future.cancelled():
                    try:
                        finished(idx, future.result(), quiet=True)
                    except BaseException as exc:
                        errors_by_key[key] = _error_payload(
                            jobs[idx], exc, attempts)
                else:
                    errors_by_key[key] = _cancel_payload(jobs[idx])
            retryable = []
        finally:
            pool.shutdown(wait=not interrupted,
                          cancel_futures=interrupted)
        return retryable, interrupted

    pending = list(todo)
    interrupted = False
    attempt = 0
    while pending and not interrupted:
        attempt += 1
        if attempt > 1:
            delay = backoff * (2 ** (attempt - 2))
            note(f"sweep: retrying {len(pending)} failed job(s) "
                 f"(attempt {attempt}, backoff {delay:.1f}s)")
            if delay > 0:
                time.sleep(delay)
        if nworkers <= 1 or len(pending) <= 1:
            pending, interrupted = run_serial(pending, attempt)
        else:
            pending, interrupted = run_pool(pending, attempt)
        if attempt > retries:
            break

    results: List[Optional[BenchmarkResult]] = []
    errors: List[Optional[Dict]] = []
    for job, key in zip(jobs, keys):
        stats = stats_by_key.get(key)
        if stats is not None:
            results.append(_result(job, stats))
            errors.append(None)
        else:
            results.append(None)
            # A cell never reached (interrupt during an earlier round)
            # has no recorded error yet; mark it cancelled.
            errors.append(errors_by_key.get(key) or _cancel_payload(job))
    failed_cells = sum(1 for r in results if r is None)
    if failed_cells:
        note(f"sweep: {failed_cells} of {len(jobs)} cell(s) failed "
             f"({'interrupted' if interrupted else 'after retries'})")
    return SweepOutcome(results=results, simulated=done,
                        cached=cached,
                        elapsed=time.perf_counter() - t0,
                        workers=nworkers, keys=keys,
                        obs=[obs_by_key.get(key) for key in keys],
                        errors=errors, failed=failed_cells,
                        interrupted=interrupted)


def sweep_policies(name: str,
                   policies: Sequence[str] = POLICY_ORDER,
                   cores: int = DEFAULT_CORES,
                   length: Optional[int] = None, seed: int = 0,
                   config: Optional[SystemConfig] = None,
                   workers: Optional[int] = None,
                   cache: bool = True,
                   cache_dir: Union[str, os.PathLike, None] = None,
                   progress: Optional[ProgressFn] = None
                   ) -> Dict[str, BenchmarkResult]:
    """One benchmark under several policies — the parallel, cached
    equivalent of :func:`repro.workloads.runner.run_policy_sweep`."""
    jobs = [SweepJob(name=name, policy=policy, cores=cores, length=length,
                     seed=seed, config=config) for policy in policies]
    outcome = run_sweep(jobs, workers=workers, cache=cache,
                        cache_dir=cache_dir, progress=progress)
    return {policy: result
            for policy, result in zip(policies, outcome.results)}


def stderr_progress(msg: str) -> None:
    """A ready-made ``progress`` callback for CLI use."""
    print(msg, file=sys.stderr, flush=True)
