"""The sweep runner: fan (profile × policy) simulations across processes.

Every job is self-contained — traces are regenerated inside the worker
from ``(profile, cores, length, seed)``, which is deterministic — so the
pool needs to pickle only the small :class:`SweepJob` description, never
a trace or a simulator.  The engine itself is deterministic, which makes
the merge trivial: results are placed back at their job's input index,
and a parallel sweep is cycle-identical to running the same jobs in a
loop.

Completed results are stored in a :class:`~repro.sweep.cache.ResultCache`
keyed by :func:`job_key`, so re-running a figure after editing only the
plotting code performs zero simulations.

Crash tolerance
---------------

A sweep survives its own cells: a per-job ``timeout`` (enforced with a
SIGALRM timer inside the worker), bounded ``retries`` with exponential
``backoff``, and per-cell structured error payloads.  A cell that keeps
failing becomes ``None`` in ``SweepOutcome.results`` with its error in
``SweepOutcome.errors`` at the same index — the sweep completes with
partial results instead of dying.  A dead worker process (the pool
breaks) fails every in-flight cell retryably; the next retry round gets
a fresh pool.  Ctrl-C cancels outstanding futures, salvages cells that
already finished, and returns (and caches) the partial outcome.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.policies import POLICY_ORDER
from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats
from repro.sim.system import simulate
from repro.sweep.cache import ResultCache, code_version, content_key
from repro.workloads.profiles import get_profile
from repro.workloads.runner import (DEFAULT_CORES, BenchmarkResult,
                                    resolved_length)
from repro.workloads.synthetic import generate_warmup, generate_workload

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepJob:
    """One cell of a sweep grid: a complete simulation specification."""

    name: str                          # benchmark profile name
    policy: str                        # consistency configuration
    cores: int = DEFAULT_CORES
    length: Optional[int] = None       # None = suite default × REPRO_SCALE
    seed: int = 0
    config: Optional[SystemConfig] = None
    detect_violations: bool = False
    # The ablation in benchmarks/bench_ablations.py runs with the
    # profile's memory-dependence hints stripped (cold StoreSet).
    memdep_hints: bool = True
    # Attach the observability layer and carry its per-cell summary
    # (histograms, gate intervals, squash counters) in the result
    # payload.  Part of the cache key: an obs run records strictly more
    # than a plain run, so the two cannot share cache entries.
    obs: bool = False
    obs_sample_interval: int = 64
    # Drain to quiescence and checkpoint every ~N cycles; on a retry the
    # job resumes from the last checkpoint blob instead of cycle 0 (see
    # ``_execute_checkpointed``).  Checkpointed runs are their own
    # deterministic mode — the drains alter event timing — so the value
    # is part of the cache key when set.
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if self.obs or self.detect_violations:
                # A snapshot cannot carry observer state (probes,
                # detectors) — see repro.snapshot.capture.
                raise ValueError(
                    "checkpoint_every cannot be combined with obs or "
                    "detect_violations (snapshots exclude observers)")

    def to_dict(self) -> Dict:
        """JSON-safe description; exact under :meth:`from_dict`.

        ``config`` must be None (the default simulated system): a job
        that travels between processes as JSON — the ``repro.serve``
        wire format — keys its result on this payload, and a partial
        config encoding would silently fork the cache namespace.
        """
        if self.config is not None:
            raise ValueError("SweepJob.to_dict: custom SystemConfig is "
                             "not JSON-serializable; use config=None")
        out = {
            "name": self.name,
            "policy": self.policy,
            "cores": self.cores,
            "length": self.length,
            "seed": self.seed,
            "detect_violations": self.detect_violations,
            "memdep_hints": self.memdep_hints,
            "obs": self.obs,
            "obs_sample_interval": self.obs_sample_interval,
        }
        # Only when set, so pre-checkpoint wire payloads round-trip
        # byte-identically.
        if self.checkpoint_every is not None:
            out["checkpoint_every"] = self.checkpoint_every
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepJob":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so a
        typo in a job request fails loudly instead of keying a cache
        entry under a spec the simulation ignored."""
        allowed = {"name", "policy", "cores", "length", "seed",
                   "detect_violations", "memdep_hints", "obs",
                   "obs_sample_interval", "checkpoint_every"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"SweepJob.from_dict: unknown field(s) "
                             f"{sorted(unknown)}")
        if "name" not in data or "policy" not in data:
            raise ValueError("SweepJob.from_dict: 'name' and 'policy' "
                             "are required")
        return cls(**data)


@dataclass
class SweepOutcome:
    """What a :func:`run_sweep` call did."""

    # One entry per job, in input order; None = the cell failed (see the
    # matching ``errors`` entry).
    results: List[Optional[BenchmarkResult]]
    simulated: int = 0                 # jobs executed successfully
    cached: int = 0                    # jobs answered from the cache
    elapsed: float = 0.0               # wall-clock seconds
    workers: int = 1                   # pool size used (1 = in-process)
    # How the simulated cells were executed: "serial"/"parallel" when
    # the caller fixed the worker count, "adaptive-serial"/
    # "adaptive-parallel" when the runner sized itself from a probe of
    # the first cell (see run_sweep).
    mode: str = "serial"
    keys: List[str] = field(default_factory=list)  # cache key per job
    # Per-job observability summary dicts (None for non-obs jobs), in
    # input order — the ``repro.obs.session.ObsReport.to_dict()`` form.
    obs: List[Optional[Dict]] = field(default_factory=list)
    # Per-job structured error payloads (None for successful cells), in
    # input order: name/policy/seed, exception type and message, whether
    # it was a timeout, and the number of attempts made.
    errors: List[Optional[Dict]] = field(default_factory=list)
    failed: int = 0                    # cells without a result
    interrupted: bool = False          # Ctrl-C cut the sweep short


class JobTimeout(RuntimeError):
    """A sweep job exceeded its per-job wall-clock budget."""


def job_key(job: SweepJob) -> str:
    """Content hash identifying a job's *result*.

    Covers the trace specification (profile, cores, resolved length,
    seed, hint stripping), the system configuration, the policy, the
    violation-detector flag, and the simulator source version — the
    complete input closure of a simulation.
    """
    payload = {
        "schema": 1,
        "name": job.name,
        "policy": job.policy,
        "cores": job.cores,
        "length": resolved_length(job.name, job.length),
        "seed": job.seed,
        "config": (None if job.config is None
                   else dataclasses.asdict(job.config)),
        "detect_violations": job.detect_violations,
        "memdep_hints": job.memdep_hints,
        "obs": job.obs,
        "obs_sample_interval": job.obs_sample_interval if job.obs else None,
        "code": code_version(),
    }
    # Checkpointed runs drain to quiescence periodically, which changes
    # event timing — a distinct deterministic mode, so a distinct key.
    # Added conditionally so every pre-existing key is preserved.
    if job.checkpoint_every is not None:
        payload["checkpoint_every"] = job.checkpoint_every
    return content_key(payload)


def execute_job(job: SweepJob,
                cache_dir: Union[str, os.PathLike, None] = None) -> Dict:
    """Run one job to completion; returns the stats as a JSON-safe dict.

    Module-level so it pickles for the process pool.  Traces are
    regenerated here — generation is seeded and deterministic, so every
    worker sees byte-identical workloads.

    ``cache_dir`` only matters for checkpointed jobs
    (``job.checkpoint_every``): it is where the resume blob and the
    progress document live between checkpoints.
    """
    profile = get_profile(job.name)
    n = resolved_length(job.name, job.length)
    traces = generate_workload(profile, job.cores, n, job.seed)
    warm = generate_warmup(profile, job.cores, n, job.seed)
    if not job.memdep_hints:
        for trace in traces:
            trace.memdep_hints = []
    if job.checkpoint_every is not None:
        return _execute_checkpointed(job, traces, warm, cache_dir)
    if job.obs:
        from repro.obs.session import observe_run
        stats, report, _system = observe_run(
            traces, job.policy, config=job.config, warm_caches=warm,
            detect_violations=job.detect_violations,
            sample_interval=job.obs_sample_interval)
        payload = stats.to_dict()
        # Rides inside the cached payload; SystemStats.from_dict ignores
        # keys it does not know, so old readers are unaffected.
        payload["obs"] = report.to_dict()
        return payload
    stats = simulate(traces, job.policy, config=job.config,
                     warm_caches=warm,
                     detect_violations=job.detect_violations)
    return stats.to_dict()


def _execute_checkpointed(job: SweepJob, traces, warm,
                          cache_dir: Union[str, os.PathLike, None]) -> Dict:
    """Run a job in checkpointed mode, resuming from a stored snapshot.

    Every ~``checkpoint_every`` cycles the system drains to quiescence
    and the snapshot blob + a small progress document are written to the
    sweep cache under the job's key.  A crashed or timed-out attempt
    therefore resumes from the last checkpoint on its retry round
    instead of repeating the whole run; the side files are cleared on
    success.  Both paths are deterministic: resuming from any checkpoint
    yields the same stats as the uninterrupted checkpointed run.
    """
    from repro.snapshot import Snapshot, SnapshotError, restore
    from repro.sim.system import System

    store = ResultCache(cache_dir) if cache_dir is not None else None
    key = job_key(job) if store is not None else None

    system = None
    if store is not None:
        blob = store.get_blob(key)
        if blob is not None:
            try:
                system = restore(Snapshot.from_bytes(blob), traces,
                                 config=job.config)
            except SnapshotError:
                # Stale or corrupt blob (e.g. written by other code):
                # restart from cycle 0 rather than failing the cell.
                store.clear_blob(key)
                system = None
    if system is None:
        system = System(traces, job.policy, config=job.config,
                        warm_caches=warm)

    def on_checkpoint(snapshot) -> None:
        if store is None:
            return
        data = snapshot.data
        store.put_blob(key, snapshot.to_bytes())
        store.put_progress(key, {
            "name": job.name,
            "policy": job.policy,
            "cycle": data["engine"]["now"],
            "fetched": [core["fetch_idx"] for core in data["cores"]],
            "trace_lens": data["trace_lens"],
        })

    stats = system.run(checkpoint_every=job.checkpoint_every,
                       on_checkpoint=on_checkpoint)
    if store is not None:
        store.clear_blob(key)
        store.clear_progress(key)
    return stats.to_dict()


def with_deadline(fn: Callable[[], Dict], timeout: Optional[float],
                  label: str) -> Dict:
    """Run ``fn()`` under a wall-clock deadline, raising
    :class:`JobTimeout` (labelled with ``label``) when it blows.

    The deadline uses a SIGALRM interval timer.  On platforms without
    SIGALRM (Windows) the timeout degrades to "no timeout" rather than
    failing.  A previously armed timer (e.g. the test suite's per-test
    deadline when the sweep runs serially in-process) is restored with
    its remaining time on exit, so nesting is safe.
    """
    if not timeout or not hasattr(signal, "SIGALRM"):
        return fn()

    def _on_alarm(signum, frame):
        raise JobTimeout(
            f"job {label} exceeded its {timeout:g}s timeout")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, timeout)
    started = time.monotonic()
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)
        if outer_remaining > 0:
            left = outer_remaining - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(left, 1e-6))


def _execute_job_guarded(job: SweepJob, timeout: Optional[float],
                         cache_dir: Union[str, os.PathLike, None] = None
                         ) -> Dict:
    """Worker entry point: :func:`execute_job` under a wall-clock
    deadline.  Module-level so it pickles for the process pool."""
    return with_deadline(lambda: execute_job(job, cache_dir), timeout,
                         f"{job.name}/{job.policy}")


def _execute_chunk(jobs: List[SweepJob], timeout: Optional[float],
                   cache_dir: Union[str, os.PathLike, None] = None
                   ) -> List:
    """Run several jobs in one worker call; one pool task per *chunk*.

    Amortizes task dispatch and result IPC over multiple cells.  Each
    entry of the returned list is ``("ok", payload)`` or ``("err",
    info)`` in input order — failures are data, not exceptions, so one
    bad cell never poisons its chunk-mates."""
    out = []
    for job in jobs:
        try:
            out.append(("ok", _execute_job_guarded(job, timeout,
                                                   cache_dir)))
        except Exception as exc:
            out.append(("err", _exc_info(exc)))
    return out


def _exc_info(exc: BaseException) -> Dict:
    """JSON-safe description of an exception (pickles across the pool
    where the exception object itself might not)."""
    cause = getattr(exc, "__cause__", None)
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "timeout": isinstance(exc, JobTimeout),
        "cause": None if cause is None else str(cause),
    }


def _error_payload(job: SweepJob, exc: BaseException,
                   attempts: int) -> Dict:
    """The structured record of a failed cell (JSON-safe)."""
    return _error_payload_from_info(job, _exc_info(exc), attempts)


def _error_payload_from_info(job: SweepJob, info: Dict,
                             attempts: int) -> Dict:
    return {
        "name": job.name,
        "policy": job.policy,
        "cores": job.cores,
        "seed": job.seed,
        "type": info["type"],
        "message": info["message"],
        "timeout": info["timeout"],
        "attempts": attempts,
        "cause": info.get("cause"),
    }


def _cancel_payload(job: SweepJob) -> Dict:
    return {"name": job.name, "policy": job.policy, "cores": job.cores,
            "seed": job.seed, "type": "Cancelled",
            "message": "sweep interrupted before this job finished",
            "timeout": False, "attempts": 0, "cause": None}


def _result(job: SweepJob, stats: SystemStats) -> BenchmarkResult:
    return BenchmarkResult(job.name, get_profile(job.name).suite,
                           job.policy, stats)


def default_workers() -> int:
    """Pool size when the caller does not choose: ``REPRO_WORKERS`` if
    set, else the machine's CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


#: Estimated seconds to stand up a process pool and re-import the
#: simulator in each worker — the fixed overhead a parallel round must
#: amortize before it can beat running the same cells in-process.
POOL_SPAWN_COST = 1.0


def pool_spawn_cost() -> float:
    """The amortization threshold; ``REPRO_POOL_SPAWN_COST`` overrides
    (useful for tests and for hosts with unusually slow fork/spawn)."""
    env = os.environ.get("REPRO_POOL_SPAWN_COST")
    if env:
        return max(0.0, float(env))
    return POOL_SPAWN_COST


def run_sweep(jobs: Sequence[SweepJob],
              workers: Optional[int] = None,
              cache: bool = True,
              cache_dir: Union[str, os.PathLike, None] = None,
              progress: Optional[ProgressFn] = None,
              timeout: Optional[float] = None,
              retries: int = 0,
              backoff: float = 0.5) -> SweepOutcome:
    """Execute a batch of sweep jobs, in parallel where it pays.

    ``workers=None`` sizes adaptively: the pool is capped at
    :func:`default_workers`, but the serial-vs-parallel choice is made
    from a timed in-process probe of the first cell — a pool is spawned
    only when the estimated parallel saving on the remaining cells
    exceeds :func:`pool_spawn_cost`, so a sweep of short jobs (or any
    sweep on a 1-CPU host) is never slower than running serially.  The
    decision is recorded in ``SweepOutcome.mode``.  An explicit
    ``workers`` count skips the probe; ``workers=1`` (or a single
    uncached job) runs in-process with no pool.  With
    ``cache`` enabled (the default), finished results are read from and
    written to ``cache_dir`` (default: ``$REPRO_SWEEP_CACHE`` or
    ``.sweep-cache``).  ``progress`` receives human-readable status
    lines, including an ETA once a completion time is known.

    ``timeout`` bounds each job's wall-clock seconds; a cell that blows
    it (or raises, or loses its worker process) is retried up to
    ``retries`` more times with exponential ``backoff`` between rounds,
    then recorded as a structured error payload — the sweep always
    completes and returns the cells it has (see :class:`SweepOutcome`).
    KeyboardInterrupt cancels outstanding work but completed cells are
    kept (and were already cached).

    Results come back in input-job order; identical jobs are simulated
    once and share the result (including a shared error if they fail).
    """
    t0 = time.perf_counter()
    jobs = list(jobs)
    store = ResultCache(cache_dir, on_warning=progress) if cache else None
    keys = [job_key(job) for job in jobs]
    stats_by_key: Dict[str, SystemStats] = {}
    obs_by_key: Dict[str, Optional[Dict]] = {}
    errors_by_key: Dict[str, Dict] = {}

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    cached = 0
    if store is not None:
        for key in set(keys):
            payload = store.get(key)
            if payload is None:
                continue
            try:
                stats_by_key[key] = SystemStats.from_dict(payload)
            except Exception as exc:
                # Valid JSON but not a stats payload (foreign file,
                # schema drift): a miss with a note, never an abort.
                note(f"sweep: cache entry {key[:12]}… unreadable "
                     f"({type(exc).__name__}: {exc}); re-simulating")
                continue
            obs_by_key[key] = payload.get("obs")
        cached = sum(1 for key in keys if key in stats_by_key)
        # Cache hits are reported distinctly and *never* enter the ETA
        # clock below: an instant cell says nothing about how long a
        # simulation takes, so mixing them in skews the estimate.
        for idx, key in enumerate(keys):
            if key in stats_by_key:
                note(f"sweep: [cache] {jobs[idx].name}/{jobs[idx].policy}")

    # Deduplicated misses, in first-appearance order.
    todo: List[int] = []
    seen = set(stats_by_key)
    for idx, key in enumerate(keys):
        if key not in seen:
            seen.add(key)
            todo.append(idx)

    # Where workers persist checkpoint blobs/progress for checkpointed
    # jobs (same directory as the result cache, same key namespace).
    chk_dir = str(store.directory) if store is not None else None

    if workers is not None:
        nworkers = max(1, min(workers, len(todo) or 1))
        mode: Optional[str] = "serial" if nworkers <= 1 else "parallel"
    else:
        # Adaptive sizing: cap by the host, but defer the serial-vs-
        # parallel decision until the first cell has been timed (the
        # probe in the execution loop below) — a pool only pays off
        # once the remaining serial work exceeds its spawn cost, which
        # a bare CPU count cannot know.
        nworkers = max(1, min(default_workers(), len(todo) or 1))
        if nworkers <= 1 or len(todo) <= 1:
            nworkers, mode = 1, "adaptive-serial"
        else:
            mode = None  # decided by the probe

    if todo:
        sizing = (f"{nworkers} worker(s)" if mode is not None
                  else f"adaptive, <= {nworkers} workers")
        note(f"sweep: {len(todo)} of {len(jobs)} jobs to simulate "
             f"({cached} cached), {sizing}")
    elif jobs:
        note(f"sweep: all {len(jobs)} jobs cached, nothing to simulate")
    done = 0
    t_run = time.perf_counter()

    def finished(idx: int, payload: Dict, quiet: bool = False) -> None:
        nonlocal done
        key = keys[idx]
        stats_by_key[key] = SystemStats.from_dict(payload)
        obs_by_key[key] = payload.get("obs")
        errors_by_key.pop(key, None)  # a retry succeeded
        if store is not None:
            store.put(key, payload)
        done += 1
        if quiet:
            return
        # ETA over simulated cells only (cache hits were answered
        # before t_run and are excluded by construction).
        rate = (time.perf_counter() - t_run) / done
        eta = rate * (len(todo) - done)
        job = jobs[idx]
        note(f"sweep: [{done}/{len(todo)}] {job.name}/{job.policy} "
             f"done, ETA {eta:.0f}s")

    def failed_info(idx: int, info: Dict, attempts: int) -> None:
        job = jobs[idx]
        errors_by_key[keys[idx]] = _error_payload_from_info(
            job, info, attempts)
        note(f"sweep: [fail] {job.name}/{job.policy}: "
             f"{info['type']}: {info['message']}")

    def failed(idx: int, exc: BaseException, attempts: int) -> None:
        failed_info(idx, _exc_info(exc), attempts)

    def run_serial(indices: List[int], attempts: int
                   ) -> "tuple[List[int], bool]":
        """In-process execution; returns (retryable indices, interrupted)."""
        retryable: List[int] = []
        for pos, idx in enumerate(indices):
            try:
                finished(idx, _execute_job_guarded(jobs[idx], timeout,
                                                   chk_dir))
            except KeyboardInterrupt:
                note("sweep: interrupted — keeping completed cells")
                for cancelled in indices[pos:]:
                    errors_by_key.setdefault(
                        keys[cancelled], _cancel_payload(jobs[cancelled]))
                return [], True
            except Exception as exc:
                failed(idx, exc, attempts)
                retryable.append(idx)
        return retryable, False

    def run_pool(indices: List[int], attempts: int
                 ) -> "tuple[List[int], bool]":
        """Process-pool execution; returns (retryable, interrupted).

        A fresh pool per round: a worker that died (OOM, signal) breaks
        the pool, failing every in-flight future with BrokenProcessPool;
        those cells are simply retryable like any other failure, and the
        next round starts with working processes.

        Cells are dispatched in contiguous *chunks* (several per
        worker), so task pickling and result IPC are amortized while an
        unlucky slow chunk still cannot serialize the whole round.  One
        failing cell inside a chunk is data, not an exception — its
        chunk-mates' results survive (see :func:`_execute_chunk`).
        """
        retryable: List[int] = []
        interrupted = False
        pool_size = min(nworkers, len(indices))
        chunksize = max(1, len(indices) // (pool_size * 4))
        chunked = [indices[i:i + chunksize]
                   for i in range(0, len(indices), chunksize)]
        pool = ProcessPoolExecutor(max_workers=pool_size)
        futures = {pool.submit(_execute_chunk, [jobs[i] for i in chunk],
                               timeout, chk_dir): chunk
                   for chunk in chunked}
        try:
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    outcomes = future.result()
                except Exception as exc:
                    # The worker running this chunk died; every cell in
                    # it is retryable.
                    for idx in chunk:
                        failed(idx, exc, attempts)
                        retryable.append(idx)
                    continue
                for idx, (status, payload) in zip(chunk, outcomes):
                    if status == "ok":
                        finished(idx, payload)
                    else:
                        failed_info(idx, payload, attempts)
                        retryable.append(idx)
        except KeyboardInterrupt:
            interrupted = True
            note("sweep: interrupted — cancelling outstanding jobs, "
                 "keeping completed cells")
            for future in futures:
                future.cancel()
            # Salvage chunks that finished but were not yet collected.
            for future, chunk in futures.items():
                if future.done() and not future.cancelled():
                    try:
                        outcomes = future.result()
                    except BaseException as exc:
                        for idx in chunk:
                            errors_by_key.setdefault(
                                keys[idx],
                                _error_payload(jobs[idx], exc, attempts))
                        continue
                    for idx, (status, payload) in zip(chunk, outcomes):
                        key = keys[idx]
                        if key in stats_by_key or key in errors_by_key:
                            continue
                        if status == "ok":
                            finished(idx, payload, quiet=True)
                        else:
                            errors_by_key[key] = _error_payload_from_info(
                                jobs[idx], payload, attempts)
                else:
                    for idx in chunk:
                        key = keys[idx]
                        if key not in stats_by_key \
                                and key not in errors_by_key:
                            errors_by_key[key] = _cancel_payload(jobs[idx])
            retryable = []
        finally:
            pool.shutdown(wait=not interrupted,
                          cancel_futures=interrupted)
        return retryable, interrupted

    pending = list(todo)
    interrupted = False
    attempt = 0
    while pending and not interrupted:
        attempt += 1
        if attempt > 1:
            delay = backoff * (2 ** (attempt - 2))
            note(f"sweep: retrying {len(pending)} failed job(s) "
                 f"(attempt {attempt}, backoff {delay:.1f}s)")
            if delay > 0:
                time.sleep(delay)
        probe_retry: List[int] = []
        if mode is None:
            # Adaptive probe: run the first cell in-process and time
            # it.  The probe's result counts — nothing is wasted.
            t_probe = time.perf_counter()
            probe_retry, interrupted = run_serial(pending[:1], attempt)
            probe_cost = time.perf_counter() - t_probe
            pending = pending[1:]
            # A pool saves about cost * (1 - 1/workers) of the
            # remaining serial time; spawn it only when that beats its
            # own startup cost, otherwise parallel is *slower* than
            # serial (the regression this sizing exists to prevent).
            saving = probe_cost * len(pending) * (1.0 - 1.0 / nworkers)
            threshold = pool_spawn_cost()
            if saving > threshold:
                mode = "adaptive-parallel"
                note(f"sweep: adaptive — parallel with {nworkers} "
                     f"worker(s) (probe {probe_cost:.2f}s/cell, "
                     f"~{saving:.1f}s to recover)")
            else:
                mode, nworkers = "adaptive-serial", 1
                note(f"sweep: adaptive — staying serial (probe "
                     f"{probe_cost:.2f}s/cell does not amortize a "
                     f"{threshold:.1f}s pool spawn)")
            if interrupted:
                continue
        if pending:
            if nworkers <= 1 or len(pending) <= 1:
                pending, interrupted = run_serial(pending, attempt)
            else:
                pending, interrupted = run_pool(pending, attempt)
        # A failed probe cell retries with the *next* round, like any
        # other failure (never twice within one attempt round).
        pending = sorted(pending + probe_retry)
        if attempt > retries:
            break

    results: List[Optional[BenchmarkResult]] = []
    errors: List[Optional[Dict]] = []
    for job, key in zip(jobs, keys):
        stats = stats_by_key.get(key)
        if stats is not None:
            results.append(_result(job, stats))
            errors.append(None)
        else:
            results.append(None)
            # A cell never reached (interrupt during an earlier round)
            # has no recorded error yet; mark it cancelled.
            errors.append(errors_by_key.get(key) or _cancel_payload(job))
    failed_cells = sum(1 for r in results if r is None)
    if failed_cells:
        note(f"sweep: {failed_cells} of {len(jobs)} cell(s) failed "
             f"({'interrupted' if interrupted else 'after retries'})")
    return SweepOutcome(results=results, simulated=done,
                        cached=cached,
                        elapsed=time.perf_counter() - t0,
                        workers=nworkers,
                        mode=mode or "adaptive-serial", keys=keys,
                        obs=[obs_by_key.get(key) for key in keys],
                        errors=errors, failed=failed_cells,
                        interrupted=interrupted)


def sweep_policies(name: str,
                   policies: Sequence[str] = POLICY_ORDER,
                   cores: int = DEFAULT_CORES,
                   length: Optional[int] = None, seed: int = 0,
                   config: Optional[SystemConfig] = None,
                   workers: Optional[int] = None,
                   cache: bool = True,
                   cache_dir: Union[str, os.PathLike, None] = None,
                   progress: Optional[ProgressFn] = None
                   ) -> Dict[str, BenchmarkResult]:
    """One benchmark under several policies — the parallel, cached
    equivalent of :func:`repro.workloads.runner.run_policy_sweep`."""
    jobs = [SweepJob(name=name, policy=policy, cores=cores, length=length,
                     seed=seed, config=config) for policy in policies]
    outcome = run_sweep(jobs, workers=workers, cache=cache,
                        cache_dir=cache_dir, progress=progress)
    return {policy: result
            for policy, result in zip(policies, outcome.results)}


def stderr_progress(msg: str) -> None:
    """A ready-made ``progress`` callback for CLI use."""
    print(msg, file=sys.stderr, flush=True)
