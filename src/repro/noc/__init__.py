"""Interconnect model (fully connected, Table III latencies)."""

from repro.noc.network import CONTROL, DATA, Network, TrafficStats

__all__ = ["Network", "TrafficStats", "CONTROL", "DATA"]
