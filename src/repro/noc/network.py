"""Fully-connected interconnect model (paper Table III, 'Network').

Every node pair is one switch-to-switch hop apart; a message's latency
is the hop latency plus flit serialization (5 flits for data, 1 for
control).  Contention is not modeled — the paper uses GARNET, but the
mechanisms under study are insensitive to NoC queueing, and a fixed-
latency fully-connected fabric keeps the fleet of benchmark runs cheap.

The network also counts message traffic, which the coherence tests use
to check protocol behaviour (e.g. "an upgrade to a line with two
sharers sends exactly two invalidations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.sim.config import NetworkConfig
from repro.sim.engine import Engine

CONTROL = "control"
DATA = "data"


@dataclass(slots=True)
class TrafficStats:
    """Message counts by class."""

    messages: Dict[str, int] = field(default_factory=lambda: {CONTROL: 0,
                                                              DATA: 0})

    def count(self, msg_class: str) -> None:
        self.messages[msg_class] += 1

    @property
    def total(self) -> int:
        return sum(self.messages.values())


class Network:
    """Delivers callbacks after the configured message latency."""

    __slots__ = ("engine", "config", "stats", "fault_delay", "_p_msg")

    def __init__(self, engine: Engine, config: NetworkConfig,
                 probes=None) -> None:
        self.engine = engine
        self.config = config
        self.stats = TrafficStats()
        # Fault-injection hook (repro.resilience.faults): extra cycles
        # to add to one message's latency.  None when no plan installed;
        # the cost is then one attribute load per send.
        self.fault_delay: Optional[Callable[[str], int]] = None
        self._p_msg = probes.resolve("noc.msg") \
            if probes is not None else None

    def latency(self, msg_class: str) -> int:
        if msg_class == DATA:
            return self.config.data_latency
        if msg_class == CONTROL:
            return self.config.control_latency
        raise ValueError(f"unknown message class {msg_class!r}")

    def send(self, msg_class: str, deliver: Callable[..., Any],
             *args: Any) -> None:
        """Send a message: ``deliver(*args)`` runs after the link latency."""
        self.stats.count(msg_class)
        if self._p_msg is not None:
            self._p_msg(self.engine.now, msg_class)
        delay = self.latency(msg_class)
        if self.fault_delay is not None:
            delay += self.fault_delay(msg_class)
        self.engine.schedule(delay, deliver, *args)

    def send_control(self, deliver: Callable[..., Any], *args: Any) -> None:
        self.send(CONTROL, deliver, *args)

    def send_data(self, deliver: Callable[..., Any], *args: Any) -> None:
        self.send(DATA, deliver, *args)
