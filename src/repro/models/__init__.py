"""repro.models — the pluggable memory-model zoo.

One registry maps model names to :class:`~repro.models.base.MemoryModel`
objects bundling an axiomatic definition (relation predicates evaluated
by both axiomatic engines), an operational machine factory, and a
declared conformance-lattice position that
:mod:`repro.models.lattice` machine-checks over the litmus battery.

``lint``, ``synth``, ``repro explain`` and the serve/fleet job kinds
all resolve models by name from here.
"""

from repro.models.base import (AxiomaticDef, Event, MemoryModel, PoPair,
                               po_access_pairs, thread_accesses)
from repro.models.defs import (M370, MODEL_ORDER, PC, REGISTRY, SC, WMM,
                               X86)
from repro.models.lattice import (LatticeReport, LatticeViolation,
                                  check_lattice, check_program,
                                  declared_edges, lattice_edges)


def get_model(name: str) -> MemoryModel:
    """Look up a registered model; raises ValueError on unknown names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; registered models: "
            f"{', '.join(REGISTRY)}") from None


def model_names(axiomatic_only: bool = False) -> tuple:
    """All registered model names, strongest first; with
    ``axiomatic_only`` just those carrying an axiomatic definition."""
    if axiomatic_only:
        return tuple(name for name in MODEL_ORDER
                     if REGISTRY[name].axiomatic is not None)
    return tuple(MODEL_ORDER)


def model_table() -> list:
    """Rows for the docs table, derived from the registry: (name,
    title, relaxations, formalizations, stronger-than)."""
    rows = []
    for name in MODEL_ORDER:
        model = REGISTRY[name]
        forms = "operational" if model.axiomatic is None \
            else "axiomatic + operational"
        rows.append((model.name, model.title, model.relaxations, forms,
                     ", ".join(model.stronger_than) or "—"))
    return rows


__all__ = [
    "AxiomaticDef", "Event", "MemoryModel", "PoPair",
    "po_access_pairs", "thread_accesses",
    "SC", "M370", "X86", "PC", "WMM", "REGISTRY", "MODEL_ORDER",
    "LatticeReport", "LatticeViolation", "check_lattice",
    "check_program", "declared_edges", "lattice_edges",
    "get_model", "model_names", "model_table",
]
