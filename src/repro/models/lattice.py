"""The machine-checked conformance lattice.

Each registered model declares its immediate stronger parents
(``MemoryModel.stronger_than``); this module closes those edges
transitively and verifies **allowed-outcome monotonicity** — for every
edge ``strong → weak`` and every program, the strong model's outcome
set must be a subset of the weak model's — by exhaustive operational
enumeration over the whole litmus battery plus the synthesized corpus
(``repro.litmus.generated``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.litmus.program import Program
from repro.models.defs import REGISTRY


def declared_edges() -> Tuple[Tuple[str, str], ...]:
    """The immediate (strong, weak) lattice edges, as declared."""
    edges = []
    for model in REGISTRY.values():
        for parent in model.stronger_than:
            if parent not in REGISTRY:
                raise ValueError(
                    f"{model.name} declares unknown parent {parent!r}")
            edges.append((parent, model.name))
    return tuple(edges)


def lattice_edges() -> Tuple[Tuple[str, str], ...]:
    """Transitive closure of :func:`declared_edges` — every (strong,
    weak) pair monotonicity must hold for, e.g. ``("SC", "WMM")``."""
    direct = declared_edges()
    reach = {name: {weak for strong, weak in direct if strong == name}
             for name in REGISTRY}
    changed = True
    while changed:
        changed = False
        for name, weaker in reach.items():
            expansion = set()
            for w in weaker:
                expansion |= reach[w]
            if not expansion <= weaker:
                weaker |= expansion
                changed = True
    return tuple(sorted((strong, weak)
                        for strong, weaker in reach.items()
                        for weak in weaker))


@dataclass(frozen=True)
class LatticeViolation:
    """An outcome a strong model allows but a declared-weaker one
    forbids — a broken containment edge."""

    program: str
    strong: str
    weak: str
    outcomes: Tuple[str, ...]    # rendered outcomes in strong \ weak


@dataclass
class LatticeReport:
    """The result of checking every lattice edge over a corpus."""

    programs_checked: int = 0
    edges: Tuple[Tuple[str, str], ...] = ()
    violations: List[LatticeViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and self.programs_checked > 0

    def summary(self) -> str:
        edges = ", ".join(f"{s}⊆{w}" for s, w in self.edges)
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (f"lattice check: {self.programs_checked} programs × "
                f"[{edges}] — {status}")

    def to_dict(self) -> dict:
        return {
            "programs_checked": self.programs_checked,
            "edges": [list(edge) for edge in self.edges],
            "ok": self.ok,
            "violations": [
                {"program": v.program, "strong": v.strong,
                 "weak": v.weak, "outcomes": list(v.outcomes)}
                for v in self.violations],
        }


def check_program(program: Program,
                  edges: Optional[Sequence[Tuple[str, str]]] = None
                  ) -> List[LatticeViolation]:
    """Monotonicity of one program along the given (default: all
    transitive) lattice edges, by operational enumeration."""
    if edges is None:
        edges = lattice_edges()
    outcome_sets = {}
    violations: List[LatticeViolation] = []
    for strong, weak in edges:
        for name in (strong, weak):
            if name not in outcome_sets:
                outcome_sets[name] = REGISTRY[name].enumerate(program)
        leaked = outcome_sets[strong] - outcome_sets[weak]
        if leaked:
            violations.append(LatticeViolation(
                program=program.name, strong=strong, weak=weak,
                outcomes=tuple(sorted(map(str, leaked)))))
    return violations


def battery_corpus() -> List[Program]:
    """The full check corpus: battery, extra cases, synthesized cases."""
    from repro.litmus.battery import EXTRA_CASES
    from repro.litmus.generated import GENERATED_CASES
    from repro.litmus.tests import ALL_CASES
    return [case.program for case in
            list(ALL_CASES) + list(EXTRA_CASES) + list(GENERATED_CASES)]


def check_lattice(programs: Optional[Iterable[Program]] = None
                  ) -> LatticeReport:
    """Check every (transitive) lattice edge over ``programs``
    (default: :func:`battery_corpus`)."""
    edges = lattice_edges()
    report = LatticeReport(edges=edges)
    for program in (battery_corpus() if programs is None else programs):
        report.violations.extend(check_program(program, edges))
        report.programs_checked += 1
    return report
