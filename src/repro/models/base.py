"""Core abstractions of the memory-model registry.

A :class:`MemoryModel` is a first-class object bundling

* an **axiomatic definition** (:class:`AxiomaticDef`) — two composable
  relation predicates, ``ppo`` over program-order pairs and ``grf``
  over read-from edge kinds, that the lint ghb engine
  (:mod:`repro.lint.memory_model`) and the independent enumerator
  (:mod:`repro.litmus.axiomatic`) both evaluate;
* an **operational machine factory** — the exhaustively enumerable
  transition system of :mod:`repro.litmus.operational`; and
* its declared position in the conformance lattice (``stronger_than``),
  machine-checked over the whole battery by :mod:`repro.models.lattice`.

The event vocabulary covers plain loads/stores, acquire loads, release
stores, mfence/lwfence, and the locked read-modify-writes (xchg / cas).
A locked instruction contributes *two* events — a read ``(tid, idx)``
and a write ``(tid, idx, 1)`` — tied together by the atomicity axiom
(no store may intervene in coherence order between the value read and
the value written).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Iterator, List, Optional, Tuple,
                    TYPE_CHECKING)

from repro.litmus.program import (Cas, Fence, Ld, Program, Rmw, St)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.litmus.operational import Machine

#: An event: ``(tid, idx)`` for a load/store or the read half of a
#: locked instruction; ``(tid, idx, 1)`` for the write half of a locked
#: instruction; ``(-1, ordinal)`` for the per-address initial store.
Event = Tuple[int, ...]

#: Fence strength between two program-ordered accesses: the strongest
#: barrier crossed ("" = none).  Locked instructions between two
#: accesses count as "mf" (x86 locked ops have full fence semantics).
FENCE_STRENGTH = {"": 0, "lw": 1, "mf": 2}


@dataclass(frozen=True)
class PoPair:
    """One program-ordered access pair with everything a ppo predicate
    may condition on."""

    a: Event
    b: Event
    a_addr: str
    b_addr: str
    a_store: bool       # a is a write event
    b_store: bool       # b is a write event
    a_acquire: bool     # a is an acquire load
    b_release: bool     # b is a release store
    a_locked: bool      # a belongs to a locked instruction
    b_locked: bool      # b belongs to a locked instruction
    fence: str          # strongest barrier crossed: "" | "lw" | "mf"

    @property
    def same_addr(self) -> bool:
        return self.a_addr == self.b_addr

    @property
    def st_to_ld(self) -> bool:
        return self.a_store and not self.b_store

    def without_fence(self) -> "PoPair":
        """The same pair as if no barrier were crossed — used to label
        edges that exist *only* because of the fence."""
        if self.fence == "":
            return self
        return PoPair(a=self.a, b=self.b, a_addr=self.a_addr,
                      b_addr=self.b_addr, a_store=self.a_store,
                      b_store=self.b_store, a_acquire=self.a_acquire,
                      b_release=self.b_release, a_locked=self.a_locked,
                      b_locked=self.b_locked, fence="")


@dataclass(frozen=True)
class AxiomaticDef:
    """A model's axiomatic definition as two relation predicates.

    ``ppo(pair)``  — is this program-order pair preserved in ghb?
    ``grf(kind)``  — is an rf edge of this kind ("rfi" | "rfe" |
    "rf-init") global, i.e. part of ghb?

    A candidate execution is allowed iff sc-per-location holds
    (po-loc ∪ rf ∪ co ∪ fr acyclic), the RMW atomicity axiom holds,
    and ``ppo ∪ grf ∪ co ∪ fr`` is acyclic.
    """

    ppo: Callable[[PoPair], bool]
    grf: Callable[[str], bool]


@dataclass(frozen=True)
class MemoryModel:
    """One registered memory model."""

    name: str
    title: str
    relaxations: str                  # human summary (docs table)
    axiomatic: Optional[AxiomaticDef]  # None = operational-only (PC)
    stronger_than: Tuple[str, ...]    # immediate parents in the lattice

    def machine(self, program: Program) -> "Machine":
        """The model's operational machine on ``program``."""
        from repro.litmus.operational import machine_for
        return machine_for(program, self.name)

    def enumerate(self, program: Program):
        """All final outcomes under this model's machine."""
        from repro.litmus.operational import enumerate_outcomes
        return enumerate_outcomes(program, self.name)


# ----------------------------------------------------------------------
# Shared event extraction: both axiomatic engines evaluate the same
# registry predicates over the same po pairs (their independence lies
# in the closure/acyclicity machinery, not the event vocabulary).
# ----------------------------------------------------------------------

#: Per-access roles: (event, op, is_write, acquire, release, locked)
_Access = Tuple[Event, object, bool, bool, bool, bool]


def thread_accesses(thread: Tuple, tid: int) -> List[_Access]:
    """The access events of one thread, in program order.  Locked
    instructions expand into their read then their write event."""
    accesses: List[_Access] = []
    for idx, op in enumerate(thread):
        if isinstance(op, Ld):
            accesses.append(((tid, idx), op, False, op.acquire,
                             False, False))
        elif isinstance(op, St):
            accesses.append(((tid, idx), op, True, False,
                             op.release, False))
        elif isinstance(op, (Rmw, Cas)):
            accesses.append(((tid, idx), op, False, False, False, True))
            accesses.append(((tid, idx, 1), op, True, False, False, True))
    return accesses


def _fence_between(thread: Tuple, idx_a: int, idx_b: int) -> str:
    """Strongest barrier strictly between instruction slots a and b."""
    strongest = ""
    for pos in range(idx_a + 1, idx_b):
        op = thread[pos]
        if isinstance(op, Fence):
            kind = op.kind
        elif isinstance(op, (Rmw, Cas)):
            kind = "mf"
        else:
            continue
        if FENCE_STRENGTH[kind] > FENCE_STRENGTH[strongest]:
            strongest = kind
    return strongest


def po_access_pairs(program: Program) -> Iterator[PoPair]:
    """Every program-ordered access pair of ``program`` with its flags
    — the single source both axiomatic engines feed to ``ppo``."""
    for tid, thread in enumerate(program.threads):
        accesses = thread_accesses(thread, tid)
        for i, (ev_a, op_a, a_st, a_acq, _a_rel, a_lk) in \
                enumerate(accesses):
            for ev_b, op_b, b_st, _b_acq, b_rel, b_lk in accesses[i + 1:]:
                yield PoPair(
                    a=ev_a, b=ev_b,
                    a_addr=op_a.addr, b_addr=op_b.addr,
                    a_store=a_st, b_store=b_st,
                    a_acquire=a_acq, b_release=b_rel,
                    a_locked=a_lk, b_locked=b_lk,
                    fence=_fence_between(thread, ev_a[1], ev_b[1]))
