"""The registered memory models.

The lattice (weaker = allows more outcomes)::

    SC  ⊆  370  ⊆  x86  ⊆  PC  ⊆  WMM

* **SC** — sequential consistency: every po pair preserved, every rf
  edge global.
* **370** — IBM 370-style TSO *without* forwarding: st→ld relaxed
  (store buffering) but rfi is global, so forwarding a not-yet-visible
  store is observable as a 370 violation (the paper's SLF gate).
* **x86** — x86-TSO: st→ld relaxed *and* rfi not global (store-to-load
  forwarding is architectural).
* **PC** — Goodman's processor consistency: per-core memory copies fed
  by per-destination FIFO channels; no store atomicity (IRIW/WRC
  observable).  Operational-only: its per-destination delivery order
  has no faithful two-predicate axiomatization in this framework.
* **WMM** — Zhang et al.'s WMM ("Taming Weak Memory Models"): I2E
  machine with out-of-order store buffers and invalidation buffers;
  relaxes everything but ld→st and same-address order.  ``mfence``
  restores all order; ``lwfence`` all but st→ld; acquire loads and
  release stores restore order around themselves.

Acquire/release and lwfence are architectural no-ops on the TSO family
(the orders they restore are never relaxed there); they become
observable under WMM — which is exactly why the vocabulary lives in the
registry rather than in any one model.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.models.base import AxiomaticDef, MemoryModel, PoPair


def _ppo_sc(pair: PoPair) -> bool:
    return True


def _ppo_tso(pair: PoPair) -> bool:
    """370 and x86: only st→ld is relaxed; an mfence (or a locked
    instruction's full-fence semantics) restores it."""
    if not pair.st_to_ld:
        return True
    return pair.fence == "mf" or pair.a_locked or pair.b_locked


def _ppo_wmm(pair: PoPair) -> bool:
    """WMM keeps ld→st (I2E: stores happen after all preceding
    instructions), everything an mfence/lwfence restores, and the
    orders anchored by acquire loads, release stores and locked ops."""
    if not pair.a_store and pair.b_store:       # ld -> st
        return True
    if pair.fence == "mf":
        return True
    if pair.fence == "lw" and not pair.st_to_ld:
        return True
    if pair.a_acquire or pair.b_release:
        return True
    return pair.a_locked or pair.b_locked


def _grf_all(kind: str) -> bool:
    return True


def _grf_external(kind: str) -> bool:
    return kind != "rfi"


SC = MemoryModel(
    name="SC",
    title="Sequential consistency",
    relaxations="none",
    axiomatic=AxiomaticDef(ppo=_ppo_sc, grf=_grf_all),
    stronger_than=())

M370 = MemoryModel(
    name="370",
    title="IBM 370 (TSO, no forwarding)",
    relaxations="st→ld; rfi global (no forwarding)",
    axiomatic=AxiomaticDef(ppo=_ppo_tso, grf=_grf_all),
    stronger_than=("SC",))

X86 = MemoryModel(
    name="x86",
    title="x86-TSO",
    relaxations="st→ld; forwarding (rfi not global)",
    axiomatic=AxiomaticDef(ppo=_ppo_tso, grf=_grf_external),
    stronger_than=("370",))

PC = MemoryModel(
    name="PC",
    title="Processor consistency (Goodman)",
    relaxations="st→ld; forwarding; no store atomicity",
    axiomatic=None,   # operational-only
    stronger_than=("x86",))

WMM = MemoryModel(
    name="WMM",
    title="WMM (Zhang et al., I2E)",
    relaxations="all but ld→st and same-address; ib stale reads",
    axiomatic=AxiomaticDef(ppo=_ppo_wmm, grf=_grf_external),
    stronger_than=("PC", "x86"))


REGISTRY: Dict[str, MemoryModel] = {
    model.name: model for model in (SC, M370, X86, PC, WMM)}

#: Registration order — strongest first.
MODEL_ORDER: Tuple[str, ...] = tuple(REGISTRY)
