"""Litmus-test programs: a tiny multi-threaded assembly.

A :class:`Program` is a tuple of threads, each a sequence of loads,
stores and fences on named memory locations.  Programs are executed
exhaustively by the operational models (:mod:`repro.litmus.operational`)
and enumerated axiomatically (:mod:`repro.litmus.axiomatic`); both
produce :class:`Outcome` values — final register and memory contents —
that can be compared across memory models.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple, Union


@dataclass(frozen=True)
class Ld:
    """``reg = [addr]``; with ``acquire`` the load is ordered before
    every later access of its thread (a no-op strengthening on the
    TSO-family models, observable under WMM)."""

    addr: str
    reg: str
    acquire: bool = False

    def __str__(self) -> str:
        mnemonic = "ld.acq" if self.acquire else "ld"
        return f"{mnemonic} {self.addr} -> {self.reg}"


@dataclass(frozen=True)
class St:
    """``[addr] = value``; with ``release`` every earlier access of the
    thread is ordered before the store (a no-op strengthening on the
    TSO-family models, observable under WMM)."""

    addr: str
    value: int
    release: bool = False

    def __str__(self) -> str:
        mnemonic = "st.rel" if self.release else "st"
        return f"{mnemonic} {self.addr},{self.value}"


#: Fence kinds: ``mf`` (mfence — orders everything, drains the store
#: buffer) and ``lw`` (lightweight — orders ld→ld, ld→st and st→st but
#: *not* st→ld, so it is architecturally free on the TSO family).
FENCE_KINDS = ("mf", "lw")


@dataclass(frozen=True)
class Fence:
    """A memory fence of the given kind (default mfence)."""

    kind: str = "mf"

    def __post_init__(self) -> None:
        if self.kind not in FENCE_KINDS:
            raise ValueError(f"unknown fence kind {self.kind!r}; "
                             f"expected one of {FENCE_KINDS}")

    def __str__(self) -> str:
        return "mfence" if self.kind == "mf" else "lwfence"


@dataclass(frozen=True)
class Rmw:
    """Atomic exchange: ``reg = [addr]; [addr] = value`` as one
    indivisible, globally ordered action (an x86 locked instruction —
    it drains the store buffer first)."""

    addr: str
    value: int
    reg: str

    def __str__(self) -> str:
        return f"xchg {self.addr},{self.value} -> {self.reg}"


@dataclass(frozen=True)
class Cas:
    """Compare-and-swap: ``reg = [addr]; if reg == expect: [addr] =
    value`` as one indivisible, globally ordered action.  Like
    :class:`Rmw` it is a locked instruction (full fence semantics on
    both sides); unlike :class:`Rmw` the write happens only when the
    old value equals ``expect``."""

    addr: str
    expect: int
    value: int
    reg: str

    def __str__(self) -> str:
        return f"cas {self.addr},{self.expect},{self.value} -> {self.reg}"


Instruction = Union[Ld, St, Fence, Rmw, Cas]

#: Instructions that read memory into a register.
READS = (Ld, Rmw, Cas)
#: Instructions that (may) write memory.
WRITES = (St, Rmw, Cas)
#: Locked instructions: indivisible read+write with fence semantics.
LOCKED = (Rmw, Cas)


@dataclass(frozen=True)
class Outcome:
    """A final state: all registers (per thread) and all memory values."""

    registers: Tuple[Tuple[Tuple[int, str], int], ...]  # ((tid, reg), val)
    memory: Tuple[Tuple[str, int], ...]                 # (addr, val)

    def reg(self, tid: int, name: str) -> int:
        for key, value in self.registers:
            if key == (tid, name):
                return value
        raise KeyError((tid, name))

    def mem(self, addr: str) -> int:
        for key, value in self.memory:
            if key == addr:
                return value
        raise KeyError(addr)

    def __str__(self) -> str:
        regs = " ".join(f"{tid}:{name}={val}"
                        for (tid, name), val in self.registers)
        mem = " ".join(f"[{addr}]={val}" for addr, val in self.memory)
        return f"{regs} | {mem}".strip(" |")


@dataclass(frozen=True)
class Program:
    """A litmus test: named threads plus initial memory (defaults to 0).

    ``secret`` marks addresses holding SECRET data for the leakage
    instrument (:mod:`repro.leakage`): architectural engines ignore it,
    but gadget programs carry it so the taint analysis knows which
    locations a transient access must not encode.
    """

    name: str
    threads: Tuple[Tuple[Instruction, ...], ...]
    initial: Tuple[Tuple[str, int], ...] = ()
    secret: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.threads:
            raise ValueError("a program needs at least one thread")
        for thread in self.threads:
            regs = [op.reg for op in thread if isinstance(op, READS)]
            if len(regs) != len(set(regs)):
                raise ValueError(
                    f"{self.name}: registers must be written once per "
                    f"thread (single-assignment form)")

    @property
    def addresses(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for addr, _ in self.initial:
            seen.setdefault(addr)
        for thread in self.threads:
            for op in thread:
                if not isinstance(op, Fence):
                    seen.setdefault(op.addr)
        return tuple(seen)

    def initial_value(self, addr: str) -> int:
        for a, v in self.initial:
            if a == addr:
                return v
        return 0

    def loads(self) -> Iterator[Tuple[int, int, Ld]]:
        """Yield (tid, index, op) for every load."""
        for tid, thread in enumerate(self.threads):
            for idx, op in enumerate(thread):
                if isinstance(op, Ld):
                    yield tid, idx, op

    def stores(self) -> Iterator[Tuple[int, int, St]]:
        """Yield (tid, index, op) for every store."""
        for tid, thread in enumerate(self.threads):
            for idx, op in enumerate(thread):
                if isinstance(op, St):
                    yield tid, idx, op


# ----------------------------------------------------------------------
# Canonical form: structural identity up to relabeling
# ----------------------------------------------------------------------

def _canonical_render(program: Program, order: Tuple[int, ...]) -> str:
    """Render the program with threads permuted by ``order`` and every
    name relabeled by order of appearance in that rendering: addresses
    become ``a0, a1, ...``; each address's values map to ``1, 2, ...``
    with the *initial* value pinned to class ``0`` (so a store of the
    initial value — observationally distinct from a store of a fresh
    value — keeps that identity); registers restart at ``r0`` per
    thread.  Value equality per address is preserved exactly: equal
    values stay equal, distinct values stay distinct, which is the
    relabeling under which outcome sets are isomorphic."""
    addr_label: Dict[str, str] = {}
    value_label: Dict[str, Dict[int, int]] = {}

    def addr_of(addr: str) -> str:
        if addr not in addr_label:
            addr_label[addr] = f"a{len(addr_label)}"
            value_label[addr] = {program.initial_value(addr): 0}
        return addr_label[addr]

    def value_of(addr: str, value: int) -> int:
        labels = value_label[addr]
        if value not in labels:
            labels[value] = len(labels)   # 0 is the initial value
        return labels[value]

    lines: List[str] = []
    for out_tid, tid in enumerate(order):
        reg_label: Dict[str, str] = {}
        for op in program.threads[tid]:
            if isinstance(op, Fence):
                lines.append(f"T{out_tid} {op}")
                continue
            label = addr_of(op.addr)
            if isinstance(op, St):
                mnemonic = "st.rel" if op.release else "st"
                lines.append(f"T{out_tid} {mnemonic} {label},"
                             f"{value_of(op.addr, op.value)}")
                continue
            reg = reg_label.setdefault(op.reg, f"r{len(reg_label)}")
            if isinstance(op, Ld):
                mnemonic = "ld.acq" if op.acquire else "ld"
                lines.append(f"T{out_tid} {mnemonic} {label} -> {reg}")
            elif isinstance(op, Rmw):
                lines.append(f"T{out_tid} xchg {label},"
                             f"{value_of(op.addr, op.value)} -> {reg}")
            else:  # Cas — ``expect`` joins the address's value classes
                # so relabeling preserves the success/failure pattern.
                lines.append(f"T{out_tid} cas {label},"
                             f"{value_of(op.addr, op.expect)},"
                             f"{value_of(op.addr, op.value)} -> {reg}")
    # Addresses only mentioned in ``initial`` still exist (their final
    # memory value is part of every outcome) — give them labels so two
    # programs differing only in untouched addresses stay distinct.
    extra = sorted(addr_of(addr) for addr in program.addresses
                   if addr not in addr_label)
    secret = sorted(addr_label[a] for a in program.secret
                    if a in addr_label)
    return "\n".join(lines + [f"addr {a}" for a in extra]
                     + [f"secret {s}" for s in secret])


def canonical_form(program: Program) -> str:
    """The canonical text of a program: minimal rendering over all
    thread permutations, with addresses, store values and registers
    relabeled by order of appearance.

    Two programs have equal canonical forms iff one can be obtained
    from the other by permuting threads and consistently renaming
    addresses, values (preserving equality per address) and registers —
    the relabelings under which every memory model's outcome set is
    isomorphic.  This is the structural identity the synthesis dedupe
    and the battery duplicate check key on.
    """
    return min(_canonical_render(program, order)
               for order in itertools.permutations(
                   range(len(program.threads))))


def canonical_key(program: Program) -> str:
    """A short stable hash of :func:`canonical_form` (16 hex chars)."""
    digest = hashlib.sha256(canonical_form(program).encode("utf-8"))
    return digest.hexdigest()[:16]


def make_program(name: str, threads: Sequence[Sequence[Instruction]],
                 initial: Dict[str, int] = None,
                 secret: Sequence[str] = ()) -> Program:
    """Convenience constructor from lists/dicts."""
    return Program(
        name=name,
        threads=tuple(tuple(thread) for thread in threads),
        initial=tuple(sorted((initial or {}).items())),
        secret=tuple(secret))
