"""Extended litmus battery: the classic tests beyond the paper's four.

Each case records the expected verdict for every registered model (SC,
370, x86, PC, WMM — see :mod:`repro.models`) — together they pin down
every relaxation this library models:

==========  =====================================================
relaxation  first observable in
==========  =====================================================
st→ld       370 (and everything weaker): ``sb``
rfi global  x86 (store-to-load forwarding): ``n6``, ``fig5``
write
atomicity   PC (non-write-atomic): ``iriw``, ``wrc``
ld→ld,
st→st       WMM (unless fenced/acquire/release): ``mp``, ``2+2w``
==========  =====================================================

Orderings every model here preserves: ld→st (sampled by ``lb``) and
per-location coherence (CoRR / n5); the acquire/release and lwfence
cases show how WMM programs buy back the relaxed orders.
"""

from __future__ import annotations

from repro.litmus.program import Cas, Fence, Ld, Rmw, St, make_program
from repro.litmus.tests import LitmusCase

# ----------------------------------------------------------------------
# lb (load buffering): ld->st order is preserved by every model here.
# ----------------------------------------------------------------------

LB = make_program(
    "lb",
    [
        [Ld("x", "rx"), St("y", 1)],
        [Ld("y", "ry"), St("x", 1)],
    ])

LB_CASE = LitmusCase(
    program=LB,
    witness=(("r0_rx", 1), ("r1_ry", 1)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="lb: both loads see the other thread's later store — "
                "needs ld->st reordering, forbidden in all TSO-family "
                "models (and PC).")

# ----------------------------------------------------------------------
# 2+2w: st->st order is preserved everywhere.
# ----------------------------------------------------------------------

W22 = make_program(
    "2+2w",
    [
        [St("x", 1), St("y", 2)],
        [St("y", 1), St("x", 2)],
    ])

W22_CASE = LitmusCase(
    program=W22,
    witness=(("mem_x", 1), ("mem_y", 1)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", True)),
    description="2+2w: each location ends with the *older* of its two "
                "stores — needs st->st reordering.")

# ----------------------------------------------------------------------
# wrc (write-to-read causality): needs write atomicity.
# ----------------------------------------------------------------------

WRC = make_program(
    "wrc",
    [
        [St("x", 1)],
        [Ld("x", "rx"), St("y", 1)],
        [Ld("y", "ry"), Ld("x", "rx")],
    ])

WRC_CASE = LitmusCase(
    program=WRC,
    witness=(("r1_rx", 1), ("r2_ry", 1), ("r2_rx", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", True), ("WMM", True)),
    description="wrc: T2 observes T1's dependent store before T0's "
                "original — only a non-write-atomic system (PC) shows "
                "it; x86's write-atomic MESI forbids it (paper §II-E).")

# ----------------------------------------------------------------------
# rwc (read-to-write causality): allowed in every TSO flavour — the
# third thread's st->ld relaxation suffices.
# ----------------------------------------------------------------------

RWC = make_program(
    "rwc",
    [
        [St("x", 1)],
        [Ld("x", "rx"), Ld("y", "ry")],
        [St("y", 1), Ld("x", "rx")],
    ])

RWC_CASE = LitmusCase(
    program=RWC,
    witness=(("r1_rx", 1), ("r1_ry", 0), ("r2_rx", 0)),
    expected=(("SC", False), ("370", True), ("x86", True), ("PC", True),
              ("WMM", True)),
    description="rwc: T2's load bypasses its own store — plain st->ld "
                "relaxation, allowed in every TSO flavour, forbidden "
                "only in SC.")

# ----------------------------------------------------------------------
# n5: per-location coherence (both cores store then load x).
# ----------------------------------------------------------------------

N5 = make_program(
    "n5",
    [
        [St("x", 1), Ld("x", "rx")],
        [St("x", 2), Ld("x", "ry")],
    ])

N5_CASE = LitmusCase(
    program=N5,
    witness=(("r0_rx", 2), ("r1_ry", 1)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="n5: each core sees the other's store as newer than "
                "its own — contradicts any coherence order for x.")

# ----------------------------------------------------------------------
# CoRR: two reads of one location never go backwards.
# ----------------------------------------------------------------------

CORR = make_program(
    "coRR",
    [
        [St("x", 1)],
        [Ld("x", "r0"), Ld("x", "r1")],
    ])

CORR_CASE = LitmusCase(
    program=CORR,
    witness=(("r1_r0", 1), ("r1_r1", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="coRR: a later read of the same location cannot see an "
                "older value (per-location coherence).")

# ----------------------------------------------------------------------
# sb with one locked RMW: the atomic drains the SB on that side,
# halving the relaxation; with RMWs on both sides it vanishes.
# ----------------------------------------------------------------------

SB_ONE_RMW = make_program(
    "sb+rmw-one",
    [
        [Rmw("x", 1, "r0"), Ld("y", "ry")],
        [St("y", 1), Ld("x", "rx")],
    ])

SB_ONE_RMW_CASE = LitmusCase(
    program=SB_ONE_RMW,
    witness=(("r0_ry", 0), ("r1_rx", 0)),
    expected=(("SC", False), ("370", True), ("x86", True), ("PC", True),
              ("WMM", True)),
    description="sb with one side locked: the plain side still reorders "
                "st->ld, so the witness survives.")

SB_BOTH_RMW = make_program(
    "sb+rmw-both",
    [
        [Rmw("x", 1, "r0"), Ld("y", "ry")],
        [Rmw("y", 1, "r1"), Ld("x", "rx")],
    ])

SB_BOTH_RMW_CASE = LitmusCase(
    program=SB_BOTH_RMW,
    witness=(("r0_ry", 0), ("r1_rx", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="sb with both sides locked behaves like sb+mfences: "
                "locked operations restore st->ld order (the classic "
                "Dekker fix).")

# ----------------------------------------------------------------------
# mp, repaired for WMM: a release store publishing and an acquire load
# consuming.  WMM drops plain st->st and ld->ld (so bare mp is its
# canonical witness against x86); the acquire/release pair restores
# both orders, so the stale read is forbidden again — in every model.
# ----------------------------------------------------------------------

MP_ACQREL = make_program(
    "mp+acqrel",
    [
        [Ld("x", "rx", acquire=True), Ld("y", "ry")],
        [St("y", 1), St("x", 1, release=True)],
    ])

MP_ACQREL_CASE = LitmusCase(
    program=MP_ACQREL,
    witness=(("r0_rx", 1), ("r0_ry", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="mp with a release publish and an acquire consume: the "
                "acquire/release pair restores the ld->ld and st->st "
                "orders WMM relaxes, so no model shows the stale read "
                "(on the TSO family the annotations are no-ops).")

# ----------------------------------------------------------------------
# mp with lightweight fences: lwfence keeps every order except st->ld,
# which mp never needs — so it repairs mp exactly like the acquire/
# release pair does.
# ----------------------------------------------------------------------

MP_LW = make_program(
    "mp+lwfences",
    [
        [Ld("x", "rx"), Fence("lw"), Ld("y", "ry")],
        [St("y", 1), Fence("lw"), St("x", 1)],
    ])

MP_LW_CASE = LitmusCase(
    program=MP_LW,
    witness=(("r0_rx", 1), ("r0_ry", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="mp with lwfences: the lightweight fence orders ld->ld "
                "and st->st, which is all mp needs — forbidden "
                "everywhere, without paying for a store-buffer drain.")

# ----------------------------------------------------------------------
# sb with lightweight fences: the one order lwfence does NOT keep is
# st->ld — precisely the sb relaxation — so unlike sb+mfences the
# witness survives under every TSO-or-weaker model.  The lwfence/mfence
# strength gap, as one pair of programs.
# ----------------------------------------------------------------------

SB_LW = make_program(
    "sb+lwfences",
    [
        [St("x", 1), Fence("lw"), Ld("y", "ry")],
        [St("y", 1), Fence("lw"), Ld("x", "rx")],
    ])

SB_LW_CASE = LitmusCase(
    program=SB_LW,
    witness=(("r0_ry", 0), ("r1_rx", 0)),
    expected=(("SC", False), ("370", True), ("x86", True), ("PC", True),
              ("WMM", True)),
    description="sb with lwfences: a lightweight fence does not order "
                "st->ld, so the sb witness survives wherever it did "
                "bare — contrast sb+mfences, where it vanishes.")

# ----------------------------------------------------------------------
# CAS, failing: expect 5 never matches, so the locked read executes
# with full-fence semantics but the write never happens (mem_x stays
# 0).  The witness is an SC interleaving — allowed everywhere — and
# pins the failed-CAS path of all three formalizations.
# ----------------------------------------------------------------------

SB_CAS_FAIL = make_program(
    "sb+cas-fail",
    [
        [Cas("x", 5, 1, "r0"), Ld("y", "ry")],
        [St("y", 1), Ld("x", "rx")],
    ])

SB_CAS_FAIL_CASE = LitmusCase(
    program=SB_CAS_FAIL,
    witness=(("r0_r0", 0), ("r0_ry", 0), ("r1_rx", 0), ("mem_x", 0)),
    expected=(("SC", True), ("370", True), ("x86", True), ("PC", True),
              ("WMM", True)),
    description="sb shape with a failing CAS: the compare misses, so no "
                "store to x ever happens (mem_x stays 0) and the "
                "witness is a plain SC interleaving — every model "
                "allows it, exercising the failed-CAS (inactive write) "
                "path everywhere.")

# ----------------------------------------------------------------------
# Two CASes race for the same initial value: atomicity says exactly one
# can win, in every model.
# ----------------------------------------------------------------------

CAS_RACE = make_program(
    "cas-race",
    [
        [Cas("x", 0, 1, "r0")],
        [Cas("x", 0, 2, "r1")],
    ])

CAS_RACE_CASE = LitmusCase(
    program=CAS_RACE,
    witness=(("r0_r0", 0), ("r1_r1", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="cas-race: both CASes expect the initial 0, so both "
                "succeeding (both reading 0) would need the second "
                "winner to overlook the first's write — RMW atomicity "
                "forbids it under every model.")

# ----------------------------------------------------------------------
# Spectre gadget programs (architectural views of repro.leakage.GADGETS).
#
# These are the *architectural* faces of the transient-execution gadgets
# the leakage instrument measures: same access pattern, ``secret``
# annotation carried on the Program.  Their witnesses are deliberately
# SC-allowed under every model — architecturally the gadgets are boring,
# which is exactly the point: the leak exists only microarchitecturally,
# in the lines a squashed load leaves resident.  Run ``repro litmus
# spectre-bcb`` for the architectural outcomes and ``repro leak
# spectre-bcb`` for what the pipeline actually exposed.  (Compiled
# litmus programs flatten register dataflow into independent micro-ops,
# so the measurement vehicle is the hand-built Trace in
# :mod:`repro.leakage.gadgets`, not a compilation of these.)
# ----------------------------------------------------------------------

SPECTRE_BCB = make_program(
    "spectre-bcb",
    [
        [Ld("a", "ra"), Ld("s", "rs"), Ld("p", "rp")],   # victim
        [St("s", 0)],                                    # attacker
    ],
    initial={"s": 1},
    secret=("s",))

SPECTRE_BCB_CASE = LitmusCase(
    program=SPECTRE_BCB,
    witness=(("r0_rs", 1),),
    expected=(("SC", True), ("370", True), ("x86", True), ("PC", True),
              ("WMM", True)),
    description="spectre-bcb (architectural): the victim reading the "
                "secret before the attacker clears it is a plain "
                "SC-allowed interleaving — every model permits it.  The "
                "vulnerability is microarchitectural (repro leak).")

SPECTRE_SLF = make_program(
    "spectre-slf",
    [
        [St("s", 1), Ld("s", "rs"), Ld("a", "ra"), Ld("p", "rp")],
        [St("p", 7)],                                    # attacker
    ],
    secret=("s",))

SPECTRE_SLF_CASE = LitmusCase(
    program=SPECTRE_SLF,
    witness=(("r0_rs", 1),),
    expected=(("SC", True), ("370", True), ("x86", True), ("PC", True),
              ("WMM", True)),
    description="spectre-slf (architectural): the victim always sees "
                "its own store (self-read), in every model.  Whether "
                "the forwarded value transiently reaches the cache "
                "through the probe load is the policy-dependent part "
                "(repro leak: x86 leaks, the 370 variants do not).")

#: The extended battery — every case carries all five model verdicts.
EXTRA_CASES = (LB_CASE, W22_CASE, WRC_CASE, RWC_CASE, N5_CASE, CORR_CASE,
               SB_ONE_RMW_CASE, SB_BOTH_RMW_CASE, MP_ACQREL_CASE,
               MP_LW_CASE, SB_LW_CASE, SB_CAS_FAIL_CASE, CAS_RACE_CASE,
               SPECTRE_BCB_CASE, SPECTRE_SLF_CASE)
