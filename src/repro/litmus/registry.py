"""The program registry: every named litmus test, built once.

The CLI and the ``repro.serve`` job model both resolve tests by name;
building the full battery (``ALL_CASES + EXTRA_CASES``) is cheap but not
free, and a long-lived service would otherwise rebuild it on every
request.  The registry is memoized per process — treat the returned
mapping as read-only.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.litmus.battery import EXTRA_CASES
from repro.litmus.generated import GENERATED_CASES
from repro.litmus.program import Program
from repro.litmus.tests import ALL_CASES

_REGISTRY: Optional[Dict[str, Program]] = None


def litmus_registry() -> Dict[str, Program]:
    """Name → :class:`Program` for the whole battery (memoized).

    Includes the synthesized members (``litmus/generated.py``, written
    by ``repro synth --promote``) alongside the hand-written cases.
    """
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = {case.program.name: case.program
                     for case in ALL_CASES + EXTRA_CASES
                     + GENERATED_CASES}
    return _REGISTRY
