"""Run litmus tests on the cycle-level pipeline — the conformance bridge.

The performance model carries a functional value layer: stores write a
global memory image at their memory-order insertion (the L1 write) and
loads bind values at perform time (or take them from the forwarding
store).  This module compiles a litmus :class:`~repro.litmus.program.
Program` into per-core micro-op traces, runs it under any of the five
consistency configurations, and extracts the architectural outcome —
so the *pipeline implementations* can be checked against the *abstract
models*:

* every outcome the ``x86`` pipeline produces must be allowed by the
  x86-TSO model;
* every outcome any ``370-*`` pipeline produces must be allowed by the
  store-atomic 370 model — this is the paper's correctness claim for
  the retire-gate mechanism, tested end to end;
* with enough timing perturbation the ``x86`` pipeline can *exhibit*
  the paper's non-store-atomic witnesses (n6, fig5), which no 370
  configuration ever does.

Timing perturbation: random ALU padding before and between the litmus
accesses varies the interleaving across seeds, playing the role of
litmus7's run-to-run variation on real hardware.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cpu.isa import Trace, alu, fence, load, rmw, store
from repro.litmus.program import Fence, Ld, Outcome, Program, Rmw, St
from repro.sim.config import (CacheConfig, CoreConfig, MemoryConfig,
                              SystemConfig)
from repro.sim.system import System

#: A small, fast configuration for litmus runs (structure sizes stay
#: realistic; caches shrink so coherence traffic is exercised).
LITMUS_CONFIG = SystemConfig(
    cores=8,
    core=CoreConfig(rob_entries=64, lq_entries=24, sq_sb_entries=16,
                    mshrs=4, branch_predictor=False),
    memory=MemoryConfig(
        l1=CacheConfig(4 * 1024, 2, 4),
        l2=CacheConfig(16 * 1024, 4, 12),
        l3_bank=CacheConfig(64 * 1024, 8, 35),
        l3_banks=2,
        prefetcher=False,
    ),
)

_VAR_BASE = 0x10000
_VAR_STRIDE = 64  # one cache line per litmus variable


def _address_map(program: Program) -> Dict[str, int]:
    return {addr: _VAR_BASE + i * _VAR_STRIDE
            for i, addr in enumerate(program.addresses)}


def compile_program(program: Program, seed: int = 0,
                    max_padding: int = 24
                    ) -> Tuple[List[Trace], Dict[Tuple[int, int], int],
                               Dict[str, int]]:
    """Compile a litmus program to per-core traces.

    Returns (traces, load_map, address_map) where ``load_map`` maps
    (tid, op index) of each litmus load to its trace sequence number.
    """
    rng = random.Random(seed)
    addresses = _address_map(program)
    traces: List[Trace] = []
    load_map: Dict[Tuple[int, int], int] = {}
    for tid, thread in enumerate(program.threads):
        trace = Trace()
        private = 0x900000 + tid * 0x100000  # invisible to the outcome
        for k in range(rng.randrange(max_padding + 1)):
            if rng.random() < 0.35:
                # A cold private store: queues in the SQ/SB ahead of the
                # litmus stores, delaying their memory-order insertion —
                # the SB backlog real programs have, and the condition
                # that opens the window of vulnerability.
                trace.append(store(private + k * 64, pc=0x80 + tid))
            else:
                trace.append(alu(latency=rng.choice((1, 1, 2, 3))))
        for idx, op in enumerate(thread):
            if isinstance(op, St):
                trace.append(store(addresses[op.addr], value=op.value,
                                   pc=0x10 + idx))
            elif isinstance(op, Ld):
                seq = trace.append(load(addresses[op.addr], pc=0x20 + idx))
                load_map[(tid, idx)] = seq
            elif isinstance(op, Fence):
                trace.append(fence())
            elif isinstance(op, Rmw):
                seq = trace.append(rmw(addresses[op.addr], value=op.value,
                                       pc=0x30 + idx))
                load_map[(tid, idx)] = seq  # the old value it read
            for _ in range(rng.randrange(4)):
                trace.append(alu(latency=rng.choice((1, 2))))
        trace.validate()
        traces.append(trace)
    return traces, load_map, addresses


def run_once(program: Program, policy: str, seed: int = 0,
             config: Optional[SystemConfig] = None,
             faults=None, watchdog=None,
             max_cycles: int = 2_000_000) -> Outcome:
    """One timed execution of the litmus test under ``policy``.

    ``faults`` is an optional :class:`repro.resilience.faults.FaultPlan`
    (single-use; make one per call) and ``watchdog`` an optional
    :class:`repro.resilience.invariants.Watchdog` — both are installed
    on the system before the run, which is how the chaos conformance
    gate drives this function.
    """
    traces, load_map, addresses = compile_program(program, seed)
    initial = {addr_val: program.initial_value(name)
               for name, addr_val in addresses.items()}
    system = System(traces, policy, config or LITMUS_CONFIG,
                    warm_caches=False, initial_memory=initial,
                    faults=faults)
    if watchdog is not None:
        watchdog.install(system)
    system.run(max_cycles=max_cycles)
    registers = []
    for tid, thread in enumerate(program.threads):
        for idx, op in enumerate(thread):
            if isinstance(op, (Ld, Rmw)):
                seq = load_map[(tid, idx)]
                value = system.cores[tid].retired_load_values[seq]
                registers.append(((tid, op.reg), value))
    memory = tuple(sorted(
        (name, system.memory_data.get(addr_val,
                                      program.initial_value(name)))
        for name, addr_val in addresses.items()))
    return Outcome(registers=tuple(sorted(registers)), memory=memory)


def observed_outcomes(program: Program, policy: str,
                      seeds: Sequence[int] = range(40),
                      config: Optional[SystemConfig] = None,
                      fault_factory=None) -> FrozenSet[Outcome]:
    """Outcomes observed across timing-perturbed runs.

    ``fault_factory`` (seed -> FaultPlan), when given, injects a fresh
    deterministic fault plan into every run — fault perturbation on top
    of the padding perturbation.
    """
    outcomes: Set[Outcome] = set()
    for seed in seeds:
        faults = fault_factory(seed) if fault_factory is not None else None
        outcomes.add(run_once(program, policy, seed, config, faults=faults))
    return frozenset(outcomes)


#: Which abstract model each pipeline configuration must conform to.
POLICY_MODEL = {
    "x86": "x86",
    "370-NoSpec": "370",
    "370-SLFSpec": "370",
    "370-SLFSoS": "370",
    "370-SLFSoS-key": "370",
}


def check_conformance(program: Program, policy: str,
                      seeds: Sequence[int] = range(40),
                      config: Optional[SystemConfig] = None,
                      fault_factory=None
                      ) -> Tuple[bool, FrozenSet[Outcome],
                                 FrozenSet[Outcome]]:
    """Run the litmus test on the pipeline and compare with the model.

    Returns (conforms, observed, allowed): ``conforms`` is True iff
    every observed outcome is allowed by the policy's abstract model.
    ``fault_factory`` forwards to :func:`observed_outcomes` — conformance
    must hold under injected faults too (timing may change, allowed
    outcomes may not).
    """
    from repro.litmus.operational import enumerate_outcomes
    observed = observed_outcomes(program, policy, seeds, config,
                                 fault_factory=fault_factory)
    allowed = enumerate_outcomes(program, POLICY_MODEL[policy])
    return observed <= allowed, observed, allowed
