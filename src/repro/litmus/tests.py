"""The paper's litmus tests (Figures 1, 2, 3, 5) and friends.

Each test is a :class:`~repro.litmus.program.Program` plus the *witness
condition* the paper discusses — the outcome that distinguishes the
memory models.  The module-level docstrings record the paper's verdicts,
which the test suite asserts against both the operational and axiomatic
engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.litmus.program import Fence, Ld, Program, St, make_program


@dataclass(frozen=True)
class LitmusCase:
    """A program plus its distinguishing witness condition and the
    expected verdict per model (True = the outcome is allowed)."""

    program: Program
    witness: Tuple[Tuple[str, int], ...]
    expected: Tuple[Tuple[str, bool], ...]
    description: str = ""

    def witness_dict(self) -> Dict[str, int]:
        return dict(self.witness)

    def expected_dict(self) -> Dict[str, bool]:
        return dict(self.expected)


# ----------------------------------------------------------------------
# Figure 1: mp (message passing).  rx==1 && ry==0 creates a po/hb cycle
# and is forbidden under every TSO flavour (and SC).
# ----------------------------------------------------------------------

MP = make_program(
    "mp",
    [
        [Ld("x", "rx"), Ld("y", "ry")],           # Core1
        [St("y", 1), St("x", 1)],                 # Core2
    ])

MP_CASE = LitmusCase(
    program=MP,
    witness=(("r0_rx", 1), ("r0_ry", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", True)),
    description="Fig. 1: loads see program-ordered stores out of order — "
                "forbidden in x86 (TSO preserves st->st and ld->ld); WMM "
                "drops both orders, making bare mp its canonical witness "
                "against the whole TSO family.")

# ----------------------------------------------------------------------
# Figure 2: n6 (Paul Loewenstein).  rx==1, ry==0, [x]==1, [y]==2 is
# observable on real x86 (store-to-load forwarding) but forbidden in any
# store-atomic TSO: with rfi in global happens-before the execution is
# cyclic.
# ----------------------------------------------------------------------

N6 = make_program(
    "n6",
    [
        [St("x", 1), Ld("x", "rx"), Ld("y", "ry")],   # Core1
        [St("y", 2), St("x", 2)],                     # Core2
    ])

N6_CASE = LitmusCase(
    program=N6,
    witness=(("r0_rx", 1), ("r0_ry", 0), ("mem_x", 1), ("mem_y", 2)),
    expected=(("SC", False), ("370", False), ("x86", True),
              ("PC", True), ("WMM", True)),
    description="Fig. 2: allowed in x86 but forbidden in store-atomic "
                "TSO — the paper's canonical store-atomicity violation "
                "with ordered stores.")

# ----------------------------------------------------------------------
# Figure 3: iriw (independent reads of independent writes).  The two
# reader cores disagree on the order of the two independent stores.
# Forbidden in x86: without forwarding involved, TSO keeps stores
# atomic via the write-atomic memory system.
# ----------------------------------------------------------------------

IRIW = make_program(
    "iriw",
    [
        [Ld("x", "rx"), Ld("y", "ry")],   # Core1: sees x then not-y
        [Ld("y", "ry"), Ld("x", "rx")],   # Core2: sees y then not-x
        [St("x", 1)],                     # writer of x
        [St("y", 1)],                     # writer of y
    ])

IRIW_CASE = LitmusCase(
    program=IRIW,
    witness=(("r0_rx", 1), ("r0_ry", 0), ("r1_ry", 1), ("r1_rx", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", True), ("WMM", True)),
    description="Fig. 3: disagreement about independent stores is "
                "forbidden in x86 when no forwarding is involved.")

# ----------------------------------------------------------------------
# Figure 5: the paper's own construction — distribute the two
# independent stores onto the two observer cores, so each observer's
# first load can be satisfied by forwarding.  Core1 sees x change
# before y; Core2 insists on the opposite.  Allowed in x86, forbidden
# in any store-atomic implementation (Table II lists the only three
# 370 outcomes).
# ----------------------------------------------------------------------

FIG5 = make_program(
    "fig5-sb-fwd",
    [
        [St("x", 1), Ld("x", "rx"), Ld("y", "ry")],   # Core1
        [St("y", 1), Ld("y", "ry"), Ld("x", "rx")],   # Core2
    ])

FIG5_CASE = LitmusCase(
    program=FIG5,
    witness=(("r0_rx", 1), ("r0_ry", 0), ("r1_ry", 1), ("r1_rx", 0)),
    expected=(("SC", False), ("370", False), ("x86", True),
              ("PC", True), ("WMM", True)),
    description="Fig. 5 / Table II case 1: both cores forward their own "
                "store and disagree about the store order — only "
                "possible without store atomicity.")

# ----------------------------------------------------------------------
# Supporting classics.
# ----------------------------------------------------------------------

# Store buffering: the canonical TSO-allowed relaxation (st->ld).
SB = make_program(
    "sb",
    [
        [St("x", 1), Ld("y", "ry")],
        [St("y", 1), Ld("x", "rx")],
    ])

SB_CASE = LitmusCase(
    program=SB,
    witness=(("r0_ry", 0), ("r1_rx", 0)),
    expected=(("SC", False), ("370", True), ("x86", True),
              ("PC", True), ("WMM", True)),
    description="sb: both loads read 0 — the st->ld relaxation every "
                "TSO flavour (370 included) permits; only SC forbids it.")

# Store buffering with mfences: forbidden everywhere again.
SB_FENCED = make_program(
    "sb+mfences",
    [
        [St("x", 1), Fence(), Ld("y", "ry")],
        [St("y", 1), Fence(), Ld("x", "rx")],
    ])

SB_FENCED_CASE = LitmusCase(
    program=SB_FENCED,
    witness=(("r0_ry", 0), ("r1_rx", 0)),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="sb+mfences: fences restore the st->ld order.")

# Forwarding respects local semantics: a load after a local store must
# see it (or something newer).
SELF_READ = make_program(
    "self-read",
    [
        [St("x", 1), Ld("x", "rx")],
    ])

SELF_READ_CASE = LitmusCase(
    program=SELF_READ,
    witness=(("r0_rx", 0),),
    expected=(("SC", False), ("370", False), ("x86", False),
              ("PC", False), ("WMM", False)),
    description="A core can never miss its own store (sequential "
                "semantics hold in every model).")

#: All cases, in paper order.
ALL_CASES = (MP_CASE, N6_CASE, IRIW_CASE, FIG5_CASE, SB_CASE,
             SB_FENCED_CASE, SELF_READ_CASE)

#: The paper's figure tests only.
PAPER_CASES = (MP_CASE, N6_CASE, IRIW_CASE, FIG5_CASE)
