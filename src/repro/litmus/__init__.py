"""Litmus-test engines: operational executors for every registered
model (SC / 370 / x86-TSO / PC / WMM — see :mod:`repro.models`),
exhaustive interleaving, axiomatic happens-before checking, the paper's
litmus tests, and the 370-vs-x86 ConsistencyChecker."""

from repro.litmus.axiomatic import enumerate_axiomatic
from repro.litmus.battery import (CORR_CASE, EXTRA_CASES, LB, LB_CASE, N5,
                                  N5_CASE, RWC, RWC_CASE, SB_BOTH_RMW,
                                  SB_ONE_RMW, W22, W22_CASE, WRC, WRC_CASE)
from repro.litmus.checker import (ComparisonReport, compare,
                                  find_violating_programs, random_program,
                                  store_atomicity_violations)
from repro.litmus.explain import explain
from repro.litmus.parser import (LitmusParseError, ParsedLitmus,
                                 parse_litmus, parse_litmus_file,
                                 render_litmus)
from repro.litmus.pipeline_runner import (check_conformance,
                                          observed_outcomes, run_once)
from repro.litmus.operational import (M370, MODELS, PC, SC, WMM, X86,
                                      allows, enumerate_outcomes,
                                      machine_for, matching_outcomes)
from repro.litmus.registry import litmus_registry
from repro.litmus.sampler import SampleReport, sample
from repro.litmus.program import (Cas, Fence, Instruction, Ld, Outcome,
                                  Program, Rmw, St, make_program)
from repro.litmus.tests import (ALL_CASES, FIG5, FIG5_CASE, IRIW, IRIW_CASE,
                                MP, MP_CASE, N6, N6_CASE, PAPER_CASES, SB,
                                SB_CASE, SB_FENCED, SB_FENCED_CASE,
                                LitmusCase)

__all__ = ["Ld", "St", "Fence", "Rmw", "Cas", "Instruction", "Program",
           "Outcome",
           "make_program", "enumerate_outcomes", "matching_outcomes",
           "machine_for",
           "allows", "enumerate_axiomatic", "SC", "M370", "X86", "PC",
           "WMM", "MODELS", "sample", "SampleReport", "explain",
           "litmus_registry",
           "run_once", "observed_outcomes", "check_conformance",
           "parse_litmus", "parse_litmus_file", "render_litmus",
           "ParsedLitmus", "LitmusParseError",
           "EXTRA_CASES", "LB", "W22", "WRC", "RWC", "N5",
           "SB_ONE_RMW", "SB_BOTH_RMW",
           "LB_CASE", "W22_CASE", "WRC_CASE", "RWC_CASE", "N5_CASE",
           "CORR_CASE",
           "compare", "store_atomicity_violations", "random_program",
           "find_violating_programs", "ComparisonReport", "LitmusCase",
           "MP", "N6", "IRIW", "FIG5", "SB", "SB_FENCED",
           "MP_CASE", "N6_CASE", "IRIW_CASE", "FIG5_CASE", "SB_CASE",
           "SB_FENCED_CASE", "ALL_CASES", "PAPER_CASES"]
