"""Operational memory-model executors with exhaustive enumeration.

Four abstract machines, each a thread-interleaved transition system:

* ``SC``  — no store buffer: a store writes memory immediately.
* ``370`` — FIFO store buffer, **no forwarding**: a load whose address
  matches an entry in its own store buffer is *not enabled* until the
  buffer drains past that entry (IBM 370 semantics: the store must be
  inserted in memory order before the load may read it).
* ``x86`` — FIFO store buffer **with store-to-load forwarding**: a load
  reads the youngest matching entry of its own buffer, else memory
  (the x86-TSO abstract machine of Sewell et al.).
* ``PC``  — Goodman's Processor Consistency (paper Table I's third
  row): **non-write-atomic**.  Each core has its own memory copy; a
  drained store reaches the other cores through per-destination FIFO
  channels, so remote cores may observe independent writers' stores in
  different orders (iriw becomes observable).  The paper excludes PC
  from its evaluation because its MESI protocol is write-atomic; the
  model is provided to complete the Table I taxonomy.

Atomic read-modify-writes (:class:`~repro.litmus.program.Rmw`, x86
locked instructions) drain the store buffer and act on memory in one
indivisible step (SC / 370 / x86 machines only).

:func:`enumerate_outcomes` explores every interleaving (with state
memoization) and returns the complete set of reachable final outcomes —
a strict superset of what hardware sampling (litmus7 in the paper) can
exhibit, and exactly the model's allowed behaviours.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.litmus.program import Fence, Ld, Outcome, Program, Rmw, St

SC = "SC"
M370 = "370"
X86 = "x86"
PC = "PC"

MODELS = (SC, M370, X86, PC)

# State: (pcs, sbs, mem, regs)
#   pcs:  tuple[int, ...] per-thread program counter
#   sbs:  tuple[tuple[(addr, val), ...], ...] per-thread FIFO store buffer
#   mem:  tuple[(addr, val), ...] sorted
#   regs: tuple[((tid, reg), val), ...] sorted
_State = Tuple[tuple, tuple, tuple, tuple]


def _mem_write(mem: tuple, addr: str, value: int) -> tuple:
    return tuple(sorted({**dict(mem), addr: value}.items()))


def _mem_read(mem: tuple, addr: str) -> int:
    return dict(mem)[addr]


def _initial_state(program: Program) -> _State:
    pcs = (0,) * len(program.threads)
    sbs = ((),) * len(program.threads)
    mem = tuple(sorted((addr, program.initial_value(addr))
                       for addr in program.addresses))
    return pcs, sbs, mem, ()


def _successors(program: Program, model: str,
                state: _State) -> List[_State]:
    pcs, sbs, mem, regs = state
    out: List[_State] = []
    for tid, thread in enumerate(program.threads):
        sb = sbs[tid]
        # Transition 1: drain the oldest store-buffer entry to memory.
        if sb:
            addr, value = sb[0]
            new_sbs = sbs[:tid] + (sb[1:],) + sbs[tid + 1:]
            out.append((pcs, new_sbs, _mem_write(mem, addr, value), regs))
        # Transition 2: execute the next instruction, if enabled.
        pc = pcs[tid]
        if pc >= len(thread):
            continue
        op = thread[pc]
        new_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1:]
        if isinstance(op, St):
            if model == SC:
                out.append((new_pcs, sbs, _mem_write(mem, op.addr, op.value),
                            regs))
            else:
                new_sbs = sbs[:tid] + (sb + ((op.addr, op.value),),) \
                    + sbs[tid + 1:]
                out.append((new_pcs, new_sbs, mem, regs))
        elif isinstance(op, Ld):
            matches = [value for addr, value in sb if addr == op.addr]
            if matches and model == M370:
                # Blocked: must wait for the matching store to be
                # inserted in memory order (drain transitions only).
                continue
            if matches and model == X86:
                value = matches[-1]  # youngest matching entry forwards
            else:
                value = _mem_read(mem, op.addr)
            new_regs = tuple(sorted(regs + (((tid, op.reg), value),)))
            out.append((new_pcs, sbs, mem, new_regs))
        elif isinstance(op, Fence):
            if sb:
                continue  # enabled only once the buffer has drained
            out.append((new_pcs, sbs, mem, regs))
        elif isinstance(op, Rmw):
            if sb:
                continue  # locked instructions drain the SB first
            old = _mem_read(mem, op.addr)
            new_regs = tuple(sorted(regs + (((tid, op.reg), old),)))
            out.append((new_pcs, sbs, _mem_write(mem, op.addr, op.value),
                        new_regs))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {op!r}")
    return out


# ----------------------------------------------------------------------
# The PC (Processor Consistency) machine: per-core memory copies with
# per-destination FIFO propagation channels.  Per-location coherence
# (a property PC keeps) is enforced by versioning: the drain order to a
# location is its coherence order, and a core ignores deliveries older
# than what its copy already holds.
# ----------------------------------------------------------------------

# PC state: (pcs, sbs, channels, mems, vers, regs)
#   channels: tuple[(src, dst)-indexed, tuple[(addr, val, ver), ...]]
#   mems:     tuple[per-core memory as sorted (addr, (val, ver)) tuples]
#   vers:     sorted (addr, drain-count) tuples (global version clocks)


def _pc_mem_read(mem: tuple, addr: str):
    return dict(mem)[addr]


def _pc_mem_write(mem: tuple, addr: str, value: int, version: int) -> tuple:
    current = dict(mem)
    if current[addr][1] < version:
        current[addr] = (value, version)
    return tuple(sorted(current.items()))


def _pc_initial_state(program: Program):
    n = len(program.threads)
    pcs = (0,) * n
    sbs = ((),) * n
    mem = tuple(sorted((addr, (program.initial_value(addr), 0))
                       for addr in program.addresses))
    mems = (mem,) * n
    channels = ((),) * (n * n)
    vers = tuple(sorted((addr, 0) for addr in program.addresses))
    return pcs, sbs, channels, mems, vers, ()


def _pc_successors(program: Program, state):
    pcs, sbs, channels, mems, vers, regs = state
    n = len(program.threads)
    out = []
    for tid, thread in enumerate(program.threads):
        sb = sbs[tid]
        # Drain own SB head: visible to self immediately, queued for
        # every other core, stamped with the location's next version.
        if sb:
            addr, value = sb[0]
            version = dict(vers)[addr] + 1
            new_vers = tuple(sorted({**dict(vers), addr: version}.items()))
            new_sbs = sbs[:tid] + (sb[1:],) + sbs[tid + 1:]
            new_mems = list(mems)
            new_mems[tid] = _pc_mem_write(mems[tid], addr, value, version)
            new_channels = list(channels)
            for dst in range(n):
                if dst != tid:
                    slot = tid * n + dst
                    new_channels[slot] = channels[slot] \
                        + ((addr, value, version),)
            out.append((pcs, new_sbs, tuple(new_channels),
                        tuple(new_mems), new_vers, regs))
        # Deliver one queued remote store to this core (older-than-held
        # versions are dropped: per-location coherence).
        for src in range(n):
            slot = src * n + tid
            channel = channels[slot]
            if channel:
                addr, value, version = channel[0]
                new_channels = list(channels)
                new_channels[slot] = channel[1:]
                new_mems = list(mems)
                new_mems[tid] = _pc_mem_write(mems[tid], addr, value,
                                              version)
                out.append((pcs, sbs, tuple(new_channels),
                            tuple(new_mems), vers, regs))
        # Execute the next instruction.
        pc = pcs[tid]
        if pc >= len(thread):
            continue
        op = thread[pc]
        new_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1:]
        if isinstance(op, St):
            new_sbs = sbs[:tid] + (sb + ((op.addr, op.value),),) \
                + sbs[tid + 1:]
            out.append((new_pcs, new_sbs, channels, mems, vers, regs))
        elif isinstance(op, Ld):
            matches = [value for addr, value in sb if addr == op.addr]
            value = matches[-1] if matches \
                else _pc_mem_read(mems[tid], op.addr)[0]
            new_regs = tuple(sorted(regs + (((tid, op.reg), value),)))
            out.append((new_pcs, sbs, channels, mems, vers, new_regs))
        elif isinstance(op, Fence):
            # Strong fence: own SB drained and all own stores delivered.
            outgoing = any(channels[tid * n + dst]
                           for dst in range(n) if dst != tid)
            if sb or outgoing:
                continue
            out.append((new_pcs, sbs, channels, mems, vers, regs))
        elif isinstance(op, Rmw):
            raise ValueError(
                "atomic RMW is not defined for the PC machine "
                "(locked operations presume a write-atomic system)")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {op!r}")
    return out


def _pc_enumerate(program: Program) -> FrozenSet[Outcome]:
    start = _pc_initial_state(program)
    seen = {start}
    stack = [start]
    outcomes: Set[Outcome] = set()
    lengths = tuple(len(t) for t in program.threads)
    while stack:
        state = stack.pop()
        pcs, sbs, channels, mems, vers, regs = state
        if (pcs == lengths and all(not sb for sb in sbs)
                and all(not ch for ch in channels)):
            # Versioned delivery guarantees all copies converged.
            memory = tuple(sorted((addr, value)
                                  for addr, (value, _) in mems[0]))
            outcomes.add(Outcome(registers=regs, memory=memory))
            continue
        for nxt in _pc_successors(program, state):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(outcomes)


def enumerate_outcomes(program: Program, model: str) -> FrozenSet[Outcome]:
    """All reachable final outcomes of ``program`` under ``model``."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {MODELS}")
    if model == PC:
        return _pc_enumerate(program)
    start = _initial_state(program)
    seen: Set[_State] = {start}
    stack: List[_State] = [start]
    outcomes: Set[Outcome] = set()
    lengths = tuple(len(t) for t in program.threads)
    while stack:
        state = stack.pop()
        pcs, sbs, mem, regs = state
        if pcs == lengths and all(not sb for sb in sbs):
            outcomes.add(Outcome(registers=regs, memory=mem))
            continue
        for nxt in _successors(program, model, state):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(outcomes)


def allows(program: Program, model: str, **conditions: int) -> bool:
    """True if some outcome satisfies all ``reg`` / ``mem`` conditions.

    Conditions use keys like ``r0_rx`` (thread 0, register ``rx``) and
    ``mem_x`` (final value of location ``x``)::

        allows(MP, "x86", r1_rx=1, r1_ry=0)
    """
    return any(_matches(outcome, conditions)
               for outcome in enumerate_outcomes(program, model))


def matching_outcomes(program: Program, model: str,
                      **conditions: int) -> FrozenSet[Outcome]:
    """The outcomes that satisfy the given conditions."""
    return frozenset(o for o in enumerate_outcomes(program, model)
                     if _matches(o, conditions))


def _matches(outcome: Outcome, conditions: Dict[str, int]) -> bool:
    for key, expected in conditions.items():
        if key.startswith("mem_"):
            if outcome.mem(key[4:]) != expected:
                return False
        elif key.startswith("r") and "_" in key:
            tid_str, reg = key[1:].split("_", 1)
            if outcome.reg(int(tid_str), reg) != expected:
                return False
        else:
            raise ValueError(f"bad condition key {key!r}")
    return True
