"""Operational memory-model executors with exhaustive enumeration.

Five abstract machines, each a thread-interleaved transition system:

* ``SC``  — no store buffer: a store writes memory immediately.
* ``370`` — FIFO store buffer, **no forwarding**: a load whose address
  matches an entry in its own store buffer is *not enabled* until the
  buffer drains past that entry (IBM 370 semantics: the store must be
  inserted in memory order before the load may read it).
* ``x86`` — FIFO store buffer **with store-to-load forwarding**: a load
  reads the youngest matching entry of its own buffer, else memory
  (the x86-TSO abstract machine of Sewell et al.).
* ``PC``  — Goodman's Processor Consistency (paper Table I's third
  row): **non-write-atomic**.  Each core has its own memory copy; a
  drained store reaches the other cores through per-destination FIFO
  channels, so remote cores may observe independent writers' stores in
  different orders (iriw becomes observable).  The paper excludes PC
  from its evaluation because its MESI protocol is write-atomic; the
  model is provided to complete the Table I taxonomy.
* ``WMM`` — Zhang et al.'s weak memory model (*Taming Weak Memory
  Models*): an I2E machine over a **monolithic memory** with
  out-of-order store buffers (st→st relaxes) and **invalidation
  buffers** holding overwritten values that loads may still read
  (ld→ld relaxes), subject to per-location coherence.  Loads execute
  in instruction order, so ld→st stays ordered and out-of-thin-air
  behaviours are impossible.  ``mfence`` commits the store buffer and
  reconciles (clears) the invalidation buffer; ``lwfence`` inserts a
  store-buffer barrier and reconciles without waiting for the drain;
  ``ld.acq`` reconciles after reading; ``st.rel`` orders all earlier
  stores before itself via a store-buffer barrier.

Atomic read-modify-writes (:class:`~repro.litmus.program.Rmw` /
:class:`~repro.litmus.program.Cas`, x86 locked instructions) drain the
store buffer and act on memory in one indivisible step; on PC they
additionally wait until every copy of the location has converged (a bus
lock) and update all copies at once, and on WMM they reconcile the
invalidation buffer (full fence semantics on both sides).

:func:`enumerate_outcomes` explores every interleaving (with state
memoization) and returns the complete set of reachable final outcomes —
a strict superset of what hardware sampling (litmus7 in the paper) can
exhibit, and exactly the model's allowed behaviours.  The per-model
transition systems are exposed uniformly through :func:`machine_for`
(initial state / successors / final outcome), which the sampler and the
model registry (:mod:`repro.models`) build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.litmus.program import (Cas, Fence, Ld, Outcome, Program, Rmw, St)

SC = "SC"
M370 = "370"
X86 = "x86"
PC = "PC"
WMM = "WMM"

MODELS = (SC, M370, X86, PC, WMM)

# State: (pcs, sbs, mem, regs)
#   pcs:  tuple[int, ...] per-thread program counter
#   sbs:  tuple[tuple[(addr, val), ...], ...] per-thread FIFO store buffer
#   mem:  tuple[(addr, val), ...] sorted
#   regs: tuple[((tid, reg), val), ...] sorted
_State = Tuple[tuple, tuple, tuple, tuple]


def _mem_write(mem: tuple, addr: str, value: int) -> tuple:
    return tuple(sorted({**dict(mem), addr: value}.items()))


def _mem_read(mem: tuple, addr: str) -> int:
    return dict(mem)[addr]


def _initial_state(program: Program) -> _State:
    pcs = (0,) * len(program.threads)
    sbs = ((),) * len(program.threads)
    mem = tuple(sorted((addr, program.initial_value(addr))
                       for addr in program.addresses))
    return pcs, sbs, mem, ()


def _successors(program: Program, model: str,
                state: _State) -> List[_State]:
    pcs, sbs, mem, regs = state
    out: List[_State] = []
    for tid, thread in enumerate(program.threads):
        sb = sbs[tid]
        # Transition 1: drain the oldest store-buffer entry to memory.
        if sb:
            addr, value = sb[0]
            new_sbs = sbs[:tid] + (sb[1:],) + sbs[tid + 1:]
            out.append((pcs, new_sbs, _mem_write(mem, addr, value), regs))
        # Transition 2: execute the next instruction, if enabled.
        pc = pcs[tid]
        if pc >= len(thread):
            continue
        op = thread[pc]
        new_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1:]
        if isinstance(op, St):
            if model == SC:
                out.append((new_pcs, sbs, _mem_write(mem, op.addr, op.value),
                            regs))
            else:
                new_sbs = sbs[:tid] + (sb + ((op.addr, op.value),),) \
                    + sbs[tid + 1:]
                out.append((new_pcs, new_sbs, mem, regs))
        elif isinstance(op, Ld):
            matches = [value for addr, value in sb if addr == op.addr]
            if matches and model == M370:
                # Blocked: must wait for the matching store to be
                # inserted in memory order (drain transitions only).
                continue
            if matches and model == X86:
                value = matches[-1]  # youngest matching entry forwards
            else:
                value = _mem_read(mem, op.addr)
            new_regs = tuple(sorted(regs + (((tid, op.reg), value),)))
            out.append((new_pcs, sbs, mem, new_regs))
        elif isinstance(op, Fence):
            # lwfence orders ld->ld, ld->st and st->st, all of which the
            # TSO family already preserves: architecturally a no-op.
            if op.kind == "mf" and sb:
                continue  # enabled only once the buffer has drained
            out.append((new_pcs, sbs, mem, regs))
        elif isinstance(op, (Rmw, Cas)):
            if sb:
                continue  # locked instructions drain the SB first
            old = _mem_read(mem, op.addr)
            new_regs = tuple(sorted(regs + (((tid, op.reg), old),)))
            if isinstance(op, Cas) and old != op.expect:
                out.append((new_pcs, sbs, mem, new_regs))
            else:
                out.append((new_pcs, sbs,
                            _mem_write(mem, op.addr, op.value), new_regs))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {op!r}")
    return out


# ----------------------------------------------------------------------
# The PC (Processor Consistency) machine: per-core memory copies with
# per-destination FIFO propagation channels.  Per-location coherence
# (a property PC keeps) is enforced by versioning: the drain order to a
# location is its coherence order, and a core ignores deliveries older
# than what its copy already holds.
# ----------------------------------------------------------------------

# PC state: (pcs, sbs, channels, mems, vers, regs)
#   channels: tuple[(src, dst)-indexed, tuple[(addr, val, ver), ...]]
#   mems:     tuple[per-core memory as sorted (addr, (val, ver)) tuples]
#   vers:     sorted (addr, drain-count) tuples (global version clocks)


def _pc_mem_read(mem: tuple, addr: str):
    return dict(mem)[addr]


def _pc_mem_write(mem: tuple, addr: str, value: int, version: int) -> tuple:
    current = dict(mem)
    if current[addr][1] < version:
        current[addr] = (value, version)
    return tuple(sorted(current.items()))


def _pc_initial_state(program: Program):
    n = len(program.threads)
    pcs = (0,) * n
    sbs = ((),) * n
    mem = tuple(sorted((addr, (program.initial_value(addr), 0))
                       for addr in program.addresses))
    mems = (mem,) * n
    channels = ((),) * (n * n)
    vers = tuple(sorted((addr, 0) for addr in program.addresses))
    return pcs, sbs, channels, mems, vers, ()


def _pc_successors(program: Program, state):
    pcs, sbs, channels, mems, vers, regs = state
    n = len(program.threads)
    out = []
    for tid, thread in enumerate(program.threads):
        sb = sbs[tid]
        # Drain own SB head: visible to self immediately, queued for
        # every other core, stamped with the location's next version.
        if sb:
            addr, value = sb[0]
            version = dict(vers)[addr] + 1
            new_vers = tuple(sorted({**dict(vers), addr: version}.items()))
            new_sbs = sbs[:tid] + (sb[1:],) + sbs[tid + 1:]
            new_mems = list(mems)
            new_mems[tid] = _pc_mem_write(mems[tid], addr, value, version)
            new_channels = list(channels)
            for dst in range(n):
                if dst != tid:
                    slot = tid * n + dst
                    new_channels[slot] = channels[slot] \
                        + ((addr, value, version),)
            out.append((pcs, new_sbs, tuple(new_channels),
                        tuple(new_mems), new_vers, regs))
        # Deliver one queued remote store to this core (older-than-held
        # versions are dropped: per-location coherence).
        for src in range(n):
            slot = src * n + tid
            channel = channels[slot]
            if channel:
                addr, value, version = channel[0]
                new_channels = list(channels)
                new_channels[slot] = channel[1:]
                new_mems = list(mems)
                new_mems[tid] = _pc_mem_write(mems[tid], addr, value,
                                              version)
                out.append((pcs, sbs, tuple(new_channels),
                            tuple(new_mems), vers, regs))
        # Execute the next instruction.
        pc = pcs[tid]
        if pc >= len(thread):
            continue
        op = thread[pc]
        new_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1:]
        if isinstance(op, St):
            new_sbs = sbs[:tid] + (sb + ((op.addr, op.value),),) \
                + sbs[tid + 1:]
            out.append((new_pcs, new_sbs, channels, mems, vers, regs))
        elif isinstance(op, Ld):
            matches = [value for addr, value in sb if addr == op.addr]
            value = matches[-1] if matches \
                else _pc_mem_read(mems[tid], op.addr)[0]
            new_regs = tuple(sorted(regs + (((tid, op.reg), value),)))
            out.append((new_pcs, sbs, channels, mems, vers, new_regs))
        elif isinstance(op, Fence):
            if op.kind == "lw":
                # PC already preserves ld->ld, ld->st and st->st (FIFO
                # buffers and channels): architecturally a no-op.
                out.append((new_pcs, sbs, channels, mems, vers, regs))
                continue
            # Strong fence: own SB drained and all own stores delivered.
            outgoing = any(channels[tid * n + dst]
                           for dst in range(n) if dst != tid)
            if sb or outgoing:
                continue
            out.append((new_pcs, sbs, channels, mems, vers, regs))
        elif isinstance(op, (Rmw, Cas)):
            # A locked operation on a non-write-atomic machine is a bus
            # lock: it waits until its own buffers are flushed and every
            # copy of the location has converged (no in-flight delivery
            # anywhere mentions the address), then reads the agreed
            # value and updates all copies in one indivisible step.
            outgoing = any(channels[tid * n + dst]
                           for dst in range(n) if dst != tid)
            in_flight = any(entry[0] == op.addr
                            for channel in channels for entry in channel)
            if sb or outgoing or in_flight:
                continue
            old, version = _pc_mem_read(mems[tid], op.addr)
            new_regs = tuple(sorted(regs + (((tid, op.reg), old),)))
            if isinstance(op, Cas) and old != op.expect:
                out.append((new_pcs, sbs, channels, mems, vers, new_regs))
                continue
            new_version = dict(vers)[op.addr] + 1
            new_vers = tuple(sorted(
                {**dict(vers), op.addr: new_version}.items()))
            new_mems = tuple(
                _pc_mem_write(copy, op.addr, op.value, new_version)
                for copy in mems)
            out.append((new_pcs, sbs, channels, new_mems, new_vers,
                        new_regs))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {op!r}")
    return out


def _pc_enumerate(program: Program) -> FrozenSet[Outcome]:
    start = _pc_initial_state(program)
    seen = {start}
    stack = [start]
    outcomes: Set[Outcome] = set()
    lengths = tuple(len(t) for t in program.threads)
    while stack:
        state = stack.pop()
        pcs, sbs, channels, mems, vers, regs = state
        if (pcs == lengths and all(not sb for sb in sbs)
                and all(not ch for ch in channels)):
            # Versioned delivery guarantees all copies converged.
            memory = tuple(sorted((addr, value)
                                  for addr, (value, _) in mems[0]))
            outcomes.add(Outcome(registers=regs, memory=memory))
            continue
        for nxt in _pc_successors(program, state):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(outcomes)


# ----------------------------------------------------------------------
# The WMM machine (Zhang et al., "Taming Weak Memory Models"): one
# monolithic memory, out-of-order store buffers (same-address entries
# stay FIFO; lwfence / st.rel insert drain barriers), and per-thread
# invalidation buffers holding overwritten values that loads may still
# read — pruned on every read so per-location coherence holds.
# ----------------------------------------------------------------------

# WMM state: (pcs, sbs, mem, ibs, regs)
#   sbs:  per-thread tuple of *segments*; each segment is a tuple of
#         (addr, value) entries.  Only the first segment drains (any
#         entry with no older same-address entry in it); a barrier
#         (lwfence / st.rel) starts a new segment.
#   mem:  tuple[(addr, (value, version)), ...] sorted; the version
#         counts drains per location (its coherence order).
#   ibs:  per-thread tuple[(addr, ((value, version), ...)), ...] of
#         stale (overwritten) values still readable by that thread.


def _wmm_initial_state(program: Program):
    n = len(program.threads)
    mem = tuple(sorted((addr, (program.initial_value(addr), 0))
                       for addr in program.addresses))
    return (0,) * n, ((),) * n, mem, ((),) * n, ()


def _sb_has_entries(sb: tuple) -> bool:
    return any(segment for segment in sb)


def _sb_youngest(sb: tuple, addr: str):
    for segment in reversed(sb):
        for entry_addr, value in reversed(segment):
            if entry_addr == addr:
                return value
    return None


def _sb_push(sb: tuple, addr: str, value: int, barrier: bool) -> tuple:
    """Append a store; with ``barrier`` it starts a new segment so it
    cannot drain before any earlier entry."""
    if not sb:
        return (((addr, value),),)
    if barrier and sb[-1]:
        return sb + (((addr, value),),)
    return sb[:-1] + (sb[-1] + ((addr, value),),)


def _sb_normalize(sb: tuple) -> tuple:
    while len(sb) > 1 and not sb[0]:
        sb = sb[1:]
    if sb == ((),):
        return ()
    return sb


def _ib_get(ib: tuple, addr: str) -> tuple:
    for entry_addr, entries in ib:
        if entry_addr == addr:
            return entries
    return ()


def _ib_set(ib: tuple, addr: str, entries: tuple) -> tuple:
    rest = tuple((a, e) for a, e in ib if a != addr)
    if entries:
        rest += ((addr, entries),)
    return tuple(sorted(rest))


def _ib_prune(ib: tuple, addr: str, version: int) -> tuple:
    """Reading ``version`` of ``addr``: older stale values become
    unreadable (per-location coherence is monotone)."""
    kept = tuple(e for e in _ib_get(ib, addr) if e[1] >= version)
    return _ib_set(ib, addr, kept)


def _wmm_drain(state, tid: int, slot: int):
    """Drain entry ``slot`` of thread ``tid``'s first segment."""
    pcs, sbs, mem, ibs, regs = state
    segment = sbs[tid][0]
    addr, value = segment[slot]
    new_segment = segment[:slot] + segment[slot + 1:]
    new_sb = _sb_normalize((new_segment,) + sbs[tid][1:])
    old_value, old_version = dict(mem)[addr]
    new_mem = tuple(sorted(
        {**dict(mem), addr: (value, old_version + 1)}.items()))
    new_ibs = []
    for u, ib in enumerate(ibs):
        if u == tid:
            # Own drain: this thread must now read its store or newer.
            new_ibs.append(_ib_set(ib, addr, ()))
        else:
            new_ibs.append(_ib_set(
                ib, addr, _ib_get(ib, addr) + ((old_value, old_version),)))
    return (pcs, sbs[:tid] + (new_sb,) + sbs[tid + 1:], new_mem,
            tuple(new_ibs), regs)


def _wmm_successors(program: Program, state) -> List[tuple]:
    pcs, sbs, mem, ibs, regs = state
    out: List[tuple] = []
    for tid, thread in enumerate(program.threads):
        sb = sbs[tid]
        # Drain transitions: any first-segment entry with no older
        # same-address entry (same-address stores stay FIFO; different
        # addresses commit out of order — the st->st relaxation).
        if sb and sb[0]:
            seen_addrs: Set[str] = set()
            for slot, (addr, _value) in enumerate(sb[0]):
                if addr not in seen_addrs:
                    out.append(_wmm_drain(state, tid, slot))
                    seen_addrs.add(addr)
        pc = pcs[tid]
        if pc >= len(thread):
            continue
        op = thread[pc]
        new_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1:]
        ib = ibs[tid]
        if isinstance(op, St):
            new_sb = _sb_push(sb, op.addr, op.value, barrier=op.release)
            out.append((new_pcs, sbs[:tid] + (new_sb,) + sbs[tid + 1:],
                        mem, ibs, regs))
        elif isinstance(op, Ld):
            forwarded = _sb_youngest(sb, op.addr)
            if forwarded is not None:
                choices = [(forwarded, None)]
            else:
                mem_value, mem_version = dict(mem)[op.addr]
                choices = [(mem_value, mem_version)]
                choices += [(value, version)
                            for value, version in _ib_get(ib, op.addr)]
            for value, version in choices:
                new_ib = ib if version is None \
                    else _ib_prune(ib, op.addr, version)
                if op.acquire:
                    new_ib = ()   # reconcile: later loads read fresh
                new_regs = tuple(sorted(regs + (((tid, op.reg), value),)))
                out.append((new_pcs, sbs, mem,
                            ibs[:tid] + (new_ib,) + ibs[tid + 1:],
                            new_regs))
        elif isinstance(op, Fence):
            if op.kind == "mf":
                if _sb_has_entries(sb):
                    continue   # commit: enabled once the buffer drained
                new_sbs = sbs
            else:
                new_sb = sb + ((),) if sb and sb[-1] else sb
                new_sbs = sbs[:tid] + (new_sb,) + sbs[tid + 1:]
            out.append((new_pcs, new_sbs, mem,
                        ibs[:tid] + ((),) + ibs[tid + 1:], regs))
        elif isinstance(op, (Rmw, Cas)):
            if _sb_has_entries(sb):
                continue       # locked: commit the store buffer first
            old_value, old_version = dict(mem)[op.addr]
            new_regs = tuple(sorted(regs + (((tid, op.reg), old_value),)))
            new_ibs = ibs[:tid] + ((),) + ibs[tid + 1:]   # reconcile
            if isinstance(op, Cas) and old_value != op.expect:
                out.append((new_pcs, sbs, mem, new_ibs, new_regs))
                continue
            new_mem = tuple(sorted(
                {**dict(mem), op.addr: (op.value, old_version + 1)}
                .items()))
            stale = []
            for u, other_ib in enumerate(new_ibs):
                if u == tid:
                    stale.append(other_ib)
                else:
                    stale.append(_ib_set(
                        other_ib, op.addr,
                        _ib_get(other_ib, op.addr)
                        + ((old_value, old_version),)))
            out.append((new_pcs, sbs, new_mem, tuple(stale), new_regs))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {op!r}")
    return out


# ----------------------------------------------------------------------
# The uniform machine protocol: initial state, successors, and final
# outcome extraction per model — what the enumerator, the sampler and
# the model registry (repro.models) all build on.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Machine:
    """One model's transition system over one program."""

    model: str
    initial: Callable[[], tuple]
    successors: Callable[[tuple], List[tuple]]
    final_outcome: Callable[[tuple], Optional[Outcome]]


def machine_for(program: Program, model: str) -> Machine:
    """The operational machine of ``model`` instantiated on ``program``."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {MODELS}")
    lengths = tuple(len(t) for t in program.threads)
    if model == PC:
        def pc_final(state):
            pcs, sbs, channels, mems, _vers, regs = state
            if (pcs == lengths and all(not sb for sb in sbs)
                    and all(not ch for ch in channels)):
                # Versioned delivery guarantees all copies converged.
                memory = tuple(sorted((addr, value)
                                      for addr, (value, _) in mems[0]))
                return Outcome(registers=regs, memory=memory)
            return None

        return Machine(model=model,
                       initial=lambda: _pc_initial_state(program),
                       successors=lambda s: _pc_successors(program, s),
                       final_outcome=pc_final)
    if model == WMM:
        def wmm_final(state):
            pcs, sbs, mem, _ibs, regs = state
            if pcs == lengths and not any(map(_sb_has_entries, sbs)):
                memory = tuple(sorted((addr, value)
                                      for addr, (value, _) in mem))
                return Outcome(registers=regs, memory=memory)
            return None

        return Machine(model=model,
                       initial=lambda: _wmm_initial_state(program),
                       successors=lambda s: _wmm_successors(program, s),
                       final_outcome=wmm_final)

    def tso_final(state):
        pcs, sbs, mem, regs = state
        if pcs == lengths and all(not sb for sb in sbs):
            return Outcome(registers=regs, memory=mem)
        return None

    return Machine(model=model,
                   initial=lambda: _initial_state(program),
                   successors=lambda s: _successors(program, model, s),
                   final_outcome=tso_final)


def enumerate_outcomes(program: Program, model: str) -> FrozenSet[Outcome]:
    """All reachable final outcomes of ``program`` under ``model``."""
    machine = machine_for(program, model)
    start = machine.initial()
    seen = {start}
    stack = [start]
    outcomes: Set[Outcome] = set()
    while stack:
        state = stack.pop()
        outcome = machine.final_outcome(state)
        if outcome is not None:
            outcomes.add(outcome)
            continue
        for nxt in machine.successors(state):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(outcomes)


def allows(program: Program, model: str, **conditions: int) -> bool:
    """True if some outcome satisfies all ``reg`` / ``mem`` conditions.

    Conditions use keys like ``r0_rx`` (thread 0, register ``rx``) and
    ``mem_x`` (final value of location ``x``)::

        allows(MP, "x86", r1_rx=1, r1_ry=0)
    """
    return any(_matches(outcome, conditions)
               for outcome in enumerate_outcomes(program, model))


def matching_outcomes(program: Program, model: str,
                      **conditions: int) -> FrozenSet[Outcome]:
    """The outcomes that satisfy the given conditions."""
    return frozenset(o for o in enumerate_outcomes(program, model)
                     if _matches(o, conditions))


def _matches(outcome: Outcome, conditions: Dict[str, int]) -> bool:
    for key, expected in conditions.items():
        if key.startswith("mem_"):
            if outcome.mem(key[4:]) != expected:
                return False
        elif key.startswith("r") and "_" in key:
            tid_str, reg = key[1:].split("_", 1)
            if outcome.reg(int(tid_str), reg) != expected:
                return False
        else:
            raise ValueError(f"bad condition key {key!r}")
    return True
