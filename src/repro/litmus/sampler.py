"""litmus7-style sampling of the operational models.

The paper observed the n6 and fig5 witnesses on real hardware "at a
rate of about one in a million" using the litmus7 harness.  This module
provides the analogous experiment on the abstract machines: instead of
exhaustively enumerating outcomes, it random-walks the transition system
many times and reports an outcome histogram — rare relaxed outcomes
appear with low frequency, exactly like hardware sampling (while
:func:`~repro.litmus.operational.enumerate_outcomes` remains the ground
truth for what is *possible*).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Counter as CounterT, Dict, Optional

from repro.litmus.operational import MODELS, _matches, machine_for
from repro.litmus.program import Outcome, Program


@dataclass
class SampleReport:
    """Histogram of outcomes over ``runs`` random walks."""

    program: Program
    model: str
    runs: int
    histogram: CounterT[Outcome]

    def frequency(self, **conditions: int) -> float:
        """Fraction of runs whose outcome satisfies the conditions."""
        hits = sum(count for outcome, count in self.histogram.items()
                   if _matches(outcome, conditions))
        return hits / self.runs if self.runs else 0.0

    def rarest(self) -> Optional[Outcome]:
        if not self.histogram:
            return None
        return min(self.histogram, key=self.histogram.get)

    def summary(self, top: int = 10) -> str:
        lines = [f"{self.program.name} under {self.model}: "
                 f"{len(self.histogram)} distinct outcomes in "
                 f"{self.runs} runs"]
        for outcome, count in sorted(self.histogram.items(),
                                     key=lambda kv: -kv[1])[:top]:
            lines.append(f"  {count / self.runs:9.5f}  {outcome}")
        return "\n".join(lines)


def _walk(program: Program, model: str, rng: random.Random) -> Outcome:
    machine = machine_for(program, model)
    state = machine.initial()
    while True:
        outcome = machine.final_outcome(state)
        if outcome is not None:
            return outcome
        nexts = machine.successors(state)
        if not nexts:
            raise RuntimeError(  # pragma: no cover - machines terminate
                "operational machine wedged")
        state = rng.choice(nexts)


def sample(program: Program, model: str, runs: int = 10_000,
           seed: int = 0) -> SampleReport:
    """Random-walk ``runs`` executions and histogram the outcomes."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}")
    rng = random.Random(seed)
    histogram: CounterT[Outcome] = Counter()
    for _ in range(runs):
        histogram[_walk(program, model, rng)] += 1
    return SampleReport(program=program, model=model, runs=runs,
                        histogram=histogram)
