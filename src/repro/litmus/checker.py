"""ConsistencyChecker: compare a program's outcomes across memory models.

The paper's authors built a tool that "compares the outcome of a program
under the 370 model and the x86 model" (Section I, footnote 1) to find
non-store-atomic behaviours.  This module reproduces it on top of the
operational executors: the behaviours allowed by x86 but not by 370 are
exactly the observable store-atomicity violations.

Also provides a small random-program generator used for differential
testing between the operational and axiomatic engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from repro.litmus.operational import M370, SC, X86, enumerate_outcomes
from repro.litmus.program import (Cas, Fence, Ld, Outcome, Program, Rmw, St,
                                  make_program)


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome-set comparison between two memory models."""

    program: Program
    model_a: str
    model_b: str
    outcomes_a: FrozenSet[Outcome]
    outcomes_b: FrozenSet[Outcome]

    @property
    def only_in_b(self) -> FrozenSet[Outcome]:
        """Behaviours of ``model_b`` invisible under ``model_a`` — for
        (370, x86) these are the store-atomicity violations."""
        return self.outcomes_b - self.outcomes_a

    @property
    def only_in_a(self) -> FrozenSet[Outcome]:
        return self.outcomes_a - self.outcomes_b

    @property
    def common(self) -> FrozenSet[Outcome]:
        return self.outcomes_a & self.outcomes_b

    @property
    def equivalent(self) -> bool:
        return self.outcomes_a == self.outcomes_b

    def summary(self) -> str:
        lines = [f"{self.program.name}: {self.model_a} vs {self.model_b}",
                 f"  common outcomes:       {len(self.common)}",
                 f"  only {self.model_a:>4}:           {len(self.only_in_a)}",
                 f"  only {self.model_b:>4}:           {len(self.only_in_b)}"]
        for outcome in sorted(self.only_in_b, key=str):
            lines.append(f"    {self.model_b}-only: {outcome}")
        return "\n".join(lines)


def compare(program: Program, model_a: str = M370,
            model_b: str = X86) -> ComparisonReport:
    """Enumerate ``program`` under both models and diff the outcomes."""
    return ComparisonReport(
        program=program,
        model_a=model_a,
        model_b=model_b,
        outcomes_a=enumerate_outcomes(program, model_a),
        outcomes_b=enumerate_outcomes(program, model_b))


def store_atomicity_violations(program: Program) -> FrozenSet[Outcome]:
    """The outcomes x86 allows that the store-atomic 370 forbids."""
    return compare(program, M370, X86).only_in_b


def random_program(rng: random.Random, name: str = "random",
                   threads: int = 2, max_ops: int = 3,
                   addresses: Sequence[str] = ("x", "y"),
                   allow_fences: bool = False,
                   allow_rmws: bool = False,
                   allow_acqrel: bool = False) -> Program:
    """Generate a small random litmus program.

    Store values are globally unique so that every rf edge is
    unambiguous; registers are single-assignment per thread.  With
    ``allow_rmws`` the pool gains locked atomics (``xchg`` and ``cas``
    — the CAS expect value is drawn so both success and failure paths
    occur); with ``allow_acqrel`` it gains acquire loads, release
    stores and the lightweight fence.
    """
    next_value = [1]
    thread_lists: List[List[object]] = []
    for tid in range(threads):
        ops: List[object] = []
        n_ops = rng.randint(1, max_ops)
        reg_counter = 0
        for _ in range(n_ops):
            kinds = ["ld", "st"] + (["fence"] if allow_fences else []) \
                + (["xchg", "cas"] if allow_rmws else []) \
                + (["ld.acq", "st.rel", "lwfence"] if allow_acqrel else [])
            kind = rng.choice(kinds)
            addr = rng.choice(list(addresses))
            if kind == "ld":
                ops.append(Ld(addr, f"r{reg_counter}"))
                reg_counter += 1
            elif kind == "ld.acq":
                ops.append(Ld(addr, f"r{reg_counter}", acquire=True))
                reg_counter += 1
            elif kind == "st":
                ops.append(St(addr, next_value[0]))
                next_value[0] += 1
            elif kind == "st.rel":
                ops.append(St(addr, next_value[0], release=True))
                next_value[0] += 1
            elif kind == "xchg":
                ops.append(Rmw(addr, next_value[0], f"r{reg_counter}"))
                next_value[0] += 1
                reg_counter += 1
            elif kind == "cas":
                # expect 0 hits the initial value; a fresh value never
                # does — half the draws exercise the failed-CAS path.
                expect = rng.choice([0, next_value[0]])
                ops.append(Cas(addr, expect, next_value[0],
                               f"r{reg_counter}"))
                next_value[0] += 1
                reg_counter += 1
            elif kind == "lwfence":
                ops.append(Fence("lw"))
            else:
                ops.append(Fence())
        thread_lists.append(ops)
    return make_program(name, thread_lists)


def find_violating_programs(seed: int = 0, trials: int = 100,
                            threads: int = 2, max_ops: int = 3
                            ) -> List[ComparisonReport]:
    """Random search for programs whose x86 outcomes exceed 370's —
    the ConsistencyChecker's discovery mode."""
    rng = random.Random(seed)
    found: List[ComparisonReport] = []
    for trial in range(trials):
        program = random_program(rng, name=f"random-{trial}",
                                 threads=threads, max_ops=max_ops)
        report = compare(program)
        if report.only_in_b:
            found.append(report)
    return found
