"""Axiomatic memory-model checker (Alglave-style happens-before).

Candidate executions of a litmus program are enumerated by choosing, for
each load, the store it reads from (``rf``) and, per location, a total
coherence order over stores (``co``); derived from these is the
from-read relation ``fr = rf⁻¹ ; co``.  A candidate is allowed when:

* **sc-per-location** (uniproc): ``po-loc ∪ rf ∪ co ∪ fr`` is acyclic;
* **no-thin-air** is trivial here (no data-dependent values);
* the **global happens-before** relation is acyclic, where::

      ghb = ppo ∪ grf ∪ co ∪ fr

  with per-model preserved program order and global read-from:

  ========  ==========================  =================
  model     ppo                         grf
  ========  ==========================  =================
  SC        po                          rf
  370       po minus st→ld (TSO)        rf   (store-atomic: rfi is global)
  x86       po minus st→ld (TSO)        rfe  (rfi not global: forwarding)
  ========  ==========================  =================

This is exactly the distinction the paper draws in Figure 2: "if
store-to-load forwarding (rfi) enforces memory order, we have a cycle"
— under the 370 model internal read-from edges participate in global
happens-before, under x86 they do not.

A fence contributes ordering: every access before the fence is ppo-
ordered before every access after it (mfence restores st→ld order).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.litmus.program import Fence, Ld, Outcome, Program, St

SC = "SC"
M370 = "370"
X86 = "x86"

# Event: (tid, idx) with tid == -1 for initial stores (idx = addr ordinal).
Event = Tuple[int, int]


class _Execution:
    """One candidate execution: events plus chosen rf and co."""

    def __init__(self, program: Program) -> None:
        from repro.litmus.program import Rmw
        for thread in program.threads:
            if any(isinstance(op, Rmw) for op in thread):
                raise NotImplementedError(
                    "the axiomatic checker does not model atomic RMWs; "
                    "use the operational engine")
        self.program = program
        self.loads: List[Tuple[Event, Ld]] = []
        self.stores: List[Tuple[Event, St]] = []
        self.init_events: Dict[str, Event] = {}
        self.addr_of: Dict[Event, str] = {}
        self.value_of: Dict[Event, int] = {}
        for ordinal, addr in enumerate(program.addresses):
            event = (-1, ordinal)
            self.init_events[addr] = event
            self.addr_of[event] = addr
            self.value_of[event] = program.initial_value(addr)
        for tid, idx, op in program.loads():
            self.loads.append(((tid, idx), op))
        for tid, idx, op in program.stores():
            event = (tid, idx)
            self.stores.append((event, op))
            self.addr_of[event] = op.addr
            self.value_of[event] = op.value
        self.rf: Dict[Event, Event] = {}         # load -> store
        self.co: Dict[str, List[Event]] = {}     # addr -> ordered stores


def _acyclic(edges: Set[Tuple[Event, Event]]) -> bool:
    graph: Dict[Event, List[Event]] = {}
    nodes: Set[Event] = set()
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        nodes.add(a)
        nodes.add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Event, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, child_idx = stack[-1]
            children = graph.get(node, ())
            if child_idx < len(children):
                stack[-1] = (node, child_idx + 1)
                child = children[child_idx]
                if color[child] == GRAY:
                    return False
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return True


def _po_pairs(program: Program) -> Iterable[Tuple[Event, Event, bool]]:
    """Yield (a, b, crosses_fence) for all program-ordered access pairs."""
    for tid, thread in enumerate(program.threads):
        accesses: List[Tuple[int, object]] = [
            (idx, op) for idx, op in enumerate(thread)
            if isinstance(op, (Ld, St))]
        fences = [idx for idx, op in enumerate(thread)
                  if isinstance(op, Fence)]
        for i, (idx_a, op_a) in enumerate(accesses):
            for idx_b, op_b in accesses[i + 1:]:
                crosses = any(idx_a < f < idx_b for f in fences)
                yield (tid, idx_a), (tid, idx_b), crosses


def _model_edges(execution: _Execution, model: str
                 ) -> Tuple[Set[Tuple[Event, Event]],
                            Set[Tuple[Event, Event]]]:
    """Returns (uniproc_edges, ghb_edges) for the candidate."""
    program = execution.program
    addr_of = execution.addr_of
    is_store = {event for event, _ in execution.stores}

    rf_edges = {(store, load) for load, store in execution.rf.items()}
    co_edges: Set[Tuple[Event, Event]] = set()
    for addr, order in execution.co.items():
        chain = [execution.init_events[addr]] + order
        for a, b in zip(chain, chain[1:]):
            co_edges.add((a, b))
        # Transitive closure of co (orders are short).
        for i, a in enumerate(chain):
            for b in chain[i + 1:]:
                co_edges.add((a, b))
    # fr: for each load reading s, fr to every store co-after s.
    fr_edges: Set[Tuple[Event, Event]] = set()
    co_after: Dict[Event, Set[Event]] = {}
    for a, b in co_edges:
        co_after.setdefault(a, set()).add(b)
    for load, store in execution.rf.items():
        for later in co_after.get(store, ()):
            fr_edges.add((load, later))

    # Preserved program order.
    ppo: Set[Tuple[Event, Event]] = set()
    po_loc: Set[Tuple[Event, Event]] = set()
    for a, b, crosses_fence in _po_pairs(program):
        if addr_of.get(a, _load_addr(program, a)) == \
                addr_of.get(b, _load_addr(program, b)):
            po_loc.add((a, b))
        relaxed = (a in is_store) and (b not in is_store)  # st -> ld
        if model == SC or not relaxed or crosses_fence:
            ppo.add((a, b))

    if model == X86:
        grf = {(s, l) for s, l in rf_edges if s[0] != l[0]}  # external only
    else:
        grf = set(rf_edges)

    uniproc = po_loc | rf_edges | co_edges | fr_edges
    ghb = ppo | grf | co_edges | fr_edges
    return uniproc, ghb


def _load_addr(program: Program, event: Event) -> str:
    tid, idx = event
    if tid < 0:
        return program.addresses[idx]
    op = program.threads[tid][idx]
    return op.addr


def _outcome_of(execution: _Execution) -> Outcome:
    regs = []
    for load_event, op in execution.loads:
        source = execution.rf[load_event]
        regs.append(((load_event[0], op.reg),
                     execution.value_of[source]))
    mem = []
    for addr in execution.program.addresses:
        order = execution.co.get(addr, [])
        last = order[-1] if order else execution.init_events[addr]
        mem.append((addr, execution.value_of[last]))
    return Outcome(registers=tuple(sorted(regs)),
                   memory=tuple(sorted(mem)))


def enumerate_axiomatic(program: Program, model: str) -> FrozenSet[Outcome]:
    """All outcomes whose candidate executions satisfy the model axioms."""
    if model not in (SC, M370, X86):
        raise ValueError(f"unknown model {model!r}")
    execution = _Execution(program)

    # rf choices per load: any same-address store (or the initial store).
    rf_choices: List[List[Event]] = []
    for load_event, op in execution.loads:
        sources = [execution.init_events[op.addr]]
        sources += [event for event, store in execution.stores
                    if store.addr == op.addr]
        rf_choices.append(sources)

    # co choices per address: all permutations of its stores.
    addr_stores: Dict[str, List[Event]] = {}
    for event, store in execution.stores:
        addr_stores.setdefault(store.addr, []).append(event)
    co_addrs = sorted(addr_stores)
    co_choices = [list(itertools.permutations(addr_stores[a]))
                  for a in co_addrs]

    outcomes: Set[Outcome] = set()
    for rf_pick in itertools.product(*rf_choices) if rf_choices else [()]:
        execution.rf = {load_event: src for (load_event, _), src
                        in zip(execution.loads, rf_pick)}
        for co_pick in itertools.product(*co_choices) if co_choices else [()]:
            execution.co = {addr: list(order)
                            for addr, order in zip(co_addrs, co_pick)}
            uniproc, ghb = _model_edges(execution, model)
            if _acyclic(uniproc) and _acyclic(ghb):
                outcomes.add(_outcome_of(execution))
    return frozenset(outcomes)
